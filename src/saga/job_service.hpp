// Job service adapter for the simulated CI.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/clock.hpp"
#include "src/saga/job.hpp"
#include "src/sim/batch_queue.hpp"
#include "src/sim/cluster.hpp"

namespace entk::saga {

/// One JobService per CI endpoint, like a SAGA adapter instance.
class JobService {
 public:
  JobService(sim::ClusterSpec cluster, ClockPtr clock,
             std::uint64_t seed = 1234);

  /// Submit a job; it becomes Active after a sampled batch-queue wait.
  /// Jobs requesting more nodes than the machine has fail immediately.
  JobPtr submit(const JobDescription& description);

  const sim::ClusterSpec& cluster() const { return cluster_; }
  std::size_t submitted_count() const;

 private:
  const sim::ClusterSpec cluster_;
  ClockPtr clock_;
  sim::BatchQueue batch_queue_;
  mutable std::mutex mutex_;
  std::vector<JobPtr> jobs_;
  int next_job_number_ = 0;
};

}  // namespace entk::saga
