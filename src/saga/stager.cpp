#include "src/saga/stager.hpp"

namespace entk::saga {

const char* to_string(StagingAction a) {
  switch (a) {
    case StagingAction::Copy: return "copy";
    case StagingAction::Link: return "link";
    case StagingAction::Transfer: return "transfer";
  }
  return "?";
}

DataStager::DataStager(sim::SharedFilesystem* filesystem, ClockPtr clock)
    : filesystem_(filesystem), clock_(std::move(clock)) {}

double DataStager::stage(const StagingDirective& directive) {
  sim::FsOp op = sim::FsOp::Copy;
  if (directive.action == StagingAction::Link) op = sim::FsOp::Link;
  if (directive.action == StagingAction::Transfer) op = sim::FsOp::Transfer;

  const double duration = filesystem_->begin_op(op, directive.bytes);
  clock_->sleep_for(duration);
  filesystem_->end_op();

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.directives;
  stats_.bytes += directive.bytes;
  stats_.total_virtual_s += duration;
  return duration;
}

double DataStager::stage_all(const std::vector<StagingDirective>& directives) {
  double total = 0.0;
  for (const StagingDirective& d : directives) total += stage(d);
  return total;
}

StagerStats DataStager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace entk::saga
