// Data staging verbs (paper §II-D: cp, soft links, remote transfer).
//
// Tasks carry staging directives; the RTS Agent's stager executes them
// against the CI's shared filesystem model. Durations depend on data size,
// bandwidth and contention — independent of RTS performance, as the paper
// notes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.hpp"
#include "src/sim/filesystem.hpp"

namespace entk::saga {

enum class StagingAction { Copy, Link, Transfer };

const char* to_string(StagingAction a);

struct StagingDirective {
  std::string source;
  std::string target;
  StagingAction action = StagingAction::Copy;
  std::uint64_t bytes = 0;
};

struct StagerStats {
  std::uint64_t directives = 0;
  std::uint64_t bytes = 0;
  double total_virtual_s = 0.0;
};

/// Executes staging directives, advancing the scaled clock by the charged
/// duration of each filesystem operation.
class DataStager {
 public:
  DataStager(sim::SharedFilesystem* filesystem, ClockPtr clock);

  /// Stage one directive; returns the virtual seconds it took.
  double stage(const StagingDirective& directive);

  /// Stage a list sequentially; returns total virtual seconds.
  double stage_all(const std::vector<StagingDirective>& directives);

  StagerStats stats() const;

 private:
  sim::SharedFilesystem* filesystem_;
  ClockPtr clock_;
  mutable std::mutex mutex_;
  StagerStats stats_;
};

}  // namespace entk::saga
