// SAGA-like job abstraction (paper §II-D).
//
// The PilotManager submits pilots as jobs through a uniform job-management
// API; one adapter exists per CI type. Here the adapter targets the
// simulated CI: a submitted job waits a sampled batch-queue time, then
// becomes Active and holds its nodes until canceled or its walltime ends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace entk::saga {

enum class JobState { New, Pending, Active, Done, Failed, Canceled };

const char* to_string(JobState s);

struct JobDescription {
  std::string name;
  int nodes = 1;
  double walltime_s = 3600.0;  ///< virtual seconds
  std::string project;         ///< allocation/project id (informational)
};

/// Handle to a submitted job. State is evaluated lazily against the
/// virtual clock, so no background thread is needed.
class Job {
 public:
  virtual ~Job() = default;
  virtual const std::string& id() const = 0;
  virtual const JobDescription& description() const = 0;
  virtual JobState state() const = 0;
  /// Block (on the scaled clock) until the job leaves Pending.
  virtual void wait_active() = 0;
  virtual void cancel() = 0;
  /// Virtual time at which the job became Active (-1 while pending).
  virtual double start_time() const = 0;
};

using JobPtr = std::shared_ptr<Job>;

}  // namespace entk::saga
