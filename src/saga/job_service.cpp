#include "src/saga/job_service.hpp"

#include <cstdio>

#include "src/common/error.hpp"

namespace entk::saga {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::New: return "NEW";
    case JobState::Pending: return "PENDING";
    case JobState::Active: return "ACTIVE";
    case JobState::Done: return "DONE";
    case JobState::Failed: return "FAILED";
    case JobState::Canceled: return "CANCELED";
  }
  return "?";
}

namespace {

class SimJob final : public Job {
 public:
  SimJob(std::string id, JobDescription description, ClockPtr clock,
         double queue_wait_s, bool failed)
      : id_(std::move(id)),
        description_(std::move(description)),
        clock_(std::move(clock)),
        submit_t_(clock_->now()),
        queue_wait_s_(queue_wait_s),
        failed_(failed) {}

  const std::string& id() const override { return id_; }
  const JobDescription& description() const override { return description_; }

  JobState state() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_locked();
  }

  void wait_active() override {
    while (true) {
      JobState s = state();
      if (s != JobState::Pending && s != JobState::New) return;
      const double remaining = (submit_t_ + queue_wait_s_) - clock_->now();
      clock_->sleep_for(remaining > 0 ? remaining : 1e-4);
    }
  }

  void cancel() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_locked() == JobState::Active ||
        state_locked() == JobState::Pending) {
      canceled_ = true;
      cancel_t_ = clock_->now();
    }
  }

  double start_time() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (clock_->now() < submit_t_ + queue_wait_s_) return -1.0;
    return submit_t_ + queue_wait_s_;
  }

 private:
  JobState state_locked() const {
    if (failed_) return JobState::Failed;
    const double now = clock_->now();
    const double start = submit_t_ + queue_wait_s_;
    if (canceled_ && cancel_t_ < start) return JobState::Canceled;
    if (now < start) return JobState::Pending;
    if (canceled_) return JobState::Canceled;
    if (now >= start + description_.walltime_s) return JobState::Done;
    return JobState::Active;
  }

  const std::string id_;
  const JobDescription description_;
  ClockPtr clock_;
  const double submit_t_;
  const double queue_wait_s_;
  const bool failed_;

  mutable std::mutex mutex_;
  bool canceled_ = false;
  double cancel_t_ = 0.0;
};

}  // namespace

JobService::JobService(sim::ClusterSpec cluster, ClockPtr clock,
                       std::uint64_t seed)
    : cluster_(std::move(cluster)),
      clock_(std::move(clock)),
      batch_queue_(cluster_.batch_queue, seed) {}

JobPtr JobService::submit(const JobDescription& description) {
  std::lock_guard<std::mutex> lock(mutex_);
  char idbuf[64];
  std::snprintf(idbuf, sizeof(idbuf), "[%s]-job.%04d", cluster_.name.c_str(),
                next_job_number_++);
  const bool failed = description.nodes > cluster_.nodes;
  const double wait =
      failed ? 0.0 : batch_queue_.sample_wait(description.nodes);
  auto job =
      std::make_shared<SimJob>(idbuf, description, clock_, wait, failed);
  jobs_.push_back(job);
  return job;
}

std::size_t JobService::submitted_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

}  // namespace entk::saga
