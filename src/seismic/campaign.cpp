#include "src/seismic/campaign.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace entk::seismic {

PipelinePtr build_forward_campaign(const ForwardCampaignSpec& spec) {
  auto pipeline = std::make_shared<Pipeline>("seismic.forward-ensemble");
  auto stage = std::make_shared<Stage>("forward-simulations");
  for (int eq = 0; eq < spec.earthquakes; ++eq) {
    auto task = std::make_shared<Task>("forward-eq" + std::to_string(eq));
    task->executable = "specfem3d_globe";
    // 384 whole nodes per earthquake (16 cores/node on Titan).
    task->cpu_reqs.processes = spec.nodes_per_task * 16;
    task->exclusive_nodes = true;
    task->duration_s = spec.sim_duration_s;
    task->input_staging.push_back(saga::StagingDirective{
        "mesh_eq" + std::to_string(eq), "sandbox/", saga::StagingAction::Copy,
        spec.input_bytes});
    task->output_staging.push_back(saga::StagingDirective{
        "sandbox/seismograms", "scratch/", saga::StagingAction::Copy,
        spec.output_bytes});
    if (spec.real_kernel) {
      const int nx = spec.kernel_nx;
      const int nt = spec.kernel_nt;
      const int eq_ix = 8 + (eq * 7) % (nx - 16);
      task->function = [nx, nt, eq_ix] {
        ModelSpec ms;
        ms.nx = nx;
        ms.nz = nx;
        SolverSpec ss;
        ss.nt = nt;
        const Field2D model = true_model(ms);
        SourceSpec src{eq_ix, 6, 8.0, 0.15};
        std::vector<ReceiverSpec> recv;
        for (int r = 8; r < nx - 8; r += 8) recv.push_back({r, 4});
        const SeismogramSet s = forward(model, ms.dx, ss, src, recv);
        return s.l2_norm() > 0 ? 0 : 1;  // sanity: waves reached receivers
      };
    }
    stage->add_task(task);
  }
  pipeline->add_stage(stage);
  return pipeline;
}

std::shared_ptr<InversionState> make_inversion_state(const InversionSpec& spec,
                                                     std::uint64_t seed) {
  auto state = std::make_shared<InversionState>();
  state->observed_model = true_model(spec.model, 3, 250.0, seed);
  state->current_model = background_model(spec.model);

  const int nx = spec.model.nx;
  for (int eq = 0; eq < spec.earthquakes; ++eq) {
    const int ix = nx / (spec.earthquakes + 1) * (eq + 1);
    state->sources.push_back(SourceSpec{ix, 8, 8.0, 0.15});
  }
  for (int r = 0; r < spec.receivers; ++r) {
    const int ix = 10 + r * (nx - 20) / std::max(1, spec.receivers - 1);
    state->receivers.push_back(ReceiverSpec{ix, 5});
  }

  const std::size_t n = static_cast<std::size_t>(spec.earthquakes);
  state->observed.resize(n);
  state->synthetic.resize(n);
  state->adjoint_sources.resize(n);
  state->wavefields.resize(n);
  state->kernels.resize(n);

  // The "field campaign": observed seismograms from the true earth.
  for (int eq = 0; eq < spec.earthquakes; ++eq) {
    state->observed[static_cast<std::size_t>(eq)] =
        forward(state->observed_model, spec.model.dx, spec.solver,
                state->sources[static_cast<std::size_t>(eq)],
                state->receivers);
  }
  return state;
}

std::vector<PipelinePtr> build_inversion_iteration(
    const InversionSpec& spec, std::shared_ptr<InversionState> state) {
  std::vector<PipelinePtr> pipelines;
  for (int eq = 0; eq < spec.earthquakes; ++eq) {
    const auto i = static_cast<std::size_t>(eq);
    auto pipeline =
        std::make_shared<Pipeline>("inversion-eq" + std::to_string(eq));

    // Stage 1: forward simulation through the current model.
    auto s_forward = std::make_shared<Stage>("forward");
    auto t_forward = std::make_shared<Task>("forward-eq" + std::to_string(eq));
    t_forward->duration_s = 10.0;
    t_forward->function = [spec, state, i] {
      ForwardWavefield wf = forward_with_wavefield(
          state->current_model, spec.model.dx, spec.solver,
          state->sources[i], state->receivers);
      std::lock_guard<std::mutex> lock(state->mutex);
      state->synthetic[i] = wf.seismograms;
      state->wavefields[i] = std::move(wf);
      return 0;
    };
    s_forward->add_task(t_forward);
    pipeline->add_stage(s_forward);

    // Stage 2: data processing of observed and synthetic traces.
    auto s_process = std::make_shared<Stage>("data-processing");
    auto t_process = std::make_shared<Task>("process-eq" + std::to_string(eq));
    t_process->duration_s = 2.0;
    t_process->function = [state, i] {
      std::lock_guard<std::mutex> lock(state->mutex);
      // Demean only (smoothing = 0): the demean projection is
      // self-adjoint, so the L2 adjoint source of the processed residual
      // stays a correct gradient source without implementing the adjoint
      // of a causal filter.
      state->synthetic[i] = process(state->synthetic[i], 0.0);
      return 0;
    };
    s_process->add_task(t_process);
    pipeline->add_stage(s_process);

    // Stage 3: adjoint-source creation from the misfit.
    auto s_adjsrc = std::make_shared<Stage>("adjoint-source");
    auto t_adjsrc = std::make_shared<Task>("adjsrc-eq" + std::to_string(eq));
    t_adjsrc->duration_s = 1.0;
    t_adjsrc->function = [state, i] {
      std::lock_guard<std::mutex> lock(state->mutex);
      const SeismogramSet processed_obs = process(state->observed[i], 0.0);
      state->adjoint_sources[i] =
          adjoint_source(state->synthetic[i], processed_obs);
      return 0;
    };
    s_adjsrc->add_task(t_adjsrc);
    pipeline->add_stage(s_adjsrc);

    // Stage 4: adjoint simulation accumulating the sensitivity kernel.
    auto s_adjoint = std::make_shared<Stage>("adjoint");
    auto t_adjoint = std::make_shared<Task>("adjoint-eq" + std::to_string(eq));
    t_adjoint->duration_s = 10.0;
    t_adjoint->function = [spec, state, i] {
      SeismogramSet adj;
      ForwardWavefield wf;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        adj = state->adjoint_sources[i];
        wf = state->wavefields[i];
      }
      Field2D kernel = adjoint_kernel(state->current_model, spec.model.dx,
                                      spec.solver, state->receivers, adj, wf);
      std::lock_guard<std::mutex> lock(state->mutex);
      state->kernels[i] = std::move(kernel);
      return 0;
    };
    s_adjoint->add_task(t_adjoint);
    pipeline->add_stage(s_adjoint);

    pipelines.push_back(std::move(pipeline));
  }
  return pipelines;
}

Field2D precondition_kernel(const Field2D& kernel,
                            const std::vector<SourceSpec>& sources,
                            const std::vector<ReceiverSpec>& receivers,
                            double mute_radius, int smooth_passes,
                            int smooth_radius) {
  const int nx = kernel.nx();
  const int nz = kernel.nz();
  Field2D out = kernel;

  // Mute: taper to zero near every source and receiver, where the raw
  // cross-correlation kernel is singular.
  auto mute_at = [&](int cx, int cz) {
    const int reach = static_cast<int>(3 * mute_radius);
    for (int ix = std::max(0, cx - reach); ix < std::min(nx, cx + reach + 1);
         ++ix) {
      for (int iz = std::max(0, cz - reach);
           iz < std::min(nz, cz + reach + 1); ++iz) {
        const double d2 = static_cast<double>((ix - cx) * (ix - cx) +
                                              (iz - cz) * (iz - cz));
        out.at(ix, iz) *=
            1.0 - std::exp(-d2 / (2.0 * mute_radius * mute_radius));
      }
    }
  };
  for (const SourceSpec& s : sources) mute_at(s.ix, s.iz);
  for (const ReceiverSpec& r : receivers) mute_at(r.ix, r.iz);

  // Smooth: repeated box blur approximates a Gaussian.
  for (int pass = 0; pass < smooth_passes; ++pass) {
    Field2D next(nx, nz);
    for (int ix = 0; ix < nx; ++ix) {
      for (int iz = 0; iz < nz; ++iz) {
        double sum = 0.0;
        int n = 0;
        for (int dx = -smooth_radius; dx <= smooth_radius; ++dx) {
          for (int dz = -smooth_radius; dz <= smooth_radius; ++dz) {
            const int jx = ix + dx;
            const int jz = iz + dz;
            if (jx < 0 || jz < 0 || jx >= nx || jz >= nz) continue;
            sum += out.at(jx, jz);
            ++n;
          }
        }
        next.at(ix, iz) = sum / n;
      }
    }
    out = std::move(next);
  }
  return out;
}

Field2D sum_kernels_and_update(const InversionSpec& spec,
                               InversionState& state) {
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.kernels.empty()) throw ValueError("no kernels to sum");
  Field2D total(spec.model.nx, spec.model.nz);
  double misfit = 0.0;
  for (std::size_t i = 0; i < state.kernels.size(); ++i) {
    if (state.kernels[i].size() == total.size()) {
      total.axpy(1.0, state.kernels[i]);
    }
    const SeismogramSet processed_obs = process(state.observed[i], 0.0);
    misfit += l2_misfit(state.synthetic[i], processed_obs);
  }
  state.misfit_history.push_back(misfit);

  total = precondition_kernel(total, state.sources, state.receivers);

  // Steepest descent with backtracking (the Fig-4 "Optimization Routine"):
  // start from a max_update_mps-normalized step and halve until the misfit
  // decreases. Each trial re-runs the forward simulations.
  const double kmax = std::max(std::abs(total.max()), std::abs(total.min()));
  if (kmax > 0) {
    auto evaluate = [&](const Field2D& model) {
      double chi = 0.0;
      for (std::size_t i = 0; i < state.observed.size(); ++i) {
        const SeismogramSet syn =
            process(forward(model, spec.model.dx, spec.solver,
                            state.sources[i], state.receivers),
                    0.0);
        chi += l2_misfit(syn, process(state.observed[i], 0.0));
      }
      return chi;
    };
    double alpha = spec.max_update_mps / kmax;
    for (int trial = 0; trial < 5; ++trial) {
      Field2D candidate = state.current_model;
      candidate.axpy(-alpha, total);
      if (evaluate(candidate) < misfit) {
        state.current_model = std::move(candidate);
        break;
      }
      alpha *= 0.5;
    }
  }
  return total;
}

}  // namespace entk::seismic
