#include "src/seismic/solver.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace entk::seismic {

double SeismogramSet::l2_norm() const {
  double s = 0.0;
  for (const auto& trace : traces) {
    for (double v : trace) s += v * v;
  }
  return std::sqrt(s);
}

bool cfl_stable(const Field2D& velocity, double dx, const SolverSpec& spec) {
  // 4th-order 2-D stencil stability bound: v*dt/dx <= sqrt(3/8) ~ 0.61.
  const double vmax = velocity.max();
  return vmax * spec.dt / dx <= 0.61;
}

double ricker(double t, double f, double delay) {
  const double a = M_PI * f * (t - delay);
  const double a2 = a * a;
  return (1.0 - 2.0 * a2) * std::exp(-a2);
}

namespace {

/// One 4th-order Laplacian-update time step over the interior.
void step(const Field2D& v2dt2, Field2D& u, Field2D& u_prev, double inv_dx2) {
  const int nx = u.nx();
  const int nz = u.nz();
  constexpr double c0 = -5.0 / 2.0, c1 = 4.0 / 3.0, c2 = -1.0 / 12.0;
  for (int ix = 2; ix < nx - 2; ++ix) {
    for (int iz = 2; iz < nz - 2; ++iz) {
      const double lap =
          (2.0 * c0 * u.at(ix, iz) +
           c1 * (u.at(ix - 1, iz) + u.at(ix + 1, iz) + u.at(ix, iz - 1) +
                 u.at(ix, iz + 1)) +
           c2 * (u.at(ix - 2, iz) + u.at(ix + 2, iz) + u.at(ix, iz - 2) +
                 u.at(ix, iz + 2))) *
          inv_dx2;
      const double next =
          2.0 * u.at(ix, iz) - u_prev.at(ix, iz) + v2dt2.at(ix, iz) * lap;
      u_prev.at(ix, iz) = next;  // u_prev becomes u_next; swapped by caller
    }
  }
}

// Damping applies to the left/right/bottom boundaries only: the top
// (z = 0) is a free surface, as in seismic practice, so sources and
// receivers can sit near the surface without being absorbed.
void apply_sponge(Field2D& u, Field2D& u_prev, int width, double strength) {
  const int nx = u.nx();
  const int nz = u.nz();
  for (int ix = 0; ix < nx; ++ix) {
    for (int iz = 0; iz < nz; ++iz) {
      const int d =
          std::min(std::min(ix, nx - 1 - ix), nz - 1 - iz);
      if (d < width) {
        const double taper =
            std::exp(-strength * strength * (width - d) * (width - d));
        u.at(ix, iz) *= taper;
        u_prev.at(ix, iz) *= taper;
      }
    }
  }
}

Field2D precompute_v2dt2(const Field2D& velocity, const SolverSpec& spec) {
  Field2D out(velocity.nx(), velocity.nz());
  for (int ix = 0; ix < velocity.nx(); ++ix) {
    for (int iz = 0; iz < velocity.nz(); ++iz) {
      const double v = velocity.at(ix, iz);
      out.at(ix, iz) = v * v * spec.dt * spec.dt;
    }
  }
  return out;
}

}  // namespace

SeismogramSet forward(const Field2D& velocity, double dx,
                      const SolverSpec& spec, const SourceSpec& source,
                      const std::vector<ReceiverSpec>& receivers) {
  return forward_with_wavefield(velocity, dx, spec, source, receivers,
                                /*snapshot_stride=*/0)
      .seismograms;
}

ForwardWavefield forward_with_wavefield(
    const Field2D& velocity, double dx, const SolverSpec& spec,
    const SourceSpec& source, const std::vector<ReceiverSpec>& receivers,
    int snapshot_stride) {
  if (!cfl_stable(velocity, dx, spec)) {
    throw ValueError("seismic::forward: CFL condition violated (reduce dt)");
  }
  const int nx = velocity.nx();
  const int nz = velocity.nz();
  const Field2D v2dt2 = precompute_v2dt2(velocity, spec);
  const double inv_dx2 = 1.0 / (dx * dx);

  ForwardWavefield out;
  out.stride = snapshot_stride;
  out.seismograms.nt = spec.nt;
  out.seismograms.dt = spec.dt;
  out.seismograms.traces.assign(receivers.size(),
                                std::vector<double>(spec.nt, 0.0));

  Field2D u(nx, nz);
  Field2D u_prev(nx, nz);
  for (int it = 0; it < spec.nt; ++it) {
    const double t = it * spec.dt;
    u.at(source.ix, source.iz) +=
        ricker(t, source.peak_frequency_hz, source.delay_s) * spec.dt *
        spec.dt;
    step(v2dt2, u, u_prev, inv_dx2);
    std::swap(u, u_prev);
    apply_sponge(u, u_prev, spec.sponge_width, spec.sponge_strength);

    for (std::size_t r = 0; r < receivers.size(); ++r) {
      out.seismograms.traces[r][static_cast<std::size_t>(it)] =
          u.at(receivers[r].ix, receivers[r].iz);
    }
    if (snapshot_stride > 0 && it % snapshot_stride == 0) {
      out.snapshots.push_back(u);
    }
  }
  return out;
}

Field2D adjoint_kernel(const Field2D& velocity, double dx,
                       const SolverSpec& spec,
                       const std::vector<ReceiverSpec>& receivers,
                       const SeismogramSet& adjoint_sources,
                       const ForwardWavefield& forward_field) {
  if (forward_field.stride <= 0 || forward_field.snapshots.empty()) {
    throw ValueError("seismic::adjoint_kernel: forward wavefield required");
  }
  const int nx = velocity.nx();
  const int nz = velocity.nz();
  const Field2D v2dt2 = precompute_v2dt2(velocity, spec);
  const double inv_dx2 = 1.0 / (dx * dx);
  const int stride = forward_field.stride;

  Field2D lambda(nx, nz);
  Field2D lambda_prev(nx, nz);
  Field2D kernel(nx, nz);

  // Back-propagation: step adjoint time tau = T - t forward while reading
  // the residual traces time-reversed.
  for (int it = spec.nt - 1; it >= 0; --it) {
    for (std::size_t r = 0; r < receivers.size(); ++r) {
      lambda.at(receivers[r].ix, receivers[r].iz) +=
          adjoint_sources.traces[r][static_cast<std::size_t>(it)] * spec.dt *
          spec.dt;
    }
    step(v2dt2, lambda, lambda_prev, inv_dx2);
    std::swap(lambda, lambda_prev);
    apply_sponge(lambda, lambda_prev, spec.sponge_width,
                 spec.sponge_strength);

    // Correlate with the forward field's second time derivative at the
    // matching snapshot (interior snapshots only).
    if (it % stride == 0) {
      const std::size_t k = static_cast<std::size_t>(it / stride);
      if (k >= 1 && k + 1 < forward_field.snapshots.size()) {
        const Field2D& sm = forward_field.snapshots[k - 1];
        const Field2D& s0 = forward_field.snapshots[k];
        const Field2D& sp = forward_field.snapshots[k + 1];
        const double inv_sdt2 =
            1.0 / (stride * spec.dt * stride * spec.dt);
        for (int ix = 0; ix < nx; ++ix) {
          for (int iz = 0; iz < nz; ++iz) {
            const double utt =
                (sp.at(ix, iz) - 2.0 * s0.at(ix, iz) + sm.at(ix, iz)) *
                inv_sdt2;
            const double v = velocity.at(ix, iz);
            // Discrete gradient of the scheme u_{t+1} = 2u - u_prev +
            // v^2 dt^2 lap(u) + s dt^2, with the residual injected x dt^2:
            // dchi/dv = (2/v) * sum_t lambda * u_tt * dt. Sign and scale
            // validated against a finite-difference directional derivative
            // (tests/test_seismic.cpp, Adjoint.GradientMatchesFiniteDifference).
            kernel.at(ix, iz) +=
                2.0 / v * lambda.at(ix, iz) * utt * stride * spec.dt;
          }
        }
      }
    }
  }
  return kernel;
}

}  // namespace entk::seismic
