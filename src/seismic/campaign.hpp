// PST encodings of the seismic tomography workflow (paper §III-A, Fig 4,
// and the at-scale forward-simulation campaign of §IV-C-1 / Fig 10).
#pragma once

#include <cstdint>

#include "src/core/pipeline.hpp"
#include "src/seismic/misfit.hpp"
#include "src/seismic/solver.hpp"

namespace entk::seismic {

/// Parameters of the Fig-10 campaign: ensembles of forward simulations,
/// one earthquake per task, each requesting `nodes_per_task` whole nodes.
struct ForwardCampaignSpec {
  int earthquakes = 32;
  int nodes_per_task = 384;     ///< paper: 384 nodes / 6,144 cores each
  double sim_duration_s = 130;  ///< modeled duration of one forward run
  std::uint64_t input_bytes = 40ull * 1000 * 1000;  ///< 40 MB input each
  std::uint64_t output_bytes = 150ull * 1000 * 1000; ///< >= 0.15 GB/seismogram
  bool real_kernel = false;     ///< also run the small real FD solve
  int kernel_nx = 72;           ///< grid for the real kernel, when enabled
  int kernel_nt = 240;
};

/// Build the ensemble: one pipeline with one stage of `earthquakes`
/// concurrent forward-simulation tasks.
PipelinePtr build_forward_campaign(const ForwardCampaignSpec& spec);

/// Parameters of one full inversion iteration (Fig 4): per-earthquake
/// pipelines of forward simulation -> data processing -> adjoint-source
/// creation -> adjoint simulation, followed by kernel summation and a
/// model update. Runs the real 2-D solver inside the tasks.
struct InversionSpec {
  int earthquakes = 4;
  int receivers = 12;
  ModelSpec model;
  SolverSpec solver;
  int iterations = 3;
  /// Gradient-descent step, expressed as the maximum velocity update per
  /// iteration in m/s (the summed kernel is normalized to this scale —
  /// the "optimization routine" of Fig 4 step 5 in its simplest form).
  double max_update_mps = 60.0;
};

/// State shared between inversion tasks (the stand-in for files on the
/// shared filesystem).
struct InversionState {
  Field2D observed_model;   ///< the true earth (generates observed data)
  Field2D current_model;    ///< the model being updated
  std::vector<SourceSpec> sources;
  std::vector<ReceiverSpec> receivers;

  // Per-earthquake intermediate products, indexed by earthquake.
  std::vector<SeismogramSet> observed;
  std::vector<SeismogramSet> synthetic;
  std::vector<SeismogramSet> adjoint_sources;
  std::vector<ForwardWavefield> wavefields;
  std::vector<Field2D> kernels;

  std::vector<double> misfit_history;
  std::mutex mutex;
};

/// Precompute observed data for every earthquake (the field campaign).
std::shared_ptr<InversionState> make_inversion_state(const InversionSpec& spec,
                                                     std::uint64_t seed = 11);

/// Build the per-iteration pipelines: one pipeline per earthquake with the
/// four Fig-4 stages, plus one reduction pipeline (kernel summation +
/// model update) gated by a post-exec hook. Returns pipelines for ONE
/// iteration; callers re-run per iteration (as production does).
std::vector<PipelinePtr> build_inversion_iteration(
    const InversionSpec& spec, std::shared_ptr<InversionState> state);

/// Kernel pre-conditioning (Fig 4, step 4: "Pre-conditioning,
/// Regularization"): mute the singular contributions near sources and
/// receivers, then smooth. Without this, the normalized model update is
/// spent on station-side artifacts instead of earth structure.
Field2D precondition_kernel(const Field2D& kernel,
                            const std::vector<SourceSpec>& sources,
                            const std::vector<ReceiverSpec>& receivers,
                            double mute_radius = 6.0, int smooth_passes = 3,
                            int smooth_radius = 2);

/// Sum per-earthquake kernels, pre-condition, and apply a gradient-descent
/// update to state->current_model. Returns the preconditioned kernel.
Field2D sum_kernels_and_update(const InversionSpec& spec,
                               InversionState& state);

}  // namespace entk::seismic
