#include "src/seismic/misfit.hpp"

#include "src/common/error.hpp"

namespace entk::seismic {

double l2_misfit(const SeismogramSet& synthetic,
                 const SeismogramSet& observed) {
  if (synthetic.traces.size() != observed.traces.size() ||
      synthetic.nt != observed.nt) {
    throw ValueError("l2_misfit: seismogram sets are not conformant");
  }
  double chi = 0.0;
  for (std::size_t r = 0; r < synthetic.traces.size(); ++r) {
    for (int it = 0; it < synthetic.nt; ++it) {
      const double d = synthetic.traces[r][static_cast<std::size_t>(it)] -
                       observed.traces[r][static_cast<std::size_t>(it)];
      chi += d * d;
    }
  }
  return 0.5 * chi * synthetic.dt;
}

SeismogramSet adjoint_source(const SeismogramSet& synthetic,
                             const SeismogramSet& observed) {
  if (synthetic.traces.size() != observed.traces.size() ||
      synthetic.nt != observed.nt) {
    throw ValueError("adjoint_source: seismogram sets are not conformant");
  }
  SeismogramSet out;
  out.nt = synthetic.nt;
  out.dt = synthetic.dt;
  out.traces.resize(synthetic.traces.size());
  for (std::size_t r = 0; r < synthetic.traces.size(); ++r) {
    out.traces[r].resize(static_cast<std::size_t>(synthetic.nt));
    for (int it = 0; it < synthetic.nt; ++it) {
      const auto i = static_cast<std::size_t>(it);
      out.traces[r][i] = synthetic.traces[r][i] - observed.traces[r][i];
    }
  }
  return out;
}

SeismogramSet process(const SeismogramSet& raw, double smoothing) {
  SeismogramSet out = raw;
  for (auto& trace : out.traces) {
    if (trace.empty()) continue;
    double mean = 0.0;
    for (double v : trace) mean += v;
    mean /= static_cast<double>(trace.size());
    double state = 0.0;
    for (double& v : trace) {
      state = smoothing * state + (1.0 - smoothing) * (v - mean);
      v = state;
    }
  }
  return out;
}

}  // namespace entk::seismic
