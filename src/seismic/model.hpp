// Velocity models for the 2-D acoustic stand-in for Specfem.
//
// The paper's seismic use case runs Specfem3D_Globe forward/adjoint
// simulations; we substitute a 2-D acoustic finite-difference solver that
// exercises the same workflow shape (forward simulation -> data processing
// -> adjoint simulation -> kernel summation -> model update) with real
// numerics at laptop scale. A "true" layered-plus-anomaly earth generates
// the observed data; inversion starts from the smooth background.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace entk::seismic {

/// Dense 2-D field with (nx, nz) grid points, row-major in z-fast order.
class Field2D {
 public:
  Field2D() = default;
  Field2D(int nx, int nz, double fill = 0.0)
      : nx_(nx), nz_(nz), data_(static_cast<std::size_t>(nx) * nz, fill) {}

  int nx() const { return nx_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  double& at(int ix, int iz) {
    return data_[static_cast<std::size_t>(ix) * nz_ + iz];
  }
  double at(int ix, int iz) const {
    return data_[static_cast<std::size_t>(ix) * nz_ + iz];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Element-wise a += s * b (used by optimization updates).
  void axpy(double s, const Field2D& b);

  double min() const;
  double max() const;
  double l2_norm() const;

 private:
  int nx_ = 0;
  int nz_ = 0;
  std::vector<double> data_;
};

struct ModelSpec {
  int nx = 160;
  int nz = 160;
  double dx = 25.0;          ///< meters
  double v_background = 2500.0;
  double v_gradient = 6.0;    ///< m/s per grid row (velocity grows with depth)
};

/// Smooth background model (the inversion starting point).
Field2D background_model(const ModelSpec& spec);

/// "True earth": the background plus `anomalies` Gaussian velocity
/// perturbations (deterministic per seed) — what the forward simulations
/// of the observed data use.
Field2D true_model(const ModelSpec& spec, int anomalies = 3,
                   double amplitude = 250.0, std::uint64_t seed = 11);

}  // namespace entk::seismic
