#include "src/seismic/model.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace entk::seismic {

void Field2D::axpy(double s, const Field2D& b) {
  const std::size_t n = std::min(data_.size(), b.data_.size());
  for (std::size_t i = 0; i < n; ++i) data_[i] += s * b.data_[i];
}

double Field2D::min() const {
  double m = data_.empty() ? 0.0 : data_[0];
  for (double v : data_) m = std::min(m, v);
  return m;
}

double Field2D::max() const {
  double m = data_.empty() ? 0.0 : data_[0];
  for (double v : data_) m = std::max(m, v);
  return m;
}

double Field2D::l2_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Field2D background_model(const ModelSpec& spec) {
  Field2D m(spec.nx, spec.nz);
  for (int ix = 0; ix < spec.nx; ++ix) {
    for (int iz = 0; iz < spec.nz; ++iz) {
      m.at(ix, iz) = spec.v_background + spec.v_gradient * iz;
    }
  }
  return m;
}

Field2D true_model(const ModelSpec& spec, int anomalies, double amplitude,
                   std::uint64_t seed) {
  Field2D m = background_model(spec);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(0.2, 0.8);
  std::uniform_real_distribution<double> uz(0.25, 0.75);
  std::uniform_real_distribution<double> usign(0.0, 1.0);
  std::uniform_real_distribution<double> uwidth(0.05, 0.12);
  for (int a = 0; a < anomalies; ++a) {
    const double cx = ux(rng) * spec.nx;
    const double cz = uz(rng) * spec.nz;
    const double w = uwidth(rng) * spec.nx;
    const double amp = (usign(rng) < 0.5 ? -1.0 : 1.0) * amplitude;
    for (int ix = 0; ix < spec.nx; ++ix) {
      for (int iz = 0; iz < spec.nz; ++iz) {
        const double dx = ix - cx;
        const double dz = iz - cz;
        m.at(ix, iz) += amp * std::exp(-(dx * dx + dz * dz) / (2 * w * w));
      }
    }
  }
  return m;
}

}  // namespace entk::seismic
