// Waveform misfit, data processing and adjoint-source creation
// (paper Fig 4, step 2): the pieces between forward and adjoint runs.
#pragma once

#include "src/seismic/solver.hpp"

namespace entk::seismic {

/// 0.5 * sum over receivers and samples of (syn - obs)^2 * dt.
double l2_misfit(const SeismogramSet& synthetic, const SeismogramSet& observed);

/// Adjoint source for the L2 waveform misfit: residual = syn - obs.
SeismogramSet adjoint_source(const SeismogramSet& synthetic,
                             const SeismogramSet& observed);

/// Simple data processing: demean + one-pole low-pass smoothing of each
/// trace (stands in for the windowing/filtering production pipelines do).
SeismogramSet process(const SeismogramSet& raw, double smoothing = 0.3);

}  // namespace entk::seismic
