// 2-D acoustic finite-difference wave solver (forward + adjoint).
//
// Second-order in time, fourth-order in space, with a sponge absorbing
// layer. Sources inject a Ricker wavelet; receivers record the pressure
// field, producing seismograms. The adjoint pass back-propagates residual
// seismograms and accumulates the zero-lag cross-correlation sensitivity
// kernel used by adjoint tomography (paper Fig 4, steps 1 and 3).
#pragma once

#include <vector>

#include "src/seismic/model.hpp"

namespace entk::seismic {

struct SourceSpec {
  int ix = 0;
  int iz = 0;
  double peak_frequency_hz = 8.0;
  double delay_s = 0.15;
};

struct ReceiverSpec {
  int ix = 0;
  int iz = 0;
};

struct SolverSpec {
  int nt = 900;       ///< time steps
  double dt = 2.5e-3; ///< seconds; must satisfy CFL for the model
  int sponge_width = 16;
  double sponge_strength = 0.015;
};

/// One trace per receiver, nt samples each.
struct SeismogramSet {
  int nt = 0;
  double dt = 0.0;
  std::vector<std::vector<double>> traces;

  double l2_norm() const;
};

/// Check the CFL stability condition for (model, spec).
bool cfl_stable(const Field2D& velocity, double dx, const SolverSpec& spec);

/// Ricker wavelet value at time t.
double ricker(double t, double peak_frequency_hz, double delay_s);

/// Forward-propagate and record seismograms at the receivers.
SeismogramSet forward(const Field2D& velocity, double dx,
                      const SolverSpec& spec, const SourceSpec& source,
                      const std::vector<ReceiverSpec>& receivers);

/// Forward pass that also returns the wavefield history (every `stride`
/// steps) for kernel computation.
struct ForwardWavefield {
  SeismogramSet seismograms;
  int stride = 1;
  std::vector<Field2D> snapshots;  ///< u at steps 0, stride, 2*stride, ...
};

ForwardWavefield forward_with_wavefield(
    const Field2D& velocity, double dx, const SolverSpec& spec,
    const SourceSpec& source, const std::vector<ReceiverSpec>& receivers,
    int snapshot_stride = 4);

/// Back-propagate adjoint sources (residual traces injected at receiver
/// positions, time-reversed) and accumulate the cross-correlation kernel
/// dchi/dv against the stored forward wavefield.
Field2D adjoint_kernel(const Field2D& velocity, double dx,
                       const SolverSpec& spec,
                       const std::vector<ReceiverSpec>& receivers,
                       const SeismogramSet& adjoint_sources,
                       const ForwardWavefield& forward_field);

}  // namespace entk::seismic
