#include "src/anen/anen.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace entk::anen {

std::vector<double> forecast_stddevs(const ForecastArchive& archive, int x,
                                     int y) {
  const DomainSpec& spec = archive.spec();
  std::vector<double> out(static_cast<std::size_t>(spec.variables), 1.0);
  for (int v = 0; v < spec.variables; ++v) {
    double sum = 0.0, sum2 = 0.0;
    for (int t = 0; t < spec.history_days; ++t) {
      const double f = archive.forecast(v, t, x, y);
      sum += f;
      sum2 += f * f;
    }
    const double n = static_cast<double>(spec.history_days);
    const double var = std::max(1e-12, sum2 / n - (sum / n) * (sum / n));
    out[static_cast<std::size_t>(v)] = std::sqrt(var);
  }
  return out;
}

double similarity(const ForecastArchive& archive, const AnEnConfig& config,
                  const std::vector<double>& stddevs, int target_day, int t,
                  int x, int y) {
  const DomainSpec& spec = archive.spec();
  double total = 0.0;
  for (int v = 0; v < spec.variables; ++v) {
    double acc = 0.0;
    for (int dt = -config.half_window; dt <= config.half_window; ++dt) {
      const double d = archive.forecast(v, t + dt, x, y) -
                       archive.forecast(v, target_day + dt, x, y);
      acc += d * d;
    }
    total += std::sqrt(acc) / stddevs[static_cast<std::size_t>(v)];
  }
  return total;
}

AnalogPrediction compute_analogs(const ForecastArchive& archive,
                                 const AnEnConfig& config, int target_day,
                                 int x, int y) {
  if (config.analogs <= 0) {
    throw ValueError("compute_analogs: analogs must be positive");
  }
  const int first = config.half_window;
  const int last = target_day - 1 - config.half_window;
  if (last < first) {
    throw ValueError("compute_analogs: archive too short for target day");
  }
  const std::vector<double> stddevs = forecast_stddevs(archive, x, y);

  std::vector<std::pair<double, int>> scored;
  scored.reserve(static_cast<std::size_t>(last - first + 1));
  for (int t = first; t <= last; ++t) {
    scored.emplace_back(
        similarity(archive, config, stddevs, target_day, t, x, y), t);
  }
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(config.analogs),
                            scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end());

  AnalogPrediction out;
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const int day = scored[i].second;
    out.analog_days.push_back(day);
    const double obs = archive.observation(day, x, y);
    sum += obs;
    sum2 += obs * obs;
  }
  const double n = static_cast<double>(k);
  out.value = sum / n;
  out.spread = std::sqrt(std::max(0.0, sum2 / n - out.value * out.value));
  return out;
}

std::vector<double> analog_ensemble_values(const ForecastArchive& archive,
                                           const AnalogPrediction& prediction,
                                           int x, int y) {
  std::vector<double> out;
  out.reserve(prediction.analog_days.size());
  for (int day : prediction.analog_days) {
    out.push_back(archive.observation(day, x, y));
  }
  return out;
}

}  // namespace entk::anen
