#include "src/anen/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/error.hpp"

namespace entk::anen {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw ValueError("percentile: empty sample");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - std::floor(rank);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

BoxStats box_stats(const std::vector<double>& values) {
  if (values.empty()) throw ValueError("box_stats: empty sample");
  BoxStats s;
  s.n = values.size();
  s.min = percentile(values, 0);
  s.q1 = percentile(values, 25);
  s.median = percentile(values, 50);
  s.q3 = percentile(values, 75);
  s.max = percentile(values, 100);
  double sum = 0.0, sum2 = 0.0;
  for (double v : values) {
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(values.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum2 / n - s.mean * s.mean));
  return s;
}

std::string to_string(const BoxStats& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "min %.4f  q1 %.4f  med %.4f  q3 %.4f  max %.4f  "
                "(mean %.4f +- %.4f, n=%zu)",
                s.min, s.q1, s.median, s.q3, s.max, s.mean, s.stddev, s.n);
  return buf;
}

}  // namespace entk::anen
