#include "src/anen/aua.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk::anen {

std::vector<double> truth_field(const DomainSpec& domain, double day) {
  std::vector<double> out(static_cast<std::size_t>(domain.width) *
                          domain.height);
  for (int y = 0; y < domain.height; ++y) {
    for (int x = 0; x < domain.width; ++x) {
      out[static_cast<std::size_t>(y) * domain.width + x] =
          truth_value(domain, day, x, y);
    }
  }
  return out;
}

AuaRunner::AuaRunner(AuaSpec spec)
    : spec_(std::move(spec)),
      archive_(spec_.domain),
      grid_(spec_.domain.width, spec_.domain.height),
      rng_(spec_.seed),
      target_day_(spec_.target_day < 0 ? spec_.domain.history_days
                                       : spec_.target_day),
      truth_(truth_field(spec_.domain, target_day_)) {}

std::vector<GridPoint> AuaRunner::select_random(int n) {
  std::uniform_int_distribution<int> ux(0, spec_.domain.width - 1);
  std::uniform_int_distribution<int> uy(0, spec_.domain.height - 1);
  std::vector<GridPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  int guard = n * 50;
  while (static_cast<int>(out.size()) < n && guard-- > 0) {
    GridPoint p{ux(rng_), uy(rng_), 0.0};
    if (grid_.occupied(p.x, p.y)) continue;
    bool dup = false;
    for (const GridPoint& q : out) {
      if (q.x == p.x && q.y == p.y) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(p);
  }
  return out;
}

std::vector<GridPoint> AuaRunner::select_adaptive(int n) {
  if (last_field_.empty()) return select_random(n);
  const int w = spec_.domain.width;
  const int h = spec_.domain.height;
  std::vector<double> grad =
      UnstructuredGrid::gradient_magnitude(last_field_, w, h);

  // Sampling weights: gradient magnitude plus a small uniform floor so
  // unexplored smooth regions are never starved.
  double total = 0.0;
  double gmax = 0.0;
  for (double g : grad) gmax = std::max(gmax, g);
  const double floor_w = gmax > 0 ? 0.02 * gmax : 1.0;
  for (double& g : grad) {
    g += floor_w;
    total += g;
  }

  std::uniform_real_distribution<double> u(0.0, total);
  std::vector<GridPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  int guard = n * 60;
  while (static_cast<int>(out.size()) < n && guard-- > 0) {
    // Inverse-CDF sampling by linear scan over coarse rows, then cells.
    double r = u(rng_);
    std::size_t idx = 0;
    for (; idx < grad.size(); ++idx) {
      r -= grad[idx];
      if (r <= 0) break;
    }
    if (idx >= grad.size()) idx = grad.size() - 1;
    GridPoint p{static_cast<int>(idx % static_cast<std::size_t>(w)),
                static_cast<int>(idx / static_cast<std::size_t>(w)), 0.0};
    if (grid_.occupied(p.x, p.y)) continue;
    bool dup = false;
    for (const GridPoint& q : out) {
      if (q.x == p.x && q.y == p.y) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(p);
  }
  return out;
}

void AuaRunner::compute_points(std::vector<GridPoint>& points) const {
  for (GridPoint& p : points) {
    p.value =
        compute_analogs(archive_, spec_.anen, target_day_, p.x, p.y).value;
  }
}

std::vector<std::vector<GridPoint>> AuaRunner::partition(
    const std::vector<GridPoint>& points, int subregions) {
  std::vector<GridPoint> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const GridPoint& a, const GridPoint& b) {
              return a.x != b.x ? a.x < b.x : a.y < b.y;
            });
  std::vector<std::vector<GridPoint>> out(
      static_cast<std::size_t>(std::max(1, subregions)));
  const std::size_t per =
      (sorted.size() + out.size() - 1) / std::max<std::size_t>(1, out.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out[std::min(i / std::max<std::size_t>(1, per), out.size() - 1)]
        .push_back(sorted[i]);
  }
  return out;
}

double AuaRunner::aggregate_and_error() {
  last_field_ = grid_.interpolate(spec_.interpolation_k);
  const double err = rmse(last_field_, truth_);
  rmse_history_.push_back(err);
  return err;
}

bool AuaRunner::converged() const {
  if (static_cast<int>(grid_.point_count()) >= spec_.budget) return true;
  if (spec_.error_threshold > 0.0 && rmse_history_.size() >= 2) {
    const double improvement =
        rmse_history_[rmse_history_.size() - 2] - rmse_history_.back();
    if (improvement < spec_.error_threshold) return true;
  }
  return false;
}

AuaResult AuaRunner::result() const {
  AuaResult r;
  r.points = grid_.points();
  r.final_field = last_field_;
  r.rmse_history = rmse_history_;
  r.final_rmse = rmse_history_.empty() ? -1.0 : rmse_history_.back();
  r.final_mae = last_field_.empty() ? -1.0 : mae(last_field_, truth_);
  r.iterations = static_cast<int>(rmse_history_.size());
  return r;
}

namespace {

AuaResult run_method(const AuaSpec& spec, bool adaptive) {
  AuaRunner runner(spec);
  std::vector<GridPoint> batch = runner.select_random(spec.initial_points);
  runner.compute_points(batch);
  runner.grid().add_points(batch);
  runner.aggregate_and_error();
  while (!runner.converged()) {
    const int remaining =
        spec.budget - static_cast<int>(runner.grid().point_count());
    const int n = std::min(spec.points_per_iteration, remaining);
    batch = adaptive ? runner.select_adaptive(n) : runner.select_random(n);
    if (batch.empty()) break;
    runner.compute_points(batch);
    runner.grid().add_points(batch);
    runner.aggregate_and_error();
  }
  return runner.result();
}

}  // namespace

AuaResult run_adaptive(const AuaSpec& spec) { return run_method(spec, true); }
AuaResult run_random(const AuaSpec& spec) { return run_method(spec, false); }

// --------------------------------------------------------- PST encoding

namespace {

/// Shared mutable iteration state for the pipeline tasks.
struct AuaState {
  std::shared_ptr<AuaRunner> runner;
  bool adaptive = true;
  std::vector<std::vector<GridPoint>> batches;  ///< per-subregion, computed
  std::mutex mutex;
};

/// One iteration's task batches: select the next locations (on the
/// controller thread — the workflow-decision thread, so the RNG sequence
/// matches the direct loop exactly), fan the AnEn computation out across
/// subregion tasks, and close with the aggregate+error task.
std::vector<TaskPtr> make_compute_tasks(const std::shared_ptr<AuaState>& st) {
  const AuaSpec& spec = st->runner->spec();
  std::vector<GridPoint> batch;
  {
    const int remaining =
        spec.budget - static_cast<int>(st->runner->grid().point_count());
    const int n = std::min(spec.points_per_iteration, std::max(0, remaining));
    batch = st->adaptive ? st->runner->select_adaptive(n)
                         : st->runner->select_random(n);
  }
  auto parts = AuaRunner::partition(batch, spec.subregions);
  st->batches.assign(parts.size(), {});
  std::vector<TaskPtr> tasks;
  tasks.reserve(parts.size());
  for (std::size_t m = 0; m < parts.size(); ++m) {
    auto t = std::make_shared<Task>("compute-anen-sub" + std::to_string(m));
    t->duration_s = 2.0;
    auto points = std::make_shared<std::vector<GridPoint>>(std::move(parts[m]));
    t->function = [st, points, m] {
      st->runner->compute_points(*points);
      std::lock_guard<std::mutex> lock(st->mutex);
      st->batches[m] = std::move(*points);
      return 0;
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TaskPtr make_aggregate_task(const std::shared_ptr<AuaState>& st) {
  auto t = std::make_shared<Task>("aggregate");
  t->duration_s = 1.0;
  t->function = [st] {
    std::lock_guard<std::mutex> lock(st->mutex);
    for (const auto& batch : st->batches) {
      st->runner->grid().add_points(batch);
    }
    st->batches.clear();
    st->runner->aggregate_and_error();
    return 0;
  };
  return t;
}

}  // namespace

PipelinePtr build_aua_pipeline(std::shared_ptr<AuaRunner> runner,
                               bool adaptive,
                               const ensemble::ControllerPtr& controller) {
  if (!controller) {
    throw ValueError("aua", "controller", "a non-null ensemble controller");
  }
  auto st = std::make_shared<AuaState>();
  st->runner = std::move(runner);
  st->adaptive = adaptive;

  auto pipeline = std::make_shared<Pipeline>(
      adaptive ? "aua-adaptive" : "aua-random");
  // The controller extends the pipeline asynchronously, so it idles
  // held-open between iterations instead of completing.
  pipeline->hold_open();

  // Stage 1: initialize AnEn parameters (Fig 5 step 1).
  auto init = std::make_shared<Stage>("initialize");
  auto t_init = std::make_shared<Task>("init-anen-params");
  t_init->duration_s = 1.0;
  t_init->function = [] { return 0; };
  init->add_task(t_init);
  pipeline->add_stage(init);

  // Stage 2: pre-process forecasts + generate the unstructured grid
  // (Fig 5 step 2): the initial random locations, computed and added.
  auto pre = std::make_shared<Stage>("preprocess-and-grid");
  auto t_pre = std::make_shared<Task>("preprocess");
  t_pre->duration_s = 2.0;
  t_pre->function = [st] {
    const AuaSpec& spec = st->runner->spec();
    std::vector<GridPoint> batch =
        st->runner->select_random(spec.initial_points);
    st->runner->compute_points(batch);
    std::lock_guard<std::mutex> lock(st->mutex);
    st->runner->grid().add_points(batch);
    st->runner->aggregate_and_error();
    return 0;
  };
  pre->add_task(t_pre);
  pipeline->add_stage(pre);

  // The iterative step (Fig 5 step 3) as one rule: after preprocessing and
  // after every aggregate, either append the next compute/aggregate pair
  // or — the decision diamond — finish the pipeline when converged.
  const std::string puid = pipeline->uid();
  ensemble::Rule iterate;
  iterate.name = std::string("aua-iterate-") +
                 (adaptive ? "adaptive" : "random");
  iterate.when = [puid](const ensemble::TriggerContext& c) {
    return c.event && c.event->kind == ensemble::Event::Kind::Stage &&
           c.event->done() && c.event->pipeline == puid &&
           (c.event->name == "preprocess-and-grid" ||
            c.event->name == "aggregate-and-error");
  };
  iterate.then = [st, puid](ensemble::Ops& ops) {
    std::lock_guard<std::mutex> lock(st->mutex);
    if (st->runner->converged()) {
      ops.finish(puid);
      return;
    }
    ops.submit_tasks(puid, "compute-anen-subregions", make_compute_tasks(st));
    ops.submit_tasks(puid, "aggregate-and-error", {make_aggregate_task(st)});
  };
  controller->add_rule(std::move(iterate));

  // Post-processing (Fig 5 step 4) lives in the caller: the final
  // interpolation already happened in the last aggregate task.
  return pipeline;
}

}  // namespace entk::anen
