#include "src/anen/verification.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace entk::anen {

double crps(const std::vector<double>& ensemble, double observation) {
  if (ensemble.empty()) throw ValueError("crps: empty ensemble");
  const double n = static_cast<double>(ensemble.size());
  double term1 = 0.0;
  for (double x : ensemble) term1 += std::abs(x - observation);
  term1 /= n;
  double term2 = 0.0;
  for (double a : ensemble) {
    for (double b : ensemble) term2 += std::abs(a - b);
  }
  term2 /= 2.0 * n * n;
  return term1 - term2;
}

double mean_crps(const std::vector<std::vector<double>>& ensembles,
                 const std::vector<double>& observations) {
  if (ensembles.size() != observations.size() || ensembles.empty()) {
    throw ValueError("mean_crps: non-conformant inputs");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    total += crps(ensembles[i], observations[i]);
  }
  return total / static_cast<double>(ensembles.size());
}

std::vector<int> rank_histogram(
    const std::vector<std::vector<double>>& ensembles,
    const std::vector<double>& observations) {
  if (ensembles.size() != observations.size() || ensembles.empty()) {
    throw ValueError("rank_histogram: non-conformant inputs");
  }
  const std::size_t members = ensembles[0].size();
  std::vector<int> counts(members + 1, 0);
  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    if (ensembles[i].size() != members) {
      throw ValueError("rank_histogram: ragged ensembles");
    }
    std::vector<double> sorted = ensembles[i];
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = 0;
    while (rank < members && observations[i] > sorted[rank]) ++rank;
    ++counts[rank];
  }
  return counts;
}

SpreadSkill spread_skill(const std::vector<std::vector<double>>& ensembles,
                         const std::vector<double>& observations) {
  if (ensembles.size() != observations.size() || ensembles.empty()) {
    throw ValueError("spread_skill: non-conformant inputs");
  }
  double spread_sum = 0.0;
  double err2_sum = 0.0;
  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    const std::vector<double>& e = ensembles[i];
    if (e.empty()) throw ValueError("spread_skill: empty ensemble");
    double mean = 0.0;
    for (double x : e) mean += x;
    mean /= static_cast<double>(e.size());
    double var = 0.0;
    for (double x : e) var += (x - mean) * (x - mean);
    // Unbiased ensemble variance; 0 for single-member ensembles.
    var = e.size() > 1 ? var / static_cast<double>(e.size() - 1) : 0.0;
    spread_sum += std::sqrt(var);
    const double err = mean - observations[i];
    err2_sum += err * err;
  }
  SpreadSkill out;
  const double n = static_cast<double>(ensembles.size());
  out.mean_spread = spread_sum / n;
  out.rmse = std::sqrt(err2_sum / n);
  out.ratio = out.rmse > 0 ? out.mean_spread / out.rmse : 0.0;
  return out;
}

}  // namespace entk::anen
