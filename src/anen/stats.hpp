// Small statistics helpers for the experiment harnesses (box plots,
// summaries over repeated runs).
#pragma once

#include <string>
#include <vector>

namespace entk::anen {

struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

/// Linear-interpolated percentile (p in [0, 100]) of a sample.
double percentile(std::vector<double> values, double p);

BoxStats box_stats(const std::vector<double>& values);

/// "min q1 median q3 max (mean +- sd, n=N)" one-liner for reports.
std::string to_string(const BoxStats& s);

}  // namespace entk::anen
