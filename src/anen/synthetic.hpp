// Synthetic forecast/analysis archive standing in for the NAM/WRF data
// (paper §III-B: 13 variables, years 2015–2016, NCAR archive).
//
// We cannot redistribute NAM data, so we generate a deterministic synthetic
// truth field — smooth multi-scale structure drifting over time with
// region-dependent gradients — plus a forecast archive derived from the
// truth with per-variable bias and autocorrelated noise. The AnEn method
// only relies on "similar past forecasts have similar errors", which the
// construction preserves; prediction error is exactly measurable because
// the truth is known everywhere.
#pragma once

#include <cstdint>
#include <vector>

namespace entk::anen {

struct DomainSpec {
  int width = 256;       ///< grid cells (paper domain: 262,972 pixels)
  int height = 256;
  int history_days = 90; ///< training archive length
  int variables = 5;     ///< forecast variables (paper: 13)
  std::uint64_t seed = 2015;
};

/// Value of the truth ("analysis") field for day `t` at cell (x, y).
/// Deterministic function of (spec.seed, t, x, y); day is continuous so
/// lead times interpolate naturally.
double truth_value(const DomainSpec& spec, double t, int x, int y);

/// A forecast archive: forecasts[v][t] is variable v's forecast field for
/// day t, stored row-major (y * width + x).
class ForecastArchive {
 public:
  explicit ForecastArchive(const DomainSpec& spec);

  const DomainSpec& spec() const { return spec_; }

  /// Forecast of variable `v` for day `t` at cell (x, y).
  double forecast(int v, int t, int x, int y) const;

  /// Observed (analysis) value of the target variable for day t.
  double observation(int t, int x, int y) const;

  int days() const { return spec_.history_days; }

 private:
  DomainSpec spec_;
  // Per-variable bias/noise parameters (deterministic from seed).
  std::vector<double> bias_;
  std::vector<double> noise_amp_;
  std::vector<double> phase_;
};

}  // namespace entk::anen
