// Probabilistic-forecast verification metrics.
//
// The AnEn method (paper §III-B) produces *probabilistic* forecasts: the
// analog ensemble is a predictive distribution, not just its mean. These
// are the standard metrics used to verify such forecasts:
//   - CRPS: the continuous ranked probability score of an ensemble
//     against the verifying observation (lower is better; reduces to MAE
//     for a single-member ensemble);
//   - rank histogram: where observations fall within the sorted ensemble
//     (flat = statistically calibrated ensemble);
//   - spread/skill: ensemble spread vs RMSE of the ensemble mean
//     (ratio ~1 for a reliable ensemble).
#pragma once

#include <vector>

namespace entk::anen {

/// CRPS of one ensemble vs one observation, using the fair sample form:
///   CRPS = mean|x_i - y| - (1 / (2 n^2)) * sum_ij |x_i - x_j|.
double crps(const std::vector<double>& ensemble, double observation);

/// Mean CRPS over a set of (ensemble, observation) cases.
double mean_crps(const std::vector<std::vector<double>>& ensembles,
                 const std::vector<double>& observations);

/// Rank histogram: counts[r] = number of observations falling between
/// sorted ensemble members r-1 and r (n+1 bins for n members).
std::vector<int> rank_histogram(
    const std::vector<std::vector<double>>& ensembles,
    const std::vector<double>& observations);

struct SpreadSkill {
  double mean_spread = 0.0;  ///< average ensemble standard deviation
  double rmse = 0.0;         ///< RMSE of the ensemble mean
  double ratio = 0.0;        ///< spread / rmse (~1 = reliable)
};

SpreadSkill spread_skill(const std::vector<std::vector<double>>& ensembles,
                         const std::vector<double>& observations);

}  // namespace entk::anen
