// Analog Ensemble core (paper §III-B, refs [10][13]).
//
// For a prediction location and target day, find the k historical days
// whose multi-variable forecasts are most similar to the target forecast
// (Delle Monache similarity metric: per-variable standard-deviation-
// normalized L2 distance over a short temporal window) and predict with
// the ensemble of observations associated with those days.
#pragma once

#include <vector>

#include "src/anen/synthetic.hpp"

namespace entk::anen {

struct AnEnConfig {
  int analogs = 9;        ///< ensemble members (k)
  int half_window = 1;    ///< temporal window ±w days around the target
  int target_variable = 0;
};

struct AnalogPrediction {
  double value = 0.0;              ///< ensemble mean
  double spread = 0.0;             ///< ensemble standard deviation
  std::vector<int> analog_days;    ///< selected historical days
};

/// Per-variable forecast standard deviation at (x, y) over the archive
/// (used to normalize the similarity metric).
std::vector<double> forecast_stddevs(const ForecastArchive& archive, int x,
                                     int y);

/// Similarity (lower = more similar) between historical day `t` and the
/// target day, at cell (x, y). `stddevs` from forecast_stddevs.
double similarity(const ForecastArchive& archive, const AnEnConfig& config,
                  const std::vector<double>& stddevs, int target_day, int t,
                  int x, int y);

/// Compute the analog-ensemble prediction for `target_day` at (x, y),
/// searching the archive days [half_window, target_day - 1 - half_window].
AnalogPrediction compute_analogs(const ForecastArchive& archive,
                                 const AnEnConfig& config, int target_day,
                                 int x, int y);

/// The ensemble member values behind a prediction: the observations
/// associated with the selected analog days (used by the probabilistic
/// verification metrics in verification.hpp).
std::vector<double> analog_ensemble_values(const ForecastArchive& archive,
                                           const AnalogPrediction& prediction,
                                           int x, int y);

}  // namespace entk::anen
