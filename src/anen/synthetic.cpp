#include "src/anen/synthetic.hpp"

#include <cmath>

namespace entk::anen {
namespace {

/// SplitMix64: cheap deterministic per-coordinate noise.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform in [-1, 1] from a coordinate tuple.
double hash_noise(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c, std::uint64_t d) {
  std::uint64_t h = splitmix(seed ^ splitmix(a ^ splitmix(b ^ splitmix(c ^ d))));
  return (static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0)) * 2.0 -
         1.0;
}

}  // namespace

double truth_value(const DomainSpec& spec, double t, int x, int y) {
  const double W = spec.width;
  const double H = spec.height;
  const double fx = x / W;
  const double fy = y / H;

  // Large-scale smooth pattern drifting with time.
  double v = 10.0 + 6.0 * std::sin(2.0 * M_PI * (fx + 0.03 * t)) *
                        std::cos(2.0 * M_PI * (fy - 0.02 * t));

  // Two drifting warm/cold blobs.
  const double cx1 = 0.3 + 0.1 * std::sin(0.21 * t);
  const double cy1 = 0.4 + 0.1 * std::cos(0.17 * t);
  const double d1 = (fx - cx1) * (fx - cx1) + (fy - cy1) * (fy - cy1);
  v += 8.0 * std::exp(-d1 / 0.02);
  const double cx2 = 0.7 + 0.08 * std::cos(0.13 * t);
  const double cy2 = 0.65 + 0.09 * std::sin(0.19 * t);
  const double d2 = (fx - cx2) * (fx - cx2) + (fy - cy2) * (fy - cy2);
  v -= 6.0 * std::exp(-d2 / 0.03);

  // A sharp curved front: the region of drastic gradient change where the
  // AUA algorithm should concentrate its analog locations (paper §III-B:
  // "the highest resolution ... is required only at specific regions,
  // where drastic gradient changes occur").
  const double front = fy - (0.55 + 0.12 * std::sin(3.0 * fx + 0.11 * t));
  v += 9.0 * std::tanh(front / 0.015);

  // Seasonal cycle.
  v += 3.0 * std::sin(2.0 * M_PI * t / 365.25);
  return v;
}

ForecastArchive::ForecastArchive(const DomainSpec& spec) : spec_(spec) {
  bias_.resize(static_cast<std::size_t>(spec_.variables));
  noise_amp_.resize(static_cast<std::size_t>(spec_.variables));
  phase_.resize(static_cast<std::size_t>(spec_.variables));
  for (int v = 0; v < spec_.variables; ++v) {
    const auto i = static_cast<std::size_t>(v);
    bias_[i] = 0.4 * hash_noise(spec_.seed, 1, static_cast<std::uint64_t>(v), 0, 0);
    noise_amp_[i] =
        0.6 + 0.3 * std::abs(hash_noise(spec_.seed, 2, static_cast<std::uint64_t>(v), 0, 0));
    phase_[i] = 0.15 * static_cast<double>(v);
  }
}

double ForecastArchive::forecast(int v, int t, int x, int y) const {
  const auto i = static_cast<std::size_t>(v);
  // Each variable is a phase-shifted view of the same atmosphere plus a
  // variable-specific bias and autocorrelation-free measurement noise.
  const double base = truth_value(spec_, t + phase_[i], x, y);
  const double noise =
      noise_amp_[i] * hash_noise(spec_.seed, static_cast<std::uint64_t>(v) + 10,
                                 static_cast<std::uint64_t>(t),
                                 static_cast<std::uint64_t>(x),
                                 static_cast<std::uint64_t>(y));
  return base + bias_[i] + noise;
}

double ForecastArchive::observation(int t, int x, int y) const {
  return truth_value(spec_, t, x, y);
}

}  // namespace entk::anen
