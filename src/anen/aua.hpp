// Adaptive Unstructured Analog (AUA) algorithm (paper §III-B, Fig 5) and
// the status-quo random-selection baseline (paper §IV-C-2, Fig 11).
//
// AUA iteratively chooses WHERE to compute analogs: starting from a random
// set of locations, each iteration interpolates the current predictions,
// finds the regions of drastic gradient change, and concentrates the next
// batch of analog computations there — so high resolution is spent only
// where the field demands it. The baseline adds random locations instead.
#pragma once

#include <memory>
#include <random>

#include "src/anen/anen.hpp"
#include "src/anen/grid.hpp"
#include "src/core/pipeline.hpp"
#include "src/ensemble/controller.hpp"

namespace entk::anen {

struct AuaSpec {
  DomainSpec domain;
  AnEnConfig anen;
  int target_day = -1;           ///< -1 = domain.history_days
  int initial_points = 200;
  int points_per_iteration = 160;
  int budget = 1800;             ///< total analog locations (paper: 1,800)
  double error_threshold = 0.0;  ///< stop early when RMSE improvement/iter
                                 ///< drops below this (0 = run to budget)
  int interpolation_k = 8;
  int subregions = 8;            ///< EnTK tasks per compute stage
  std::uint64_t seed = 7;
};

struct AuaResult {
  std::vector<GridPoint> points;
  std::vector<double> final_field;
  std::vector<double> rmse_history;  ///< after each iteration
  double final_rmse = 0.0;
  double final_mae = 0.0;
  int iterations = 0;
};

/// Truth field of the target variable for `day`, full raster.
std::vector<double> truth_field(const DomainSpec& domain, double day);

/// Shared machinery for both selection strategies. Drives the archive,
/// the point set and the error accounting; selection differs per method.
class AuaRunner {
 public:
  explicit AuaRunner(AuaSpec spec);

  const AuaSpec& spec() const { return spec_; }
  const ForecastArchive& archive() const { return archive_; }
  UnstructuredGrid& grid() { return grid_; }

  /// Random unoccupied locations (both methods start this way).
  std::vector<GridPoint> select_random(int n);

  /// Locations sampled proportionally to the gradient magnitude of the
  /// current interpolated field (the AUA refinement criterion).
  std::vector<GridPoint> select_adaptive(int n);

  /// Run the AnEn at each location (fills point values); this is the
  /// computational payload of the "Compute AnEn for subregion" tasks.
  void compute_points(std::vector<GridPoint>& points) const;

  /// Partition points into contiguous x-slab subregions for task fan-out.
  static std::vector<std::vector<GridPoint>> partition(
      const std::vector<GridPoint>& points, int subregions);

  /// Interpolate current points to the full raster and record the RMSE
  /// against the truth. Returns the RMSE.
  double aggregate_and_error();

  /// True when the iteration loop should stop (budget exhausted or error
  /// improvement below threshold — Fig 5's decision diamond).
  bool converged() const;

  AuaResult result() const;
  int target_day() const { return target_day_; }

 private:
  AuaSpec spec_;
  ForecastArchive archive_;
  UnstructuredGrid grid_;
  std::mt19937_64 rng_;
  int target_day_;
  std::vector<double> truth_;
  std::vector<double> last_field_;
  std::vector<double> rmse_history_;
};

/// Direct (in-process) runs of the two methods; used by tests and as the
/// reference the EnTK-driven runs must match.
AuaResult run_adaptive(const AuaSpec& spec);
AuaResult run_random(const AuaSpec& spec);

/// PST encoding of Fig 5 on the ensemble rule API: initialize ->
/// preprocess -> [compute-subregions -> aggregate+error]* . The returned
/// pipeline is held open; a rule registered on `controller` consumes each
/// aggregate stage's completion event, appends the next compute/aggregate
/// pair (Fig 5's decision diamond) and finishes the pipeline once
/// converged. Attach the controller to the AppManagerConfig before run();
/// the runner must outlive the pipeline.
PipelinePtr build_aua_pipeline(std::shared_ptr<AuaRunner> runner,
                               bool adaptive,
                               const ensemble::ControllerPtr& controller);

}  // namespace entk::anen
