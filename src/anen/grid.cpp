#include "src/anen/grid.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace entk::anen {

UnstructuredGrid::UnstructuredGrid(int width, int height)
    : width_(width),
      height_(height),
      bin_size_(std::max(8, width / 16)),
      bins_x_((width + bin_size_ - 1) / bin_size_),
      bins_y_((height + bin_size_ - 1) / bin_size_),
      bins_(static_cast<std::size_t>(bins_x_) * bins_y_),
      occupancy_(static_cast<std::size_t>(width) * height, 0) {
  if (width <= 0 || height <= 0) {
    throw ValueError("UnstructuredGrid: positive dimensions required");
  }
}

int UnstructuredGrid::bin_of(int x, int y) const {
  const int bx = std::clamp(x / bin_size_, 0, bins_x_ - 1);
  const int by = std::clamp(y / bin_size_, 0, bins_y_ - 1);
  return by * bins_x_ + bx;
}

void UnstructuredGrid::add_point(GridPoint p) {
  p.x = std::clamp(p.x, 0, width_ - 1);
  p.y = std::clamp(p.y, 0, height_ - 1);
  const std::size_t idx =
      static_cast<std::size_t>(p.y) * width_ + static_cast<std::size_t>(p.x);
  occupancy_[idx] = 1;
  bins_[static_cast<std::size_t>(bin_of(p.x, p.y))].push_back(points_.size());
  points_.push_back(p);
}

void UnstructuredGrid::add_points(const std::vector<GridPoint>& pts) {
  for (const GridPoint& p : pts) add_point(p);
}

bool UnstructuredGrid::occupied(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return false;
  return occupancy_[static_cast<std::size_t>(y) * width_ +
                    static_cast<std::size_t>(x)] != 0;
}

std::vector<std::size_t> UnstructuredGrid::neighbors(int x, int y,
                                                     std::size_t k) const {
  // Expand rings of bins until at least k candidates are gathered, then
  // keep the k nearest by exact distance.
  std::vector<std::size_t> candidates;
  const int bx = std::clamp(x / bin_size_, 0, bins_x_ - 1);
  const int by = std::clamp(y / bin_size_, 0, bins_y_ - 1);
  const int max_ring = std::max(bins_x_, bins_y_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    const std::size_t before = candidates.size();
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const int nbx = bx + dx;
        const int nby = by + dy;
        if (nbx < 0 || nby < 0 || nbx >= bins_x_ || nby >= bins_y_) continue;
        const auto& bin = bins_[static_cast<std::size_t>(nby) * bins_x_ + nbx];
        candidates.insert(candidates.end(), bin.begin(), bin.end());
      }
    }
    // One extra ring after reaching k, so near-boundary bins cannot hide a
    // closer point in the next ring.
    if (before >= k && candidates.size() >= k) break;
  }
  if (candidates.size() > k) {
    // Tie-break equal distances by coordinates so the selected neighbor
    // set is independent of point insertion order (batch-wise EnTK runs
    // must reproduce the direct in-process runs bit-for-bit).
    std::partial_sort(
        candidates.begin(), candidates.begin() + static_cast<long>(k),
        candidates.end(), [&](std::size_t a, std::size_t b) {
          const int da = (points_[a].x - x) * (points_[a].x - x) +
                         (points_[a].y - y) * (points_[a].y - y);
          const int db = (points_[b].x - x) * (points_[b].x - x) +
                         (points_[b].y - y) * (points_[b].y - y);
          if (da != db) return da < db;
          if (points_[a].x != points_[b].x) return points_[a].x < points_[b].x;
          return points_[a].y < points_[b].y;
        });
    candidates.resize(k);
  }
  return candidates;
}

std::vector<double> UnstructuredGrid::interpolate(int k, double power) const {
  if (points_.empty()) {
    throw ValueError("UnstructuredGrid::interpolate: no points");
  }
  std::vector<double> out(static_cast<std::size_t>(width_) * height_, 0.0);
  const auto kk = static_cast<std::size_t>(std::max(1, k));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const std::vector<std::size_t> nn = neighbors(x, y, kk);
      double wsum = 0.0, vsum = 0.0;
      bool exact = false;
      for (std::size_t idx : nn) {
        const GridPoint& p = points_[idx];
        const double d2 = static_cast<double>((p.x - x) * (p.x - x) +
                                              (p.y - y) * (p.y - y));
        if (d2 == 0.0) {
          out[static_cast<std::size_t>(y) * width_ + x] = p.value;
          exact = true;
          break;
        }
        const double w = 1.0 / std::pow(d2, power / 2.0);
        wsum += w;
        vsum += w * p.value;
      }
      if (!exact) {
        out[static_cast<std::size_t>(y) * width_ + x] =
            wsum > 0 ? vsum / wsum : 0.0;
      }
    }
  }
  return out;
}

std::vector<double> UnstructuredGrid::gradient_magnitude(
    const std::vector<double>& field, int width, int height) {
  std::vector<double> out(field.size(), 0.0);
  for (int y = 1; y < height - 1; ++y) {
    for (int x = 1; x < width - 1; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * width + x;
      const double gx = (field[i + 1] - field[i - 1]) * 0.5;
      const double gy = (field[i + static_cast<std::size_t>(width)] -
                         field[i - static_cast<std::size_t>(width)]) *
                        0.5;
      out[i] = std::sqrt(gx * gx + gy * gy);
    }
  }
  return out;
}

double rmse(const std::vector<double>& field,
            const std::vector<double>& reference) {
  if (field.size() != reference.size() || field.empty()) {
    throw ValueError("rmse: non-conformant fields");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double d = field[i] - reference[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(field.size()));
}

double mae(const std::vector<double>& field,
           const std::vector<double>& reference) {
  if (field.size() != reference.size() || field.empty()) {
    throw ValueError("mae: non-conformant fields");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    s += std::abs(field[i] - reference[i]);
  }
  return s / static_cast<double>(field.size());
}

}  // namespace entk::anen
