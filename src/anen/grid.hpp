// Unstructured grid of analog locations + interpolation to the full
// domain (paper §III-B: "interpolates the analogs using an unstructured
// grid ... avoiding computing analogs at every available location").
#pragma once

#include <cstdint>
#include <vector>

namespace entk::anen {

struct GridPoint {
  int x = 0;
  int y = 0;
  double value = 0.0;
};

/// Inverse-distance-weighted interpolation from scattered points onto the
/// full width x height raster, using the k nearest points found through a
/// uniform spatial hash (O(cells * k) in practice).
class UnstructuredGrid {
 public:
  UnstructuredGrid(int width, int height);

  void add_point(GridPoint p);
  void add_points(const std::vector<GridPoint>& pts);
  std::size_t point_count() const { return points_.size(); }
  const std::vector<GridPoint>& points() const { return points_; }

  /// True when some point already occupies (x, y).
  bool occupied(int x, int y) const;

  /// Interpolate onto the full raster (row-major y*width+x).
  /// k: neighbors used; power: IDW exponent.
  std::vector<double> interpolate(int k = 8, double power = 2.0) const;

  /// Magnitude of the spatial gradient of `field` (central differences),
  /// same layout. Used by the AUA refinement criterion.
  static std::vector<double> gradient_magnitude(const std::vector<double>& field,
                                                int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  std::vector<std::size_t> neighbors(int x, int y, std::size_t k) const;
  int bin_of(int x, int y) const;

  const int width_;
  const int height_;
  const int bin_size_;
  const int bins_x_;
  const int bins_y_;
  std::vector<GridPoint> points_;
  std::vector<std::vector<std::size_t>> bins_;
  std::vector<std::uint8_t> occupancy_;
};

/// Root-mean-square error between a field and a reference.
double rmse(const std::vector<double>& field,
            const std::vector<double>& reference);

/// Mean absolute error.
double mae(const std::vector<double>& field,
           const std::vector<double>& reference);

}  // namespace entk::anen
