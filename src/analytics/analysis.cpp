#include "src/analytics/analysis.hpp"

#include <algorithm>
#include <cstdio>

namespace entk::analytics {

double TaskTimeline::queue_wait() const {
  if (received < 0 || exec_start < received) return 0.0;
  double wait = exec_start - received;
  if (stage_in_start >= 0 && stage_in_stop >= stage_in_start) {
    wait -= stage_in_stop - stage_in_start;
  }
  return std::max(0.0, wait);
}

RunAnalysis RunAnalysis::from_profiler(const Profiler& profiler) {
  RunAnalysis out;
  std::map<std::string, TaskTimeline> by_uid;
  for (const ProfileEvent& e : profiler.events()) {
    if (e.virtual_s < 0 || e.uid.empty()) continue;
    // Only the agent's per-unit events describe task timelines.
    if (e.event.rfind("unit_", 0) != 0) continue;
    TaskTimeline& t = by_uid[e.uid];
    t.uid = e.uid;
    const double v = e.virtual_s;
    if (e.event == "unit_received") t.received = v;
    else if (e.event == "unit_stage_in_start") t.stage_in_start = v;
    else if (e.event == "unit_stage_in_stop") t.stage_in_stop = v;
    else if (e.event == "unit_exec_start") t.exec_start = v;
    else if (e.event == "unit_exec_stop") t.exec_end = v;
    else if (e.event == "unit_stage_out_start") t.stage_out_start = v;
    else if (e.event == "unit_stage_out_stop") t.stage_out_stop = v;
    else if (e.event == "unit_done") t.done = v;
  }
  out.tasks_.reserve(by_uid.size());
  for (auto& [uid, t] : by_uid) {
    (void)uid;
    out.tasks_.push_back(std::move(t));
  }
  return out;
}

double RunAnalysis::makespan() const {
  double first = -1, last = -1;
  for (const TaskTimeline& t : tasks_) {
    if (t.exec_start < 0) continue;
    if (first < 0 || t.exec_start < first) first = t.exec_start;
    if (t.exec_end > last) last = t.exec_end;
  }
  return first >= 0 && last >= first ? last - first : 0.0;
}

std::vector<ConcurrencyPoint> RunAnalysis::concurrency_curve() const {
  std::vector<std::pair<double, int>> deltas;
  for (const TaskTimeline& t : tasks_) {
    if (t.exec_start < 0 || t.exec_end < t.exec_start) continue;
    deltas.emplace_back(t.exec_start, +1);
    deltas.emplace_back(t.exec_end, -1);
  }
  std::sort(deltas.begin(), deltas.end());
  std::vector<ConcurrencyPoint> curve;
  int executing = 0;
  for (const auto& [t, d] : deltas) {
    executing += d;
    if (!curve.empty() && curve.back().t == t) {
      curve.back().executing = executing;
    } else {
      curve.push_back({t, executing});
    }
  }
  return curve;
}

int RunAnalysis::peak_concurrency() const {
  int peak = 0;
  for (const ConcurrencyPoint& p : concurrency_curve()) {
    peak = std::max(peak, p.executing);
  }
  return peak;
}

double RunAnalysis::core_utilization(
    int total_cores, const std::map<std::string, int>& cores_of,
    int default_cores) const {
  const double span = makespan();
  if (span <= 0 || total_cores <= 0) return 0.0;
  double busy = 0.0;
  for (const TaskTimeline& t : tasks_) {
    const auto it = cores_of.find(t.uid);
    const int cores = it != cores_of.end() ? it->second : default_cores;
    busy += t.exec_duration() * cores;
  }
  return busy / (static_cast<double>(total_cores) * span);
}

double RunAnalysis::mean_queue_wait() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const TaskTimeline& t : tasks_) {
    if (t.exec_start < 0) continue;
    sum += t.queue_wait();
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double RunAnalysis::total_staging() const {
  double total = 0.0;
  for (const TaskTimeline& t : tasks_) {
    if (t.stage_in_start >= 0 && t.stage_in_stop >= t.stage_in_start) {
      total += t.stage_in_stop - t.stage_in_start;
    }
    if (t.stage_out_start >= 0 && t.stage_out_stop >= t.stage_out_start) {
      total += t.stage_out_stop - t.stage_out_start;
    }
  }
  return total;
}

std::string RunAnalysis::summary(int total_cores) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  tasks executed        %10zu\n"
                "  makespan              %10.2f s\n"
                "  peak concurrency      %10d\n"
                "  core utilization      %9.1f %% (of %d cores)\n"
                "  mean queue wait       %10.2f s\n"
                "  total staging         %10.2f s\n",
                task_count(), makespan(), peak_concurrency(),
                100.0 * core_utilization(total_cores), total_cores,
                mean_queue_wait(), total_staging());
  return buf;
}

}  // namespace entk::analytics
