// Post-mortem run analysis (the paper's figures are produced from profiler
// traces with exactly this kind of tooling — RADICAL-Analytics in the
// reference stack).
//
// RunAnalysis digests a Profiler trace into per-task timelines and derives
// the quantities the paper reasons about: task concurrency over time,
// resource utilization across the ensemble execution (the §II-A "full
// resource utilization" requirement), makespan, and per-phase waits.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/profiler.hpp"

namespace entk::analytics {

/// Virtual-time milestones of one task as seen by the RTS agent.
struct TaskTimeline {
  std::string uid;
  double received = -1;
  double stage_in_start = -1;
  double stage_in_stop = -1;
  double exec_start = -1;
  double exec_end = -1;
  double stage_out_start = -1;
  double stage_out_stop = -1;
  double done = -1;

  double exec_duration() const {
    return exec_start >= 0 && exec_end >= exec_start ? exec_end - exec_start
                                                     : 0.0;
  }
  /// Wait between arriving at the agent and starting execution, staging
  /// excluded (scheduling + dispatch + core wait).
  double queue_wait() const;
};

/// One step of the concurrency curve: from `t` onward (until the next
/// entry), `executing` tasks run simultaneously.
struct ConcurrencyPoint {
  double t = 0.0;
  int executing = 0;
};

class RunAnalysis {
 public:
  /// Build from a profiler trace (uses the agent's virtual-time events).
  static RunAnalysis from_profiler(const Profiler& profiler);

  const std::vector<TaskTimeline>& tasks() const { return tasks_; }
  std::size_t task_count() const { return tasks_.size(); }

  /// First exec start -> last exec end (0 when nothing executed).
  double makespan() const;

  /// Piecewise-constant number of concurrently executing tasks.
  std::vector<ConcurrencyPoint> concurrency_curve() const;
  int peak_concurrency() const;

  /// Busy core-time / (total_cores x makespan). `cores_of` maps task uid
  /// to its core count; missing uids default to `default_cores`.
  double core_utilization(int total_cores,
                          const std::map<std::string, int>& cores_of = {},
                          int default_cores = 1) const;

  /// Mean queue wait (see TaskTimeline::queue_wait) over tasks that ran.
  double mean_queue_wait() const;

  /// Total staging time (sum over tasks, in and out).
  double total_staging() const;

  /// Aligned multi-line summary for reports.
  std::string summary(int total_cores) const;

 private:
  std::vector<TaskTimeline> tasks_;
};

}  // namespace entk::analytics
