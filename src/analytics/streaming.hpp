// Streaming per-group statistics for adaptive ensembles.
//
// The ensemble Controller (src/ensemble) folds every completed-task result
// value into one of these as it arrives; rules and generators then branch on
// mean/median/MAD without ever re-scanning history. The estimators are
// *exact* — observe() keeps the sample set in sorted order — so incremental
// results are bit-identical to batch recomputation regardless of completion
// order (tested property-style in tests/test_analytics.cpp). That exactness
// is what lets the decision journal replay deterministically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace entk::analytics {

/// Exact incremental mean / median / MAD over a stream of doubles.
/// Not thread-safe; owners serialize access (the Controller's event loop is
/// single-threaded by construction).
class StreamingStats {
 public:
  void observe(double x) {
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
    sum_ += x;
    min_ = count() == 1 ? x : std::min(min_, x);
    max_ = count() == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return sorted_.size(); }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double mean() const {
    return sorted_.empty() ? 0.0 : sum_ / static_cast<double>(sorted_.size());
  }

  double median() const { return median_of(sorted_); }

  /// Median absolute deviation about the median (robust spread; what
  /// ensemble-python's evaluators threshold on).
  double mad() const {
    if (sorted_.empty()) return 0.0;
    const double med = median();
    std::vector<double> dev;
    dev.reserve(sorted_.size());
    for (const double x : sorted_) dev.push_back(std::fabs(x - med));
    std::sort(dev.begin(), dev.end());
    return median_of(dev);
  }

 private:
  static double median_of(const std::vector<double>& sorted) {
    if (sorted.empty()) return 0.0;
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }

  std::vector<double> sorted_;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace entk::analytics
