// Generator: the producer side of the generator/evaluator loop.
//
// A Generator turns the results so far (ResultView) into the next batch of
// parameterized tasks. The Controller drives it libEnsemble-style against
// a held-open pipeline: after every stage of that pipeline completes, the
// generator is asked for the next batch; an empty batch means converged —
// the controller releases the hold and the pipeline completes.
//
// make_task() is the conventional task shape: the body receives a mutable
// json object, writes its numeric outputs into it, and those outputs land
// in metadata["ensemble"]["values"] of the completion event — which is
// exactly what ResultView aggregates and the stat triggers test.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/task.hpp"
#include "src/ensemble/result_view.hpp"
#include "src/ensemble/rule.hpp"

namespace entk::ensemble {

class Generator {
 public:
  virtual ~Generator() = default;

  /// Produce the next task batch given the results so far. Runs on the
  /// controller thread. An empty batch signals convergence.
  virtual std::vector<TaskPtr> next(ResultView& results, Ops& ops) = 0;
};

using GeneratorPtr = std::shared_ptr<Generator>;

/// Lambda-backed generator.
class FnGenerator : public Generator {
 public:
  using Fn = std::function<std::vector<TaskPtr>(ResultView&, Ops&)>;
  explicit FnGenerator(Fn fn) : fn_(std::move(fn)) {}
  std::vector<TaskPtr> next(ResultView& results, Ops& ops) override {
    return fn_(results, ops);
  }

 private:
  Fn fn_;
};

inline GeneratorPtr make_generator(FnGenerator::Fn fn) {
  return std::make_shared<FnGenerator>(std::move(fn));
}

/// Build a group-tagged task whose body publishes numeric values into the
/// completion event. The body runs in the executor; the task captures
/// itself weakly, so the write-back is a no-op if the task object is gone.
inline TaskPtr make_task(std::string name, std::string group,
                         std::function<int(json::Value& values)> body,
                         double duration_s = 1.0) {
  auto task = std::make_shared<Task>(std::move(name));
  task->duration_s = duration_s;
  task->metadata["ensemble"]["group"] = std::move(group);
  std::weak_ptr<Task> weak = task;
  task->function = [weak, body = std::move(body)]() {
    json::Value values;
    const int rc = body(values);
    if (TaskPtr t = weak.lock()) {
      t->metadata["ensemble"]["values"] = std::move(values);
    }
    return rc;
  };
  return task;
}

}  // namespace entk::ensemble
