#include "src/ensemble/result_view.hpp"

#include <cmath>

namespace entk::ensemble {

void ResultView::ingest(const Event& event) {
  if (event.kind != Event::Kind::Task) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Group& g = groups_[event.group()];
  if (event.done()) {
    ++g.done;
    ++total_done_;
    g.events.push_back(event);
    const json::Value& values = event.values();
    if (values.is_object()) {
      for (const auto& [key, value] : values.as_object()) {
        if (!value.is_number()) continue;
        analytics::StreamingStats& s = g.stats[key];
        s.observe(value.as_double());
        export_gauges_locked(event.group(), key, s);
      }
    }
  } else if (event.failed()) {
    ++g.failed;
    ++total_failed_;
  } else if (event.canceled()) {
    ++g.canceled;
  }
}

std::size_t ResultView::done_count(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.done;
}

std::size_t ResultView::failed_count(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.failed;
}

std::size_t ResultView::canceled_count(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.canceled;
}

std::size_t ResultView::total_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_done_;
}

std::size_t ResultView::total_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_failed_;
}

double ResultView::stat(const std::string& group, const std::string& key,
                        Stat which, double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto git = groups_.find(group);
  if (git == groups_.end()) return fallback;
  const auto sit = git->second.stats.find(key);
  if (sit == git->second.stats.end() || sit->second.count() == 0) {
    return fallback;
  }
  const analytics::StreamingStats& s = sit->second;
  switch (which) {
    case Stat::Count: return static_cast<double>(s.count());
    case Stat::Min: return s.min();
    case Stat::Max: return s.max();
    case Stat::Mean: return s.mean();
    case Stat::Median: return s.median();
    case Stat::Mad: return s.mad();
    case Stat::Sum: return s.sum();
  }
  return fallback;
}

std::size_t ResultView::sample_count(const std::string& group,
                                     const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto git = groups_.find(group);
  if (git == groups_.end()) return 0;
  const auto sit = git->second.stats.find(key);
  return sit == git->second.stats.end() ? 0 : sit->second.count();
}

std::vector<Event> ResultView::completed(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = groups_.find(group);
  return it == groups_.end() ? std::vector<Event>{} : it->second.events;
}

std::optional<Event> ResultView::last_with_value(
    const std::string& group, const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  const std::vector<Event>& events = it->second.events;
  for (auto rit = events.rbegin(); rit != events.rend(); ++rit) {
    const json::Value& values = rit->values();
    if (values.is_object() && values.contains(key)) return *rit;
  }
  return std::nullopt;
}

void ResultView::set_metrics(obs::MetricsPtr metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = std::move(metrics);
}

void ResultView::export_gauges_locked(const std::string& group,
                                      const std::string& key,
                                      const analytics::StreamingStats& s) {
  if (!metrics_) return;
  const std::string base =
      "ensemble." + (group.empty() ? "untagged" : group) + "." + key;
  const auto milli = [](double v) {
    return static_cast<std::int64_t>(std::llround(v * 1000.0));
  };
  metrics_->gauge(base + ".count").set(static_cast<std::int64_t>(s.count()));
  metrics_->gauge(base + ".mean_milli").set(milli(s.mean()));
  metrics_->gauge(base + ".median_milli").set(milli(s.median()));
  metrics_->gauge(base + ".mad_milli").set(milli(s.mad()));
}

}  // namespace entk::ensemble
