#include "src/ensemble/controller.hpp"

#include <utility>

#include "src/common/error.hpp"
#include "src/common/log.hpp"
#include "src/common/states.hpp"

namespace entk::ensemble {

json::Value Decision::to_json() const {
  json::Value v;
  v["t_s"] = t_s;
  v["rule"] = rule;
  v["trigger"] = trigger;
  json::Value acts = json::Array{};
  for (const std::string& a : actions) acts.push_back(a);
  v["actions"] = std::move(acts);
  return v;
}

Controller::Controller(ControllerConfig config)
    : Component(config.name, std::make_shared<Profiler>()),
      config_(std::move(config)) {
  if (!config_.journal_path.empty()) {
    journal_.open(config_.journal_path, std::ios::app);
    if (!journal_) {
      throw EnTKError(config_.name + ": cannot open decision journal " +
                      config_.journal_path);
    }
  }
}

Controller::~Controller() = default;

std::shared_ptr<Controller> Controller::create(ControllerConfig config) {
  return std::shared_ptr<Controller>(new Controller(std::move(config)));
}

void Controller::add_rule(Rule rule) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (rule.name.empty()) {
    rule.name = "rule-" + std::to_string(rules_.size());
  }
  rules_.push_back(std::move(rule));
}

void Controller::run_generator(const PipelinePtr& pipeline,
                               GeneratorPtr generator,
                               std::string stage_prefix) {
  if (!pipeline) throw ValueError(name(), "pipeline", "non-null pipeline");
  if (!generator) throw ValueError(name(), "generator", "non-null generator");
  pipeline->hold_open();

  // Seed batch, appended directly: run() registers pre-run stages itself.
  std::vector<TaskPtr> seed = generator->next(results_, *this);
  if (!seed.empty()) {
    auto stage = std::make_shared<Stage>(stage_prefix + "-0");
    for (TaskPtr& t : seed) stage->add_task(std::move(t));
    pipeline->add_stage(stage);
  }

  // The loop: after every stage of this pipeline completes, ask the
  // generator for the next batch; empty = converged -> finish.
  const std::string puid = pipeline->uid();
  auto iteration = std::make_shared<int>(1);
  Rule r;
  r.name = "generator." + stage_prefix + "." + puid;
  r.when = [puid](const TriggerContext& c) {
    return c.event && c.event->kind == Event::Kind::Stage &&
           c.event->done() && c.event->pipeline == puid;
  };
  r.then = [generator = std::move(generator), puid,
            prefix = std::move(stage_prefix), iteration](Ops& ops) {
    std::vector<TaskPtr> batch = generator->next(ops.results(), ops);
    if (batch.empty()) {
      ops.finish(puid);
      return;
    }
    ops.submit_tasks(puid, prefix + "-" + std::to_string((*iteration)++),
                     std::move(batch));
  };
  add_rule(std::move(r));
}

void Controller::attach(AppManagerConfig& config) {
  auto self = shared_from_this();
  config.adaptive_factory =
      [self](const AdaptiveWiring& wiring) -> std::shared_ptr<Component> {
    self->wire(wiring);
    return self;
  };
}

void Controller::wire(const AdaptiveWiring& wiring) {
  if (!wiring.broker || !wiring.registry || !wiring.wfprocessor ||
      !wiring.clock) {
    throw ValueError(name(), "wiring", "broker, registry, wfprocessor, clock");
  }
  wiring_ = wiring;
  wired_ = true;
  profiler_ = wiring.profiler ? wiring.profiler : profiler_;
  results_.set_metrics(wiring.metrics);
  start_s_ = wiring_.clock->now();
}

void Controller::on_start() {
  if (!wired_) {
    throw StateError(name() +
                     ": not attached — call attach(config) before run()");
  }
  if (metrics()) {
    events_metric_ = &metrics()->counter("ensemble.events");
    fires_metric_ = &metrics()->counter("ensemble.rule_fires");
  }
  add_worker("rules", [this] { rules_loop(); });
}

void Controller::on_reattach() {
  // Events the dead worker consumed but never acked go back on the queue;
  // rules see at most one replayed event per crash.
  const std::size_t requeued =
      wiring_.broker->requeue_unacked(wiring_.events_queue);
  if (requeued > 0) {
    ENTK_WARN(name()) << "restart: requeued " << requeued
                      << " unacked event(s)";
  }
}

void Controller::rules_loop() {
  while (!stop_requested()) {
    beat();
    std::vector<mq::Delivery> deliveries = wiring_.broker->get_batch(
        wiring_.events_queue, 64, config_.poll_timeout_s);
    for (mq::Delivery& d : deliveries) {
      if (stop_requested()) break;
      std::optional<Event> event;
      try {
        event = Event::parse(*d.message.payload());
      } catch (const std::exception&) {
        event = std::nullopt;  // garbage on the stream: skip, don't fault
      }
      if (event) {
        ENTK_DEBUG(name()) << "event " << to_string(event->kind) << " "
                           << event->uid << " " << event->outcome;
        if (events_metric_) events_metric_->add(1);
        results_.ingest(*event);
        evaluate(&*event);
      }
      wiring_.broker->ack(wiring_.events_queue, d.delivery_tag);
    }
    // Timer tick: triggers that do not need an event advance here.
    evaluate(nullptr);
  }
}

void Controller::evaluate(const Event* event) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const TriggerContext ctx{event, results_, now_s()};
  for (Rule& rule : rules_) {
    if (rule.max_fires >= 0 && rule.fires >= rule.max_fires) continue;
    if (!rule.when || !rule.then) continue;
    bool fired = false;
    try {
      fired = rule.when(ctx);
    } catch (const std::exception& e) {
      throw EnTKError(name() + ": rule " + rule.name +
                      " trigger threw: " + e.what());
    }
    if (!fired) continue;
    ++rule.fires;
    fire(rule, event);
  }
}

void Controller::fire(Rule& rule, const Event* event) {
  Decision decision;
  decision.t_s = now_s();
  decision.rule = rule.name;
  decision.trigger =
      event ? std::string(to_string(event->kind)) + ":" + event->uid + ":" +
                  event->outcome
            : "timer";
  profiler_->record(name(), "rule_fired", rule.name);
  if (fires_metric_) fires_metric_->add(1);

  active_ = &decision;
  try {
    rule.then(*this);
  } catch (const std::exception& e) {
    decision.actions.push_back("error: " + std::string(e.what()));
    active_ = nullptr;
    if (journal_.is_open()) {
      journal_ << decision.to_json().dump() << "\n" << std::flush;
    }
    decisions_.push_back(std::move(decision));
    throw EnTKError(name() + ": rule " + rule.name +
                    " action threw: " + e.what());
  }
  active_ = nullptr;
  if (journal_.is_open()) {
    journal_ << decision.to_json().dump() << "\n" << std::flush;
  }
  decisions_.push_back(std::move(decision));
}

void Controller::record_op(const std::string& description) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (active_) active_->actions.push_back(description);
}

void Controller::require_wired(const char* op) const {
  if (!wired_) {
    throw StateError(name() + ": " + op + " before attach()/run()");
  }
}

// --- Ops -------------------------------------------------------------------

double Controller::now_s() const {
  if (!wired_) return 0.0;
  return wiring_.clock->now() - start_s_;
}

json::Value Controller::param(const std::string& key) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!params_.is_object() || !params_.contains(key)) return json::Value();
  return params_.at(key);
}

void Controller::set_param(const std::string& key, json::Value value) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  record_op("set_param:" + key);
  params_[key] = std::move(value);
}

void Controller::submit_tasks(const std::string& pipeline_uid,
                              const std::string& stage_name,
                              std::vector<TaskPtr> tasks) {
  require_wired("submit_tasks");
  if (tasks.empty()) return;
  PipelinePtr pipeline = wiring_.registry->pipeline(pipeline_uid);
  if (!pipeline) {
    throw ValueError(name(), "pipeline_uid", "a registered pipeline");
  }
  auto stage = std::make_shared<Stage>(stage_name);
  for (TaskPtr& t : tasks) stage->add_task(std::move(t));
  record_op("submit_tasks:" + stage_name + ":" +
            std::to_string(stage->task_count()));
  ENTK_DEBUG(name()) << "submit " << stage->uid() << " (" << stage_name
                     << ", " << stage->task_count() << " tasks) to "
                     << pipeline_uid;
  // Register before the stage becomes reachable from the enqueue walk, so
  // the Synchronizer can resolve every uid the moment scheduling starts.
  wiring_.registry->add_stage(stage);
  pipeline->add_stage(std::move(stage));
  wiring_.wfprocessor->notify_work();
}

void Controller::add_stage(const std::string& pipeline_uid, StagePtr stage) {
  require_wired("add_stage");
  if (!stage) throw ValueError(name(), "stage", "non-null stage");
  PipelinePtr pipeline = wiring_.registry->pipeline(pipeline_uid);
  if (!pipeline) {
    throw ValueError(name(), "pipeline_uid", "a registered pipeline");
  }
  record_op("add_stage:" + stage->name);
  wiring_.registry->add_stage(stage);
  pipeline->add_stage(std::move(stage));
  wiring_.wfprocessor->notify_work();
}

std::size_t Controller::cancel_group(const std::string& group) {
  require_wired("cancel_group");
  std::vector<std::string> uids;
  for (const PipelinePtr& pipeline : wiring_.registry->pipelines()) {
    for (const StagePtr& stage : pipeline->stages()) {
      for (const TaskPtr& task : stage->tasks()) {
        if (is_final(task->state())) continue;
        if (!task->metadata.is_object() ||
            !task->metadata.contains("ensemble")) {
          continue;
        }
        if (task->metadata.at("ensemble").get_string("group", "") != group) {
          continue;
        }
        uids.push_back(task->uid());
      }
    }
  }
  const std::size_t canceled = wiring_.wfprocessor->cancel_tasks(uids);
  record_op("cancel_group:" + group + ":" + std::to_string(canceled));
  ENTK_INFO(name()) << "cancel_group '" << group << "': " << canceled << "/"
                    << uids.size() << " task(s) canceled";
  return canceled;
}

bool Controller::resize_pilot(int delta_nodes, const std::string& reason) {
  require_wired("resize_pilot");
  bool ok = false;
  if (wiring_.resize) {
    rts::ResizeRequest request;
    request.delta_nodes = delta_nodes;
    request.reason = reason;
    ok = wiring_.resize(request);
  }
  record_op("resize_pilot:" + std::to_string(delta_nodes) + ":" +
            (ok ? "ok" : "rejected"));
  profiler_->record(name(), ok ? "resize_applied" : "resize_rejected",
                    reason);
  return ok;
}

void Controller::finish(const std::string& pipeline_uid) {
  require_wired("finish");
  record_op("finish:" + (pipeline_uid.empty() ? "all" : pipeline_uid));
  for (const PipelinePtr& pipeline : wiring_.registry->pipelines()) {
    if (!pipeline_uid.empty() && pipeline->uid() != pipeline_uid) continue;
    pipeline->release_hold();
  }
  wiring_.wfprocessor->notify_work();
}

// --- introspection ---------------------------------------------------------

std::vector<Decision> Controller::decisions() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return decisions_;
}

std::size_t Controller::decision_count() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return decisions_.size();
}

json::Value Controller::params() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return params_;
}

}  // namespace entk::ensemble
