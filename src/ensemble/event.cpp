#include "src/ensemble/event.hpp"

namespace entk::ensemble {

namespace {
const json::Value kNull;
}  // namespace

std::string Event::group() const {
  if (!metadata.is_object() || !metadata.contains("ensemble")) return "";
  return metadata.at("ensemble").get_string("group", "");
}

const json::Value& Event::values() const {
  if (!metadata.is_object() || !metadata.contains("ensemble")) return kNull;
  const json::Value& ens = metadata.at("ensemble");
  if (!ens.is_object() || !ens.contains("values")) return kNull;
  return ens.at("values");
}

std::optional<Event> Event::parse(const json::Value& payload) {
  if (!payload.is_object()) return std::nullopt;
  const std::string kind = payload.get_string("event", "");
  Event ev;
  if (kind == "task") {
    ev.kind = Kind::Task;
  } else if (kind == "stage") {
    ev.kind = Kind::Stage;
  } else if (kind == "pipeline") {
    ev.kind = Kind::Pipeline;
  } else {
    return std::nullopt;
  }
  ev.uid = payload.get_string("uid", "");
  ev.name = payload.get_string("name", "");
  ev.outcome = payload.get_string("outcome", "");
  ev.stage = payload.get_string("stage", "");
  ev.pipeline = payload.get_string("pipeline", "");
  ev.exit_code = static_cast<int>(payload.get_int("exit_code", 0));
  if (payload.contains("metadata")) ev.metadata = payload.at("metadata");
  if (ev.uid.empty() || ev.outcome.empty()) return std::nullopt;
  return ev;
}

const char* to_string(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::Task: return "task";
    case Event::Kind::Stage: return "stage";
    case Event::Kind::Pipeline: return "pipeline";
  }
  return "?";
}

}  // namespace entk::ensemble
