#include "src/ensemble/rules_json.hpp"

#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace entk::ensemble {

namespace {

Stat stat_from_string(const std::string& s) {
  if (s == "count") return Stat::Count;
  if (s == "min") return Stat::Min;
  if (s == "max") return Stat::Max;
  if (s == "mean") return Stat::Mean;
  if (s == "median") return Stat::Median;
  if (s == "mad") return Stat::Mad;
  if (s == "sum") return Stat::Sum;
  throw ValueError("rules", "stat",
                   "count | min | max | mean | median | mad | sum");
}

Trigger trigger_from_json(const json::Value& t) {
  if (!t.is_object()) throw ValueError("rules", "trigger", "an object");
  const std::string type = t.get_string("type", "");
  const std::string match = t.get_string("match", "");
  if (type == "task_done") return trigger::task_done(match);
  if (type == "task_failed") return trigger::task_failed(match);
  if (type == "stage_done") return trigger::stage_done(match);
  if (type == "pipeline_done") return trigger::pipeline_done(match);
  if (type == "group_done") {
    return trigger::group_done_at_least(
        t.get_string("group", ""),
        static_cast<std::size_t>(t.get_int("count", 1)));
  }
  if (type == "timer") {
    return trigger::every(t.get_double("interval_s", 1.0));
  }
  if (type == "after") {
    return trigger::after(t.get_double("delay_s", 0.0));
  }
  if (type == "stat_below" || type == "stat_above") {
    const std::string group = t.get_string("group", "");
    const std::string key = t.get_string("key", "");
    if (key.empty()) throw ValueError("rules", "key", "a value key");
    const Stat stat = stat_from_string(t.get_string("stat", "mean"));
    const double threshold = t.get_double("threshold", 0.0);
    const auto min_count =
        static_cast<std::size_t>(t.get_int("min_count", 1));
    return type == "stat_below"
               ? trigger::stat_below(group, key, stat, threshold, min_count)
               : trigger::stat_above(group, key, stat, threshold, min_count);
  }
  throw ValueError("rules", "trigger.type",
                   "task_done | task_failed | stage_done | pipeline_done | "
                   "group_done | timer | after | stat_below | stat_above");
}

Action action_from_json(const json::Value& a) {
  if (!a.is_object()) throw ValueError("rules", "action", "an object");
  const std::string type = a.get_string("type", "");
  if (type == "cancel_group") {
    const std::string group = a.get_string("group", "");
    if (group.empty()) throw ValueError("rules", "group", "a group tag");
    return action::cancel_group(group);
  }
  if (type == "resize_pilot") {
    const int delta = static_cast<int>(a.get_int("delta_nodes", 0));
    if (delta == 0) {
      throw ValueError("rules", "delta_nodes", "a non-zero node delta");
    }
    return action::resize_pilot(delta, a.get_string("reason", "rule"));
  }
  if (type == "finish") {
    return action::finish(a.get_string("pipeline", ""));
  }
  if (type == "set_param") {
    const std::string key = a.get_string("key", "");
    if (key.empty()) throw ValueError("rules", "key", "a parameter key");
    return action::set_param(key, a.contains("value") ? a.at("value")
                                                      : json::Value());
  }
  throw ValueError("rules", "action.type",
                   "cancel_group | resize_pilot | finish | set_param");
}

}  // namespace

std::vector<Rule> rules_from_json(const json::Value& doc) {
  if (!doc.is_object() || !doc.contains("rules") ||
      !doc.at("rules").is_array()) {
    throw ValueError("rules", "document", "an object with a 'rules' array");
  }
  std::vector<Rule> out;
  for (const json::Value& r : doc.at("rules").as_array()) {
    if (!r.is_object()) throw ValueError("rules", "rule", "an object");
    Rule rule;
    rule.name = r.get_string("name", "rule-" + std::to_string(out.size()));
    if (!r.contains("trigger")) throw ValueError("rules", "trigger", "set");
    if (!r.contains("action")) throw ValueError("rules", "action", "set");
    rule.when = trigger_from_json(r.at("trigger"));
    rule.then = action_from_json(r.at("action"));
    rule.max_fires = static_cast<int>(r.get_int("max_fires", -1));
    out.push_back(std::move(rule));
  }
  return out;
}

std::vector<Rule> rules_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw EnTKError("rules: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return rules_from_json(json::parse(buffer.str()));
  } catch (const json::ParseError& e) {
    throw EnTKError("rules: " + path + ": " + e.what());
  }
}

}  // namespace entk::ensemble
