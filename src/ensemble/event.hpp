// Completion events: the ensemble subsystem's view of the WFProcessor's
// event stream (WfConfig::events_queue).
//
// Every event describes a state transition that has ALREADY committed
// through the Synchronizer — the stream is a read-only shadow of the one
// source of truth, so a rule acting on an event can never race the
// transition it reacts to.
#pragma once

#include <optional>
#include <string>

#include "src/json/json.hpp"

namespace entk::ensemble {

/// One parsed completion event. Task events additionally carry the task's
/// metadata, which is where the ensemble conventions live:
///   metadata["ensemble"]["group"]  — the task's group tag (rule targeting,
///                                    per-group statistics);
///   metadata["ensemble"]["values"] — numeric results the task body
///                                    published (generator::make_task).
struct Event {
  enum class Kind { Task, Stage, Pipeline };

  Kind kind = Kind::Task;
  std::string uid;
  std::string name;
  std::string outcome;   ///< "DONE" | "FAILED" | "CANCELED"
  std::string stage;     ///< parent stage uid (task events)
  std::string pipeline;  ///< parent/own pipeline uid
  int exit_code = 0;
  json::Value metadata;  ///< task description metadata (task events)

  bool done() const { return outcome == "DONE"; }
  bool failed() const { return outcome == "FAILED"; }
  bool canceled() const { return outcome == "CANCELED"; }

  /// Group tag of a task event ("" when untagged or not a task event).
  std::string group() const;

  /// Published numeric values of a task event (null when none).
  const json::Value& values() const;

  /// Parse one wire event; nullopt for malformed or unknown payloads
  /// (the controller skips them instead of faulting).
  static std::optional<Event> parse(const json::Value& payload);
};

const char* to_string(Event::Kind kind);

}  // namespace entk::ensemble
