// Rule engine: triggers, actions and the Ops surface they act through.
//
// A Rule is {when, then}: the Controller evaluates `when` against every
// completion event (and once per poll iteration with no event, which is
// how timer triggers advance) and, when it returns true, runs `then`
// against the Ops interface. Ops is implemented by the Controller itself;
// every call is journaled as part of the firing decision, so an adaptive
// run can be replayed and debugged from its decision journal alone.
//
// Everything here is composable plain std::function — the trigger:: and
// action:: factories below cover the common cases (and are what the JSON
// rule loader builds on), while applications are free to pass arbitrary
// lambdas.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/ensemble/event.hpp"
#include "src/ensemble/result_view.hpp"
#include "src/json/json.hpp"

namespace entk::ensemble {

/// What actions operate through. Implemented by the Controller; every
/// mutation routes through the workflow stack (WFProcessor, Synchronizer,
/// RTS) so rules never touch shared state directly.
class Ops {
 public:
  virtual ~Ops() = default;

  /// Completed-result view (counts, streaming stats, event history).
  virtual ResultView& results() = 0;

  /// Virtual (scaled-clock) seconds since the controller started.
  virtual double now_s() const = 0;

  /// Shared tunable parameters (the set_param action; generators read
  /// them to steer the next batch). A missing key reads as null.
  virtual json::Value param(const std::string& key) const = 0;
  virtual void set_param(const std::string& key, json::Value value) = 0;

  /// Append a new stage holding `tasks` to a (typically held-open)
  /// pipeline and wake the WFProcessor. The stage and its tasks are
  /// registered before they become visible to the scheduler.
  virtual void submit_tasks(const std::string& pipeline_uid,
                            const std::string& stage_name,
                            std::vector<TaskPtr> tasks) = 0;

  /// Append a fully-built stage (post_exec hooks and all).
  virtual void add_stage(const std::string& pipeline_uid, StagePtr stage) = 0;

  /// Cancel every live task tagged with `group`
  /// (metadata["ensemble"]["group"]). Returns how many tasks were won;
  /// races with in-flight completions are arbitrated by the Synchronizer,
  /// so each task resolves exactly once either way.
  virtual std::size_t cancel_group(const std::string& group) = 0;

  /// Grow (delta > 0) or shrink (delta < 0) the pilot by that many nodes.
  /// Shrinking drains: busy nodes leave placement immediately and retire
  /// when their units finish. Returns false when no RTS can resize.
  virtual bool resize_pilot(int delta_nodes, const std::string& reason) = 0;

  /// Release the adaptive hold of one pipeline (or of every pipeline when
  /// `pipeline_uid` is empty) so the run can complete.
  virtual void finish(const std::string& pipeline_uid = std::string()) = 0;
};

struct TriggerContext {
  const Event* event;  ///< null on a timer tick (no event this iteration)
  ResultView& results;
  double now_s;  ///< virtual seconds since controller start
};

using Trigger = std::function<bool(const TriggerContext&)>;
using Action = std::function<void(Ops&)>;

struct Rule {
  std::string name;
  Trigger when;
  Action then;
  int max_fires = -1;  ///< < 0 = unlimited
  int fires = 0;       ///< maintained by the controller
};

namespace trigger {

/// Task completed with outcome DONE; empty prefix matches every task,
/// otherwise the task name must start with `name_prefix`.
Trigger task_done(std::string name_prefix = "");
/// Task exhausted its retry budget (final FAILED).
Trigger task_failed(std::string name_prefix = "");
/// Stage finished (DONE).
Trigger stage_done(std::string name_prefix = "");
/// Pipeline reached DONE.
Trigger pipeline_done(std::string name_prefix = "");

/// results.done_count(group) reached `n` (pair with max_fires = 1: the
/// condition stays true once reached).
Trigger group_done_at_least(std::string group, std::size_t n);

/// Statistic of the (group, key) series crossed a threshold. Fires only
/// once at least `min_count` samples arrived.
Trigger stat_below(std::string group, std::string key, Stat which,
                   double threshold, std::size_t min_count = 1);
Trigger stat_above(std::string group, std::string key, Stat which,
                   double threshold, std::size_t min_count = 1);

/// Periodic timer: fires when `interval_s` virtual seconds elapsed since
/// the previous firing (evaluated at poll granularity).
Trigger every(double interval_s);
/// One-shot deadline: fires once `delay_s` virtual seconds after start
/// (pair with max_fires = 1 unless refiring is wanted).
Trigger after(double delay_s);

/// Conjunction (evaluated left to right, short-circuit).
Trigger all_of(std::vector<Trigger> triggers);

}  // namespace trigger

namespace action {

Action cancel_group(std::string group);
Action resize_pilot(int delta_nodes, std::string reason);
Action finish(std::string pipeline_uid = "");
Action set_param(std::string key, json::Value value);
/// Run several actions in order.
Action sequence(std::vector<Action> actions);

}  // namespace action

}  // namespace entk::ensemble
