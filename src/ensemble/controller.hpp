// ensemble::Controller — the supervised rule-evaluation component.
//
// One worker ("rules") consumes the WFProcessor's completion-event stream
// (the SAME stream that drives stage books and pipeline completion — there
// is no second source of truth), feeds every event into the ResultView,
// and evaluates the rule set: first against the event, then once per poll
// iteration with no event so timer triggers advance. Actions run through
// the Ops interface the controller itself implements; every firing is
// journaled as a Decision (in memory, and as JSONL when configured), so an
// adaptive run can be replayed and debugged from its journal alone.
//
// The controller is an ordinary supervised Component: a throwing rule or
// generator becomes a captured fault, the supervisor restarts the
// controller, and on_reattach() requeues whatever events the dead worker
// left unacked. Rules must therefore tolerate at-most-one replayed event
// after a crash (max_fires and stat triggers naturally do).
//
// Wiring: create(), add rules / generators, then attach(config) BEFORE
// AppManager::run() — attach installs the adaptive factory that hands the
// controller its broker, registry, WFProcessor and resize hook once those
// exist. Keep the shared_ptr for post-run inspection (decisions(),
// results(), params()).
#pragma once

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/app_manager.hpp"
#include "src/ensemble/generator.hpp"
#include "src/ensemble/result_view.hpp"
#include "src/ensemble/rule.hpp"

namespace entk::ensemble {

struct ControllerConfig {
  std::string name = "ens.controller";
  double poll_timeout_s = 0.002;  ///< wall s per event poll
  /// Append-only JSONL decision journal ("" = in-memory only). One line
  /// per firing: {"t_s", "rule", "trigger", "actions": [...]}.
  std::string journal_path;
};

/// One journaled rule firing.
struct Decision {
  double t_s = 0.0;          ///< virtual seconds since controller start
  std::string rule;          ///< rule name
  std::string trigger;       ///< "timer" or "<kind>:<uid>:<outcome>"
  std::vector<std::string> actions;  ///< ops calls made while firing

  json::Value to_json() const;
};

class Controller : public Component,
                   public Ops,
                   public std::enable_shared_from_this<Controller> {
 public:
  static std::shared_ptr<Controller> create(ControllerConfig config = {});
  ~Controller() override;

  /// Register a rule (before or during the run).
  void add_rule(Rule rule);

  /// Drive `generator` against `pipeline` (held open from now on): the
  /// first batch is appended immediately as stage "<prefix>-0"; after every
  /// stage of the pipeline completes, the generator produces the next
  /// batch; an empty batch finishes the pipeline. Call before
  /// AppManager::run().
  void run_generator(const PipelinePtr& pipeline, GeneratorPtr generator,
                     std::string stage_prefix = "gen");

  /// Install this controller as the config's adaptive extension.
  void attach(AppManagerConfig& config);

  // --- Ops ---------------------------------------------------------------
  ResultView& results() override { return results_; }
  double now_s() const override;
  json::Value param(const std::string& key) const override;
  void set_param(const std::string& key, json::Value value) override;
  void submit_tasks(const std::string& pipeline_uid,
                    const std::string& stage_name,
                    std::vector<TaskPtr> tasks) override;
  void add_stage(const std::string& pipeline_uid, StagePtr stage) override;
  std::size_t cancel_group(const std::string& group) override;
  bool resize_pilot(int delta_nodes, const std::string& reason) override;
  void finish(const std::string& pipeline_uid = std::string()) override;

  // --- introspection -----------------------------------------------------
  std::vector<Decision> decisions() const;
  std::size_t decision_count() const;
  json::Value params() const;

 protected:
  explicit Controller(ControllerConfig config);

  void on_start() override;
  void on_reattach() override;

 private:
  void wire(const AdaptiveWiring& wiring);
  void rules_loop();
  /// Evaluate the rule set; `event` is null on a timer tick.
  void evaluate(const Event* event);
  void fire(Rule& rule, const Event* event);
  void record_op(const std::string& description);
  void require_wired(const char* op) const;

  const ControllerConfig config_;

  // Set once by wire() before start(); read by the worker and by ops.
  AdaptiveWiring wiring_;
  bool wired_ = false;
  double start_s_ = 0.0;  ///< virtual clock at start()

  // Rules, params and the decision journal share one recursive mutex:
  // actions run inside evaluate() (which holds it) and re-enter through
  // the Ops methods.
  mutable std::recursive_mutex mutex_;
  std::vector<Rule> rules_;
  json::Value params_;
  std::vector<Decision> decisions_;
  Decision* active_ = nullptr;  ///< decision being built during fire()
  std::ofstream journal_;

  ResultView results_;

  // Pre-resolved metric handles (null when metrics are off).
  obs::Counter* events_metric_ = nullptr;
  obs::Counter* fires_metric_ = nullptr;
};

using ControllerPtr = std::shared_ptr<Controller>;

}  // namespace entk::ensemble
