// JSON rule loader: builds Rule objects from a declarative description so
// tools (entk_run --rules FILE) can run adaptive policies without code.
//
// File shape:
//   {"rules": [
//     {"name": "shed-low-priority",
//      "trigger": {"type": "task_failed", "match": "sim-"},
//      "action":  {"type": "cancel_group", "group": "low"},
//      "max_fires": 1},
//     {"trigger": {"type": "timer", "interval_s": 5.0},
//      "action":  {"type": "resize_pilot", "delta_nodes": -1,
//                  "reason": "deadline pressure"}},
//     {"trigger": {"type": "stat_below", "group": "opt", "key": "misfit",
//                  "stat": "min", "threshold": 0.01, "min_count": 8},
//      "action":  {"type": "finish"}}
//   ]}
//
// Triggers: task_done | task_failed | stage_done | pipeline_done (optional
// "match" name/uid prefix); group_done {"group", "count"}; timer
// {"interval_s"}; after {"delay_s"}; stat_below / stat_above {"group",
// "key", "stat": count|min|max|mean|median|mad|sum, "threshold",
// "min_count"}.
// Actions: cancel_group {"group"}; resize_pilot {"delta_nodes", "reason"};
// finish {"pipeline"?}; set_param {"key", "value"}.
#pragma once

#include <string>
#include <vector>

#include "src/ensemble/rule.hpp"
#include "src/json/json.hpp"

namespace entk::ensemble {

/// Parse a rule document (throws ValueError on malformed input).
std::vector<Rule> rules_from_json(const json::Value& doc);

/// Load and parse a rule file (throws EnTKError when unreadable).
std::vector<Rule> rules_from_file(const std::string& path);

}  // namespace entk::ensemble
