// ResultView: the evaluator side of the generator/evaluator loop.
//
// Accumulates the task completion stream into per-group outcome counts,
// the full event history, and exact streaming statistics (mean / median /
// MAD via analytics::StreamingStats) over every numeric value the tasks
// published under metadata["ensemble"]["values"]. Generators and rule
// triggers read this view to decide what to run next (the libEnsemble
// loop shape: generate -> simulate -> evaluate -> generate ...).
//
// When a metrics registry is attached, each (group, key) series is
// exported live as gauges
//   ensemble.<group>.<key>.count / .mean_milli / .median_milli / .mad_milli
// (values scaled by 1000 — the registry's gauges are integral).
//
// Thread-safety: fully locked. Ingest happens on the controller's worker
// thread; tests and post-run inspection read from other threads.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/analytics/streaming.hpp"
#include "src/ensemble/event.hpp"
#include "src/obs/metrics.hpp"

namespace entk::ensemble {

/// Statistic selector for rule triggers and stat() lookups.
enum class Stat { Count, Min, Max, Mean, Median, Mad, Sum };

class ResultView {
 public:
  /// Record one event (task events feed counts + stats; stage/pipeline
  /// events feed nothing but are accepted for uniformity).
  void ingest(const Event& event);

  /// Per-group outcome counts ("" = the untagged group).
  std::size_t done_count(const std::string& group) const;
  std::size_t failed_count(const std::string& group) const;
  std::size_t canceled_count(const std::string& group) const;

  /// Totals across all groups.
  std::size_t total_done() const;
  std::size_t total_failed() const;

  /// One statistic of the (group, key) series; `fallback` when the series
  /// has no samples yet.
  double stat(const std::string& group, const std::string& key, Stat which,
              double fallback = 0.0) const;
  std::size_t sample_count(const std::string& group,
                           const std::string& key) const;

  /// Copy of a group's completed (DONE) task events, in arrival order.
  std::vector<Event> completed(const std::string& group) const;

  /// The most recent DONE task event of a group carrying `key` in its
  /// values; nullopt when none arrived yet.
  std::optional<Event> last_with_value(const std::string& group,
                                       const std::string& key) const;

  /// Attach a metrics registry for live ensemble.<group>.* gauges
  /// (nullptr detaches). Safe to call before ingestion starts.
  void set_metrics(obs::MetricsPtr metrics);

 private:
  struct Group {
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t canceled = 0;
    std::vector<Event> events;  ///< DONE task events only
    std::map<std::string, analytics::StreamingStats> stats;
  };

  void export_gauges_locked(const std::string& group, const std::string& key,
                            const analytics::StreamingStats& s);

  mutable std::mutex mutex_;
  std::map<std::string, Group> groups_;
  std::size_t total_done_ = 0;
  std::size_t total_failed_ = 0;
  obs::MetricsPtr metrics_;
};

}  // namespace entk::ensemble
