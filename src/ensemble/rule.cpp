#include "src/ensemble/rule.hpp"

namespace entk::ensemble {

namespace {

bool name_matches(const Event& ev, const std::string& prefix) {
  if (prefix.empty()) return true;
  return ev.name.rfind(prefix, 0) == 0 || ev.uid.rfind(prefix, 0) == 0;
}

Trigger outcome_trigger(Event::Kind kind, const char* outcome,
                        std::string prefix) {
  return [kind, outcome, prefix = std::move(prefix)](const TriggerContext& c) {
    return c.event && c.event->kind == kind && c.event->outcome == outcome &&
           name_matches(*c.event, prefix);
  };
}

}  // namespace

namespace trigger {

Trigger task_done(std::string name_prefix) {
  return outcome_trigger(Event::Kind::Task, "DONE", std::move(name_prefix));
}

Trigger task_failed(std::string name_prefix) {
  return outcome_trigger(Event::Kind::Task, "FAILED", std::move(name_prefix));
}

Trigger stage_done(std::string name_prefix) {
  return outcome_trigger(Event::Kind::Stage, "DONE", std::move(name_prefix));
}

Trigger pipeline_done(std::string name_prefix) {
  return outcome_trigger(Event::Kind::Pipeline, "DONE",
                         std::move(name_prefix));
}

Trigger group_done_at_least(std::string group, std::size_t n) {
  return [group = std::move(group), n](const TriggerContext& c) {
    return c.results.done_count(group) >= n;
  };
}

Trigger stat_below(std::string group, std::string key, Stat which,
                   double threshold, std::size_t min_count) {
  return [group = std::move(group), key = std::move(key), which, threshold,
          min_count](const TriggerContext& c) {
    if (c.results.sample_count(group, key) < min_count) return false;
    return c.results.stat(group, key, which) < threshold;
  };
}

Trigger stat_above(std::string group, std::string key, Stat which,
                   double threshold, std::size_t min_count) {
  return [group = std::move(group), key = std::move(key), which, threshold,
          min_count](const TriggerContext& c) {
    if (c.results.sample_count(group, key) < min_count) return false;
    return c.results.stat(group, key, which) > threshold;
  };
}

Trigger every(double interval_s) {
  // Stateful: the previous firing time rides in a shared cell so the
  // trigger stays copyable.
  auto last = std::make_shared<double>(-1e300);
  return [interval_s, last](const TriggerContext& c) {
    if (c.now_s - *last < interval_s) return false;
    *last = c.now_s;
    return true;
  };
}

Trigger after(double delay_s) {
  return [delay_s](const TriggerContext& c) { return c.now_s >= delay_s; };
}

Trigger all_of(std::vector<Trigger> triggers) {
  return [triggers = std::move(triggers)](const TriggerContext& c) {
    for (const Trigger& t : triggers) {
      if (!t || !t(c)) return false;
    }
    return true;
  };
}

}  // namespace trigger

namespace action {

Action cancel_group(std::string group) {
  return [group = std::move(group)](Ops& ops) { ops.cancel_group(group); };
}

Action resize_pilot(int delta_nodes, std::string reason) {
  return [delta_nodes, reason = std::move(reason)](Ops& ops) {
    ops.resize_pilot(delta_nodes, reason);
  };
}

Action finish(std::string pipeline_uid) {
  return [pipeline_uid = std::move(pipeline_uid)](Ops& ops) {
    ops.finish(pipeline_uid);
  };
}

Action set_param(std::string key, json::Value value) {
  return [key = std::move(key), value = std::move(value)](Ops& ops) {
    ops.set_param(key, value);
  };
}

Action sequence(std::vector<Action> actions) {
  return [actions = std::move(actions)](Ops& ops) {
    for (const Action& a : actions) {
      if (a) a(ops);
    }
  };
}

}  // namespace action

}  // namespace entk::ensemble
