#include "src/mq/journal.hpp"

#include "src/common/error.hpp"

namespace entk::mq {

JournalWriter::JournalWriter(std::string path, JournalConfig config)
    : path_(std::move(path)), config_(config) {
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr)
    throw MqError("journal: cannot open " + path_);
  if (!config_.sync_every_append) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (const MqError&) {
    // Destructor must not throw; the sticky error already surfaced to (or
    // was ignored by) the last explicit append/flush caller.
  }
}

void JournalWriter::throw_if_error_locked() const {
  if (!error_.empty()) throw MqError(error_);
}

void JournalWriter::append(std::string_view line, std::size_t records) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) throw MqError("journal: closed (" + path_ + ")");
  throw_if_error_locked();
  if (!config_.sync_every_append && segment_.size() >= hard_cap()) {
    // Bounded segment: backpressure instead of unbounded memory when the
    // disk cannot keep up with the publish rate.
    cv_capacity_.wait(lock, [this] {
      return stopping_ || !error_.empty() || segment_.size() < hard_cap();
    });
    throw_if_error_locked();
  }
  const bool was_empty = segment_.empty();
  if (was_empty) oldest_append_ = std::chrono::steady_clock::now();
  segment_.append(line);
  segment_ += '\n';
  segment_records_ += records;
  appended_records_ += records;
  if (config_.sync_every_append) {
    flush_segment_locked(lock);
    throw_if_error_locked();
    return;
  }
  // Wake the flusher when the segment fills — and on the first record of a
  // new segment, so it arms the max_delay deadline instead of sleeping in
  // its untimed wait-for-work past it.
  if (was_empty || segment_.size() >= config_.max_batch_bytes) {
    cv_work_.notify_one();
  }
}

void JournalWriter::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  flush_segment_locked(lock);
  throw_if_error_locked();
}

void JournalWriter::flush_segment_locked(std::unique_lock<std::mutex>& lock) {
  // Wait out a write already in flight: when it completes, anything this
  // caller appended earlier is either on disk or still in segment_ (and
  // handled below) — either way the barrier holds.
  while (flushing_) cv_flushed_.wait(lock);
  if (segment_.empty() || file_ == nullptr || !error_.empty()) return;
  std::string batch;
  batch.swap(segment_);
  const std::size_t records = segment_records_;
  segment_records_ = 0;
  flushing_ = true;
  lock.unlock();
  // I/O outside the lock: appenders keep landing records in the (now
  // empty) segment while this batch is written.
  const bool ok =
      std::fwrite(batch.data(), 1, batch.size(), file_) == batch.size() &&
      std::fflush(file_) == 0;
  lock.lock();
  flushing_ = false;
  if (ok) {
    flushed_records_ += records;
    ++flushes_;
    if (batch_size_hist_ != nullptr) {
      batch_size_hist_->observe(static_cast<double>(records));
    }
  } else if (error_.empty()) {
    error_ = "journal: short write to " + path_;
  }
  cv_flushed_.notify_all();
  cv_capacity_.notify_all();
}

void JournalWriter::flusher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_work_.wait(lock, [this] { return stopping_ || !segment_.empty(); });
    if (stopping_) return;  // close()/simulate_crash() owns the remainder
    // Group commit: sit on the segment until it fills or the oldest record
    // has waited out the commit window, then write it in one go.
    const auto deadline =
        oldest_append_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(config_.max_delay_s));
    cv_work_.wait_until(lock, deadline, [this] {
      return stopping_ || segment_.size() >= config_.max_batch_bytes;
    });
    if (stopping_) return;
    flush_segment_locked(lock);
    if (!error_.empty()) return;  // sticky failure: nothing left to do here
  }
}

void JournalWriter::stop_flusher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_capacity_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void JournalWriter::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
  }
  stop_flusher();
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  flush_segment_locked(lock);  // final drain: no acked record left behind
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  throw_if_error_locked();
}

void JournalWriter::simulate_crash() {
  stop_flusher();
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  segment_.clear();  // the unflushed tail dies with the "process"
  segment_records_ = 0;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string JournalWriter::error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

void JournalWriter::inject_io_error(std::string what) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_.empty()) return;  // first failure wins, like a real one
    error_ = std::move(what);
  }
  cv_flushed_.notify_all();
  cv_capacity_.notify_all();
  cv_work_.notify_all();
}

std::uint64_t JournalWriter::appended_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_records_;
}

std::uint64_t JournalWriter::flushed_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flushed_records_;
}

std::uint64_t JournalWriter::flushes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flushes_;
}

}  // namespace entk::mq
