// A single broker queue: FIFO, optionally bounded, with unacked-message
// tracking and requeue-on-nack semantics (the at-least-once slice of AMQP
// the toolkit depends on).
//
// Capacity semantics: `options_.capacity` bounds the *ready* backlog seen
// by publishers — publish()/publish_batch() block while ready >= capacity.
// Redelivery is exempt: nack(requeue=true) and requeue_unacked() always
// return messages to the head of the queue, even when that pushes ready
// above capacity (dropping or blocking a redelivery would violate
// at-least-once). Publishers blocked on capacity simply stay blocked until
// consumers drain the queue back below the bound; every get/get_batch/purge
// that frees slots wakes them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/mq/message.hpp"

namespace entk::mq {

struct QueueOptions {
  bool durable = false;        ///< journal messages for recovery
  std::size_t capacity = 0;    ///< 0 = unbounded; publishers block when full
};

struct QueueStats {
  std::size_t published = 0;   ///< total messages ever published
  std::size_t delivered = 0;   ///< total deliveries (includes redeliveries)
  std::size_t acked = 0;
  std::size_t requeued = 0;
  std::size_t ready = 0;       ///< currently waiting for delivery
  std::size_t unacked = 0;     ///< delivered but not yet acked
};

/// Point-in-time backlog of one queue (profiler depth gauges, tenant
/// quota accounting).
struct QueueDepth {
  std::string queue;
  std::size_t ready = 0;
  std::size_t unacked = 0;
  std::size_t bytes = 0;  ///< approx payload bytes across ready + unacked
};

/// Thread-safe FIFO queue. All waits honor a timeout so components can
/// poll their shutdown flags; a closed queue wakes all waiters.
class Queue {
 public:
  Queue(std::string name, QueueOptions options);

  const std::string& name() const { return name_; }
  const QueueOptions& options() const { return options_; }

  /// Enqueue. Blocks while the queue is at capacity. Returns false if the
  /// queue was closed (message dropped).
  bool publish(Message msg);

  /// Enqueue a whole batch under one lock acquisition, signaling consumers
  /// once instead of once per message. Blocks for capacity the same way
  /// publish() does, admitting messages as slots free up. Returns how many
  /// messages were enqueued (< msgs.size() only when the queue closes
  /// mid-batch; the remainder is dropped).
  std::size_t publish_batch(std::vector<Message> msgs);

  /// Dequeue one message, waiting up to `timeout_s` (virtual = wall here;
  /// the broker is control plane). The message stays unacked until
  /// ack()/nack() with its delivery tag. Returns nullopt on timeout or
  /// close.
  std::optional<Delivery> get(double timeout_s);

  /// Dequeue up to `max_n` messages in one lock acquisition: waits up to
  /// `timeout_s` for the first message, then drains whatever is ready
  /// without further waiting. Returns a partial (possibly empty) batch on
  /// timeout or close; FIFO order is preserved within the batch.
  std::vector<Delivery> get_batch(std::size_t max_n, double timeout_s);

  /// Non-blocking dequeue: one lock, one pop, no deadline arithmetic —
  /// cheap enough to sit in a poll loop.
  std::optional<Delivery> try_get();

  /// Acknowledge a delivery; the message is forgotten. Returns the broker
  /// sequence number of the acked message, or nullopt for unknown tags
  /// (double-ack).
  std::optional<std::uint64_t> ack(std::uint64_t delivery_tag);

  /// Acknowledge a batch of deliveries under one lock acquisition. Stale or
  /// unknown tags are skipped. Returns the sequence numbers of the messages
  /// actually acked, in `tags` order (size < tags.size() reports how many
  /// tags were stale).
  std::vector<std::uint64_t> ack_batch(
      const std::vector<std::uint64_t>& tags);

  /// Negative-acknowledge: with `requeue`, the message goes back to the
  /// head of the queue for redelivery (exempt from the capacity bound; see
  /// header comment); otherwise it is dropped. Returns the message's
  /// sequence number, or nullopt for unknown tags.
  std::optional<std::uint64_t> nack(std::uint64_t delivery_tag, bool requeue);

  /// Return all unacked messages to the queue (consumer died). Exempt from
  /// the capacity bound, like nack(requeue=true).
  std::size_t requeue_unacked();

  /// Drop all ready messages; returns how many were purged.
  std::size_t purge();

  /// Close: wake all blocked publishers/consumers; further publishes fail.
  void close();
  bool closed() const;

  QueueStats stats() const;
  std::size_t ready_count() const;
  QueueDepth depth() const;

 private:
  /// Pop the front ready message into a Delivery. Caller holds mutex_ and
  /// has checked !ready_.empty().
  Delivery pop_locked();

  const std::string name_;
  const QueueOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_ready_;     // consumers wait here
  std::condition_variable cv_capacity_;  // publishers wait here
  std::deque<Message> ready_;
  std::map<std::uint64_t, Message> unacked_;
  // Approximate payload bytes held (tenant byte quotas). Sizes are
  // recomputed via Message::approx_size() on each transition — safe
  // because queue-held messages are never touched between transitions, so
  // their lazy representations (and thus sizes) cannot change.
  std::size_t bytes_ready_ = 0;
  std::size_t bytes_unacked_ = 0;
  std::uint64_t next_tag_ = 1;
  bool closed_ = false;
  QueueStats stats_;
};

}  // namespace entk::mq
