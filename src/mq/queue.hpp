// A single broker queue: FIFO, optionally bounded, with unacked-message
// tracking and requeue-on-nack semantics (the at-least-once slice of AMQP
// the toolkit depends on).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/mq/message.hpp"

namespace entk::mq {

struct QueueOptions {
  bool durable = false;        ///< journal messages for recovery
  std::size_t capacity = 0;    ///< 0 = unbounded; publishers block when full
};

struct QueueStats {
  std::size_t published = 0;   ///< total messages ever published
  std::size_t delivered = 0;   ///< total deliveries (includes redeliveries)
  std::size_t acked = 0;
  std::size_t requeued = 0;
  std::size_t ready = 0;       ///< currently waiting for delivery
  std::size_t unacked = 0;     ///< delivered but not yet acked
};

/// Thread-safe FIFO queue. All waits honor a timeout so components can
/// poll their shutdown flags; a closed queue wakes all waiters.
class Queue {
 public:
  Queue(std::string name, QueueOptions options);

  const std::string& name() const { return name_; }
  const QueueOptions& options() const { return options_; }

  /// Enqueue. Blocks while the queue is at capacity. Returns false if the
  /// queue was closed (message dropped).
  bool publish(Message msg);

  /// Dequeue one message, waiting up to `timeout_s` (virtual = wall here;
  /// the broker is control plane). The message stays unacked until
  /// ack()/nack() with its delivery tag. Returns nullopt on timeout or
  /// close.
  std::optional<Delivery> get(double timeout_s);

  /// Non-blocking dequeue.
  std::optional<Delivery> try_get();

  /// Acknowledge a delivery; the message is forgotten. Returns the broker
  /// sequence number of the acked message, or nullopt for unknown tags
  /// (double-ack).
  std::optional<std::uint64_t> ack(std::uint64_t delivery_tag);

  /// Negative-acknowledge: with `requeue`, the message goes back to the
  /// head of the queue for redelivery; otherwise it is dropped. Returns
  /// the message's sequence number, or nullopt for unknown tags.
  std::optional<std::uint64_t> nack(std::uint64_t delivery_tag, bool requeue);

  /// Return all unacked messages to the queue (consumer died).
  std::size_t requeue_unacked();

  /// Drop all ready messages; returns how many were purged.
  std::size_t purge();

  /// Close: wake all blocked publishers/consumers; further publishes fail.
  void close();
  bool closed() const;

  QueueStats stats() const;
  std::size_t ready_count() const;

 private:
  const std::string name_;
  const QueueOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_ready_;     // consumers wait here
  std::condition_variable cv_capacity_;  // publishers wait here
  std::deque<Message> ready_;
  std::map<std::uint64_t, Message> unacked_;
  std::uint64_t next_tag_ = 1;
  bool closed_ = false;
  QueueStats stats_;
};

}  // namespace entk::mq
