// In-process message broker standing in for the RabbitMQ server.
//
// The paper (§II-C) relies on three properties of a server-based broker:
//   (1) producers and consumers need not be topology-aware — they only talk
//       to the broker by queue name;
//   (2) messages survive component failures — durable queues journal every
//       publish/ack to disk and a new broker can recover the backlog;
//   (3) production and consumption are decoupled — the broker buffers.
// This class provides all three inside one process: queues are owned by the
// broker, looked up by name, and optionally journaled as JSONL records.
//
// Scalability: the broker is sharded by queue name. Each shard owns an
// independent slice of the queue map (its own writer lock and copy-on-write
// read snapshot) and, when journaling is on, its own group-commit
// JournalWriter — so publishers and consumers of queues in different shards
// share NO locks and no flusher, and the dispatch hot path scales with
// cores instead of serializing on one global mutex. The hot-path queue
// lookup is lock-free: it loads the shard's immutable map snapshot with one
// atomic shared_ptr load; only topology changes (declare/delete/close) take
// the shard's mutex and publish a new snapshot. A broker constructed with
// shards=1 is behaviorally identical to the historical single-mutex broker
// (one queue map, one journal file, same journal path).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/mq/broker_handle.hpp"
#include "src/mq/exchange.hpp"
#include "src/mq/journal.hpp"
#include "src/mq/queue.hpp"
#include "src/obs/metrics.hpp"

namespace entk::mq {

struct BrokerStats {
  std::size_t queues = 0;
  std::size_t published = 0;
  std::size_t delivered = 0;
  std::size_t acked = 0;
};

class Broker : public BrokerHandle {
 public:
  /// `journal_dir`: when non-empty, durable queues append their operations
  /// to per-shard journals under it (see journal_path). `journal` tunes the
  /// group-commit flush policy (see JournalConfig). `shards`: number of
  /// independent queue shards; 1 (the default) reproduces the unsharded
  /// broker exactly, 0 derives a count from hardware_concurrency.
  explicit Broker(std::string name = "broker", std::string journal_dir = "",
                  JournalConfig journal = {}, std::size_t shards = 1);
  ~Broker() override;

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  const std::string& name() const { return name_; }

  /// Hardware-derived shard count (what `shards = 0` resolves to):
  /// hardware_concurrency clamped to [1, 16].
  static std::size_t default_shards();

  std::size_t shard_count() const { return shards_.size(); }

  /// Index of the shard owning `queue` (stable hash of the queue name).
  std::size_t shard_of(const std::string& queue) const;

  /// Attach a metrics registry: publish/get/ack latency histograms, message
  /// counters and requeue counts ("mq.*"). With shards > 1, per-shard
  /// publish counters ("mq.shard<K>.published") expose shard balance.
  /// Handles are resolved once here, so the per-operation cost is a null
  /// check plus a few relaxed atomics. Not thread-safe against in-flight
  /// operations — attach before the run starts. nullptr detaches.
  void set_metrics(obs::MetricsPtr metrics);

  /// Idempotent declare; re-declaring with different options is an error.
  std::shared_ptr<Queue> declare_queue(const std::string& queue,
                                       QueueOptions options = {}) override;

  /// Lookup; throws MqError when the queue does not exist.
  std::shared_ptr<Queue> queue(const std::string& queue) const;
  bool has_queue(const std::string& queue) const override;
  std::vector<std::string> queue_names() const;

  /// Publish to a declared queue. Assigns the broker sequence number and,
  /// for durable queues, journals the message before it becomes visible.
  /// Returns the assigned sequence number; throws MqError on unknown queue.
  std::uint64_t publish(const std::string& queue, Message msg) override;

  /// Publish a batch to one queue: a contiguous sequence-number range is
  /// reserved in one step, durable messages are journaled with a single
  /// flush, and the queue lock is taken once. Returns the first assigned
  /// sequence number (messages get first..first+n-1 in order); throws
  /// MqError on unknown queue or when the queue closes mid-batch.
  std::uint64_t publish_batch(const std::string& queue,
                              std::vector<Message> msgs) override;

  /// Consume one message (see Queue::get).
  std::optional<Delivery> get(const std::string& queue,
                              double timeout_s) override;

  /// Consume up to `max_n` messages in one queue-lock acquisition (see
  /// Queue::get_batch); the batch may be partial or empty on timeout.
  std::vector<Delivery> get_batch(const std::string& queue, std::size_t max_n,
                                  double timeout_s) override;

  /// Ack/nack a delivery obtained from `queue`.
  bool ack(const std::string& queue, std::uint64_t delivery_tag) override;
  bool nack(const std::string& queue, std::uint64_t delivery_tag,
            bool requeue) override;

  /// Ack a batch of deliveries with one queue-lock acquisition and (for
  /// durable queues) one journal flush. Stale tags are skipped. Returns the
  /// number of deliveries actually acked.
  std::size_t ack_batch(
      const std::string& queue,
      const std::vector<std::uint64_t>& delivery_tags) override;

  /// Requeue every unacked delivery of `queue` (component-restart path:
  /// messages orphaned by dead workers go back for the next generation).
  /// Returns the number requeued; counted into "mq.requeued".
  std::size_t requeue_unacked(const std::string& queue) override;

  /// Delete a queue (closing it first).
  void delete_queue(const std::string& queue);

  /// Declare an exchange; re-declaring with a different type is an error.
  std::shared_ptr<Exchange> declare_exchange(const std::string& exchange,
                                             ExchangeType type);
  std::shared_ptr<Exchange> exchange(const std::string& exchange) const;

  /// Bind a declared queue to a declared exchange.
  void bind_queue(const std::string& exchange, const std::string& queue,
                  const std::string& binding_key = "");

  /// Publish via an exchange: the message is copied to every queue the
  /// exchange routes the key to. Returns the number of deliveries.
  std::size_t publish_to_exchange(const std::string& exchange,
                                  const std::string& routing_key, Message msg);

  /// Close all queues and stop accepting publishes.
  void close() override;
  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  /// "" when durable; the sticky journal-flusher error otherwise (first
  /// failing shard wins). Probed by the Supervisor heartbeat so a broker
  /// that can no longer persist (full/failing disk) aborts the run instead
  /// of silently dropping durability until close().
  std::string health() const override;

  BrokerStats stats() const;

  /// Per-queue ready/unacked backlog snapshot (profiler depth gauges),
  /// sorted by queue name — identical at every shard count.
  std::vector<QueueDepth> depth_snapshot() const override;

  /// Prefix-filtered backlog snapshot: only queues whose name starts with
  /// `prefix`, sorted by name. Each shard map is ordered, so this walks
  /// just the matching range per shard (lower_bound) instead of scanning
  /// every queue — per-tenant depth gauges on a daemon hosting many
  /// tenants stay O(queues-of-that-tenant). An empty prefix matches all.
  std::vector<QueueDepth> depth_snapshot(const std::string& prefix) const;

  /// Rebuild broker state from the journal set written by a previous
  /// (durable) broker with the same name: `journal_path` names the shard-0
  /// file; sibling shard files ("<path>.1", "<path>.2", ...) are replayed
  /// too when present, so recovery works across restarts that changed the
  /// shard count. The replay is also layout-aware for tenant partitions:
  /// any subdirectory of dirname(journal_path) holding a file with the
  /// same basename is a per-tenant partition ("<dir>/<tenant>/<name>.
  /// journal[.K]") and is replayed into the same two-phase pass — queue
  /// names inside are already tenant-qualified, so isolation survives the
  /// restart. Every published-but-unacked message is restored to its
  /// queue, preserving per-queue seq order. Queues are re-declared as
  /// durable. Returns the number of restored messages.
  std::size_t recover(const std::string& journal_path);

  /// Path of the journal shard `shard` writes ("" when journaling is off).
  /// Shard 0 keeps the historical "<dir>/<name>.journal" path; shard K > 0
  /// appends ".K" — so a shards=1 broker writes exactly the old file.
  std::string journal_path(std::size_t shard) const;
  std::string journal_path() const { return journal_path(0); }

  /// The group-commit journal writer of one shard (nullptr when journaling
  /// is off). Exposed for tests and for callers that need an explicit
  /// durability barrier (JournalWriter::flush) or crash injection.
  JournalWriter* journal_writer(std::size_t shard = 0);

  /// Path of the journal shard `shard` of tenant partition `tenant` writes
  /// ("<dir>/<tenant>/<name>.journal[.K]"; "" when journaling is off).
  /// Journals of tenant-qualified durable queues land here instead of the
  /// default files, so one tenant's churn never rewrites another's
  /// partition and an operator can archive/drop a tenant by directory.
  std::string partition_journal_path(const std::string& tenant,
                                     std::size_t shard = 0) const;

 private:
  using QueueMap = std::map<std::string, std::shared_ptr<Queue>>;

  /// One slice of the queue namespace: an independent lock + copy-on-write
  /// snapshot of this shard's queues, and (durable brokers) a dedicated
  /// group-commit journal so shards never serialize on one flusher.
  struct Shard {
    mutable std::shared_mutex mutex;  // writers: declare/delete/close
    std::atomic<std::shared_ptr<const QueueMap>> snapshot;  // lock-free reads
    std::unique_ptr<JournalWriter> journal;
    obs::Counter* published = nullptr;  // per-shard balance counter
  };

  /// One tenant's journal partition: a per-shard writer set rooted at
  /// "<dir>/<tenant>/". Owned via shared_ptr inside a copy-on-write map so
  /// the publish hot path resolves its writer with one atomic load.
  struct Partition {
    std::vector<std::unique_ptr<JournalWriter>> writers;  // one per shard
  };
  using PartitionMap = std::map<std::string, std::shared_ptr<Partition>>;

  /// Lock-free hot-path lookup: one atomic snapshot load + map find.
  std::shared_ptr<Queue> find_queue(const std::string& queue,
                                    std::size_t shard) const;
  std::shared_ptr<Queue> queue_or_throw(const std::string& queue,
                                        std::size_t shard) const;
  /// Journal writer for `queue` on `shard`: the shard's default writer for
  /// unqualified names, the tenant partition's writer otherwise (nullptr
  /// when journaling is off or the partition was never created).
  JournalWriter* journal_writer_for(std::size_t shard,
                                    const std::string& queue) const;
  /// Create (idempotently) the journal partition of `tenant`, including
  /// its directory. No-op when journaling is off.
  void ensure_partition(const std::string& tenant);
  static void journal_append(JournalWriter* writer, const json::Value& record);
  static void journal_append_batch(JournalWriter* writer,
                                   const std::vector<json::Value>& records);

  const std::string name_;
  const std::string journal_dir_;
  const JournalConfig journal_config_;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Tenant journal partitions: copy-on-write like the queue maps (creates
  // are rare — once per tenant — and writer lookup sits on the publish hot
  // path). Guarded by partitions_mutex_ for writers only.
  std::mutex partitions_mutex_;
  std::atomic<std::shared_ptr<const PartitionMap>> partitions_;

  mutable std::shared_mutex exchange_mutex_;  // guards exchanges_
  std::map<std::string, std::shared_ptr<Exchange>> exchanges_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<bool> closed_{false};

  // Pre-resolved metric handles; all null when metrics are off.
  obs::MetricsPtr metrics_;
  obs::Histogram* journal_batch_size_ = nullptr;  // shared by all writers
  struct {
    obs::Counter* published = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* acked = nullptr;
    obs::Counter* requeued = nullptr;
    obs::Counter* get_empty = nullptr;
    obs::Counter* serialize_avoided = nullptr;
    obs::Histogram* publish_us = nullptr;
    obs::Histogram* get_us = nullptr;
    obs::Histogram* ack_us = nullptr;
  } m_;
};

using BrokerPtr = std::shared_ptr<Broker>;

}  // namespace entk::mq
