#include "src/mq/tenant.hpp"

#include <algorithm>

namespace entk::mq {

namespace {

constexpr std::size_t kMaxTenantIdLen = 64;
constexpr const char* kPrefixHead = "t.";

bool valid_tenant_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

}  // namespace

bool valid_tenant_id(const std::string& id) {
  if (id.empty()) return true;  // the default tenant
  if (id.size() > kMaxTenantIdLen) return false;
  // The first character must be alphanumeric: ids name journal
  // subdirectories, and without this rule "." and ".." would be accepted —
  // "." aliases the default tenant's journal file (two writers, one file)
  // and ".." escapes the journal directory entirely.
  const char head = id.front();
  const bool head_ok = (head >= 'a' && head <= 'z') ||
                       (head >= 'A' && head <= 'Z') ||
                       (head >= '0' && head <= '9');
  if (!head_ok) return false;
  return std::all_of(id.begin(), id.end(), valid_tenant_char);
}

std::string tenant_queue_prefix(const std::string& tenant) {
  if (tenant.empty()) return "";
  return std::string(kPrefixHead) + tenant + "/";
}

std::string qualify_queue(const std::string& tenant,
                          const std::string& queue) {
  if (tenant.empty()) return queue;
  return tenant_queue_prefix(tenant) + queue;
}

std::string tenant_of_queue(const std::string& physical_queue) {
  if (physical_queue.compare(0, 2, kPrefixHead) != 0) return "";
  const std::size_t slash = physical_queue.find('/', 2);
  if (slash == std::string::npos) return "";
  return physical_queue.substr(2, slash - 2);
}

std::string unqualify_queue(const std::string& physical_queue) {
  if (physical_queue.compare(0, 2, kPrefixHead) != 0) return physical_queue;
  const std::size_t slash = physical_queue.find('/', 2);
  if (slash == std::string::npos) return physical_queue;
  return physical_queue.substr(slash + 1);
}

// --- Tenant ----------------------------------------------------------------

Tenant::Tenant(std::string id, TenantQuota quota)
    : id_(std::move(id)),
      quota_(quota),
      prefix_(tenant_queue_prefix(id_)),
      last_refill_(std::chrono::steady_clock::now()) {
  // Start with a full bucket so a tenant's first burst (up to `burst`
  // messages) is admitted immediately; sustained load is what the rate
  // bounds.
  if (quota_.publish_rate > 0.0) {
    tokens_ = quota_.burst > 0.0 ? quota_.burst : quota_.publish_rate;
  }
}

bool Tenant::try_acquire_rate(std::size_t n, double* retry_after_s) {
  if (quota_.publish_rate <= 0.0) return true;
  const double cap =
      quota_.burst > 0.0 ? quota_.burst : quota_.publish_rate;
  std::lock_guard<std::mutex> lock(bucket_mutex_);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(cap, tokens_ + elapsed * quota_.publish_rate);
  const double need = static_cast<double>(n);
  // A batch larger than the bucket can ever hold (need > cap) is admitted
  // once the bucket is full, driving the balance negative — token debt,
  // paid off by refill before anything else is admitted. Without the
  // overdraw such a batch could never be admitted at all; with it the
  // sustained rate still holds exactly.
  const double attainable = std::min(need, cap);
  if (tokens_ >= attainable) {
    tokens_ -= need;
    return true;
  }
  if (retry_after_s != nullptr) {
    *retry_after_s = (attainable - tokens_) / quota_.publish_rate;
  }
  return false;
}

void Tenant::observe_backlog(std::size_t depth, std::size_t bytes) {
  depth_.store(depth, std::memory_order_relaxed);
  bytes_.store(bytes, std::memory_order_relaxed);
  if (depth_metric_ != nullptr) {
    depth_metric_->set(static_cast<double>(depth));
  }
  if (bytes_metric_ != nullptr) {
    bytes_metric_->set(static_cast<double>(bytes));
  }
}

void Tenant::observe_publish_rate(double rate) {
  rate_.store(rate, std::memory_order_relaxed);
  if (rate_metric_ != nullptr) rate_metric_->set(rate);
}

TenantStats Tenant::stats() const {
  TenantStats s;
  s.id = id_;
  s.published = published_.load(std::memory_order_relaxed);
  s.throttled = throttled_.load(std::memory_order_relaxed);
  s.depth = depth_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.publish_rate = rate_.load(std::memory_order_relaxed);
  return s;
}

void Tenant::set_metrics(obs::MetricsPtr metrics) {
  metrics_ = std::move(metrics);
  if (!metrics_) {
    published_metric_ = nullptr;
    throttled_metric_ = nullptr;
    depth_metric_ = nullptr;
    bytes_metric_ = nullptr;
    rate_metric_ = nullptr;
    return;
  }
  const std::string base = "tenant." + (id_.empty() ? "default" : id_);
  published_metric_ = &metrics_->counter(base + ".published");
  throttled_metric_ = &metrics_->counter(base + ".throttled");
  depth_metric_ = &metrics_->gauge(base + ".depth");
  bytes_metric_ = &metrics_->gauge(base + ".bytes");
  rate_metric_ = &metrics_->gauge(base + ".publish_rate");
}

// --- TenantRegistry --------------------------------------------------------

TenantRegistry::TenantRegistry(TenantRegistryConfig config)
    : config_(config) {
  // The default tenant always exists and is never quota-bound: its
  // behavior is the tenancy-free broker.
  tenants_.emplace("", std::make_shared<Tenant>("", TenantQuota{}));
}

void TenantRegistry::register_tenant(const std::string& id,
                                     TenantQuota quota) {
  if (!valid_tenant_id(id)) {
    throw ValueError("invalid tenant id '" + id + "'");
  }
  if (id.empty()) {
    throw ValueError("the default tenant cannot carry a quota");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(id);
  if (it != tenants_.end()) {
    if (it->second->published() > 0 || it->second->throttled() > 0) {
      throw StateError("tenant '" + id +
                       "' already active; cannot replace its quota");
    }
    tenants_.erase(it);
  }
  auto tenant = std::make_shared<Tenant>(id, quota);
  if (metrics_) tenant->set_metrics(metrics_);
  tenants_.emplace(id, std::move(tenant));
}

std::shared_ptr<Tenant> TenantRegistry::bind(const std::string& id) {
  if (!valid_tenant_id(id)) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;
  if (!config_.auto_register) return nullptr;
  auto tenant = std::make_shared<Tenant>(id, config_.default_quota);
  if (metrics_) tenant->set_metrics(metrics_);
  tenants_.emplace(id, tenant);
  return tenant;
}

std::shared_ptr<Tenant> TenantRegistry::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::tenants() const {
  std::vector<std::shared_ptr<Tenant>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, tenant] : tenants_) {
    if (!id.empty()) out.push_back(tenant);
  }
  return out;  // std::map iteration is already id-sorted
}

void TenantRegistry::set_metrics(obs::MetricsPtr metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = std::move(metrics);
  for (auto& [id, tenant] : tenants_) tenant->set_metrics(metrics_);
}

}  // namespace entk::mq
