// BrokerHandle: the narrow broker surface EnTK components program against.
//
// The paper's components are "topology-unaware" (§II-C): they talk to the
// broker by queue name and never care where it runs. This interface is
// that contract made explicit — exactly the publish/get/ack slice (plus
// the PR-1 batch variants and the restart-path requeue) that WFProcessor,
// ExecManager and the Synchronizer use. Two implementations exist:
//
//   * mq::Broker           — the in-process broker (zero-copy fast path);
//   * net::RemoteBroker    — a TCP client speaking the src/net framed wire
//                            protocol to an entk_broker daemon.
//
// AppManager picks one from AppManagerConfig::broker_endpoint and the
// components run unmodified against either backend.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/mq/message.hpp"
#include "src/mq/queue.hpp"

namespace entk::mq {

class Queue;

class BrokerHandle {
 public:
  virtual ~BrokerHandle() = default;

  /// Idempotent declare. The in-process broker returns the live queue
  /// object; remote handles return nullptr (the queue lives in the broker
  /// daemon's address space).
  virtual std::shared_ptr<Queue> declare_queue(const std::string& queue,
                                               QueueOptions options = {}) = 0;
  virtual bool has_queue(const std::string& queue) const = 0;

  /// Publish one message; returns the broker-assigned sequence number.
  /// Throws MqError on unknown queue / closed broker.
  virtual std::uint64_t publish(const std::string& queue, Message msg) = 0;

  /// Publish a batch to one queue; messages get a contiguous sequence
  /// range starting at the returned number.
  virtual std::uint64_t publish_batch(const std::string& queue,
                                      std::vector<Message> msgs) = 0;

  /// Consume one message, waiting up to `timeout_s`; nullopt on timeout.
  virtual std::optional<Delivery> get(const std::string& queue,
                                      double timeout_s) = 0;

  /// Consume up to `max_n` messages; may be partial or empty on timeout.
  virtual std::vector<Delivery> get_batch(const std::string& queue,
                                          std::size_t max_n,
                                          double timeout_s) = 0;

  virtual bool ack(const std::string& queue, std::uint64_t delivery_tag) = 0;
  virtual bool nack(const std::string& queue, std::uint64_t delivery_tag,
                    bool requeue) = 0;
  virtual std::size_t ack_batch(
      const std::string& queue,
      const std::vector<std::uint64_t>& delivery_tags) = 0;

  /// Requeue every unacked delivery of `queue` (component-restart path).
  virtual std::size_t requeue_unacked(const std::string& queue) = 0;

  /// Per-queue ready/unacked backlog snapshot (heartbeat depth gauges).
  virtual std::vector<QueueDepth> depth_snapshot() const = 0;

  /// Stop accepting operations. For the in-process broker this closes all
  /// queues; for a remote handle it closes this client's connection (the
  /// daemon and its queues keep serving other clients).
  virtual void close() = 0;
  virtual bool closed() const = 0;

  /// Durability health: "" when healthy, otherwise the sticky failure
  /// description (e.g. a journal-flusher I/O error). Probed by the
  /// AppManager-level Supervisor so a broker that can no longer persist
  /// fails the run loudly instead of silently dropping durability.
  virtual std::string health() const { return ""; }
};

using BrokerHandlePtr = std::shared_ptr<BrokerHandle>;

}  // namespace entk::mq
