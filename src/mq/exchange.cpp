#include "src/mq/exchange.hpp"

#include <algorithm>
#include <mutex>

namespace entk::mq {

const char* to_string(ExchangeType t) {
  switch (t) {
    case ExchangeType::Direct: return "direct";
    case ExchangeType::Fanout: return "fanout";
    case ExchangeType::Topic: return "topic";
  }
  return "?";
}

namespace {

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t dot = s.find('.', start);
    if (dot == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, dot - start));
    start = dot + 1;
  }
  return out;
}

bool match_words(const std::vector<std::string>& pattern, std::size_t pi,
                 const std::vector<std::string>& key, std::size_t ki) {
  while (pi < pattern.size()) {
    if (pattern[pi] == "#") {
      // '#' matches zero or more words: try every split point.
      if (pi + 1 == pattern.size()) return true;
      for (std::size_t skip = ki; skip <= key.size(); ++skip) {
        if (match_words(pattern, pi + 1, key, skip)) return true;
      }
      return false;
    }
    if (ki >= key.size()) return false;
    if (pattern[pi] != "*" && pattern[pi] != key[ki]) return false;
    ++pi;
    ++ki;
  }
  return ki == key.size();
}

}  // namespace

bool topic_matches(const std::string& pattern, const std::string& key) {
  return match_words(split_words(pattern), 0, split_words(key), 0);
}

Exchange::Exchange(std::string name, ExchangeType type)
    : name_(std::move(name)), type_(type) {}

void Exchange::bind(const std::string& queue, const std::string& binding_key) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto entry = std::make_pair(binding_key, queue);
  if (std::find(bindings_.begin(), bindings_.end(), entry) ==
      bindings_.end()) {
    bindings_.push_back(entry);
  }
}

void Exchange::unbind(const std::string& queue,
                      const std::string& binding_key) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto entry = std::make_pair(binding_key, queue);
  bindings_.erase(std::remove(bindings_.begin(), bindings_.end(), entry),
                  bindings_.end());
}

std::vector<std::string> Exchange::route(const std::string& routing_key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [key, queue] : bindings_) {
    bool match = false;
    switch (type_) {
      case ExchangeType::Direct: match = key == routing_key; break;
      case ExchangeType::Fanout: match = true; break;
      case ExchangeType::Topic: match = topic_matches(key, routing_key); break;
    }
    if (match && std::find(out.begin(), out.end(), queue) == out.end()) {
      out.push_back(queue);
    }
  }
  return out;
}

std::size_t Exchange::binding_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return bindings_.size();
}

}  // namespace entk::mq
