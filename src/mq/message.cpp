#include "src/mq/message.hpp"

#include <atomic>

namespace entk::mq {

namespace {
std::atomic<bool> g_eager_serialization{false};
std::atomic<std::uint64_t> g_body_renders{0};
std::atomic<TlvDecoder> g_tlv_decoder{nullptr};
}  // namespace

void set_tlv_decoder(TlvDecoder decoder) {
  g_tlv_decoder.store(decoder, std::memory_order_release);
}

TlvDecoder tlv_decoder() {
  return g_tlv_decoder.load(std::memory_order_acquire);
}

void set_eager_serialization(bool on) {
  g_eager_serialization.store(on, std::memory_order_relaxed);
}

bool eager_serialization() {
  return g_eager_serialization.load(std::memory_order_relaxed);
}

std::uint64_t body_render_count() {
  return g_body_renders.load(std::memory_order_relaxed);
}

const std::string& Message::body() const {
  if (body_ == nullptr) {
    if (payload_ == nullptr && tlv_ != nullptr) {
      payload();  // materialize the structured payload from the TLV bytes
    }
    if (payload_ != nullptr) {
      g_body_renders.fetch_add(1, std::memory_order_relaxed);
      body_ = std::make_shared<const std::string>(payload_->dump());
    } else {
      static const std::string kEmpty;
      return kEmpty;
    }
  }
  return *body_;
}

const std::shared_ptr<const json::Value>& Message::payload() const {
  if (payload_ == nullptr) {
    if (tlv_ != nullptr) {
      const TlvDecoder decode = tlv_decoder();
      if (decode == nullptr) {
        throw json::ParseError(
            "mq: message carries typed-value payload bytes but no TLV "
            "decoder is installed (net library not linked?)",
            0);
      }
      payload_ = std::make_shared<const json::Value>(decode(*tlv_));
    } else {
      // Parses the rendered bytes; an empty body (neither representation
      // ever set) throws ParseError, matching the old body_json() contract.
      payload_ = std::make_shared<const json::Value>(json::parse(body()));
    }
  }
  return payload_;
}

namespace {

// Structural size estimate of a json value: string/number/punctuation
// budgets roughly matching the dumped form, without rendering anything.
std::size_t approx_json_size(const json::Value& v) {
  if (v.is_string()) return v.as_string().size() + 2;
  if (v.is_array()) {
    std::size_t n = 2;
    for (const json::Value& e : v.as_array()) n += approx_json_size(e) + 1;
    return n;
  }
  if (v.is_object()) {
    std::size_t n = 2;
    for (const auto& [key, val] : v.as_object()) {
      n += key.size() + 4 + approx_json_size(val);
    }
    return n;
  }
  return 8;  // null / bool / number
}

}  // namespace

std::size_t Message::approx_size() const {
  if (body_ != nullptr) return body_->size();
  if (tlv_ != nullptr) return tlv_->size();
  if (payload_ != nullptr) return approx_json_size(*payload_);
  return 0;
}

Message Message::json_body(std::string routing_key, json::Value payload,
                           json::Value headers) {
  Message m;
  m.routing_key = std::move(routing_key);
  m.headers = std::move(headers);
  if (eager_serialization()) {
    m.set_body(payload.dump());
  } else {
    m.set_payload(std::move(payload));
  }
  return m;
}

}  // namespace entk::mq
