// Tenancy subsystem of the shared broker daemon.
//
// The paper positions EnTK as middleware *shared* by many ensemble
// applications (RADICAL-Cybertools' "building block serving many
// applications concurrently"). One entk_broker daemon therefore has to
// host many ensembles at once without letting them collide or starve each
// other. This header is that contract:
//
//   * Namespacing — every connection is bound to a tenant id (carried in
//     the kHello handshake). Queue names a tenant-bound client uses are
//     transparently qualified to "t.<tenant>/<queue>" on the daemon, so
//     two ensembles both declaring "q.pending" never touch each other's
//     messages. The default tenant ("") maps to the *unqualified* name —
//     a tenant-less client sees exactly the PR 5–7 wire behavior.
//
//   * Quotas — a TenantQuota bounds one tenant's footprint: total backlog
//     depth (ready + unacked messages across its queues), total backlog
//     bytes, and publish rate (token bucket). Exceeding a quota turns
//     into *per-tenant backpressure*: the server answers kErrQuota and
//     the client retries with backoff — instead of one tenant's flood
//     consuming global capacity until every tenant fails.
//
//   * Accounting — per-tenant counters (published/throttled) and gauges
//     (depth/bytes/publish rate) registered as "tenant.<id>.*" metrics,
//     surfaced in the daemon's periodic stats line.
//
// Fair scheduling across tenants (deficit round robin over the server's
// input pass) lives in net::BrokerServer; this layer only owns identity,
// namespacing and quota state, so mq stays independent of net.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/obs/metrics.hpp"

namespace entk::mq {

/// A publish rejected by a per-tenant quota after the client's bounded
/// retry budget ran out. Subtype of MqError so legacy error handling still
/// applies, but distinguishable: quota exhaustion is the *tenant's*
/// overload, not a broker failure.
class QuotaError : public MqError {
 public:
  explicit QuotaError(const std::string& what) : MqError(what) {}
};

// --- tenant id + queue namespacing ----------------------------------------

/// Tenant ids are path-safe tokens: [A-Za-z0-9._-], 1..64 chars, first
/// character alphanumeric (they name journal subdirectories and metric
/// components; the leading-alnum rule keeps "." and ".." — which would
/// alias or escape the journal directory — out). "" is the default tenant
/// and is always valid.
bool valid_tenant_id(const std::string& id);

/// Physical queue-name prefix of a tenant: "" for the default tenant,
/// "t.<id>/" otherwise. The '/' cannot appear in a tenant id, so prefixes
/// never alias across tenants.
std::string tenant_queue_prefix(const std::string& tenant);

/// Qualify a client-visible queue name into the tenant's namespace.
/// Default tenant: identity (exact backward compat).
std::string qualify_queue(const std::string& tenant, const std::string& queue);

/// Tenant id owning a physical queue name ("" for unqualified names —
/// i.e. the default tenant). Inverse of the prefix applied by
/// qualify_queue; also the broker's journal partition key.
std::string tenant_of_queue(const std::string& physical_queue);

/// Strip the tenant prefix off a physical queue name, returning the
/// client-visible name. Unqualified names pass through.
std::string unqualify_queue(const std::string& physical_queue);

// --- quotas ----------------------------------------------------------------

/// Per-tenant resource bounds. 0 = unlimited for every field, so a
/// default-constructed quota changes nothing.
struct TenantQuota {
  /// Max ready+unacked messages across all of the tenant's queues.
  std::size_t max_queue_depth = 0;
  /// Max ready+unacked payload bytes across all of the tenant's queues.
  std::size_t max_bytes = 0;
  /// Sustained publish rate (messages/second), enforced as a token bucket.
  double publish_rate = 0.0;
  /// Token-bucket burst capacity in messages; 0 = one second's worth of
  /// publish_rate (so short bursts at batch granularity are admitted).
  double burst = 0.0;
};

/// Point-in-time accounting snapshot of one tenant (daemon stats line).
struct TenantStats {
  std::string id;
  std::uint64_t published = 0;  ///< messages admitted
  std::uint64_t throttled = 0;  ///< publishes rejected by any quota
  std::size_t depth = 0;        ///< last observed ready+unacked messages
  std::size_t bytes = 0;        ///< last observed ready+unacked bytes
  double publish_rate = 0.0;    ///< last computed admitted msgs/s
};

/// One tenant's live state: quota, token bucket and counters. Created and
/// owned by the TenantRegistry; the server's poll thread is the only
/// writer of the bucket, but counters/gauges are atomics so the daemon's
/// stats thread reads them without locks.
class Tenant {
 public:
  Tenant(std::string id, TenantQuota quota);

  const std::string& id() const { return id_; }
  const TenantQuota& quota() const { return quota_; }
  const std::string& queue_prefix() const { return prefix_; }

  /// Take `n` messages' worth of publish-rate tokens. Returns true when
  /// admitted; false when the bucket lacks tokens, with *retry_after_s set
  /// to the time until admission becomes possible. A batch larger than
  /// the bucket's capacity is admitted (once the bucket is full) by
  /// driving the balance negative — token debt repaid by refill — so
  /// oversized batches throttle the tenant afterwards instead of being
  /// unadmittable forever. No-op (always true) without a rate quota.
  bool try_acquire_rate(std::size_t n, double* retry_after_s);

  void count_published(std::size_t n) {
    published_.fetch_add(n, std::memory_order_relaxed);
    if (published_metric_ != nullptr) published_metric_->add(n);
  }
  void count_throttled() {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    if (throttled_metric_ != nullptr) throttled_metric_->add();
  }
  /// Record the depth/bytes gauges observed by the latest accounting pass
  /// (quota checks and the stats line share these observations).
  void observe_backlog(std::size_t depth, std::size_t bytes);

  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t throttled() const {
    return throttled_.load(std::memory_order_relaxed);
  }

  TenantStats stats() const;

  /// Resolve "tenant.<id>.*" metric handles (nullptr registry detaches).
  void set_metrics(obs::MetricsPtr metrics);
  /// Update the admitted-rate gauge (stats pass; msgs/s since last call).
  void observe_publish_rate(double rate);

 private:
  const std::string id_;
  const TenantQuota quota_;
  const std::string prefix_;

  // Token bucket; touched only under bucket_mutex_.
  std::mutex bucket_mutex_;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point last_refill_;

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> throttled_{0};
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<double> rate_{0.0};

  obs::Counter* published_metric_ = nullptr;
  obs::Counter* throttled_metric_ = nullptr;
  obs::Gauge* depth_metric_ = nullptr;
  obs::Gauge* bytes_metric_ = nullptr;
  obs::Gauge* rate_metric_ = nullptr;
  obs::MetricsPtr metrics_;
};

// --- registry ---------------------------------------------------------------

struct TenantRegistryConfig {
  /// Accept hellos for tenants never seen before, registering them with
  /// `default_quota`. Off = only pre-registered tenants may bind (a
  /// closed deployment); unknown ids are rejected like invalid ones.
  bool auto_register = true;
  /// Quota applied to auto-registered tenants (default: unlimited).
  TenantQuota default_quota;
};

/// Thread-safe tenant table of one broker daemon. The default tenant ""
/// always exists and never has a quota (its behavior is the tenancy-free
/// broker, verbatim).
class TenantRegistry {
 public:
  explicit TenantRegistry(TenantRegistryConfig config = {});

  /// Pre-register `id` with a quota (entk_broker --tenant-quota). Throws
  /// ValueError on an invalid id; re-registering replaces the quota only
  /// if the tenant saw no traffic yet (otherwise throws).
  void register_tenant(const std::string& id, TenantQuota quota);

  /// Resolve a hello's tenant id to its Tenant. Returns nullptr when the
  /// id is invalid, or unknown with auto_register off — the caller (the
  /// server) must then reject the connection rather than silently serving
  /// it as the default tenant.
  std::shared_ptr<Tenant> bind(const std::string& id);

  /// Lookup without registering (nullptr when absent).
  std::shared_ptr<Tenant> find(const std::string& id) const;

  bool has_tenant(const std::string& id) const { return find(id) != nullptr; }

  /// Every non-default tenant, sorted by id (stats line, tests).
  std::vector<std::shared_ptr<Tenant>> tenants() const;

  /// Attach "tenant.<id>.*" metrics for current and future tenants.
  void set_metrics(obs::MetricsPtr metrics);

 private:
  const TenantRegistryConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  obs::MetricsPtr metrics_;
};

using TenantRegistryPtr = std::shared_ptr<TenantRegistry>;

}  // namespace entk::mq
