#include "src/mq/broker.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"
#include "src/mq/tenant.hpp"

namespace entk::mq {

std::size_t Broker::default_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 16);
}

Broker::Broker(std::string name, std::string journal_dir,
               JournalConfig journal, std::size_t shards)
    : name_(std::move(name)),
      journal_dir_(std::move(journal_dir)),
      journal_config_(journal) {
  if (shards == 0) shards = default_shards();
  shards_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->snapshot.store(std::make_shared<const QueueMap>(),
                          std::memory_order_release);
    if (!journal_dir_.empty()) {
      // Eager so an unwritable journal dir fails construction, not the
      // first durable publish.
      shard->journal =
          std::make_unique<JournalWriter>(journal_path(k), journal_config_);
    }
    shards_.push_back(std::move(shard));
  }
  partitions_.store(std::make_shared<const PartitionMap>(),
                    std::memory_order_release);
}

Broker::~Broker() {
  try {
    close();
  } catch (const MqError&) {
    // A sticky journal I/O error surfaces on explicit close()/append calls;
    // the destructor must stay noexcept.
  }
}

std::size_t Broker::shard_of(const std::string& queue) const {
  if (shards_.size() == 1) return 0;
  return std::hash<std::string>{}(queue) % shards_.size();
}

void Broker::set_metrics(obs::MetricsPtr metrics) {
  metrics_ = std::move(metrics);
  if (!metrics_) {
    m_ = {};
    journal_batch_size_ = nullptr;
    for (auto& shard : shards_) {
      shard->published = nullptr;
      if (shard->journal != nullptr) {
        shard->journal->set_batch_size_metric(nullptr);
      }
    }
    const std::shared_ptr<const PartitionMap> parts =
        partitions_.load(std::memory_order_acquire);
    for (const auto& [tenant, part] : *parts) {
      (void)tenant;
      for (auto& writer : part->writers) {
        writer->set_batch_size_metric(nullptr);
      }
    }
    return;
  }
  m_.published = &metrics_->counter("mq.published");
  m_.delivered = &metrics_->counter("mq.delivered");
  m_.acked = &metrics_->counter("mq.acked");
  m_.requeued = &metrics_->counter("mq.requeued");
  m_.get_empty = &metrics_->counter("mq.get_empty");
  m_.serialize_avoided = &metrics_->counter("mq.serialize_avoided");
  m_.publish_us = &metrics_->histogram("mq.publish_us");
  m_.get_us = &metrics_->histogram("mq.get_us");
  m_.ack_us = &metrics_->histogram("mq.ack_us");
  // Record-count bounds, not latency: each observation is the number of
  // journal records one group-commit flush wrote. The histogram is
  // thread-safe, so every shard journal shares it.
  obs::Histogram* batch_size =
      journal_dir_.empty()
          ? nullptr
          : &metrics_->histogram("mq.journal_batch_size",
                                 {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                  1024});
  journal_batch_size_ = batch_size;  // applied to future tenant partitions
  {
    const std::shared_ptr<const PartitionMap> parts =
        partitions_.load(std::memory_order_acquire);
    for (const auto& [tenant, part] : *parts) {
      (void)tenant;
      for (auto& writer : part->writers) {
        writer->set_batch_size_metric(batch_size);
      }
    }
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k]->journal != nullptr) {
      shards_[k]->journal->set_batch_size_metric(batch_size);
    }
    // Per-shard balance counters only make sense (and only appear) when
    // sharding is actually on, keeping the shards=1 metric surface
    // identical to the historical broker.
    shards_[k]->published =
        shards_.size() > 1
            ? &metrics_->counter("mq.shard" + std::to_string(k) +
                                 ".published")
            : nullptr;
  }
}

std::string Broker::journal_path(std::size_t shard) const {
  if (journal_dir_.empty()) return "";
  std::string path = journal_dir_ + "/" + name_ + ".journal";
  if (shard > 0) path += "." + std::to_string(shard);
  return path;
}

JournalWriter* Broker::journal_writer(std::size_t shard) {
  return shard < shards_.size() ? shards_[shard]->journal.get() : nullptr;
}

std::string Broker::partition_journal_path(const std::string& tenant,
                                           std::size_t shard) const {
  if (journal_dir_.empty() || tenant.empty()) return "";
  std::string path = journal_dir_ + "/" + tenant + "/" + name_ + ".journal";
  if (shard > 0) path += "." + std::to_string(shard);
  return path;
}

JournalWriter* Broker::journal_writer_for(std::size_t shard,
                                          const std::string& queue) const {
  const std::string tenant = tenant_of_queue(queue);
  if (tenant.empty()) return shards_[shard]->journal.get();
  const std::shared_ptr<const PartitionMap> parts =
      partitions_.load(std::memory_order_acquire);
  const auto it = parts->find(tenant);
  return it != parts->end() ? it->second->writers[shard].get() : nullptr;
}

void Broker::ensure_partition(const std::string& tenant) {
  if (journal_dir_.empty() || tenant.empty()) return;
  {
    const std::shared_ptr<const PartitionMap> parts =
        partitions_.load(std::memory_order_acquire);
    if (parts->count(tenant) > 0) return;
  }
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  const std::shared_ptr<const PartitionMap> parts =
      partitions_.load(std::memory_order_acquire);
  if (parts->count(tenant) > 0) return;  // lost the race: already created
  const std::string dir = journal_dir_ + "/" + tenant;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw MqError("broker: cannot create journal partition " + dir + ": " +
                  ec.message());
  }
  auto part = std::make_shared<Partition>();
  part->writers.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    auto writer = std::make_unique<JournalWriter>(
        partition_journal_path(tenant, k), journal_config_);
    writer->set_batch_size_metric(journal_batch_size_);
    part->writers.push_back(std::move(writer));
  }
  auto next = std::make_shared<PartitionMap>(*parts);
  next->emplace(tenant, std::move(part));
  partitions_.store(std::shared_ptr<const PartitionMap>(std::move(next)),
                    std::memory_order_release);
}

std::shared_ptr<Queue> Broker::find_queue(const std::string& queue,
                                          std::size_t shard) const {
  const std::shared_ptr<const QueueMap> map =
      shards_[shard]->snapshot.load(std::memory_order_acquire);
  const auto it = map->find(queue);
  return it != map->end() ? it->second : nullptr;
}

std::shared_ptr<Queue> Broker::queue_or_throw(const std::string& queue,
                                              std::size_t shard) const {
  std::shared_ptr<Queue> q = find_queue(queue, shard);
  if (q == nullptr) throw MqError("broker: no such queue '" + queue + "'");
  return q;
}

std::shared_ptr<Queue> Broker::declare_queue(const std::string& queue,
                                             QueueOptions options) {
  // A durable tenant-qualified queue journals into its tenant's partition;
  // create it before the queue becomes visible so the first publish finds
  // its writer. Outside the shard lock: partition creation does I/O.
  if (options.durable) ensure_partition(tenant_of_queue(queue));
  Shard& shard = *shards_[shard_of(queue)];
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (closed()) throw MqError("broker: closed");
  const std::shared_ptr<const QueueMap> map =
      shard.snapshot.load(std::memory_order_acquire);
  const auto it = map->find(queue);
  if (it != map->end()) {
    const QueueOptions& existing = it->second->options();
    if (existing.durable != options.durable ||
        existing.capacity != options.capacity) {
      throw MqError("broker: queue '" + queue +
                    "' re-declared with different options");
    }
    return it->second;
  }
  auto q = std::make_shared<Queue>(queue, options);
  // Copy-on-write: readers keep the old snapshot; the new map becomes
  // visible with one atomic store. Declares are rare, lookups are hot.
  auto next = std::make_shared<QueueMap>(*map);
  next->emplace(queue, q);
  shard.snapshot.store(std::shared_ptr<const QueueMap>(std::move(next)),
                       std::memory_order_release);
  return q;
}

std::shared_ptr<Queue> Broker::queue(const std::string& queue) const {
  return queue_or_throw(queue, shard_of(queue));
}

bool Broker::has_queue(const std::string& queue) const {
  return find_queue(queue, shard_of(queue)) != nullptr;
}

std::vector<std::string> Broker::queue_names() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    const std::shared_ptr<const QueueMap> map =
        shard->snapshot.load(std::memory_order_acquire);
    for (const auto& [name, q] : *map) {
      (void)q;
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t Broker::publish(const std::string& queue_name, Message msg) {
  if (closed()) throw MqError("broker: closed");
  const std::int64_t t0 = m_.publish_us != nullptr ? wall_now_us() : 0;
  const std::size_t shard = shard_of(queue_name);
  std::shared_ptr<Queue> q = queue_or_throw(queue_name, shard);
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  msg.seq = seq;
  msg.routing_key = queue_name;
  if (q->options().durable) {
    JournalWriter* writer = journal_writer_for(shard, queue_name);
    if (writer != nullptr) {
      json::Value rec;
      rec["op"] = "pub";
      rec["q"] = queue_name;
      rec["seq"] = seq;
      rec["headers"] = msg.headers;
      rec["body"] = msg.body();
      journal_append(writer, rec);
    }
  }
  if (!q->publish(std::move(msg)))
    throw MqError("broker: queue '" + queue_name + "' closed");
  if (shards_[shard]->published != nullptr) shards_[shard]->published->add(1);
  if (m_.publish_us != nullptr) {
    m_.published->add(1);
    m_.publish_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return seq;
}

std::uint64_t Broker::publish_batch(const std::string& queue_name,
                                    std::vector<Message> msgs) {
  if (msgs.empty()) return 0;
  if (closed()) throw MqError("broker: closed");
  const std::int64_t t0 = m_.publish_us != nullptr ? wall_now_us() : 0;
  const std::size_t shard = shard_of(queue_name);
  std::shared_ptr<Queue> q = queue_or_throw(queue_name, shard);
  // Reserve a contiguous sequence range so recovery order matches publish
  // order even when other publishers interleave.
  const std::uint64_t first =
      next_seq_.fetch_add(msgs.size(), std::memory_order_relaxed);
  std::uint64_t seq = first;
  for (Message& msg : msgs) {
    msg.seq = seq++;
    msg.routing_key = queue_name;
  }
  if (q->options().durable) {
    JournalWriter* writer = journal_writer_for(shard, queue_name);
    if (writer != nullptr) {
      std::vector<json::Value> records;
      records.reserve(msgs.size());
      for (const Message& msg : msgs) {
        json::Value rec;
        rec["op"] = "pub";
        rec["q"] = queue_name;
        rec["seq"] = msg.seq;
        rec["headers"] = msg.headers;
        rec["body"] = msg.body();
        records.push_back(std::move(rec));
      }
      journal_append_batch(writer, records);
    }
  }
  const std::size_t n = msgs.size();
  if (q->publish_batch(std::move(msgs)) < n)
    throw MqError("broker: queue '" + queue_name + "' closed");
  if (shards_[shard]->published != nullptr) shards_[shard]->published->add(n);
  if (m_.publish_us != nullptr) {
    m_.published->add(n);
    m_.publish_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return first;
}

std::optional<Delivery> Broker::get(const std::string& queue_name,
                                    double timeout_s) {
  const std::size_t shard = shard_of(queue_name);
  if (m_.get_us == nullptr) {
    return queue_or_throw(queue_name, shard)->get(timeout_s);
  }
  const std::int64_t t0 = wall_now_us();
  std::optional<Delivery> d = queue_or_throw(queue_name, shard)->get(timeout_s);
  if (d) {
    // Only successful gets feed the latency histogram; empty polls would
    // just measure the timeout.
    m_.delivered->add(1);
    // A structured payload delivered without rendered bytes crossed every
    // hop by refcount bump: the dump+parse pair the seed paid was avoided.
    if (d->message.has_payload() && !d->message.has_rendered_body()) {
      m_.serialize_avoided->add(1);
    }
    m_.get_us->observe(static_cast<double>(wall_now_us() - t0));
  } else {
    m_.get_empty->add(1);
  }
  return d;
}

std::vector<Delivery> Broker::get_batch(const std::string& queue_name,
                                        std::size_t max_n, double timeout_s) {
  const std::size_t shard = shard_of(queue_name);
  if (m_.get_us == nullptr) {
    return queue_or_throw(queue_name, shard)->get_batch(max_n, timeout_s);
  }
  const std::int64_t t0 = wall_now_us();
  std::vector<Delivery> out =
      queue_or_throw(queue_name, shard)->get_batch(max_n, timeout_s);
  if (!out.empty()) {
    m_.delivered->add(out.size());
    std::size_t avoided = 0;
    for (const Delivery& d : out) {
      if (d.message.has_payload() && !d.message.has_rendered_body())
        ++avoided;
    }
    if (avoided > 0) m_.serialize_avoided->add(avoided);
    m_.get_us->observe(static_cast<double>(wall_now_us() - t0));
  } else {
    m_.get_empty->add(1);
  }
  return out;
}

bool Broker::ack(const std::string& queue_name, std::uint64_t delivery_tag) {
  const std::int64_t t0 = m_.ack_us != nullptr ? wall_now_us() : 0;
  const std::size_t shard = shard_of(queue_name);
  auto q = queue_or_throw(queue_name, shard);
  const auto seq = q->ack(delivery_tag);
  if (!seq) return false;
  if (q->options().durable) {
    JournalWriter* writer = journal_writer_for(shard, queue_name);
    if (writer != nullptr) {
      json::Value rec;
      rec["op"] = "ack";
      rec["q"] = queue_name;
      rec["seq"] = *seq;
      journal_append(writer, rec);
    }
  }
  if (m_.ack_us != nullptr) {
    m_.acked->add(1);
    m_.ack_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return true;
}

std::size_t Broker::ack_batch(const std::string& queue_name,
                              const std::vector<std::uint64_t>& delivery_tags) {
  if (delivery_tags.empty()) return 0;
  const std::int64_t t0 = m_.ack_us != nullptr ? wall_now_us() : 0;
  const std::size_t shard = shard_of(queue_name);
  auto q = queue_or_throw(queue_name, shard);
  const std::vector<std::uint64_t> seqs = q->ack_batch(delivery_tags);
  if (!seqs.empty() && q->options().durable) {
    JournalWriter* writer = journal_writer_for(shard, queue_name);
    if (writer != nullptr) {
      std::vector<json::Value> records;
      records.reserve(seqs.size());
      for (const std::uint64_t seq : seqs) {
        json::Value rec;
        rec["op"] = "ack";
        rec["q"] = queue_name;
        rec["seq"] = seq;
        records.push_back(std::move(rec));
      }
      journal_append_batch(writer, records);
    }
  }
  if (m_.ack_us != nullptr && !seqs.empty()) {
    m_.acked->add(seqs.size());
    m_.ack_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return seqs.size();
}

bool Broker::nack(const std::string& queue_name, std::uint64_t delivery_tag,
                  bool requeue) {
  const std::size_t shard = shard_of(queue_name);
  auto q = queue_or_throw(queue_name, shard);
  const auto seq = q->nack(delivery_tag, requeue);
  if (!seq) return false;
  if (!requeue && q->options().durable) {
    JournalWriter* writer = journal_writer_for(shard, queue_name);
    if (writer != nullptr) {
      // A dropped message is final, like an ack, for recovery purposes.
      json::Value rec;
      rec["op"] = "ack";
      rec["q"] = queue_name;
      rec["seq"] = *seq;
      journal_append(writer, rec);
    }
  }
  if (requeue && m_.requeued != nullptr) m_.requeued->add(1);
  return true;
}

std::size_t Broker::requeue_unacked(const std::string& queue_name) {
  const std::size_t n =
      queue_or_throw(queue_name, shard_of(queue_name))->requeue_unacked();
  if (n > 0 && m_.requeued != nullptr) m_.requeued->add(n);
  return n;
}

std::shared_ptr<Exchange> Broker::declare_exchange(const std::string& name,
                                                   ExchangeType type) {
  std::unique_lock<std::shared_mutex> lock(exchange_mutex_);
  if (closed()) throw MqError("broker: closed");
  const auto it = exchanges_.find(name);
  if (it != exchanges_.end()) {
    if (it->second->type() != type) {
      throw MqError("broker: exchange '" + name +
                    "' re-declared with different type");
    }
    return it->second;
  }
  auto ex = std::make_shared<Exchange>(name, type);
  exchanges_.emplace(name, ex);
  return ex;
}

std::shared_ptr<Exchange> Broker::exchange(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(exchange_mutex_);
  const auto it = exchanges_.find(name);
  if (it == exchanges_.end()) {
    throw MqError("broker: no such exchange '" + name + "'");
  }
  return it->second;
}

void Broker::bind_queue(const std::string& exchange_name,
                        const std::string& queue_name,
                        const std::string& binding_key) {
  auto ex = exchange(exchange_name);
  if (!has_queue(queue_name)) {
    throw MqError("broker: no such queue '" + queue_name + "'");
  }
  ex->bind(queue_name, binding_key);
}

std::size_t Broker::publish_to_exchange(const std::string& exchange_name,
                                        const std::string& routing_key,
                                        Message msg) {
  auto ex = exchange(exchange_name);
  std::size_t delivered = 0;
  for (const std::string& queue_name : ex->route(routing_key)) {
    Message copy = msg;
    publish(queue_name, std::move(copy));
    ++delivered;
  }
  return delivered;
}

void Broker::delete_queue(const std::string& queue_name) {
  Shard& shard = *shards_[shard_of(queue_name)];
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  const std::shared_ptr<const QueueMap> map =
      shard.snapshot.load(std::memory_order_acquire);
  const auto it = map->find(queue_name);
  if (it == map->end()) return;
  it->second->close();
  auto next = std::make_shared<QueueMap>(*map);
  next->erase(queue_name);
  shard.snapshot.store(std::shared_ptr<const QueueMap>(std::move(next)),
                       std::memory_order_release);
}

void Broker::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    const std::shared_ptr<const QueueMap> map =
        shard->snapshot.load(std::memory_order_acquire);
    for (const auto& [name, q] : *map) {
      (void)name;
      q->close();
    }
  }
  // Final journal drain: a cleanly closed broker leaves every journaled
  // record on disk. Throws MqError when any shard's drain (or an earlier
  // flush) failed, so callers learn their durable backlog may be
  // incomplete; all shards are closed before the first error is rethrown.
  std::string first_error;
  for (auto& shard : shards_) {
    if (shard->journal == nullptr) continue;
    try {
      shard->journal->close();
    } catch (const MqError& e) {
      if (first_error.empty()) first_error = e.what();
    }
  }
  const std::shared_ptr<const PartitionMap> parts =
      partitions_.load(std::memory_order_acquire);
  for (const auto& [tenant, part] : *parts) {
    (void)tenant;
    for (auto& writer : part->writers) {
      try {
        writer->close();
      } catch (const MqError& e) {
        if (first_error.empty()) first_error = e.what();
      }
    }
  }
  if (!first_error.empty()) throw MqError(first_error);
}

std::string Broker::health() const {
  for (const auto& shard : shards_) {
    if (shard->journal == nullptr) continue;
    const std::string err = shard->journal->error();
    if (!err.empty()) return err;
  }
  const std::shared_ptr<const PartitionMap> parts =
      partitions_.load(std::memory_order_acquire);
  for (const auto& [tenant, part] : *parts) {
    (void)tenant;
    for (const auto& writer : part->writers) {
      const std::string err = writer->error();
      if (!err.empty()) return err;
    }
  }
  return "";
}

BrokerStats Broker::stats() const {
  BrokerStats s;
  for (const auto& shard : shards_) {
    const std::shared_ptr<const QueueMap> map =
        shard->snapshot.load(std::memory_order_acquire);
    s.queues += map->size();
    for (const auto& [name, q] : *map) {
      (void)name;
      const QueueStats qs = q->stats();
      s.published += qs.published;
      s.delivered += qs.delivered;
      s.acked += qs.acked;
    }
  }
  return s;
}

std::vector<QueueDepth> Broker::depth_snapshot() const {
  std::vector<std::shared_ptr<Queue>> queues;
  for (const auto& shard : shards_) {
    const std::shared_ptr<const QueueMap> map =
        shard->snapshot.load(std::memory_order_acquire);
    for (const auto& [name, q] : *map) {
      (void)name;
      queues.push_back(q);
    }
  }
  std::vector<QueueDepth> out;
  out.reserve(queues.size());
  for (const auto& q : queues) out.push_back(q->depth());
  // Name order, not shard order: the snapshot is identical at every shard
  // count (parity with the historical single-map iteration order).
  std::sort(out.begin(), out.end(),
            [](const QueueDepth& a, const QueueDepth& b) {
              return a.queue < b.queue;
            });
  return out;
}

std::vector<QueueDepth> Broker::depth_snapshot(
    const std::string& prefix) const {
  if (prefix.empty()) return depth_snapshot();
  std::vector<std::shared_ptr<Queue>> queues;
  for (const auto& shard : shards_) {
    const std::shared_ptr<const QueueMap> map =
        shard->snapshot.load(std::memory_order_acquire);
    // Each shard map is name-ordered: jump to the first candidate and stop
    // at the first non-match, so only the matching range is walked.
    for (auto it = map->lower_bound(prefix);
         it != map->end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      queues.push_back(it->second);
    }
  }
  std::vector<QueueDepth> out;
  out.reserve(queues.size());
  for (const auto& q : queues) out.push_back(q->depth());
  std::sort(out.begin(), out.end(),
            [](const QueueDepth& a, const QueueDepth& b) {
              return a.queue < b.queue;
            });
  return out;
}

void Broker::journal_append(JournalWriter* writer,
                            const json::Value& record) {
  // JournalWriter::append throws MqError on short writes / flush failures,
  // so a failing disk surfaces to the publisher instead of being dropped.
  writer->append(record.dump());
}

void Broker::journal_append_batch(JournalWriter* writer,
                                  const std::vector<json::Value>& records) {
  // The records land in one commit segment; the group-commit flusher pays
  // one fwrite + one fflush for the whole batch (or more, merged with
  // concurrent publishers' records).
  std::string buffer;
  for (const json::Value& record : records) {
    buffer += record.dump();
    buffer += '\n';
  }
  if (!buffer.empty()) buffer.pop_back();  // append() adds the newline
  writer->append(buffer, records.size());
}

std::size_t Broker::recover(const std::string& path) {
  // The journal is a file *set*: `path` (shard 0) plus any "<path>.K"
  // siblings a multi-shard writer left behind, plus — layout-aware — any
  // tenant partition "<dirname>/<tenant>/<basename>[.K]" a multi-tenant
  // daemon wrote. A queue's pub and its ack can live in different files
  // when the shard count changed between restarts, so replay is
  // two-phase: gather every pub and every ack across all files first,
  // subtract, then restore.
  std::map<std::string, std::map<std::uint64_t, Message>> pending;
  std::vector<std::pair<std::string, std::uint64_t>> acked;
  bool any_opened = false;
  const auto replay_set = [&](const std::string& base) {
    for (std::size_t k = 0;; ++k) {
      const std::string file =
          k == 0 ? base : base + "." + std::to_string(k);
      std::ifstream in(file);
      if (!in) break;  // contiguous numbering: first missing ends the set
      any_opened = true;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        json::Value rec;
        try {
          rec = json::parse(line);
        } catch (const json::ParseError&) {
          // A torn final line (crash mid-write) is expected; stop reading
          // this shard file — siblings tore (or not) independently.
          ENTK_WARN("broker") << "journal: skipping torn record in " << file;
          break;
        }
        const std::string op = rec.get_string("op", "");
        const std::string qname = rec.get_string("q", "");
        const auto seq = static_cast<std::uint64_t>(rec.get_int("seq", 0));
        if (op == "pub") {
          Message m;
          m.seq = seq;
          m.routing_key = qname;
          if (rec.contains("headers")) m.headers = rec.at("headers");
          m.set_body(rec.get_string("body", ""));
          pending[qname].emplace(seq, std::move(m));
        } else if (op == "ack") {
          acked.emplace_back(qname, seq);
        }
      }
    }
  };
  replay_set(path);
  // Tenant partitions: subdirectories of dirname(path) holding a journal
  // with the same basename. Queue names inside are already
  // tenant-qualified, so replaying them into the shared two-phase pass
  // restores each tenant's backlog under its own namespace.
  {
    namespace fs = std::filesystem;
    const fs::path base(path);
    const fs::path dir =
        base.has_parent_path() ? base.parent_path() : fs::path(".");
    std::error_code ec;
    std::vector<fs::path> partition_files;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      std::error_code type_ec;
      if (!it->is_directory(type_ec) || type_ec) continue;
      // Only directories the write side could have created as partitions
      // (names that are valid tenant ids) are replayed — a ".backup",
      // "snap~" or otherwise non-token-named copy of the journal sitting
      // next to it must not reappear as phantom live messages. A stray
      // valid-id-shaped directory is indistinguishable from a real
      // partition; keep foreign data out of the journal tree.
      const std::string dirname = it->path().filename().string();
      if (dirname.empty() || !valid_tenant_id(dirname)) continue;
      const fs::path candidate = it->path() / base.filename();
      std::error_code exists_ec;
      if (fs::exists(candidate, exists_ec) && !exists_ec) {
        partition_files.push_back(candidate);
      }
    }
    // Directory iteration order is unspecified; sort so recovery is
    // deterministic across filesystems.
    std::sort(partition_files.begin(), partition_files.end());
    for (const fs::path& file : partition_files) {
      replay_set(file.string());
    }
  }
  if (!any_opened) {
    throw MqError("broker: cannot read journal " + path);
  }
  for (const auto& [qname, seq] : acked) {
    auto it = pending.find(qname);
    if (it != pending.end()) it->second.erase(seq);
  }
  std::size_t restored = 0;
  for (auto& [qname, msgs] : pending) {
    auto q = declare_queue(qname, QueueOptions{.durable = true});
    for (auto& [seq, msg] : msgs) {
      std::uint64_t expected = next_seq_.load(std::memory_order_relaxed);
      while (expected <= seq &&
             !next_seq_.compare_exchange_weak(expected, seq + 1,
                                              std::memory_order_relaxed)) {
      }
      q->publish(std::move(msg));
      ++restored;
    }
  }
  return restored;
}

}  // namespace entk::mq
