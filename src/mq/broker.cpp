#include "src/mq/broker.hpp"

#include <cstdio>
#include <fstream>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk::mq {

Broker::Broker(std::string name, std::string journal_dir,
               JournalConfig journal)
    : name_(std::move(name)),
      journal_dir_(std::move(journal_dir)),
      journal_config_(journal) {
  if (!journal_dir_.empty()) {
    journal_ = std::make_unique<JournalWriter>(journal_path(),
                                               journal_config_);
  }
}

Broker::~Broker() {
  try {
    close();
  } catch (const MqError&) {
    // A sticky journal I/O error surfaces on explicit close()/append calls;
    // the destructor must stay noexcept.
  }
}

void Broker::set_metrics(obs::MetricsPtr metrics) {
  metrics_ = std::move(metrics);
  if (!metrics_) {
    m_ = {};
    if (journal_ != nullptr) journal_->set_batch_size_metric(nullptr);
    return;
  }
  m_.published = &metrics_->counter("mq.published");
  m_.delivered = &metrics_->counter("mq.delivered");
  m_.acked = &metrics_->counter("mq.acked");
  m_.requeued = &metrics_->counter("mq.requeued");
  m_.get_empty = &metrics_->counter("mq.get_empty");
  m_.serialize_avoided = &metrics_->counter("mq.serialize_avoided");
  m_.publish_us = &metrics_->histogram("mq.publish_us");
  m_.get_us = &metrics_->histogram("mq.get_us");
  m_.ack_us = &metrics_->histogram("mq.ack_us");
  if (journal_ != nullptr) {
    // Record-count bounds, not latency: each observation is the number of
    // journal records one group-commit flush wrote.
    journal_->set_batch_size_metric(&metrics_->histogram(
        "mq.journal_batch_size",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}));
  }
}

std::string Broker::journal_path() const {
  if (journal_dir_.empty()) return "";
  return journal_dir_ + "/" + name_ + ".journal";
}

std::shared_ptr<Queue> Broker::declare_queue(const std::string& queue,
                                             QueueOptions options) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (closed()) throw MqError("broker: closed");
  const auto it = queues_.find(queue);
  if (it != queues_.end()) {
    const QueueOptions& existing = it->second->options();
    if (existing.durable != options.durable ||
        existing.capacity != options.capacity) {
      throw MqError("broker: queue '" + queue +
                    "' re-declared with different options");
    }
    return it->second;
  }
  auto q = std::make_shared<Queue>(queue, options);
  queues_.emplace(queue, q);
  return q;
}

std::shared_ptr<Queue> Broker::queue_or_throw(const std::string& queue) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = queues_.find(queue);
  if (it == queues_.end())
    throw MqError("broker: no such queue '" + queue + "'");
  return it->second;
}

std::shared_ptr<Queue> Broker::queue(const std::string& queue) const {
  return queue_or_throw(queue);
}

bool Broker::has_queue(const std::string& queue) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return queues_.count(queue) > 0;
}

std::vector<std::string> Broker::queue_names() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(queues_.size());
  for (const auto& [name, q] : queues_) {
    (void)q;
    out.push_back(name);
  }
  return out;
}

std::uint64_t Broker::publish(const std::string& queue_name, Message msg) {
  if (closed()) throw MqError("broker: closed");
  const std::int64_t t0 = m_.publish_us != nullptr ? wall_now_us() : 0;
  std::shared_ptr<Queue> q = queue_or_throw(queue_name);
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  msg.seq = seq;
  msg.routing_key = queue_name;
  if (q->options().durable && journal_ != nullptr) {
    json::Value rec;
    rec["op"] = "pub";
    rec["q"] = queue_name;
    rec["seq"] = seq;
    rec["headers"] = msg.headers;
    rec["body"] = msg.body();
    journal_append(rec);
  }
  if (!q->publish(std::move(msg)))
    throw MqError("broker: queue '" + queue_name + "' closed");
  if (m_.publish_us != nullptr) {
    m_.published->add(1);
    m_.publish_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return seq;
}

std::uint64_t Broker::publish_batch(const std::string& queue_name,
                                    std::vector<Message> msgs) {
  if (msgs.empty()) return 0;
  if (closed()) throw MqError("broker: closed");
  const std::int64_t t0 = m_.publish_us != nullptr ? wall_now_us() : 0;
  std::shared_ptr<Queue> q = queue_or_throw(queue_name);
  // Reserve a contiguous sequence range so recovery order matches publish
  // order even when other publishers interleave.
  const std::uint64_t first =
      next_seq_.fetch_add(msgs.size(), std::memory_order_relaxed);
  std::uint64_t seq = first;
  for (Message& msg : msgs) {
    msg.seq = seq++;
    msg.routing_key = queue_name;
  }
  if (q->options().durable && journal_ != nullptr) {
    std::vector<json::Value> records;
    records.reserve(msgs.size());
    for (const Message& msg : msgs) {
      json::Value rec;
      rec["op"] = "pub";
      rec["q"] = queue_name;
      rec["seq"] = msg.seq;
      rec["headers"] = msg.headers;
      rec["body"] = msg.body();
      records.push_back(std::move(rec));
    }
    journal_append_batch(records);
  }
  const std::size_t n = msgs.size();
  if (q->publish_batch(std::move(msgs)) < n)
    throw MqError("broker: queue '" + queue_name + "' closed");
  if (m_.publish_us != nullptr) {
    m_.published->add(n);
    m_.publish_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return first;
}

std::optional<Delivery> Broker::get(const std::string& queue_name,
                                    double timeout_s) {
  if (m_.get_us == nullptr) return queue_or_throw(queue_name)->get(timeout_s);
  const std::int64_t t0 = wall_now_us();
  std::optional<Delivery> d = queue_or_throw(queue_name)->get(timeout_s);
  if (d) {
    // Only successful gets feed the latency histogram; empty polls would
    // just measure the timeout.
    m_.delivered->add(1);
    // A structured payload delivered without rendered bytes crossed every
    // hop by refcount bump: the dump+parse pair the seed paid was avoided.
    if (d->message.has_payload() && !d->message.has_rendered_body()) {
      m_.serialize_avoided->add(1);
    }
    m_.get_us->observe(static_cast<double>(wall_now_us() - t0));
  } else {
    m_.get_empty->add(1);
  }
  return d;
}

std::vector<Delivery> Broker::get_batch(const std::string& queue_name,
                                        std::size_t max_n, double timeout_s) {
  if (m_.get_us == nullptr) {
    return queue_or_throw(queue_name)->get_batch(max_n, timeout_s);
  }
  const std::int64_t t0 = wall_now_us();
  std::vector<Delivery> out =
      queue_or_throw(queue_name)->get_batch(max_n, timeout_s);
  if (!out.empty()) {
    m_.delivered->add(out.size());
    std::size_t avoided = 0;
    for (const Delivery& d : out) {
      if (d.message.has_payload() && !d.message.has_rendered_body())
        ++avoided;
    }
    if (avoided > 0) m_.serialize_avoided->add(avoided);
    m_.get_us->observe(static_cast<double>(wall_now_us() - t0));
  } else {
    m_.get_empty->add(1);
  }
  return out;
}

bool Broker::ack(const std::string& queue_name, std::uint64_t delivery_tag) {
  const std::int64_t t0 = m_.ack_us != nullptr ? wall_now_us() : 0;
  auto q = queue_or_throw(queue_name);
  const auto seq = q->ack(delivery_tag);
  if (!seq) return false;
  if (q->options().durable && journal_ != nullptr) {
    json::Value rec;
    rec["op"] = "ack";
    rec["q"] = queue_name;
    rec["seq"] = *seq;
    journal_append(rec);
  }
  if (m_.ack_us != nullptr) {
    m_.acked->add(1);
    m_.ack_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return true;
}

std::size_t Broker::ack_batch(const std::string& queue_name,
                              const std::vector<std::uint64_t>& delivery_tags) {
  if (delivery_tags.empty()) return 0;
  const std::int64_t t0 = m_.ack_us != nullptr ? wall_now_us() : 0;
  auto q = queue_or_throw(queue_name);
  const std::vector<std::uint64_t> seqs = q->ack_batch(delivery_tags);
  if (!seqs.empty() && q->options().durable && journal_ != nullptr) {
    std::vector<json::Value> records;
    records.reserve(seqs.size());
    for (const std::uint64_t seq : seqs) {
      json::Value rec;
      rec["op"] = "ack";
      rec["q"] = queue_name;
      rec["seq"] = seq;
      records.push_back(std::move(rec));
    }
    journal_append_batch(records);
  }
  if (m_.ack_us != nullptr && !seqs.empty()) {
    m_.acked->add(seqs.size());
    m_.ack_us->observe(static_cast<double>(wall_now_us() - t0));
  }
  return seqs.size();
}

bool Broker::nack(const std::string& queue_name, std::uint64_t delivery_tag,
                  bool requeue) {
  auto q = queue_or_throw(queue_name);
  const auto seq = q->nack(delivery_tag, requeue);
  if (!seq) return false;
  if (!requeue && q->options().durable && journal_ != nullptr) {
    // A dropped message is final, like an ack, for recovery purposes.
    json::Value rec;
    rec["op"] = "ack";
    rec["q"] = queue_name;
    rec["seq"] = *seq;
    journal_append(rec);
  }
  if (requeue && m_.requeued != nullptr) m_.requeued->add(1);
  return true;
}

std::size_t Broker::requeue_unacked(const std::string& queue_name) {
  const std::size_t n = queue_or_throw(queue_name)->requeue_unacked();
  if (n > 0 && m_.requeued != nullptr) m_.requeued->add(n);
  return n;
}

std::shared_ptr<Exchange> Broker::declare_exchange(const std::string& name,
                                                   ExchangeType type) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (closed()) throw MqError("broker: closed");
  const auto it = exchanges_.find(name);
  if (it != exchanges_.end()) {
    if (it->second->type() != type) {
      throw MqError("broker: exchange '" + name +
                    "' re-declared with different type");
    }
    return it->second;
  }
  auto ex = std::make_shared<Exchange>(name, type);
  exchanges_.emplace(name, ex);
  return ex;
}

std::shared_ptr<Exchange> Broker::exchange(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = exchanges_.find(name);
  if (it == exchanges_.end()) {
    throw MqError("broker: no such exchange '" + name + "'");
  }
  return it->second;
}

void Broker::bind_queue(const std::string& exchange_name,
                        const std::string& queue_name,
                        const std::string& binding_key) {
  auto ex = exchange(exchange_name);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (queues_.count(queue_name) == 0) {
      throw MqError("broker: no such queue '" + queue_name + "'");
    }
  }
  ex->bind(queue_name, binding_key);
}

std::size_t Broker::publish_to_exchange(const std::string& exchange_name,
                                        const std::string& routing_key,
                                        Message msg) {
  auto ex = exchange(exchange_name);
  std::size_t delivered = 0;
  for (const std::string& queue_name : ex->route(routing_key)) {
    Message copy = msg;
    publish(queue_name, std::move(copy));
    ++delivered;
  }
  return delivered;
}

void Broker::delete_queue(const std::string& queue_name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = queues_.find(queue_name);
  if (it == queues_.end()) return;
  it->second->close();
  queues_.erase(it);
}

void Broker::close() {
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    for (auto& [name, q] : queues_) {
      (void)name;
      q->close();
    }
  }
  // Final journal drain: a cleanly closed broker leaves every journaled
  // record on disk. Throws MqError when the drain (or any earlier flush)
  // failed, so callers learn their durable backlog may be incomplete.
  if (journal_ != nullptr) journal_->close();
}

std::string Broker::health() const {
  if (journal_ == nullptr) return "";
  return journal_->error();
}

BrokerStats Broker::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  BrokerStats s;
  s.queues = queues_.size();
  for (const auto& [name, q] : queues_) {
    (void)name;
    const QueueStats qs = q->stats();
    s.published += qs.published;
    s.delivered += qs.delivered;
    s.acked += qs.acked;
  }
  return s;
}

std::vector<QueueDepth> Broker::depth_snapshot() const {
  std::vector<std::shared_ptr<Queue>> queues;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    queues.reserve(queues_.size());
    for (const auto& [name, q] : queues_) {
      (void)name;
      queues.push_back(q);
    }
  }
  std::vector<QueueDepth> out;
  out.reserve(queues.size());
  for (const auto& q : queues) out.push_back(q->depth());
  return out;
}

void Broker::journal_append(const json::Value& record) {
  if (journal_ == nullptr) return;
  // JournalWriter::append throws MqError on short writes / flush failures,
  // so a failing disk surfaces to the publisher instead of being dropped.
  journal_->append(record.dump());
}

void Broker::journal_append_batch(const std::vector<json::Value>& records) {
  if (journal_ == nullptr) return;
  // The records land in one commit segment; the group-commit flusher pays
  // one fwrite + one fflush for the whole batch (or more, merged with
  // concurrent publishers' records).
  std::string buffer;
  for (const json::Value& record : records) {
    buffer += record.dump();
    buffer += '\n';
  }
  if (!buffer.empty()) buffer.pop_back();  // append() adds the newline
  journal_->append(buffer, records.size());
}

std::size_t Broker::recover(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MqError("broker: cannot read journal " + path);
  std::size_t restored = 0;
  std::string line;
  // First pass happens inline: maintain per-queue pending maps.
  std::map<std::string, std::map<std::uint64_t, Message>> pending;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value rec;
    try {
      rec = json::parse(line);
    } catch (const json::ParseError&) {
      // A torn final line (crash mid-write) is expected; stop there.
      ENTK_WARN("broker") << "journal: skipping torn record";
      break;
    }
    const std::string op = rec.get_string("op", "");
    const std::string qname = rec.get_string("q", "");
    const auto seq = static_cast<std::uint64_t>(rec.get_int("seq", 0));
    if (op == "pub") {
      Message m;
      m.seq = seq;
      m.routing_key = qname;
      if (rec.contains("headers")) m.headers = rec.at("headers");
      m.set_body(rec.get_string("body", ""));
      pending[qname].emplace(seq, std::move(m));
    } else if (op == "ack") {
      auto it = pending.find(qname);
      if (it != pending.end()) it->second.erase(seq);
    }
  }
  for (auto& [qname, msgs] : pending) {
    auto q = declare_queue(qname, QueueOptions{.durable = true});
    for (auto& [seq, msg] : msgs) {
      std::uint64_t expected = next_seq_.load(std::memory_order_relaxed);
      while (expected <= seq &&
             !next_seq_.compare_exchange_weak(expected, seq + 1,
                                              std::memory_order_relaxed)) {
      }
      q->publish(std::move(msg));
      ++restored;
    }
  }
  return restored;
}

}  // namespace entk::mq
