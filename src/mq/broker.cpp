#include "src/mq/broker.hpp"

#include <cstdio>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk::mq {

Broker::Broker(std::string name, std::string journal_dir)
    : name_(std::move(name)), journal_dir_(std::move(journal_dir)) {
  if (!journal_dir_.empty()) {
    const std::string path = journal_path();
    journal_file_ = std::fopen(path.c_str(), "a");
    if (journal_file_ == nullptr)
      throw MqError("broker: cannot open journal " + path);
  }
}

Broker::~Broker() {
  close();
  if (journal_file_ != nullptr) std::fclose(journal_file_);
}

std::string Broker::journal_path() const {
  if (journal_dir_.empty()) return "";
  return journal_dir_ + "/" + name_ + ".journal";
}

std::shared_ptr<Queue> Broker::declare_queue(const std::string& queue,
                                             QueueOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) throw MqError("broker: closed");
  const auto it = queues_.find(queue);
  if (it != queues_.end()) {
    const QueueOptions& existing = it->second->options();
    if (existing.durable != options.durable ||
        existing.capacity != options.capacity) {
      throw MqError("broker: queue '" + queue +
                    "' re-declared with different options");
    }
    return it->second;
  }
  auto q = std::make_shared<Queue>(queue, options);
  queues_.emplace(queue, q);
  return q;
}

std::shared_ptr<Queue> Broker::queue(const std::string& queue) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = queues_.find(queue);
  if (it == queues_.end()) throw MqError("broker: no such queue '" + queue + "'");
  return it->second;
}

bool Broker::has_queue(const std::string& queue) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_.count(queue) > 0;
}

std::vector<std::string> Broker::queue_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(queues_.size());
  for (const auto& [name, q] : queues_) {
    (void)q;
    out.push_back(name);
  }
  return out;
}

std::uint64_t Broker::publish(const std::string& queue_name, Message msg) {
  std::shared_ptr<Queue> q;
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw MqError("broker: closed");
    const auto it = queues_.find(queue_name);
    if (it == queues_.end())
      throw MqError("broker: no such queue '" + queue_name + "'");
    q = it->second;
    seq = next_seq_++;
  }
  msg.seq = seq;
  msg.routing_key = queue_name;
  if (q->options().durable && journal_file_ != nullptr) {
    json::Value rec;
    rec["op"] = "pub";
    rec["q"] = queue_name;
    rec["seq"] = seq;
    rec["headers"] = msg.headers;
    rec["body"] = msg.body;
    journal_append(rec);
  }
  if (!q->publish(std::move(msg)))
    throw MqError("broker: queue '" + queue_name + "' closed");
  return seq;
}

std::optional<Delivery> Broker::get(const std::string& queue_name,
                                    double timeout_s) {
  return queue(queue_name)->get(timeout_s);
}

bool Broker::ack(const std::string& queue_name, std::uint64_t delivery_tag) {
  auto q = queue(queue_name);
  const auto seq = q->ack(delivery_tag);
  if (!seq) return false;
  if (q->options().durable && journal_file_ != nullptr) {
    json::Value rec;
    rec["op"] = "ack";
    rec["q"] = queue_name;
    rec["seq"] = *seq;
    journal_append(rec);
  }
  return true;
}

bool Broker::nack(const std::string& queue_name, std::uint64_t delivery_tag,
                  bool requeue) {
  auto q = queue(queue_name);
  const auto seq = q->nack(delivery_tag, requeue);
  if (!seq) return false;
  if (!requeue && q->options().durable && journal_file_ != nullptr) {
    // A dropped message is final, like an ack, for recovery purposes.
    json::Value rec;
    rec["op"] = "ack";
    rec["q"] = queue_name;
    rec["seq"] = *seq;
    journal_append(rec);
  }
  return true;
}

std::shared_ptr<Exchange> Broker::declare_exchange(const std::string& name,
                                                   ExchangeType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) throw MqError("broker: closed");
  const auto it = exchanges_.find(name);
  if (it != exchanges_.end()) {
    if (it->second->type() != type) {
      throw MqError("broker: exchange '" + name +
                    "' re-declared with different type");
    }
    return it->second;
  }
  auto ex = std::make_shared<Exchange>(name, type);
  exchanges_.emplace(name, ex);
  return ex;
}

std::shared_ptr<Exchange> Broker::exchange(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = exchanges_.find(name);
  if (it == exchanges_.end()) {
    throw MqError("broker: no such exchange '" + name + "'");
  }
  return it->second;
}

void Broker::bind_queue(const std::string& exchange_name,
                        const std::string& queue_name,
                        const std::string& binding_key) {
  auto ex = exchange(exchange_name);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queues_.count(queue_name) == 0) {
      throw MqError("broker: no such queue '" + queue_name + "'");
    }
  }
  ex->bind(queue_name, binding_key);
}

std::size_t Broker::publish_to_exchange(const std::string& exchange_name,
                                        const std::string& routing_key,
                                        Message msg) {
  auto ex = exchange(exchange_name);
  std::size_t delivered = 0;
  for (const std::string& queue_name : ex->route(routing_key)) {
    Message copy = msg;
    publish(queue_name, std::move(copy));
    ++delivered;
  }
  return delivered;
}

void Broker::delete_queue(const std::string& queue_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = queues_.find(queue_name);
  if (it == queues_.end()) return;
  it->second->close();
  queues_.erase(it);
}

void Broker::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  for (auto& [name, q] : queues_) {
    (void)name;
    q->close();
  }
}

bool Broker::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

BrokerStats Broker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BrokerStats s;
  s.queues = queues_.size();
  for (const auto& [name, q] : queues_) {
    (void)name;
    const QueueStats qs = q->stats();
    s.published += qs.published;
    s.delivered += qs.delivered;
    s.acked += qs.acked;
  }
  return s;
}

void Broker::journal_append(const json::Value& record) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (journal_file_ == nullptr) return;
  const std::string line = record.dump();
  std::fwrite(line.data(), 1, line.size(), journal_file_);
  std::fputc('\n', journal_file_);
  std::fflush(journal_file_);
}

std::size_t Broker::recover(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MqError("broker: cannot read journal " + path);
  std::size_t restored = 0;
  std::string line;
  // First pass happens inline: maintain per-queue pending maps.
  std::map<std::string, std::map<std::uint64_t, Message>> pending;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value rec;
    try {
      rec = json::parse(line);
    } catch (const json::ParseError&) {
      // A torn final line (crash mid-write) is expected; stop there.
      ENTK_WARN("broker") << "journal: skipping torn record";
      break;
    }
    const std::string op = rec.get_string("op", "");
    const std::string qname = rec.get_string("q", "");
    const auto seq = static_cast<std::uint64_t>(rec.get_int("seq", 0));
    if (op == "pub") {
      Message m;
      m.seq = seq;
      m.routing_key = qname;
      if (rec.contains("headers")) m.headers = rec.at("headers");
      m.body = rec.get_string("body", "");
      pending[qname].emplace(seq, std::move(m));
    } else if (op == "ack") {
      auto it = pending.find(qname);
      if (it != pending.end()) it->second.erase(seq);
    }
  }
  for (auto& [qname, msgs] : pending) {
    auto q = declare_queue(qname, QueueOptions{.durable = true});
    for (auto& [seq, msg] : msgs) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (next_seq_ <= seq) next_seq_ = seq + 1;
      }
      q->publish(std::move(msg));
      ++restored;
    }
  }
  return restored;
}

}  // namespace entk::mq
