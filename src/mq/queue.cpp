#include "src/mq/queue.hpp"

#include <algorithm>
#include <chrono>

namespace entk::mq {

Queue::Queue(std::string name, QueueOptions options)
    : name_(std::move(name)), options_(options) {}

bool Queue::publish(Message msg) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (options_.capacity > 0) {
    cv_capacity_.wait(lock, [this] {
      return closed_ || ready_.size() < options_.capacity;
    });
  }
  if (closed_) return false;
  bytes_ready_ += msg.approx_size();
  ready_.push_back(std::move(msg));
  ++stats_.published;
  stats_.ready = ready_.size();
  cv_ready_.notify_one();
  return true;
}

std::size_t Queue::publish_batch(std::vector<Message> msgs) {
  if (msgs.empty()) return 0;
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t published = 0;
  for (Message& msg : msgs) {
    if (options_.capacity > 0) {
      cv_capacity_.wait(lock, [this] {
        return closed_ || ready_.size() < options_.capacity;
      });
    }
    if (closed_) break;
    bytes_ready_ += msg.approx_size();
    ready_.push_back(std::move(msg));
    ++published;
  }
  stats_.published += published;
  stats_.ready = ready_.size();
  if (published == 1) {
    cv_ready_.notify_one();
  } else if (published > 1) {
    cv_ready_.notify_all();
  }
  return published;
}

Delivery Queue::pop_locked() {
  Delivery d;
  d.delivery_tag = next_tag_++;
  const std::size_t sz = ready_.front().approx_size();
  bytes_ready_ -= std::min(bytes_ready_, sz);
  bytes_unacked_ += sz;
  d.message = std::move(ready_.front());
  ready_.pop_front();
  // Retaining the message for ack/requeue accounting copies only the small
  // envelope; the body is shared (see Message).
  unacked_.emplace(d.delivery_tag, d.message);
  ++stats_.delivered;
  return d;
}

std::optional<Delivery> Queue::get(double timeout_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (ready_.empty()) {
    if (timeout_s <= 0.0) return std::nullopt;  // polling path: no deadline
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::duration<double>(timeout_s));
    cv_ready_.wait_until(lock, deadline,
                         [this] { return closed_ || !ready_.empty(); });
    if (ready_.empty()) return std::nullopt;
  }
  Delivery d = pop_locked();
  stats_.ready = ready_.size();
  stats_.unacked = unacked_.size();
  cv_capacity_.notify_one();
  return d;
}

std::vector<Delivery> Queue::get_batch(std::size_t max_n, double timeout_s) {
  std::vector<Delivery> out;
  if (max_n == 0) return out;
  std::unique_lock<std::mutex> lock(mutex_);
  if (ready_.empty() && timeout_s > 0.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::duration<double>(timeout_s));
    cv_ready_.wait_until(lock, deadline,
                         [this] { return closed_ || !ready_.empty(); });
  }
  const std::size_t n = std::min(max_n, ready_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(pop_locked());
  if (n > 0) {
    stats_.ready = ready_.size();
    stats_.unacked = unacked_.size();
    if (n == 1) {
      cv_capacity_.notify_one();
    } else {
      cv_capacity_.notify_all();
    }
  }
  return out;
}

std::optional<Delivery> Queue::try_get() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ready_.empty()) return std::nullopt;
  Delivery d = pop_locked();
  stats_.ready = ready_.size();
  stats_.unacked = unacked_.size();
  cv_capacity_.notify_one();
  return d;
}

std::optional<std::uint64_t> Queue::ack(std::uint64_t delivery_tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = unacked_.find(delivery_tag);
  if (it == unacked_.end()) return std::nullopt;
  const std::uint64_t seq = it->second.seq;
  bytes_unacked_ -= std::min(bytes_unacked_, it->second.approx_size());
  unacked_.erase(it);
  ++stats_.acked;
  stats_.unacked = unacked_.size();
  return seq;
}

std::vector<std::uint64_t> Queue::ack_batch(
    const std::vector<std::uint64_t>& tags) {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(tags.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint64_t tag : tags) {
    const auto it = unacked_.find(tag);
    if (it == unacked_.end()) continue;  // stale/double ack: skip
    seqs.push_back(it->second.seq);
    bytes_unacked_ -= std::min(bytes_unacked_, it->second.approx_size());
    unacked_.erase(it);
  }
  stats_.acked += seqs.size();
  stats_.unacked = unacked_.size();
  return seqs;
}

std::optional<std::uint64_t> Queue::nack(std::uint64_t delivery_tag,
                                         bool requeue) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = unacked_.find(delivery_tag);
  if (it == unacked_.end()) return std::nullopt;
  const std::uint64_t seq = it->second.seq;
  const std::size_t sz = it->second.approx_size();
  bytes_unacked_ -= std::min(bytes_unacked_, sz);
  if (requeue) {
    // Redelivery is exempt from the capacity bound (see header): the
    // message re-enters the head even when ready_ is at/above capacity.
    bytes_ready_ += sz;
    ready_.push_front(std::move(it->second));
    ++stats_.requeued;
    cv_ready_.notify_one();
  }
  unacked_.erase(it);
  stats_.ready = ready_.size();
  stats_.unacked = unacked_.size();
  return seq;
}

std::size_t Queue::requeue_unacked() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = unacked_.size();
  // Requeue in delivery order (map is keyed by monotonically increasing tag)
  // so redelivery preserves the original relative order. Exempt from the
  // capacity bound, like nack(requeue=true).
  for (auto it = unacked_.rbegin(); it != unacked_.rend(); ++it) {
    ready_.push_front(std::move(it->second));
  }
  unacked_.clear();
  bytes_ready_ += bytes_unacked_;
  bytes_unacked_ = 0;
  stats_.requeued += n;
  stats_.ready = ready_.size();
  stats_.unacked = 0;
  if (n > 0) cv_ready_.notify_all();
  return n;
}

std::size_t Queue::purge() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = ready_.size();
  ready_.clear();
  bytes_ready_ = 0;
  stats_.ready = 0;
  cv_capacity_.notify_all();
  return n;
}

void Queue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_ready_.notify_all();
  cv_capacity_.notify_all();
}

bool Queue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

QueueStats Queue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Queue::ready_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size();
}

QueueDepth Queue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return QueueDepth{name_, ready_.size(), unacked_.size(),
                    bytes_ready_ + bytes_unacked_};
}

}  // namespace entk::mq
