// Group-commit journal writer for durable broker queues.
//
// The seed journal paid one fwrite + one fflush per durable publish/ack,
// which made the flush syscall the dominant cost of durable dispatch. The
// JournalWriter decouples appending from flushing: append() lands the
// record in a bounded in-memory segment and returns; a background flusher
// writes the segment to disk when it reaches `max_batch_bytes` or when the
// oldest unflushed record has waited `max_delay_s` (size-or-deadline group
// commit), paying one fwrite + one fflush for the whole batch.
//
// Durability contract:
//   * close()/flush() returns only after every appended record is on disk
//     — a cleanly shut down broker loses nothing;
//   * on a hard crash, at most the unflushed tail (bounded by
//     max_batch_bytes / max_delay_s) is lost, and a record torn mid-write
//     is skipped by recovery — everything before it replays exactly once;
//   * appends never reorder: segments are swapped out and written by a
//     single flusher in append order.
// sync_every_append = true restores the seed per-record flush (append
// blocks until its record is on disk) — kept for the latency A/B bench and
// for callers that need zero-loss durability.
//
// I/O errors (short fwrite, failed fflush) are sticky: the first failure
// is recorded and every subsequent append()/flush()/close() throws MqError,
// so a broker on a full or failing disk cannot silently ack un-journaled
// durable publishes.
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "src/obs/metrics.hpp"

namespace entk::mq {

struct JournalConfig {
  /// Flush the pending segment when it reaches this many bytes...
  std::size_t max_batch_bytes = 256 * 1024;
  /// ...or when the oldest unflushed append has waited this long (seconds).
  double max_delay_s = 0.002;
  /// Restore the seed behavior: every append flushes synchronously before
  /// returning (no flusher thread, no commit window).
  bool sync_every_append = false;
};

class JournalWriter {
 public:
  /// Opens `path` for appending; throws MqError when it cannot be opened.
  JournalWriter(std::string path, JournalConfig config);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one JSONL chunk (without trailing newline) counting `records`
  /// journal records — pre-joined batches pass their record count so the
  /// batch-size histogram stays truthful. Returns once the chunk is in the
  /// commit segment (on disk, in sync_every_append mode). Blocks briefly
  /// only when the segment is at hard capacity (4x max_batch_bytes) with
  /// the flusher behind. Throws MqError after any I/O error and when the
  /// writer is closed.
  void append(std::string_view line, std::size_t records = 1);

  /// Synchronous barrier: returns once everything appended so far is on
  /// disk. Throws MqError on I/O failure.
  void flush();

  /// Final flush + fclose; idempotent. Throws MqError when the final flush
  /// hits an I/O error (earlier sticky errors also surface here).
  void close();

  /// Simulate a hard crash: the flusher is stopped, the pending segment is
  /// DISCARDED and the file handle dropped without a final flush. On-disk
  /// state is whatever previous flushes wrote — exactly what a recovery
  /// after SIGKILL would see. Test hook; never called in production paths.
  void simulate_crash();

  /// The sticky I/O failure ("" while healthy). Non-throwing counterpart
  /// of the MqError append()/flush() raise — lets the broker health probe
  /// (Supervisor heartbeat) observe a flusher that failed in the
  /// background before any appender tripped over it.
  std::string error() const;

  /// Arm the sticky error state as if a flush had failed (wakes blocked
  /// appenders/barriers). Test hook driving the same propagation path a
  /// short write or failed fflush would.
  void inject_io_error(std::string what);

  const std::string& path() const { return path_; }
  std::uint64_t appended_records() const;
  std::uint64_t flushed_records() const;
  std::uint64_t flushes() const;

  /// Histogram receiving the record count of each flushed batch
  /// ("mq.journal_batch_size"). Not thread-safe against in-flight appends;
  /// set before the writer is shared. nullptr detaches.
  void set_batch_size_metric(obs::Histogram* hist) { batch_size_hist_ = hist; }

 private:
  std::size_t hard_cap() const { return config_.max_batch_bytes * 4; }
  /// Write out the current segment; caller holds `lock`. Waits out a flush
  /// already in progress first, so callers observe a true barrier.
  void flush_segment_locked(std::unique_lock<std::mutex>& lock);
  void throw_if_error_locked() const;
  void flusher_loop();
  void stop_flusher();

  const std::string path_;
  const JournalConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;      // flusher waits for records/stop
  std::condition_variable cv_flushed_;   // barriers wait for write-out
  std::condition_variable cv_capacity_;  // appenders wait at hard capacity
  std::FILE* file_ = nullptr;
  std::string segment_;                  // pending (unflushed) records
  std::size_t segment_records_ = 0;
  std::chrono::steady_clock::time_point oldest_append_{};
  bool flushing_ = false;   // a swapped-out segment is being written
  bool stopping_ = false;
  bool closed_ = false;
  std::string error_;       // first I/O failure; sticky
  std::uint64_t appended_records_ = 0;
  std::uint64_t flushed_records_ = 0;
  std::uint64_t flushes_ = 0;

  obs::Histogram* batch_size_hist_ = nullptr;
  std::thread flusher_;
};

}  // namespace entk::mq
