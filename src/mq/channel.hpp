// AMQP-shaped client facade over the in-process broker.
//
// Components in the toolkit talk to the broker exclusively through a
// Connection/Channel pair, mirroring how the reference implementation uses
// pika against RabbitMQ. Keeping this shape means the broker could be
// swapped for a networked AMQP client without touching component code.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "src/mq/broker.hpp"

namespace entk::mq {

class Channel;

/// A logical connection to one broker. Cheap to copy via shared ownership.
class Connection {
 public:
  explicit Connection(BrokerPtr broker) : broker_(std::move(broker)) {}

  std::unique_ptr<Channel> open_channel();
  BrokerPtr broker() const { return broker_; }
  bool is_open() const { return broker_ != nullptr && !broker_->closed(); }

 private:
  BrokerPtr broker_;
};

/// A channel multiplexed on a connection. Not thread-safe (like AMQP
/// channels); each component thread opens its own.
class Channel {
 public:
  explicit Channel(BrokerPtr broker) : broker_(std::move(broker)) {}

  void queue_declare(const std::string& queue, QueueOptions options = {}) {
    broker_->declare_queue(queue, options);
  }
  void exchange_declare(const std::string& exchange, ExchangeType type) {
    broker_->declare_exchange(exchange, type);
  }
  void queue_bind(const std::string& queue, const std::string& exchange,
                  const std::string& binding_key = "") {
    broker_->bind_queue(exchange, queue, binding_key);
  }
  /// Publish through an exchange; returns the number of queues reached.
  std::size_t exchange_publish(const std::string& exchange,
                               const std::string& routing_key,
                               const json::Value& payload) {
    return broker_->publish_to_exchange(
        exchange, routing_key, Message::json_body(routing_key, payload));
  }
  void queue_delete(const std::string& queue) { broker_->delete_queue(queue); }
  void queue_purge(const std::string& queue) { broker_->queue(queue)->purge(); }

  /// Publish `payload` (as JSON text) to `queue`.
  std::uint64_t basic_publish(const std::string& queue,
                              const json::Value& payload,
                              json::Value headers = json::Value()) {
    return broker_->publish(queue,
                            Message::json_body(queue, payload, std::move(headers)));
  }

  std::uint64_t basic_publish_raw(const std::string& queue, std::string body) {
    Message m;
    m.set_body(std::move(body));
    return broker_->publish(queue, std::move(m));
  }

  /// Publish a batch of messages to `queue` in one broker call; returns
  /// the first assigned sequence number (see Broker::publish_batch).
  std::uint64_t basic_publish_batch(const std::string& queue,
                                    std::vector<Message> msgs) {
    return broker_->publish_batch(queue, std::move(msgs));
  }

  /// Blocking get with timeout; nullopt on timeout/closed queue.
  std::optional<Delivery> basic_get(const std::string& queue,
                                    double timeout_s = 0.0) {
    return broker_->get(queue, timeout_s);
  }

  /// Drain up to `max_n` messages in one broker call (possibly partial).
  std::vector<Delivery> basic_get_batch(const std::string& queue,
                                        std::size_t max_n,
                                        double timeout_s = 0.0) {
    return broker_->get_batch(queue, max_n, timeout_s);
  }

  bool basic_ack(const std::string& queue, std::uint64_t delivery_tag) {
    return broker_->ack(queue, delivery_tag);
  }

  /// Ack a batch of delivery tags; returns how many were actually acked.
  std::size_t basic_ack_batch(const std::string& queue,
                              const std::vector<std::uint64_t>& tags) {
    return broker_->ack_batch(queue, tags);
  }
  bool basic_nack(const std::string& queue, std::uint64_t delivery_tag,
                  bool requeue = true) {
    return broker_->nack(queue, delivery_tag, requeue);
  }

  bool is_open() const { return !broker_->closed(); }

 private:
  BrokerPtr broker_;
};

}  // namespace entk::mq
