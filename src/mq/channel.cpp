#include "src/mq/channel.hpp"

namespace entk::mq {

std::unique_ptr<Channel> Connection::open_channel() {
  return std::make_unique<Channel>(broker_);
}

}  // namespace entk::mq
