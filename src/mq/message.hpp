// Message type transported by the in-process broker.
//
// Mirrors the slice of AMQP the toolkit relies on: an opaque body plus
// structured headers, a routing key naming the destination queue, and a
// broker-assigned sequence number used for at-least-once delivery
// accounting and journal recovery.
//
// The body is stored as a shared immutable string so that retaining a
// delivered message for ack/requeue accounting (Queue::unacked_) costs a
// refcount bump instead of a payload copy — batch messages carry hundreds
// of task uids in one body, which made the old per-delivery copy the
// dominant allocation on the dispatch hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/json/json.hpp"

namespace entk::mq {

class Message {
 public:
  std::uint64_t seq = 0;       ///< broker-assigned, unique per broker
  std::string routing_key;     ///< destination queue name
  json::Value headers;         ///< structured metadata (object or null)

  /// Opaque payload (usually JSON text); empty when never set.
  const std::string& body() const {
    static const std::string kEmpty;
    return body_ ? *body_ : kEmpty;
  }

  void set_body(std::string body) {
    body_ = std::make_shared<const std::string>(std::move(body));
  }
  void set_body(std::shared_ptr<const std::string> body) {
    body_ = std::move(body);
  }

  /// Share the payload without copying (refcount bump only).
  const std::shared_ptr<const std::string>& shared_body() const {
    return body_;
  }

  /// Convenience: build a message whose body is `payload.dump()`.
  static Message json_body(std::string routing_key, const json::Value& payload,
                           json::Value headers = json::Value()) {
    Message m;
    m.routing_key = std::move(routing_key);
    m.headers = std::move(headers);
    m.set_body(payload.dump());
    return m;
  }

  /// Parse the body back into JSON; throws json::ParseError on garbage.
  json::Value body_json() const { return json::parse(body()); }

 private:
  std::shared_ptr<const std::string> body_;
};

/// A delivered message plus the tag needed to ack/nack it.
struct Delivery {
  std::uint64_t delivery_tag = 0;
  Message message;
};

}  // namespace entk::mq
