// Message type transported by the in-process broker.
//
// Mirrors the slice of AMQP the toolkit relies on: an opaque body plus
// structured headers, a routing key naming the destination queue, and a
// broker-assigned sequence number used for at-least-once delivery
// accounting and journal recovery.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "src/json/json.hpp"

namespace entk::mq {

struct Message {
  std::uint64_t seq = 0;       ///< broker-assigned, unique per broker
  std::string routing_key;     ///< destination queue name
  json::Value headers;         ///< structured metadata (object or null)
  std::string body;            ///< opaque payload (usually JSON text)

  /// Convenience: build a message whose body is `payload.dump()`.
  static Message json_body(std::string routing_key, const json::Value& payload,
                           json::Value headers = json::Value()) {
    Message m;
    m.routing_key = std::move(routing_key);
    m.headers = std::move(headers);
    m.body = payload.dump();
    return m;
  }

  /// Parse the body back into JSON; throws json::ParseError on garbage.
  json::Value body_json() const { return json::parse(body); }
};

/// A delivered message plus the tag needed to ack/nack it.
struct Delivery {
  std::uint64_t delivery_tag = 0;
  Message message;
};

}  // namespace entk::mq
