// Message type transported by the in-process broker.
//
// Mirrors the slice of AMQP the toolkit relies on: an opaque body plus
// structured headers, a routing key naming the destination queue, and a
// broker-assigned sequence number used for at-least-once delivery
// accounting and journal recovery.
//
// Zero-copy structured messaging: a message can carry its payload in two
// interchangeable representations —
//   * a structured payload: an immutable, shared json::Value. In-process
//     hops (publish, queue retention for ack accounting, delivery) pass it
//     by refcount bump with ZERO serialization;
//   * a byte body: the serialized JSON text. Needed only at the process
//     boundary — durable-queue journaling, wire dumps, raw-body publishes.
// Each representation is materialized lazily from the other on first
// access and memoized on the message, so the journal and any later
// observability dump never serialize the same message twice, and a
// consumer of a recovered (bytes-only) message parses at most once.
//
// Thread-safety: the *shared* payload/body objects are immutable and safe
// to read from any number of threads. The lazy memoization mutates the
// Message object itself, so one Message instance must not be accessed
// concurrently — the same contract as AMQP client messages. Copies are
// independent (they share the representations but memoize separately).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/json/json.hpp"

namespace entk::mq {

/// Benchmark/ablation knob: when on, Message::json_body() renders the byte
/// body eagerly at construction and drops the structured payload, restoring
/// the seed's serialize-per-hop behavior (consumers then re-parse). Global,
/// not per-broker: it exists to A/B the dispatch path, not for production.
void set_eager_serialization(bool on);
bool eager_serialization();

class Message {
 public:
  std::uint64_t seq = 0;       ///< broker-assigned, unique per broker
  std::string routing_key;     ///< destination queue name
  json::Value headers;         ///< structured metadata (object or null)

  /// Serialized payload bytes; renders (and memoizes) the structured
  /// payload on first access. Empty when the message carries neither
  /// representation.
  const std::string& body() const;

  /// True when the byte body is already materialized — i.e. accessing
  /// body() costs nothing and the message has crossed (or will cross) a
  /// serialization boundary.
  bool has_rendered_body() const { return body_ != nullptr; }

  void set_body(std::string body) {
    set_body(std::make_shared<const std::string>(std::move(body)));
  }
  void set_body(std::shared_ptr<const std::string> body) {
    body_ = std::move(body);
    payload_.reset();
  }

  /// Share the byte payload without copying (refcount bump only). Null when
  /// the bytes were never set nor rendered.
  const std::shared_ptr<const std::string>& shared_body() const {
    return body_;
  }

  /// Structured payload: the shared parsed value. Parses (and memoizes)
  /// the byte body on first access, so broker-delivered structured
  /// messages cost a refcount bump and recovered bytes-only messages cost
  /// exactly one parse. Throws json::ParseError when the message carries
  /// no payload or a garbage body.
  const std::shared_ptr<const json::Value>& payload() const;

  /// True when the structured payload is present without parsing —
  /// consuming this message performs no deserialization.
  bool has_payload() const { return payload_ != nullptr; }

  void set_payload(json::Value payload) {
    set_payload(std::make_shared<const json::Value>(std::move(payload)));
  }
  void set_payload(std::shared_ptr<const json::Value> payload) {
    payload_ = std::move(payload);
    body_.reset();
  }

  /// Build a message carrying `payload` as a structured value: no
  /// serialization happens unless the message crosses a byte boundary
  /// (durable journal, wire dump). Under set_eager_serialization(true)
  /// the payload is rendered to bytes immediately instead (seed behavior).
  static Message json_body(std::string routing_key, json::Value payload,
                           json::Value headers = json::Value());

  /// Compat shim: a deep copy of the structured payload. Prefer payload()
  /// — it shares instead of copying. Throws json::ParseError like payload().
  json::Value body_json() const { return *payload(); }

 private:
  // Lazily materialized, mutually-memoizing representations (see header
  // comment for the thread-safety contract).
  mutable std::shared_ptr<const std::string> body_;
  mutable std::shared_ptr<const json::Value> payload_;
};

/// A delivered message plus the tag needed to ack/nack it.
struct Delivery {
  std::uint64_t delivery_tag = 0;
  Message message;
};

}  // namespace entk::mq
