// Message type transported by the in-process broker.
//
// Mirrors the slice of AMQP the toolkit relies on: an opaque body plus
// structured headers, a routing key naming the destination queue, and a
// broker-assigned sequence number used for at-least-once delivery
// accounting and journal recovery.
//
// Zero-copy structured messaging: a message can carry its payload in three
// interchangeable representations —
//   * a structured payload: an immutable, shared json::Value. In-process
//     hops (publish, queue retention for ack accounting, delivery) pass it
//     by refcount bump with ZERO serialization;
//   * a byte body: the serialized JSON text. Needed only at the process
//     boundary — durable-queue journaling, wire dumps, raw-body publishes;
//   * typed-value bytes: the binary wire codec's TLV encoding of the
//     payload (net::append_value format). A message received over a
//     binary-codec connection carries this form and is re-encoded onto the
//     wire VERBATIM (memcpy) — a broker relaying between binary peers
//     never decodes the payload at all.
// Each representation is materialized lazily from the others on first
// access and memoized on the message, so the journal and any later
// observability dump never serialize the same message twice, and a
// consumer of a recovered (bytes-only) or wire-delivered (TLV) message
// parses/decodes at most once.
//
// Thread-safety: the *shared* payload/body objects are immutable and safe
// to read from any number of threads. The lazy memoization mutates the
// Message object itself, so one Message instance must not be accessed
// concurrently — the same contract as AMQP client messages. Copies are
// independent (they share the representations but memoize separately).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/json/json.hpp"

namespace entk::mq {

/// Benchmark/ablation knob: when on, Message::json_body() renders the byte
/// body eagerly at construction and drops the structured payload, restoring
/// the seed's serialize-per-hop behavior (consumers then re-parse). Global,
/// not per-broker: it exists to A/B the dispatch path, not for production.
void set_eager_serialization(bool on);
bool eager_serialization();

/// Process-wide count of payload→JSON-text renders performed by
/// Message::body() (i.e. the serializations the zero-copy design tries to
/// avoid). Benches and tests snapshot it around a hot section to *prove* a
/// path — e.g. the binary wire codec — never rendered JSON text.
std::uint64_t body_render_count();

/// Bridge to the typed-value codec, installed by the net layer at load
/// time (src/net/frame.cpp): decodes TLV payload bytes into a json::Value.
/// Lives behind a function pointer so mq stays independent of net; a
/// process that never links the net library also never produces TLV-backed
/// messages.
using TlvDecoder = json::Value (*)(const std::string& bytes);
void set_tlv_decoder(TlvDecoder decoder);
TlvDecoder tlv_decoder();

class Message {
 public:
  std::uint64_t seq = 0;       ///< broker-assigned, unique per broker
  std::string routing_key;     ///< destination queue name
  json::Value headers;         ///< structured metadata (object or null)

  /// Serialized payload bytes; renders (and memoizes) the structured
  /// payload on first access. Empty when the message carries neither
  /// representation.
  const std::string& body() const;

  /// True when the byte body is already materialized — i.e. accessing
  /// body() costs nothing and the message has crossed (or will cross) a
  /// serialization boundary.
  bool has_rendered_body() const { return body_ != nullptr; }

  void set_body(std::string body) {
    set_body(std::make_shared<const std::string>(std::move(body)));
  }
  void set_body(std::shared_ptr<const std::string> body) {
    body_ = std::move(body);
    payload_.reset();
    tlv_.reset();
  }

  /// Share the byte payload without copying (refcount bump only). Null when
  /// the bytes were never set nor rendered.
  const std::shared_ptr<const std::string>& shared_body() const {
    return body_;
  }

  /// Structured payload: the shared parsed value. Parses (and memoizes)
  /// the byte body on first access, so broker-delivered structured
  /// messages cost a refcount bump and recovered bytes-only messages cost
  /// exactly one parse. Throws json::ParseError when the message carries
  /// no payload or a garbage body.
  const std::shared_ptr<const json::Value>& payload() const;

  /// True when the structured payload is present without parsing —
  /// consuming this message performs no deserialization.
  bool has_payload() const { return payload_ != nullptr; }

  void set_payload(json::Value payload) {
    set_payload(std::make_shared<const json::Value>(std::move(payload)));
  }
  void set_payload(std::shared_ptr<const json::Value> payload) {
    payload_ = std::move(payload);
    body_.reset();
    tlv_.reset();
  }

  /// Install the payload as typed-value (TLV) wire bytes, already validated
  /// by the caller (the net frame decoder). The structured payload decodes
  /// lazily on first payload() access through the installed TlvDecoder;
  /// until then the message relays across binary-codec connections as a
  /// verbatim byte copy.
  void set_tlv_payload(std::shared_ptr<const std::string> bytes) {
    tlv_ = std::move(bytes);
    payload_.reset();
    body_.reset();
  }

  /// TLV payload bytes (null unless the message arrived over a binary
  /// connection and was not re-materialized since).
  const std::shared_ptr<const std::string>& shared_tlv_payload() const {
    return tlv_;
  }

  /// Build a message carrying `payload` as a structured value: no
  /// serialization happens unless the message crosses a byte boundary
  /// (durable journal, wire dump). Under set_eager_serialization(true)
  /// the payload is rendered to bytes immediately instead (seed behavior).
  static Message json_body(std::string routing_key, json::Value payload,
                           json::Value headers = json::Value());

  /// Compat shim: a deep copy of the structured payload. Prefer payload()
  /// — it shares instead of copying. Throws json::ParseError like payload().
  json::Value body_json() const { return *payload(); }

  /// Approximate payload size in bytes, for quota accounting. O(1) when a
  /// byte representation exists (rendered body or TLV — always the case
  /// for wire-delivered messages); otherwise a cheap structural walk of
  /// the json payload that never serializes. Zero for empty messages.
  std::size_t approx_size() const;

 private:
  // Lazily materialized, mutually-memoizing representations (see header
  // comment for the thread-safety contract).
  mutable std::shared_ptr<const std::string> body_;
  mutable std::shared_ptr<const json::Value> payload_;
  std::shared_ptr<const std::string> tlv_;
};

/// A delivered message plus the tag needed to ack/nack it.
struct Delivery {
  std::uint64_t delivery_tag = 0;
  Message message;
};

}  // namespace entk::mq
