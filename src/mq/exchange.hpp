// AMQP-style exchanges: routed publish on top of the broker's queues.
//
// EnTK's own queue topology is point-to-point, but the broker substrate is
// a general building block (paper §V: avoid framework lock-in, compose
// middleware from reusable components). Exchanges add the three classic
// AMQP routing disciplines:
//   direct — message goes to queues bound with exactly the routing key;
//   fanout — message goes to every bound queue;
//   topic  — keys are dot-separated words; bindings may use '*' (exactly
//            one word) and '#' (zero or more words).
#pragma once

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

namespace entk::mq {

enum class ExchangeType { Direct, Fanout, Topic };

const char* to_string(ExchangeType t);

/// True when topic `pattern` matches `key` under AMQP topic rules.
bool topic_matches(const std::string& pattern, const std::string& key);

/// Routing table of one exchange. The broker owns instances and resolves
/// bound queue names to queues at publish time.
class Exchange {
 public:
  Exchange(std::string name, ExchangeType type);

  const std::string& name() const { return name_; }
  ExchangeType type() const { return type_; }

  /// Bind `queue` with `binding_key` (ignored for fanout). Idempotent.
  void bind(const std::string& queue, const std::string& binding_key = "");
  void unbind(const std::string& queue, const std::string& binding_key = "");

  /// Queue names a message with `routing_key` must be delivered to
  /// (deduplicated, in binding order).
  std::vector<std::string> route(const std::string& routing_key) const;

  std::size_t binding_count() const;

 private:
  const std::string name_;
  const ExchangeType type_;
  // Routing is read-hot (every publish_to_exchange routes), binding changes
  // are rare topology edits: reader/writer lock so concurrent routes never
  // serialize on each other.
  mutable std::shared_mutex mutex_;
  std::vector<std::pair<std::string, std::string>> bindings_;  // (key, queue)
};

}  // namespace entk::mq
