// Small JSON library used across the toolkit for message payloads, the
// broker journal, the transactional state store and configuration files.
//
// Design: a single variant-backed Value type with checked accessors, a
// strict recursive-descent parser and a compact/pretty writer. Object keys
// preserve insertion order (important for stable journals and diffs).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/error.hpp"

namespace entk::json {

class Value;

using Array = std::vector<Value>;

/// Insertion-ordered string->Value map.
class Object {
 public:
  Value& operator[](const std::string& key);
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void erase(const std::string& key);

  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  bool operator==(const Object& other) const;

 private:
  std::vector<std::pair<std::string, Value>> items_;
};

enum class Type { Null, Bool, Int, Double, String, Array, Object };

class ParseError : public EnTKError {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : EnTKError("json parse error at offset " + std::to_string(offset) +
                  ": " + what),
        offset(offset) {}
  std::size_t offset;
};

/// A JSON value. Integers and doubles are kept distinct so that task counts
/// and byte sizes round-trip exactly.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : data_(static_cast<std::int64_t>(i)) {}
  Value(long i) : data_(static_cast<std::int64_t>(i)) {}
  Value(long long i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long long i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  /// Checked accessors; throw TypeError on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;       ///< also accepts integral doubles
  double as_double() const;          ///< accepts ints
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object sugar: value["key"] creates the key on a (null-coerced) object.
  Value& operator[](const std::string& key);
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Lookup with default; returns `fallback` when `this` is not an object
  /// or the key is absent.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Array sugar.
  void push_back(Value v);
  std::size_t size() const;  ///< array/object size, 0 otherwise

  bool operator==(const Value& other) const;

  /// Serialize. `indent` < 0 -> compact single line.
  std::string dump(int indent = -1) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
Value parse(const std::string& text);

/// Parse one value starting at `pos`; advances `pos` past it. Used by the
/// JSONL journal readers.
Value parse_prefix(const std::string& text, std::size_t& pos);

/// Escape a string for embedding in JSON output (without quotes).
std::string escape(const std::string& s);

}  // namespace entk::json
