#include "src/json/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace entk::json {

// ---------------------------------------------------------------- Object

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Value());
  return items_.back().second;
}

const Value& Object::at(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return v;
  }
  throw MissingError("json::Object", key);
}

bool Object::contains(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

void Object::erase(const std::string& key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) {
      items_.erase(it);
      return;
    }
  }
}

bool Object::operator==(const Object& other) const {
  if (items_.size() != other.items_.size()) return false;
  // Order-insensitive comparison: same keys, equal values.
  for (const auto& [k, v] : items_) {
    if (!other.contains(k) || !(other.at(k) == v)) return false;
  }
  return true;
}

// ----------------------------------------------------------------- Value

Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::Null;
    case 1: return Type::Bool;
    case 2: return Type::Int;
    case 3: return Type::Double;
    case 4: return Type::String;
    case 5: return Type::Array;
    default: return Type::Object;
  }
}

namespace {
const char* type_name(Type t) {
  switch (t) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Int: return "int";
    case Type::Double: return "double";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
  }
  return "?";
}
[[noreturn]] void type_mismatch(Type want, Type got) {
  throw TypeError(std::string("json: expected ") + type_name(want) + ", got " +
                  type_name(got));
}
}  // namespace

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  type_mismatch(Type::Bool, type());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    if (std::floor(*d) == *d) return static_cast<std::int64_t>(*d);
  }
  type_mismatch(Type::Int, type());
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_))
    return static_cast<double>(*i);
  type_mismatch(Type::Double, type());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  type_mismatch(Type::String, type());
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(Type::Array, type());
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(Type::Array, type());
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(Type::Object, type());
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(Type::Object, type());
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

const Value& Value::at(const std::string& key) const {
  return as_object().at(key);
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

std::int64_t Value::get_int(const std::string& key,
                            std::int64_t fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = at(key);
  return v.is_number() ? v.as_int() : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = at(key);
  return v.is_number() ? v.as_double() : fallback;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = at(key);
  return v.is_string() ? v.as_string() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = at(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

void Value::push_back(Value v) {
  if (is_null()) data_ = Array{};
  as_array().push_back(std::move(v));
}

std::size_t Value::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return as_double() == other.as_double();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::Null: return true;
    case Type::Bool: return as_bool() == other.as_bool();
    case Type::String: return as_string() == other.as_string();
    case Type::Array: return as_array() == other.as_array();
    case Type::Object: return as_object() == other.as_object();
    default: return false;  // unreachable: numbers handled above
  }
}

// ---------------------------------------------------------------- writer

namespace {
inline bool needs_escape(unsigned char c) {
  return c == '"' || c == '\\' || c < 0x20;
}
}  // namespace

std::string escape(const std::string& s) {
  // Fast path: most strings (keys, uids, state names) contain nothing that
  // needs escaping — return a plain copy without a per-character loop.
  std::size_t plain = 0;
  while (plain < s.size() &&
         !needs_escape(static_cast<unsigned char>(s[plain]))) {
    ++plain;
  }
  if (plain == s.size()) return s;
  std::string out;
  out.reserve(s.size() + 8);
  out.append(s, 0, plain);
  for (std::size_t i = plain; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (!needs_escape(c)) {
      // Bulk-append the run up to the next character needing an escape.
      std::size_t run = i + 1;
      while (run < s.size() &&
             !needs_escape(static_cast<unsigned char>(s[run]))) {
        ++run;
      }
      out.append(s, i, run - i);
      i = run - 1;
      continue;
    }
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void dump_value(const Value& v, std::string& out, int indent, int depth);

/// Lower-bound estimate of the compact dump size: one cheap traversal (no
/// formatting) that lets dump() reserve once instead of growing the output
/// through repeated reallocation on large payloads.
std::size_t estimate_size(const Value& v) {
  switch (v.type()) {
    case Type::Null: return 4;
    case Type::Bool: return 5;
    case Type::Int: return 12;
    case Type::Double: return 16;
    case Type::String: return v.as_string().size() + 2;
    case Type::Array: {
      std::size_t n = 2;
      for (const Value& item : v.as_array()) n += estimate_size(item) + 1;
      return n;
    }
    case Type::Object: {
      std::size_t n = 2;
      for (const auto& [k, item] : v.as_object()) {
        n += k.size() + 4 + estimate_size(item);
      }
      return n;
    }
  }
  return 0;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  switch (v.type()) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Type::Int: {
      char buf[24];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), v.as_int());
      (void)ec;  // 24 chars always fit an int64
      out.append(buf, ptr);
      break;
    }
    case Type::Double: {
      const double d = v.as_double();
      if (std::isnan(d)) {
        out += "null";  // JSON has no NaN; degrade to null
        break;
      }
      if (std::isinf(d)) {
        out += d > 0 ? "1e999" : "-1e999";
        break;
      }
      // Shortest representation that round-trips exactly — both faster to
      // format and fewer bytes on the wire than the old "%.17g".
      char buf[32];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
      (void)ec;  // 32 chars always fit a shortest-round-trip double
      out.append(buf, ptr);
      break;
    }
    case Type::String:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Type::Array: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& item : a) {
        if (!first) out += indent < 0 ? "," : ",";
        first = false;
        newline_indent(out, indent, depth + 1);
        dump_value(item, out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, item] : o) {
        if (!first) out += ",";
        first = false;
        newline_indent(out, indent, depth + 1);
        out += '"';
        out += escape(k);
        out += indent < 0 ? "\":" : "\": ";
        dump_value(item, out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  out.reserve(estimate_size(*this));
  dump_value(*this, out, indent, 0);
  return out;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::size_t pos) : text_(text), pos_(pos) {}

  Value parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::size_t pos() const { return pos_; }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError(what, pos_);
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        fail(std::string("expected '") + word + "'");
      ++pos_;
    }
  }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  Value parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after key");
      obj[key] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      // Bulk-copy the run up to the next quote, backslash or control char —
      // the common case is the whole string in one append.
      std::size_t run = pos_;
      while (run < text_.size() &&
             !needs_escape(static_cast<unsigned char>(text_[run]))) {
        ++run;
      }
      if (run > pos_) {
        out.append(text_, pos_, run - pos_);
        pos_ = run;
      }
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (no surrogate-pair handling; BMP only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    bool any_digit = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        any_digit = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (!any_digit) fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    if (is_double) {
      return Value(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE || end == token.c_str() || *end != '\0') {
      // Out-of-range integers degrade to double.
      return Value(std::strtod(token.c_str(), nullptr));
    }
    return Value(static_cast<std::int64_t>(v));
  }

  const std::string& text_;
  std::size_t pos_;
};

}  // namespace

Value parse(const std::string& text) {
  Parser p(text, 0);
  Value v = p.parse_value();
  p.skip_ws();
  if (p.pos() != text.size())
    throw ParseError("trailing characters after document", p.pos());
  return v;
}

Value parse_prefix(const std::string& text, std::size_t& pos) {
  Parser p(text, pos);
  Value v = p.parse_value();
  pos = p.pos();
  return v;
}

}  // namespace entk::json
