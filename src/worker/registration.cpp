#include "src/worker/registration.hpp"

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk::worker {

// -------------------------------------------------------- WorkerAnnouncer

WorkerAnnouncer::WorkerAnnouncer(mq::BrokerHandlePtr broker,
                                 std::string worker_id, int cores)
    : broker_(std::move(broker)),
      worker_id_(std::move(worker_id)),
      cores_(cores) {
  broker_->declare_queue(kWorkersControlQueue);
}

void WorkerAnnouncer::publish(const char* event, std::size_t tasks_done,
                              std::size_t in_flight) {
  json::Value msg;
  msg["worker"] = worker_id_;
  msg["event"] = event;
  msg["cores"] = cores_;
  msg["tasks_done"] = tasks_done;
  msg["in_flight"] = in_flight;
  msg["wall_us"] = wall_now_us();
  try {
    broker_->publish(
        kWorkersControlQueue,
        mq::Message::json_body(kWorkersControlQueue, std::move(msg)));
  } catch (const MqError&) {
    // Broker unreachable mid-shutdown: the transport-level TTL covers us.
  }
}

void WorkerAnnouncer::announce_register() { publish("register", 0, 0); }

void WorkerAnnouncer::heartbeat(std::size_t tasks_done,
                                std::size_t in_flight) {
  publish("heartbeat", tasks_done, in_flight);
}

void WorkerAnnouncer::announce_deregister(std::size_t tasks_done) {
  publish("deregister", tasks_done, 0);
}

// -------------------------------------------------------- WorkerDirectory

WorkerDirectory::WorkerDirectory(mq::BrokerHandlePtr broker, double ttl_s,
                                 ProfilerPtr profiler)
    : Component("worker_directory", std::move(profiler)),
      broker_(std::move(broker)),
      ttl_s_(ttl_s) {
  broker_->declare_queue(kWorkersControlQueue);
}

WorkerDirectory::~WorkerDirectory() { stop(); }

void WorkerDirectory::on_start() {
  add_worker("directory", [this] { loop(); });
}

void WorkerDirectory::on_reattach() {
  if (broker_->has_queue(kWorkersControlQueue)) {
    broker_->requeue_unacked(kWorkersControlQueue);
  }
}

void WorkerDirectory::loop() {
  profiler_->record("worker_directory", "directory_start");
  while (!stop_requested()) {
    beat();
    const std::vector<mq::Delivery> deliveries =
        broker_->get_batch(kWorkersControlQueue, 64, 0.02);
    if (deliveries.empty()) {
      refresh_gauges();  // TTL expiry shows up even with no traffic
      continue;
    }
    std::vector<std::uint64_t> tags;
    tags.reserve(deliveries.size());
    for (const mq::Delivery& delivery : deliveries) {
      tags.push_back(delivery.delivery_tag);
      try {
        apply(*delivery.message.payload());
      } catch (const json::ParseError& e) {
        ENTK_WARN("worker_directory") << "rejecting event: " << e.what();
      }
    }
    broker_->ack_batch(kWorkersControlQueue, tags);
    refresh_gauges();
  }
  profiler_->record("worker_directory", "directory_stop");
}

void WorkerDirectory::apply(const json::Value& msg) {
  const std::string id = msg.get_string("worker", "");
  if (id.empty()) return;
  const std::string event = msg.get_string("event", "heartbeat");
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerInfo& info = workers_[id];
  const bool known = !info.worker_id.empty();
  info.worker_id = id;
  info.cores = static_cast<int>(msg.get_int("cores", info.cores));
  info.tasks_done = static_cast<std::size_t>(
      msg.get_int("tasks_done", static_cast<std::int64_t>(info.tasks_done)));
  info.in_flight = static_cast<std::size_t>(
      msg.get_int("in_flight", static_cast<std::int64_t>(info.in_flight)));
  info.last_seen_s = wall_now_s();
  if (event == "register") {
    info.deregistered = false;
    if (!known) ++registered_total_;
    ENTK_INFO("worker_directory")
        << "worker " << id << " registered (" << info.cores << " cores)";
    profiler_->record("worker_directory", "worker_register", id);
  } else if (event == "deregister") {
    info.deregistered = true;
    ENTK_INFO("worker_directory")
        << "worker " << id << " deregistered after " << info.tasks_done
        << " task(s)";
    profiler_->record("worker_directory", "worker_deregister", id);
  }
}

void WorkerDirectory::refresh_gauges() {
  auto* reg = metrics();
  if (reg == nullptr) return;
  reg->gauge("workers.live").set(static_cast<std::int64_t>(live_workers()));
  reg->gauge("workers.registered")
      .set(static_cast<std::int64_t>(registered_workers()));
}

std::vector<WorkerInfo> WorkerDirectory::workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkerInfo> out;
  out.reserve(workers_.size());
  for (const auto& [id, info] : workers_) {
    (void)id;
    out.push_back(info);
  }
  return out;
}

std::size_t WorkerDirectory::live_workers() const {
  const double now = wall_now_s();
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const auto& [id, info] : workers_) {
    (void)id;
    if (!info.deregistered && now - info.last_seen_s <= ttl_s_) ++live;
  }
  return live;
}

std::size_t WorkerDirectory::registered_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registered_total_;
}

}  // namespace entk::worker
