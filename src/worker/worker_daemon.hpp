// WorkerDaemon: the process-level wrapper tying one WorkerRuntime to a
// remote broker — the engine behind `entk_worker`.
//
// It owns the pieces a standalone execution process needs:
//   - a RemoteBroker dialed at the entk_broker endpoint, announcing its
//     worker identity (kWorkerHello) so the server's liveness TTL covers
//     it: a SIGKILLed worker's unacked deliveries requeue automatically;
//   - a WorkerRuntime in at-least-once mode (ack_on_completion, bounded
//     prefetch, a private per-worker sync-ack queue);
//   - a WorkerAnnouncer publishing register/heartbeat/deregister events
//     to the AppManager-side WorkerDirectory.
//
// run() drives the daemon's main loop until a drain is requested
// (request_drain() is async-signal-safe, callable from a SIGTERM handler):
// it then stops fetching, waits for in-flight units to finish (bounded by
// drain_timeout_s), deregisters and tears the stack down. Deliveries still
// unacked at that point return to the Pending queue via the broker's
// disconnect requeue — drain is graceful, never lossy.
//
// The class is fully usable in-process (tests construct it directly); the
// entk_worker binary is a thin flag-parser + signal-wirer around it.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/obs/metrics.hpp"
#include "src/rts/rts.hpp"
#include "src/worker/registration.hpp"
#include "src/worker/worker_runtime.hpp"

namespace entk::net {
class RemoteBroker;
}

namespace entk::worker {

struct WorkerDaemonConfig {
  std::string endpoint;     ///< entk_broker "host:port" (required)
  std::string worker_id;    ///< "" = generated ("w<pid>")
  /// Tenant namespace to drain (must match the AppManager's tenant — a
  /// worker only sees queues inside its own tenant). Empty = default
  /// tenant, i.e. the pre-tenancy shared namespace.
  std::string tenant;
  int cores = 4;            ///< pilot cores this worker contributes
  /// Simulated CI profile the default pilot RTS runs on (--sim-ci).
  std::string resource = "local.localhost";
  double clock_scale = 1e-3;  ///< wall seconds per virtual second
  double walltime_s = 7200;   ///< pilot walltime (virtual seconds)

  std::size_t batch = 64;        ///< pending-queue fetch/submit batch
  /// Bounded prefetch; 0 = 2 * cores (keeps the pipeline full without
  /// starving sibling workers under skew).
  std::size_t max_in_flight = 0;
  double heartbeat_interval_s = 1.0;  ///< directory heartbeat cadence
  double drain_timeout_s = 10.0;      ///< wait for in-flight work at drain

  std::string pending_queue = "q.pending";
  std::string done_queue = "q.completed";
  std::string states_queue = "q.states";

  SupervisionConfig supervision;
  /// Override the RTS (tests); default = PilotRts on `resource` with a
  /// ScaledClock, mirroring AppManager::default_rts_factory.
  rts::RtsFactory rts_factory;
  obs::MetricsPtr metrics;  ///< optional; forwarded to broker + runtime
};

class WorkerDaemon {
 public:
  /// Dials the broker (throws NetError when unreachable) and declares the
  /// work queues; call start() to begin executing.
  explicit WorkerDaemon(WorkerDaemonConfig config);
  ~WorkerDaemon();

  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  /// Acquire pilot resources, start the runtime, announce registration.
  void start();

  /// Main loop: heartbeat the directory until a drain is requested or the
  /// runtime fails. Returns the process exit code (0 = clean drain).
  int run();

  /// Ask the main loop to drain and exit; safe from a signal handler.
  void request_drain() { drain_.store(true, std::memory_order_release); }
  bool drain_requested() const {
    return drain_.load(std::memory_order_acquire);
  }

  const std::string& worker_id() const { return worker_id_; }
  WorkerRuntime& runtime() { return *runtime_; }
  ProfilerPtr profiler() { return profiler_; }

 private:
  /// Graceful teardown: wait out in-flight units (bounded), deregister,
  /// stop the runtime, close the broker.
  void drain();

  WorkerDaemonConfig config_;
  const std::string worker_id_;
  ProfilerPtr profiler_;
  ClockPtr clock_;
  std::shared_ptr<net::RemoteBroker> broker_;
  std::unique_ptr<WorkerRuntime> runtime_;
  std::unique_ptr<WorkerAnnouncer> announcer_;

  std::atomic<bool> drain_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace entk::worker
