// Worker registration + liveness over the broker (application level).
//
// Two cooperating halves:
//   - WorkerAnnouncer (worker side): publishes register / heartbeat /
//     deregister events for one worker on the `q.workers.ctrl` control
//     queue, carrying the worker's core count and progress counters.
//   - WorkerDirectory (AppManager side): a supervised Component consuming
//     the control queue into a liveness view — which workers exist, when
//     each was last heard from, how much each has done — exported as
//     `workers.live` / `workers.registered` gauges.
//
// This is the *observability* half of liveness. The *correctness* half is
// transport level: the broker server tracks a per-connection unacked
// ledger and requeues it when a worker's TCP connection dies or its
// protocol heartbeats stop (BrokerServerConfig::worker_ttl_s), so a dead
// worker's in-flight tasks re-run elsewhere regardless of whether it ever
// published a deregister event.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/mq/channel.hpp"

namespace entk::worker {

inline constexpr char kWorkersControlQueue[] = "q.workers.ctrl";

struct WorkerInfo {
  std::string worker_id;
  int cores = 0;
  std::size_t tasks_done = 0;
  std::size_t in_flight = 0;
  double last_seen_s = 0.0;  ///< wall seconds of the last event
  bool deregistered = false;
};

/// Worker-side publisher of control events. Not thread-safe; the daemon's
/// main loop owns it.
class WorkerAnnouncer {
 public:
  WorkerAnnouncer(mq::BrokerHandlePtr broker, std::string worker_id,
                  int cores);

  void announce_register();
  void heartbeat(std::size_t tasks_done, std::size_t in_flight);
  void announce_deregister(std::size_t tasks_done);

 private:
  void publish(const char* event, std::size_t tasks_done,
               std::size_t in_flight);

  mq::BrokerHandlePtr broker_;
  const std::string worker_id_;
  const int cores_;
};

/// AppManager-side directory of announced workers. A supervised Component
/// with one "directory" worker; all view state rebuilds from the control
/// queue, so a restart loses nothing but unexpired heartbeats.
class WorkerDirectory : public Component {
 public:
  /// Workers silent for longer than `ttl_s` are counted dead (gauges
  /// only; the broker's transport-level TTL owns requeue correctness).
  WorkerDirectory(mq::BrokerHandlePtr broker, double ttl_s,
                  ProfilerPtr profiler);
  ~WorkerDirectory() override;

  std::vector<WorkerInfo> workers() const;
  /// Workers registered, not deregistered, and heard from within ttl.
  std::size_t live_workers() const;
  std::size_t registered_workers() const;

 protected:
  void on_start() override;
  void on_reattach() override;

 private:
  void loop();
  void apply(const json::Value& msg);
  void refresh_gauges();

  mq::BrokerHandlePtr broker_;
  const double ttl_s_;

  mutable std::mutex mutex_;
  std::map<std::string, WorkerInfo> workers_;
  std::size_t registered_total_ = 0;
};

}  // namespace entk::worker
