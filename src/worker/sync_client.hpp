// Component-side client of the state-synchronization protocol (paper
// Fig 2, message 6).
//
// Lives in the worker library — below core — because remote workers sync
// task states through the broker exactly like the in-process components
// do: the client only needs a BrokerHandle, never the live objects. The
// AppManager-side Synchronizer (src/core/sync.hpp) is the single consumer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mq/channel.hpp"

namespace entk {

/// One state transition of the vectored sync protocol.
struct Transition {
  std::string uid;
  std::string kind;  ///< "task" | "stage" | "pipeline"
  std::string from_state;
  std::string to_state;
};

/// Component-side client of the sync protocol. Not thread-safe: each
/// component thread owns its own client (and ack queue), like an AMQP
/// channel.
class SyncClient {
 public:
  /// `ack_queue` must be unique per component; it is declared on demand.
  SyncClient(mq::BrokerHandlePtr broker, std::string component,
             std::string states_queue, std::string ack_queue);

  /// Request a transition. With `await_ack`, blocks until the Synchronizer
  /// confirms the commit (or the broker closes); returns false when the
  /// transition was rejected or the confirmation never arrived.
  bool sync(const std::string& uid, const std::string& kind,
            const std::string& from_state, const std::string& to_state,
            bool await_ack = false);

  /// Vectored sync: ship a whole array of transitions as ONE states-queue
  /// message; the Synchronizer applies them as one uninterrupted sequence
  /// and — with `await_ack` — confirms them with ONE reply, so a batch of
  /// N transitions costs one round-trip instead of N. Returns false when
  /// any transition was rejected or the confirmation never arrived.
  bool sync_batch(const std::vector<Transition>& transitions,
                  bool await_ack = false);

 private:
  mq::BrokerHandlePtr broker_;
  const std::string component_;
  const std::string states_queue_;
  const std::string ack_queue_;
  std::uint64_t next_corr_ = 1;  ///< correlates batch requests with replies
};

}  // namespace entk
