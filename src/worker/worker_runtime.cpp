#include "src/worker/worker_runtime.hpp"

#include <chrono>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk::worker {

WorkerRuntime::WorkerRuntime(std::string component_name,
                             WorkerRuntimeConfig config,
                             mq::BrokerHandlePtr broker, UnitResolver resolver,
                             std::string pending_queue, std::string done_queue,
                             std::string states_queue,
                             rts::RtsFactory rts_factory, ProfilerPtr profiler)
    : Component(std::move(component_name), std::move(profiler)),
      config_(std::move(config)),
      broker_(std::move(broker)),
      resolver_(std::move(resolver)),
      pending_queue_(std::move(pending_queue)),
      done_queue_(std::move(done_queue)),
      states_queue_(std::move(states_queue)),
      rts_factory_(std::move(rts_factory)),
      sync_component_(config_.worker_id.empty() ? "emgr"
                                                : config_.worker_id) {}

WorkerRuntime::~WorkerRuntime() {
  // Joins the workers; RTS termination stays with the explicit stop() (the
  // seed destructor likewise only joined threads).
  Component::stop();
}

void WorkerRuntime::resolve_metrics() {
  auto* reg = metrics();
  if (reg == nullptr || submit_us_metric_ != nullptr) return;
  submit_us_metric_ = &reg->histogram("rts.submit_us");
  submitted_metric_ = &reg->counter("rts.units_submitted");
  completed_metric_ = &reg->counter("rts.units_completed");
  if (!config_.worker_id.empty()) {
    worker_done_metric_ =
        &reg->counter("worker." + config_.worker_id + ".tasks_done");
    worker_flight_metric_ =
        &reg->gauge("worker." + config_.worker_id + ".in_flight");
  }
}

void WorkerRuntime::acquire_resources() {
  resolve_metrics();
  profiler_->record("rmgr", "resource_acquire_start");
  rts::RtsPtr rts = rts_factory_();
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    rts_ = std::move(rts);
  }
  attach_callback();
  rts_->initialize();
  profiler_->record("rmgr", "resource_acquire_stop");
}

void WorkerRuntime::attach_callback() {
  // RTS Callback subcomponent: forward completions to the Done queue
  // (paper Fig 2, message 4). With a flush window configured, results are
  // coalesced into bulk Done messages instead of one publish per unit.
  std::lock_guard<std::mutex> lock(rts_mutex_);
  rts_->set_completion_callback([this](const rts::UnitResult& result) {
    json::Value msg;
    msg["uid"] = result.uid;
    msg["outcome"] = rts::to_string(result.outcome);
    msg["exit_code"] = result.exit_code;
    msg["exec_start_t"] = result.exec_start_t;
    msg["exec_end_t"] = result.exec_end_t;
    msg["staging_in_s"] = result.staging_in_s;
    msg["staging_out_s"] = result.staging_out_s;
    if (!config_.worker_id.empty()) msg["worker"] = config_.worker_id;
    if (!result.metadata.is_null()) msg["metadata"] = result.metadata;
    bool coalesced = false;
    if (config_.completion_flush_window_s > 0) {
      std::vector<json::Value> overflow;
      {
        std::lock_guard<std::mutex> flush_lock(flush_mutex_);
        if (flusher_running_) {
          completion_buffer_.push_back(std::move(msg));
          coalesced = true;
          if (completion_buffer_.size() >= config_.completion_flush_max) {
            overflow.swap(completion_buffer_);
          }
        }
      }
      if (!overflow.empty()) {
        flush_completions(std::move(overflow));  // full buffer: flush inline
      } else if (coalesced) {
        flush_cv_.notify_one();
      }
    }
    if (!coalesced) {
      try {
        broker_->publish(done_queue_,
                         mq::Message::json_body(done_queue_, std::move(msg)));
      } catch (const MqError&) {
        // AppManager broker is gone: we are shutting down.
      }
    }
    // Release the delivery claim only after the result reached the Done
    // queue (or its buffer): a crash before this point leaves the delivery
    // unacked and the broker requeues it for a surviving worker.
    if (config_.ack_on_completion) ledger_complete(result.uid);
    tasks_done_.fetch_add(1);
    profiler_->record("rts_callback", "unit_completed", result.uid);
    if (completed_metric_ != nullptr) completed_metric_->add(1);
    if (worker_done_metric_ != nullptr) worker_done_metric_->add(1);
  });
}

void WorkerRuntime::flush_completions(std::vector<json::Value> buffered) {
  if (buffered.empty()) return;
  json::Value msg;
  json::Array results;
  results.reserve(buffered.size());
  for (json::Value& r : buffered) results.push_back(std::move(r));
  msg["results"] = std::move(results);
  try {
    broker_->publish(done_queue_,
                     mq::Message::json_body(done_queue_, std::move(msg)));
  } catch (const MqError&) {
    // AppManager broker is gone: we are shutting down.
  }
}

void WorkerRuntime::flush_loop() {
  std::unique_lock<std::mutex> lock(flush_mutex_);
  while (!stop_requested()) {
    flush_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.completion_flush_window_s),
        [this] {
          return stop_requested() ||
                 completion_buffer_.size() >= config_.completion_flush_max;
        });
    if (completion_buffer_.empty()) continue;
    std::vector<json::Value> buffered;
    buffered.swap(completion_buffer_);
    lock.unlock();
    flush_completions(std::move(buffered));
    lock.lock();
  }
  // Final drain; late callbacks bypass the buffer once flusher_running_ is
  // cleared below.
  flusher_running_ = false;
  std::vector<json::Value> buffered;
  buffered.swap(completion_buffer_);
  lock.unlock();
  flush_completions(std::move(buffered));
}

void WorkerRuntime::on_start() {
  resolve_metrics();
  if (config_.completion_flush_window_s > 0) {
    {
      std::lock_guard<std::mutex> lock(flush_mutex_);
      flusher_running_ = true;
    }
    add_worker("flush", [this] { flush_loop(); });
  }
  add_worker("emgr", [this] { emgr_loop(); });
  add_worker("heartbeat", [this] { heartbeat_loop(); });
  profiler_->record(name(), "emgr_start");
}

void WorkerRuntime::on_stop_requested() { flush_cv_.notify_all(); }

void WorkerRuntime::on_reattach() {
  // Pending-queue deliveries (and sync acks) the dead emgr worker held
  // unacked go back for the new generation to submit.
  if (broker_->has_queue(pending_queue_)) {
    broker_->requeue_unacked(pending_queue_);
  }
  if (broker_->has_queue(config_.ack_queue)) {
    broker_->requeue_unacked(config_.ack_queue);
  }
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  ledger_remaining_.clear();
  ledger_uid_tag_.clear();
  unit_cache_.clear();
}

double WorkerRuntime::stop() {
  Component::stop();  // idempotent worker join (fixes the old double-join)
  if (rts_terminated_.exchange(true)) return 0.0;
  const double t0 = wall_now_s();
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    if (rts_) rts_->terminate();
  }
  profiler_->record(name(), "emgr_stop");
  return wall_now_s() - t0;
}

void WorkerRuntime::inject_rts_failure() {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  if (rts_) rts_->kill();
}

bool WorkerRuntime::request_resize(const rts::ResizeRequest& request) {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  return rts_ ? rts_->resize(request) : false;
}

void WorkerRuntime::set_fatal_handler(
    std::function<void(const std::string&)> handler) {
  fatal_handler_ = std::move(handler);
}

rts::RtsStats WorkerRuntime::rts_stats() const {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  return rts_ ? rts_->stats() : rts::RtsStats{};
}

std::size_t WorkerRuntime::in_flight() const {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  return ledger_uid_tag_.size();
}

void WorkerRuntime::ledger_track(std::uint64_t tag,
                                 const std::vector<std::string>& uids) {
  bool ack_now = false;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    if (uids.empty()) {
      ack_now = true;  // nothing submittable in it: release immediately
    } else {
      ledger_remaining_[tag] = uids.size();
      for (const std::string& uid : uids) {
        // A redelivered uid can race its still-running first attempt:
        // supersede the old claim so the stale delivery drains (its result
        // is deduplicated downstream by the WFProcessor).
        const auto it = ledger_uid_tag_.find(uid);
        if (it != ledger_uid_tag_.end()) {
          const auto old = ledger_remaining_.find(it->second);
          if (old != ledger_remaining_.end() && --old->second == 0) {
            ledger_remaining_.erase(old);
            try {
              broker_->ack(pending_queue_, it->second);
            } catch (const MqError&) {
            }
          }
        }
        ledger_uid_tag_[uid] = tag;
      }
    }
  }
  if (ack_now) {
    try {
      broker_->ack(pending_queue_, tag);
    } catch (const MqError&) {
    }
  }
  if (worker_flight_metric_ != nullptr) {
    worker_flight_metric_->set(static_cast<std::int64_t>(in_flight()));
  }
}

void WorkerRuntime::ledger_complete(const std::string& uid) {
  std::uint64_t ack_tag = 0;
  bool ack = false;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    unit_cache_.erase(uid);
    const auto it = ledger_uid_tag_.find(uid);
    if (it == ledger_uid_tag_.end()) return;  // superseded or restart-cleared
    const std::uint64_t tag = it->second;
    ledger_uid_tag_.erase(it);
    const auto rem = ledger_remaining_.find(tag);
    if (rem != ledger_remaining_.end() && --rem->second == 0) {
      ledger_remaining_.erase(rem);
      ack_tag = tag;
      ack = true;
    }
  }
  if (ack) {
    try {
      broker_->ack(pending_queue_, ack_tag);
    } catch (const MqError&) {
      // Broker gone mid-shutdown; the delivery requeues on disconnect.
    }
  }
  if (worker_flight_metric_ != nullptr) {
    worker_flight_metric_->set(static_cast<std::int64_t>(in_flight()));
  }
}

void WorkerRuntime::ledger_nack(const std::vector<std::uint64_t>& tags) {
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    for (const std::uint64_t tag : tags) {
      ledger_remaining_.erase(tag);
      for (auto it = ledger_uid_tag_.begin(); it != ledger_uid_tag_.end();) {
        if (it->second == tag) {
          unit_cache_.erase(it->first);
          it = ledger_uid_tag_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (const std::uint64_t tag : tags) {
    try {
      broker_->nack(pending_queue_, tag, /*requeue=*/true);
    } catch (const MqError&) {
    }
  }
}

void WorkerRuntime::emgr_loop() {
  SyncClient sync(broker_, sync_component_, states_queue_, config_.ack_queue);
  while (!stop_requested()) {
    beat();
    // Bounded prefetch: with a cap configured, only request the units we
    // still have capacity to run; the surplus stays queued for an idle
    // sibling worker instead of sitting in this worker's unacked ledger.
    std::size_t want = config_.submit_batch;
    if (config_.ack_on_completion && config_.max_in_flight > 0) {
      const std::size_t flying = in_flight();
      if (flying >= config_.max_in_flight) {
        if (wait_stop_for(config_.poll_timeout_s)) break;
        continue;
      }
      want = std::min(want, config_.max_in_flight - flying);
    }
    // Batch: drain whatever is pending, up to submit_batch, in one broker
    // round-trip. Three wire formats are accepted: {"uid": ...} (one task
    // per message, seed format), {"uids": [...]} (bulk Enqueue), and
    // {"units": [...]} (self-contained units for registry-less remote
    // workers).
    const std::vector<mq::Delivery> deliveries =
        broker_->get_batch(pending_queue_, want, config_.poll_timeout_s);
    if (deliveries.empty()) continue;
    BusyScope busy(emgr_busy_);
    std::vector<rts::TaskUnit> batch;
    std::vector<std::string> uids;
    std::vector<std::uint64_t> tags;
    tags.reserve(deliveries.size());
    auto take = [&](const std::string& uid) {
      std::optional<rts::TaskUnit> unit = resolver_ ? resolver_(uid)
                                                    : std::nullopt;
      if (!unit) {
        ENTK_WARN(sync_component_) << "pending message for unknown task "
                                   << uid;
        return;
      }
      batch.push_back(std::move(*unit));
      uids.push_back(uid);
    };
    for (const mq::Delivery& delivery : deliveries) {
      tags.push_back(delivery.delivery_tag);
      std::shared_ptr<const json::Value> msg;
      try {
        msg = delivery.message.payload();  // shared, zero-copy in-process
      } catch (const json::ParseError&) {
        continue;
      }
      const std::size_t first = uids.size();
      if (msg->contains("units")) {
        for (const json::Value& u : msg->at("units").as_array()) {
          rts::TaskUnit unit = rts::TaskUnit::from_json(u);
          if (unit.uid.empty()) continue;
          uids.push_back(unit.uid);
          batch.push_back(std::move(unit));
        }
      } else if (msg->contains("uids")) {
        for (const json::Value& u : msg->at("uids").as_array()) {
          take(u.as_string());
        }
      } else {
        take(msg->get_string("uid", ""));
      }
      if (config_.ack_on_completion) {
        ledger_track(delivery.delivery_tag,
                     {uids.begin() + static_cast<std::ptrdiff_t>(first),
                      uids.end()});
      }
    }
    if (!config_.ack_on_completion) {
      broker_->ack_batch(pending_queue_, tags);
    }
    if (batch.empty()) continue;
    if (uids.size() > 1) {
      std::vector<Transition> submitting, submitted;
      submitting.reserve(uids.size());
      submitted.reserve(uids.size());
      for (const std::string& uid : uids) {
        submitting.push_back({uid, "task", "SCHEDULED", "SUBMITTING"});
        submitted.push_back({uid, "task", "SUBMITTING", "SUBMITTED"});
      }
      sync.sync_batch(submitting, false);
      // Publish the Submitted transitions BEFORE handing the units to the
      // RTS: a very short task could otherwise complete and have Dequeue's
      // Executed transition reach the Synchronizer first.
      sync.sync_batch(submitted, false);
    } else {
      sync.sync(uids.front(), "task", "SCHEDULED", "SUBMITTING", false);
      sync.sync(uids.front(), "task", "SUBMITTING", "SUBMITTED", false);
    }
    // Recorded before the RTS sees the units so the trace's causal order
    // holds: a very short unit could otherwise record unit_exec_start on
    // the RTS thread before the submit timestamp exists.
    for (const std::string& uid : uids) {
      profiler_->record("emgr", "task_submitted", uid);
    }
    if (config_.ack_on_completion) {
      // Keep a copy of every in-flight unit: an RTS restart resubmits from
      // here when no resolver can reconstruct them (inline-units path).
      std::lock_guard<std::mutex> lock(ledger_mutex_);
      for (const rts::TaskUnit& unit : batch) unit_cache_[unit.uid] = unit;
    }
    const std::int64_t t0 = submit_us_metric_ != nullptr ? wall_now_us() : 0;
    try {
      std::lock_guard<std::mutex> lock(rts_mutex_);
      if (!rts_ || !rts_->is_healthy()) {
        throw RtsError("emgr: no healthy RTS");
      }
      rts_->submit(std::move(batch));
    } catch (const RtsError& e) {
      if (config_.ack_on_completion) {
        // The RTS never owned these units: push the deliveries back so a
        // healthy worker takes them (the resync on redelivery is rejected
        // idempotently by the transition tables).
        ENTK_WARN(sync_component_)
            << e.what() << "; returning " << tags.size()
            << " deliveries to " << pending_queue_;
        ledger_nack(tags);
      } else {
        // The heartbeat will deal with the RTS; requeue by re-describing is
        // unnecessary — units stay tracked as in flight by uid below.
        ENTK_WARN(sync_component_) << e.what();
      }
    }
    if (submit_us_metric_ != nullptr) {
      submit_us_metric_->observe(static_cast<double>(wall_now_us() - t0));
      submitted_metric_->add(uids.size());
    }
  }
}

void WorkerRuntime::sample_queue_depths() {
  // Depth gauges: ready/unacked backlog per queue, recorded in the numeric
  // (virtual_s) field with the queue name as uid. Cheap — one shared-lock
  // map walk plus one mutex grab per queue — so it can ride the heartbeat.
  auto* reg = metrics();
  for (const mq::QueueDepth& d : broker_->depth_snapshot()) {
    profiler_->record("broker", "queue_ready_depth", d.queue,
                      static_cast<double>(d.ready));
    profiler_->record("broker", "queue_unacked_depth", d.queue,
                      static_cast<double>(d.unacked));
    if (reg != nullptr) {
      // Heartbeat cadence, a handful of queues: resolving through the
      // registry here is cheaper than a name->gauge cache would earn.
      reg->gauge("mq.ready." + d.queue).set(static_cast<std::int64_t>(d.ready));
      reg->gauge("mq.unacked." + d.queue)
          .set(static_cast<std::int64_t>(d.unacked));
    }
  }
}

void WorkerRuntime::heartbeat_loop() {
  while (!stop_requested()) {
    // Interruptible probe interval: stop() wakes the heartbeat instead of
    // waiting out the sleep, so teardown is not taxed a full interval.
    if (wait_stop_for(config_.supervision.heartbeat_interval_s)) return;
    beat();
    if (config_.sample_queue_depths) sample_queue_depths();
    if (auto* reg = metrics()) reg->maybe_snapshot(wall_now_us());
    bool healthy;
    {
      std::lock_guard<std::mutex> lock(rts_mutex_);
      healthy = rts_ && rts_->is_healthy();
    }
    if (healthy) continue;
    profiler_->record("heartbeat", "rts_unhealthy");
    if (restarts_.load() >= config_.supervision.rts_restart_limit) {
      ENTK_ERROR("heartbeat") << "RTS lost and restart budget exhausted";
      if (fatal_handler_) fatal_handler_("RTS failed permanently");
      return;
    }
    restart_rts();
  }
}

void WorkerRuntime::restart_rts() {
  ++restarts_;
  ENTK_WARN("heartbeat") << "restarting failed RTS (attempt "
                         << restarts_.load() << ")";
  profiler_->record("heartbeat", "rts_restart_start");

  // Units in execution at the time of the failure are lost (paper
  // §II-B-4); capture them from the dead instance for resubmission.
  std::vector<std::string> lost;
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    if (rts_) lost = rts_->in_flight_units();
    rts_ = rts_factory_();
  }
  attach_callback();
  rts_->initialize();

  std::vector<rts::TaskUnit> units;
  units.reserve(lost.size());
  for (const std::string& uid : lost) {
    {
      std::lock_guard<std::mutex> lock(ledger_mutex_);
      const auto cached = unit_cache_.find(uid);
      if (cached != unit_cache_.end()) {
        units.push_back(cached->second);
        continue;
      }
    }
    std::optional<rts::TaskUnit> unit =
        resolver_ ? resolver_(uid) : std::nullopt;
    if (unit) units.push_back(std::move(*unit));
  }
  if (!units.empty()) {
    ENTK_WARN("heartbeat") << "resubmitting " << units.size()
                           << " lost units";
    std::lock_guard<std::mutex> lock(rts_mutex_);
    rts_->submit(std::move(units));
  }
  profiler_->record("heartbeat", "rts_restart_stop");
}

}  // namespace entk::worker
