#include "src/worker/worker_daemon.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"
#include "src/net/remote_broker.hpp"
#include "src/rts/pilot_rts.hpp"

namespace entk::worker {

namespace {

std::string default_worker_id() {
  return "w" + std::to_string(static_cast<long>(::getpid()));
}

}  // namespace

WorkerDaemon::WorkerDaemon(WorkerDaemonConfig config)
    : config_(std::move(config)),
      worker_id_(config_.worker_id.empty() ? default_worker_id()
                                           : config_.worker_id),
      profiler_(std::make_shared<Profiler>()),
      clock_(std::make_shared<ScaledClock>(config_.clock_scale)) {
  if (config_.endpoint.empty()) {
    throw MissingError("worker " + worker_id_, "broker endpoint");
  }
  if (config_.max_in_flight == 0) {
    config_.max_in_flight = 2 * static_cast<std::size_t>(config_.cores);
  }

  net::RemoteBrokerConfig remote_cfg;
  remote_cfg.endpoint = config_.endpoint;
  remote_cfg.worker_id = worker_id_;
  remote_cfg.tenant = config_.tenant;
  broker_ = std::make_shared<net::RemoteBroker>(remote_cfg);
  if (config_.metrics) broker_->set_metrics(config_.metrics);

  // The AppManager usually declared these already; re-declaring is
  // idempotent and lets workers start before the manager.
  for (const std::string& queue :
       {config_.pending_queue, config_.done_queue, config_.states_queue}) {
    broker_->declare_queue(queue);
  }

  rts::RtsFactory factory = config_.rts_factory;
  if (!factory) {
    // Mirror AppManager::default_rts_factory: a pilot on the named CI,
    // scaled-virtual time, capped at this worker's core count.
    const WorkerDaemonConfig cfg = config_;
    ClockPtr clock = clock_;
    ProfilerPtr profiler = profiler_;
    factory = [cfg, clock, profiler]() -> rts::RtsPtr {
      rts::PilotRtsConfig pilot_cfg;
      pilot_cfg.pilot.resource = cfg.resource;
      pilot_cfg.pilot.cores = cfg.cores;
      pilot_cfg.pilot.walltime_s = cfg.walltime_s;
      return std::make_shared<rts::PilotRts>(pilot_cfg, clock, profiler);
    };
  }

  WorkerRuntimeConfig rt_cfg;
  rt_cfg.supervision = config_.supervision;
  rt_cfg.submit_batch = config_.batch;
  rt_cfg.ack_queue = "q.ack." + worker_id_;
  rt_cfg.ack_on_completion = true;
  rt_cfg.max_in_flight = config_.max_in_flight;
  rt_cfg.worker_id = worker_id_;
  // Daemons have no ObjectRegistry: units arrive inline on the Pending
  // queue; a uid-only message cannot be served here.
  UnitResolver resolver =
      [](const std::string&) -> std::optional<rts::TaskUnit> {
    return std::nullopt;
  };
  runtime_ = std::make_unique<WorkerRuntime>(
      worker_id_, rt_cfg, broker_, std::move(resolver),
      config_.pending_queue, config_.done_queue, config_.states_queue,
      std::move(factory), profiler_);
  if (config_.metrics) runtime_->set_metrics(config_.metrics);

  announcer_ =
      std::make_unique<WorkerAnnouncer>(broker_, worker_id_, config_.cores);
}

WorkerDaemon::~WorkerDaemon() {
  if (started_ && !stopped_) drain();
}

void WorkerDaemon::start() {
  profiler_->record(worker_id_, "worker_start");
  runtime_->acquire_resources();
  runtime_->start();
  announcer_->announce_register();
  started_ = true;
  ENTK_INFO(worker_id_) << "worker up: broker=" << config_.endpoint
                        << " cores=" << config_.cores
                        << " resource=" << config_.resource
                        << " max_in_flight=" << config_.max_in_flight;
}

int WorkerDaemon::run() {
  using namespace std::chrono;
  auto next_heartbeat = steady_clock::now();
  int code = 0;
  while (!drain_requested()) {
    if (runtime_->state() == ComponentState::Failed) {
      ENTK_ERROR(worker_id_) << "runtime failed; shutting down";
      code = 1;
      break;
    }
    const auto now = steady_clock::now();
    if (now >= next_heartbeat) {
      announcer_->heartbeat(runtime_->tasks_done(), runtime_->in_flight());
      next_heartbeat =
          now + duration_cast<steady_clock::duration>(
                    duration<double>(config_.heartbeat_interval_s));
    }
    std::this_thread::sleep_for(milliseconds(50));
  }
  drain();
  return code;
}

void WorkerDaemon::drain() {
  if (stopped_) return;
  stopped_ = true;
  profiler_->record(worker_id_, "worker_drain");
  // Stop fetching new work first, then let what the RTS already owns
  // finish within the drain budget.
  runtime_->Component::stop();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.drain_timeout_s));
  while (runtime_->in_flight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::size_t leftover = runtime_->in_flight();
  if (leftover > 0) {
    ENTK_WARN(worker_id_)
        << "draining with " << leftover
        << " unit(s) still in flight; their deliveries return to the "
           "queue for other workers";
  }
  announcer_->announce_deregister(runtime_->tasks_done());
  runtime_->stop();  // terminates the RTS
  broker_->close();  // server requeues whatever we still held
  profiler_->record(worker_id_, "worker_stop");
  ENTK_INFO(worker_id_) << "worker down after " << runtime_->tasks_done()
                        << " task(s)";
}

}  // namespace entk::worker
