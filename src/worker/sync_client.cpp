#include "src/worker/sync_client.hpp"

#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk {

SyncClient::SyncClient(mq::BrokerHandlePtr broker, std::string component,
                       std::string states_queue, std::string ack_queue)
    : broker_(std::move(broker)),
      component_(std::move(component)),
      states_queue_(std::move(states_queue)),
      ack_queue_(std::move(ack_queue)) {
  broker_->declare_queue(ack_queue_);
}

bool SyncClient::sync(const std::string& uid, const std::string& kind,
                      const std::string& from_state,
                      const std::string& to_state, bool await_ack) {
  json::Value msg;
  msg["uid"] = uid;
  msg["kind"] = kind;
  msg["from"] = from_state;
  msg["to"] = to_state;
  msg["component"] = component_;
  if (await_ack) msg["reply_to"] = ack_queue_;
  try {
    broker_->publish(states_queue_,
                     mq::Message::json_body(states_queue_, std::move(msg)));
  } catch (const MqError&) {
    return false;  // broker shutting down
  }
  if (!await_ack) return true;
  // Acks for this component arrive in request order (single synchronizer,
  // single blocked requester per ack queue).
  for (int spins = 0; spins < 2000; ++spins) {
    auto delivery = broker_->get(ack_queue_, 0.005);
    if (!delivery) {
      if (broker_->closed()) return false;
      continue;
    }
    broker_->ack(ack_queue_, delivery->delivery_tag);
    std::shared_ptr<const json::Value> ack;
    try {
      ack = delivery->message.payload();  // shared, no copy/parse in-process
    } catch (const json::ParseError&) {
      continue;
    }
    if (ack->get_string("uid", "") != uid ||
        ack->get_string("to", "") != to_state) {
      ENTK_WARN(component_) << "out-of-order ack for "
                            << ack->get_string("uid", "?");
      continue;
    }
    return ack->get_bool("ok", false);
  }
  return false;
}

bool SyncClient::sync_batch(const std::vector<Transition>& transitions,
                            bool await_ack) {
  if (transitions.empty()) return true;
  if (transitions.size() == 1) {
    // No amortization to gain; keep the single-transition wire format.
    const Transition& t = transitions.front();
    return sync(t.uid, t.kind, t.from_state, t.to_state, await_ack);
  }
  const std::uint64_t corr = next_corr_++;
  json::Value msg;
  // Dispatch batches are homogeneous (every entry shares kind/from/to); the
  // compact wire format hoists those fields out and ships only the uids.
  // Mixed batches fall back to the general per-entry form.
  bool homogeneous = true;
  for (const Transition& t : transitions) {
    if (t.kind != transitions.front().kind ||
        t.from_state != transitions.front().from_state ||
        t.to_state != transitions.front().to_state) {
      homogeneous = false;
      break;
    }
  }
  if (homogeneous) {
    json::Array uids;
    uids.reserve(transitions.size());
    for (const Transition& t : transitions) uids.push_back(t.uid);
    msg["uids"] = std::move(uids);
    msg["kind"] = transitions.front().kind;
    msg["from"] = transitions.front().from_state;
    msg["to"] = transitions.front().to_state;
  } else {
    json::Array batch;
    batch.reserve(transitions.size());
    for (const Transition& t : transitions) {
      json::Value entry;
      entry["uid"] = t.uid;
      entry["kind"] = t.kind;
      entry["from"] = t.from_state;
      entry["to"] = t.to_state;
      batch.push_back(std::move(entry));
    }
    msg["batch"] = std::move(batch);
  }
  msg["component"] = component_;
  msg["corr"] = corr;
  if (await_ack) msg["reply_to"] = ack_queue_;
  try {
    broker_->publish(states_queue_,
                     mq::Message::json_body(states_queue_, std::move(msg)));
  } catch (const MqError&) {
    return false;  // broker shutting down
  }
  if (!await_ack) return true;
  for (int spins = 0; spins < 2000; ++spins) {
    auto delivery = broker_->get(ack_queue_, 0.005);
    if (!delivery) {
      if (broker_->closed()) return false;
      continue;
    }
    broker_->ack(ack_queue_, delivery->delivery_tag);
    std::shared_ptr<const json::Value> ack;
    try {
      ack = delivery->message.payload();
    } catch (const json::ParseError&) {
      continue;
    }
    if (static_cast<std::uint64_t>(ack->get_int("corr", 0)) != corr) {
      ENTK_WARN(component_) << "out-of-order batch ack (corr "
                            << ack->get_int("corr", 0) << ")";
      continue;
    }
    return ack->get_bool("ok", false);
  }
  return false;
}

}  // namespace entk
