// WorkerRuntime: the reusable Rmgr/Emgr/RtsCallback execution stack.
//
// Extracted from the in-process ExecManager (paper Fig 2) so the same
// machinery runs in two deployments:
//   - embedded: AppManager constructs it (via the ExecManager wrapper in
//     src/core) with a resolver backed by the live ObjectRegistry — the
//     original single-process layout, behaviour unchanged;
//   - remote: the entk_worker daemon constructs it against a RemoteBroker,
//     resolving units from the `{"units": [...]}` wire form the AppManager
//     publishes in --workers mode, so N worker processes drain one
//     ensemble's Pending queue concurrently.
//
// Rmgr acquires resources through the RTS (pilot submission); Emgr pulls
// tasks from the Pending queue (message 2), translates them into
// RTS-specific units and submits them for execution (message 3); the RTS
// Callback subcomponent pushes completed units to the Done queue
// (message 4); Heartbeat monitors RTS health and — because the RTS is a
// black box — handles full RTS failure by tearing it down, starting a new
// instance with fresh pilot resources, and resubmitting only the units
// that were in flight at the time of failure (paper §II-B-4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/busy.hpp"
#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/rts.hpp"
#include "src/worker/sync_client.hpp"

namespace entk::worker {

/// Maps a pending-queue uid to a submittable unit. The embedded deployment
/// resolves through the ObjectRegistry (callables survive); the daemon has
/// no registry and returns nullopt for uid-only messages it cannot serve.
using UnitResolver =
    std::function<std::optional<rts::TaskUnit>(const std::string& uid)>;

struct WorkerRuntimeConfig {
  /// RTS heartbeat interval and restart budget (shared knob set with the
  /// AppManager-level component supervisor).
  SupervisionConfig supervision;
  double poll_timeout_s = 0.002;
  std::size_t submit_batch = 64;     ///< max units per RTS submission

  /// Completion coalescing: when > 0, the RTS callback buffers results and
  /// a flusher publishes them as one bulk Done message ({"results": [...]})
  /// when the buffer reaches `completion_flush_max` or after this many wall
  /// seconds, whichever comes first. 0 = one Done message per unit (seed
  /// behavior).
  double completion_flush_window_s = 0.0;
  std::size_t completion_flush_max = 256;

  /// Sample ready/unacked depth of every broker queue from the heartbeat
  /// thread into the profiler ("queue_ready_depth"/"queue_unacked_depth"
  /// events, depth in the numeric field), so throughput runs can attribute
  /// stalls to a specific queue.
  bool sample_queue_depths = true;

  /// Private sync-ack queue. Must be unique per runtime instance when
  /// several workers share one broker (the daemon derives it from the
  /// worker id); the embedded ExecManager keeps the historical name.
  std::string ack_queue = "q.ack.emgr";

  /// At-least-once delivery: hold the pending-queue delivery unacked until
  /// every unit it carried completed, so a worker killed mid-execution
  /// leaves its deliveries on the broker's per-connection unacked ledger
  /// and the disconnect-requeue machinery hands them to a surviving
  /// worker. Off (seed behaviour) = ack right after parsing.
  bool ack_on_completion = false;

  /// Bounded prefetch: cap the units held by this runtime (fetched but not
  /// yet completed) so one worker's batch gets cannot starve its siblings
  /// under skew — the surplus stays on the shared queue for whichever
  /// worker drains first. 0 = unlimited (embedded single-worker mode).
  /// Effective only with ack_on_completion (the ledger is the counter).
  std::size_t max_in_flight = 0;

  /// Non-empty = remote deployment: labels sync transitions, profiler
  /// events and the per-worker metrics family (worker.<id>.tasks_done,
  /// worker.<id>.in_flight).
  std::string worker_id;
};

/// A supervised Component with "emgr", "heartbeat" and (with a flush
/// window configured) "flush" workers. The RTS handle lives outside the
/// worker lifecycle, so a crashed-and-restarted runtime re-attaches to
/// the same RTS instance and the Pending queue without losing units.
class WorkerRuntime : public Component {
 public:
  WorkerRuntime(std::string component_name, WorkerRuntimeConfig config,
                mq::BrokerHandlePtr broker, UnitResolver resolver,
                std::string pending_queue, std::string done_queue,
                std::string states_queue, rts::RtsFactory rts_factory,
                ProfilerPtr profiler);
  ~WorkerRuntime() override;

  /// Rmgr: create the RTS and acquire resources (blocking).
  void acquire_resources();

  /// Stop the workers (Component::stop) and terminate the RTS gracefully.
  /// Idempotent: the second call is a no-op returning 0. Returns the wall
  /// seconds spent inside Rts::terminate (so AppManager can report EnTK
  /// and RTS tear-down separately). Hides Component::stop(), which stops
  /// the workers but leaves the RTS running (the supervisor's view).
  double stop();

  /// Fault injection for tests/examples: hard-kill the current RTS.
  void inject_rts_failure();

  /// Elastic-pilot request from the ensemble Controller: forward to the
  /// live RTS. Returns false when no RTS is up or it cannot resize.
  bool request_resize(const rts::ResizeRequest& request);

  /// Set the handler invoked when the RTS is lost and the restart budget
  /// is exhausted.
  void set_fatal_handler(std::function<void(const std::string&)> handler);

  int rts_restarts() const { return restarts_.load(); }
  rts::RtsStats rts_stats() const;

  BusyAccumulator& emgr_busy() { return emgr_busy_; }

  /// Units completed by this runtime (counts every RTS callback).
  std::size_t tasks_done() const { return tasks_done_.load(); }

  /// Units fetched but not yet completed (ack_on_completion mode only;
  /// 0 otherwise).
  std::size_t in_flight() const;

 protected:
  void on_start() override;
  void on_stop_requested() override;
  void on_reattach() override;

 private:
  void emgr_loop();
  void heartbeat_loop();
  void attach_callback();
  void restart_rts();
  void sample_queue_depths();
  /// Cache "rts.*" / "worker.*" metric handles once a registry is attached
  /// (idempotent).
  void resolve_metrics();
  void flush_loop();
  /// Publish buffered completion results as one bulk Done message.
  void flush_completions(std::vector<json::Value> buffered);

  // --- at-least-once delivery ledger (ack_on_completion mode) -----------
  /// Register a fetched delivery holding `uids`; empty deliveries are
  /// acked immediately.
  void ledger_track(std::uint64_t tag, const std::vector<std::string>& uids);
  /// A unit finished (or was superseded): release its claim; acks the
  /// delivery once its last unit completes.
  void ledger_complete(const std::string& uid);
  /// Submission failed before the RTS owned the units: push the whole
  /// batch back to the broker for another worker.
  void ledger_nack(const std::vector<std::uint64_t>& tags);

  const WorkerRuntimeConfig config_;
  mq::BrokerHandlePtr broker_;
  UnitResolver resolver_;
  const std::string pending_queue_;
  const std::string done_queue_;
  const std::string states_queue_;
  rts::RtsFactory rts_factory_;
  const std::string sync_component_;

  mutable std::mutex rts_mutex_;
  rts::RtsPtr rts_;

  std::function<void(const std::string&)> fatal_handler_;

  std::atomic<int> restarts_{0};
  std::atomic<bool> rts_terminated_{false};
  std::atomic<std::size_t> tasks_done_{0};
  BusyAccumulator emgr_busy_;

  mutable std::mutex ledger_mutex_;
  std::map<std::uint64_t, std::size_t> ledger_remaining_;  ///< tag -> open units
  std::map<std::string, std::uint64_t> ledger_uid_tag_;    ///< uid -> tag
  /// Units in flight, kept for RTS-restart resubmission when no resolver
  /// can reconstruct them (the daemon's inline-units path).
  std::map<std::string, rts::TaskUnit> unit_cache_;

  // Pre-resolved metric handles ("rts.*"); all null when metrics are off.
  obs::Histogram* submit_us_metric_ = nullptr;
  obs::Counter* submitted_metric_ = nullptr;
  obs::Counter* completed_metric_ = nullptr;
  obs::Counter* worker_done_metric_ = nullptr;  ///< worker.<id>.tasks_done
  obs::Gauge* worker_flight_metric_ = nullptr;  ///< worker.<id>.in_flight

  // Completion coalescing (used only when completion_flush_window_s > 0).
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::vector<json::Value> completion_buffer_;
  bool flusher_running_ = false;
};

}  // namespace entk::worker
