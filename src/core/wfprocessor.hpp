// WFProcessor (paper Fig 2): the workflow-management component.
//
// Enqueue walks the application's pipelines, tags schedulable tasks and
// pushes them to the Pending queue (message 1). Dequeue pulls completed
// tasks from the Done queue (message 5) and tags them done, failed or
// canceled based on the RTS return code — driving stage completion,
// pipeline advancement, post-exec hooks (branching/adaptivity) and
// task-level fault tolerance (resubmission of failed tasks up to a retry
// budget, without restarting completed work).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/core/sync.hpp"
#include "src/mq/broker.hpp"

namespace entk {

struct WfConfig {
  int default_task_retry_limit = 0;
  double poll_timeout_s = 0.002;  ///< wall s queue polls

  /// Tasks per dispatch batch. 1 (the default here) preserves the seed's
  /// one-message-per-task path exactly. > 1 switches Enqueue to bulk
  /// `pending` messages ({"uids": [...]}) with vectored state syncs (one
  /// confirmed round-trip per batch instead of per task) and Dequeue to
  /// batch drains of the Done queue. Every task still passes through every
  /// state and profiler event either way — only the message count changes.
  std::size_t batch_size = 1;

  /// Tasks already DONE in a previous attempt (recovered from the state
  /// journal): they are tagged resolved without re-execution, so resumed
  /// applications only run the work that is still missing (paper §II-A:
  /// "executed on multiple attempts, without restarting completed tasks").
  std::set<std::string> recovered_done;

  /// Remote-worker mode: publish self-contained units ({"units": [...]})
  /// on the Pending queue instead of registry uids, so registry-less
  /// entk_worker daemons can translate and execute them. Tasks must not
  /// carry callables (they do not survive serialization; AppManager
  /// validates). State flow, profiler events and bookkeeping are
  /// unchanged — only the pending wire form differs.
  bool inline_units = false;

  /// Non-empty: publish a completion-event stream ({"event": "task" |
  /// "stage" | "pipeline", ...}) to this queue as results resolve — the
  /// single source of truth the ensemble::Controller consumes. Every event
  /// is emitted AFTER the state transition it describes committed, so a
  /// rule acting on an event never races the transition.
  std::string events_queue;
};

/// A supervised Component with two workers ("enqueue", "dequeue"). All
/// workflow state lives in the registry, the broker queues and the stage
/// books, so a crashed WFProcessor can be restarted by the supervisor:
/// on_reattach() requeues unacked Done-queue deliveries and the enqueue
/// rescan picks up whatever was not yet scheduled.
class WFProcessor : public Component {
 public:
  WFProcessor(WfConfig config, mq::BrokerHandlePtr broker, ObjectRegistry* registry,
              std::string pending_queue, std::string done_queue,
              std::string states_queue, ProfilerPtr profiler);
  ~WFProcessor() override;

  /// Block until every pipeline reached a final state (or abort()).
  void wait_completion();

  /// Abort: mark all live pipelines Failed and wake waiters (used when the
  /// RTS is irrecoverably gone).
  void abort(const std::string& reason);

  /// User-requested cancellation: every live task, stage and pipeline is
  /// moved to Canceled (clean termination, paper §II-A); in-flight units
  /// finish in the RTS but their results are ignored.
  void cancel();

  /// Targeted cancellation (ensemble `cancel_group` action): move the given
  /// live tasks to Canceled, counting them as resolved in their stage books
  /// so stages still complete. Thread-safe — the Synchronizer arbitrates
  /// races with in-flight results (only the winner of the CANCELED
  /// transition updates the book, so every task resolves exactly once).
  /// Returns how many tasks this call actually canceled.
  std::size_t cancel_tasks(const std::vector<std::string>& uids);

  /// Wake the enqueue rescan (a controller appended stages or released a
  /// held-open pipeline).
  void notify_work();

  /// Tasks resolved Done / finally Failed; total resubmission attempts;
  /// tasks skipped because a previous attempt already completed them.
  std::size_t tasks_done() const { return tasks_done_.load(); }
  std::size_t tasks_failed() const { return tasks_failed_.load(); }
  std::size_t resubmissions() const { return resubmissions_.load(); }
  std::size_t tasks_recovered() const { return tasks_recovered_.load(); }
  std::size_t tasks_canceled() const { return tasks_canceled_.load(); }

  BusyAccumulator& enqueue_busy() { return enqueue_busy_; }
  BusyAccumulator& dequeue_busy() { return dequeue_busy_; }

 protected:
  void on_start() override;
  void on_stop_requested() override;
  void on_stopped() override;
  void on_reattach() override;

 private:
  struct StageBook {
    std::size_t resolved = 0;
    std::size_t failed = 0;
    bool finished = false;  ///< finish_stage dispatched (one-shot guard)
  };

  void enqueue_loop();
  void dequeue_loop();
  void schedule_stage(const PipelinePtr& pipeline, const StagePtr& stage,
                      SyncClient& sync);
  void enqueue_task(const TaskPtr& task, SyncClient& sync);
  /// Bulk path of schedule_stage: one pending message + two vectored syncs
  /// per chunk of `batch_size` tasks.
  void enqueue_task_batch(const std::vector<TaskPtr>& tasks, SyncClient& sync);
  void resolve_task(const json::Value& result, SyncClient& sync);
  /// Bulk path of resolve: DONE results of a drained batch share vectored
  /// Executed/Done syncs; failures fall back to the per-task path. The
  /// pointers alias completion records inside shared message payloads the
  /// caller keeps alive (zero-copy dequeue).
  void resolve_results(const std::vector<const json::Value*>& results,
                       SyncClient& sync);
  void finish_stage(const PipelinePtr& pipeline, const StagePtr& stage,
                    bool stage_failed, SyncClient& sync);
  /// Mark an exhausted, un-held pipeline DONE (one caller wins the
  /// begin_completion guard; everyone else is a no-op).
  void complete_pipeline(const PipelinePtr& pipeline, SyncClient& sync);
  /// Register stages a hook/controller appended to the pipeline but that
  /// the registry has not seen yet.
  void register_appended_stages(const PipelinePtr& pipeline);
  bool all_pipelines_final() const;

  // Completion-event stream (no-ops when events_queue is empty).
  void emit_event(json::Value event);
  void emit_task_event(const TaskPtr& task, const char* outcome);

  const WfConfig config_;
  mq::BrokerHandlePtr broker_;
  ObjectRegistry* registry_;
  const std::string pending_queue_;
  const std::string done_queue_;
  const std::string states_queue_;

  std::atomic<bool> canceling_{false};

  // Enqueue wake-up: new work exists (initial stages, advanced stages,
  // retries).
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<std::string> retry_uids_;
  bool work_available_ = true;

  // Completion signaling.
  mutable std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool aborted_ = false;

  std::mutex book_mutex_;  // stage books: touched by Enqueue (recovery)
                           // and Dequeue (completions)
  std::map<std::string, StageBook> stage_books_;

  std::atomic<std::size_t> tasks_done_{0};
  std::atomic<std::size_t> tasks_recovered_{0};
  std::atomic<std::size_t> tasks_failed_{0};
  std::atomic<std::size_t> resubmissions_{0};
  std::atomic<std::size_t> tasks_canceled_{0};

  BusyAccumulator enqueue_busy_;
  BusyAccumulator dequeue_busy_;

  // Pre-resolved metric handles ("wfp.*"), cached in on_start(); all null
  // when metrics are off.
  obs::Counter* enqueued_metric_ = nullptr;
  obs::Counter* done_metric_ = nullptr;
  obs::Counter* failed_metric_ = nullptr;
  obs::Counter* resubmit_metric_ = nullptr;
  obs::Counter* duplicate_metric_ = nullptr;
};

}  // namespace entk
