// State-synchronization protocol (paper Fig 2, messages 6 and 7).
//
// Every component that wants to advance a task/stage/pipeline state pushes
// a transition message to the AppManager's "states" queue; the Synchronizer
// (a subcomponent of AppManager) validates it against the transition
// tables, applies it to the live object, commits it to the transactional
// StateStore, and — when the requester asked for one — acknowledges on the
// requester's private ack queue. This makes AppManager the only stateful
// component: everyone else only holds queue handles and local bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/common/busy.hpp"
#include "src/common/clock.hpp"
#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/core/pipeline.hpp"
#include "src/mq/channel.hpp"
#include "src/worker/sync_client.hpp"

namespace entk {

/// uid -> live object maps; owned by AppManager, shared with components.
/// Read-mostly after setup (lookups on every transition, inserts only at
/// pipeline/stage registration), so reads take shared locks and never
/// contend with each other.
class ObjectRegistry {
 public:
  void add_pipeline(const PipelinePtr& pipeline);

  TaskPtr task(const std::string& uid) const;
  StagePtr stage(const std::string& uid) const;
  PipelinePtr pipeline(const std::string& uid) const;

  std::size_t task_count() const;
  std::vector<PipelinePtr> pipelines() const;

  /// Register objects of a stage added at runtime (adaptive pipelines).
  void add_stage(const StagePtr& stage);

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, TaskPtr> tasks_;
  std::map<std::string, StagePtr> stages_;
  std::map<std::string, PipelinePtr> pipelines_;
};

// BusyAccumulator/BusyScope now live in src/common/busy.hpp and the
// component-side SyncClient (with Transition) in src/worker/sync_client.hpp
// — both are re-exported through the includes above so existing call sites
// compile unchanged. Only the AppManager-side pieces remain here.

class StateStore;

/// AppManager-side synchronizer: a supervised Component with one "sync"
/// worker consuming the states queue. Drains the backlog before honoring a
/// stop request; on restart-after-fault, requeues any delivery the dead
/// worker left unacked (already-applied transitions in it are rejected by
/// the transition tables, so replay is idempotent).
class Synchronizer : public Component {
 public:
  Synchronizer(mq::BrokerHandlePtr broker, std::string states_queue,
               ObjectRegistry* registry, StateStore* store,
               ProfilerPtr profiler);
  ~Synchronizer() override;

  BusyAccumulator& busy() { return busy_; }
  std::size_t processed() const { return processed_.load(); }
  std::size_t rejected() const { return rejected_.load(); }

 protected:
  void on_start() override;
  void on_reattach() override;

 private:
  void loop();
  void process(const json::Value& msg);
  /// Apply one transition; returns false when invalid.
  bool apply(const std::string& uid, const std::string& kind,
             const std::string& from, const std::string& to,
             const std::string& component);

  mq::BrokerHandlePtr broker_;
  const std::string states_queue_;
  ObjectRegistry* registry_;
  StateStore* store_;

  std::atomic<std::size_t> processed_{0};
  std::atomic<std::size_t> rejected_{0};
  BusyAccumulator busy_;
};

}  // namespace entk
