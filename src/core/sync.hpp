// State-synchronization protocol (paper Fig 2, messages 6 and 7).
//
// Every component that wants to advance a task/stage/pipeline state pushes
// a transition message to the AppManager's "states" queue; the Synchronizer
// (a subcomponent of AppManager) validates it against the transition
// tables, applies it to the live object, commits it to the transactional
// StateStore, and — when the requester asked for one — acknowledges on the
// requester's private ack queue. This makes AppManager the only stateful
// component: everyone else only holds queue handles and local bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/common/clock.hpp"
#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/core/pipeline.hpp"
#include "src/mq/channel.hpp"

namespace entk {

/// uid -> live object maps; owned by AppManager, shared with components.
/// Read-mostly after setup (lookups on every transition, inserts only at
/// pipeline/stage registration), so reads take shared locks and never
/// contend with each other.
class ObjectRegistry {
 public:
  void add_pipeline(const PipelinePtr& pipeline);

  TaskPtr task(const std::string& uid) const;
  StagePtr stage(const std::string& uid) const;
  PipelinePtr pipeline(const std::string& uid) const;

  std::size_t task_count() const;
  std::vector<PipelinePtr> pipelines() const;

  /// Register objects of a stage added at runtime (adaptive pipelines).
  void add_stage(const StagePtr& stage);

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, TaskPtr> tasks_;
  std::map<std::string, StagePtr> stages_;
  std::map<std::string, PipelinePtr> pipelines_;
};

/// Wall-clock busy-time accumulator (nanoseconds), used to measure the
/// management overhead each component actually spends processing.
class BusyAccumulator {
 public:
  void add_s(double seconds) {
    ns_.fetch_add(static_cast<std::int64_t>(seconds * 1e9));
  }
  double total_s() const { return static_cast<double>(ns_.load()) * 1e-9; }

 private:
  std::atomic<std::int64_t> ns_{0};
};

/// RAII busy-time scope.
class BusyScope {
 public:
  explicit BusyScope(BusyAccumulator& acc) : acc_(acc), start_(wall_now_us()) {}
  ~BusyScope() {
    acc_.add_s(static_cast<double>(wall_now_us() - start_) * 1e-6);
  }

 private:
  BusyAccumulator& acc_;
  std::int64_t start_;
};

class StateStore;

/// One state transition of the vectored sync protocol.
struct Transition {
  std::string uid;
  std::string kind;  ///< "task" | "stage" | "pipeline"
  std::string from_state;
  std::string to_state;
};

/// Component-side client of the sync protocol. Not thread-safe: each
/// component thread owns its own client (and ack queue), like an AMQP
/// channel.
class SyncClient {
 public:
  /// `ack_queue` must be unique per component; it is declared on demand.
  SyncClient(mq::BrokerHandlePtr broker, std::string component,
             std::string states_queue, std::string ack_queue);

  /// Request a transition. With `await_ack`, blocks until the Synchronizer
  /// confirms the commit (or the broker closes); returns false when the
  /// transition was rejected or the confirmation never arrived.
  bool sync(const std::string& uid, const std::string& kind,
            const std::string& from_state, const std::string& to_state,
            bool await_ack = false);

  /// Vectored sync: ship a whole array of transitions as ONE states-queue
  /// message; the Synchronizer applies them as one uninterrupted sequence
  /// and — with `await_ack` — confirms them with ONE reply, so a batch of
  /// N transitions costs one round-trip instead of N. Returns false when
  /// any transition was rejected or the confirmation never arrived.
  bool sync_batch(const std::vector<Transition>& transitions,
                  bool await_ack = false);

 private:
  mq::BrokerHandlePtr broker_;
  const std::string component_;
  const std::string states_queue_;
  const std::string ack_queue_;
  std::uint64_t next_corr_ = 1;  ///< correlates batch requests with replies
};

/// AppManager-side synchronizer: a supervised Component with one "sync"
/// worker consuming the states queue. Drains the backlog before honoring a
/// stop request; on restart-after-fault, requeues any delivery the dead
/// worker left unacked (already-applied transitions in it are rejected by
/// the transition tables, so replay is idempotent).
class Synchronizer : public Component {
 public:
  Synchronizer(mq::BrokerHandlePtr broker, std::string states_queue,
               ObjectRegistry* registry, StateStore* store,
               ProfilerPtr profiler);
  ~Synchronizer() override;

  BusyAccumulator& busy() { return busy_; }
  std::size_t processed() const { return processed_.load(); }
  std::size_t rejected() const { return rejected_.load(); }

 protected:
  void on_start() override;
  void on_reattach() override;

 private:
  void loop();
  void process(const json::Value& msg);
  /// Apply one transition; returns false when invalid.
  bool apply(const std::string& uid, const std::string& kind,
             const std::string& from, const std::string& to,
             const std::string& component);

  mq::BrokerHandlePtr broker_;
  const std::string states_queue_;
  ObjectRegistry* registry_;
  StateStore* store_;

  std::atomic<std::size_t> processed_{0};
  std::atomic<std::size_t> rejected_{0};
  BusyAccumulator busy_;
};

}  // namespace entk
