// Pipeline: a list of stages where stage i executes only after stage i-1
// has resolved (paper §II-B-1). All pipelines of an application execute
// concurrently.
//
// Pipelines support runtime extension (add_stage while executing) under an
// internal lock, enabling adaptive applications whose stage count is not
// known before execution — the paper's AUA use case iterates "until the
// available resources are exhausted or the prediction error is below a
// given threshold".
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/states.hpp"
#include "src/core/stage.hpp"

namespace entk {

class Pipeline {
 public:
  Pipeline();
  explicit Pipeline(std::string name);

  std::string name;

  /// Append a stage. Legal while Described and, for adaptive workflows,
  /// while Scheduling (typically from a stage post_exec hook); illegal
  /// once the pipeline reached a final state.
  void add_stage(StagePtr stage);

  const std::string& uid() const { return uid_; }
  PipelineState state() const { return state_; }

  /// Snapshot accessors (thread-safe).
  std::size_t stage_count() const;
  StagePtr stage_at(std::size_t index) const;
  std::vector<StagePtr> stages() const;
  std::size_t current_stage_index() const;
  StagePtr current_stage() const;  ///< nullptr when exhausted

  /// Total tasks across current stages (snapshot).
  std::size_t task_count() const;

  void validate() const;
  json::Value to_json() const;

  /// Reset the pipeline (and its stages and tasks) to Described for a new
  /// execution attempt, preserving uids — the second half of the paper's
  /// restart semantics: re-run the same description, and let the
  /// AppManager's resume_journal skip what already completed.
  void reset_for_resume();

  // Internal (WFProcessor/Synchronizer).
  void set_state(PipelineState s) { state_ = s; }
  /// Move to the next stage; returns the new current stage or nullptr when
  /// the pipeline is exhausted.
  StagePtr advance();

 private:
  std::string uid_;
  PipelineState state_ = PipelineState::Described;
  mutable std::mutex mutex_;
  std::vector<StagePtr> stages_;
  std::size_t current_ = 0;
};

using PipelinePtr = std::shared_ptr<Pipeline>;

}  // namespace entk
