// Pipeline: a list of stages where stage i executes only after stage i-1
// has resolved (paper §II-B-1). All pipelines of an application execute
// concurrently.
//
// Pipelines support runtime extension (add_stage while executing) under an
// internal lock, enabling adaptive applications whose stage count is not
// known before execution — the paper's AUA use case iterates "until the
// available resources are exhausted or the prediction error is below a
// given threshold".
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/states.hpp"
#include "src/core/stage.hpp"

namespace entk {

class Pipeline {
 public:
  Pipeline();
  explicit Pipeline(std::string name);

  std::string name;

  /// Append a stage. Legal while Described and, for adaptive workflows,
  /// while Scheduling (typically from a stage post_exec hook); illegal
  /// once the pipeline reached a final state.
  void add_stage(StagePtr stage);

  const std::string& uid() const { return uid_; }
  PipelineState state() const { return state_; }

  /// Snapshot accessors (thread-safe).
  std::size_t stage_count() const;
  StagePtr stage_at(std::size_t index) const;
  std::vector<StagePtr> stages() const;
  std::size_t current_stage_index() const;
  StagePtr current_stage() const;  ///< nullptr when exhausted

  /// Total tasks across current stages (snapshot).
  std::size_t task_count() const;

  void validate() const;
  json::Value to_json() const;

  /// Reset the pipeline (and its stages and tasks) to Described for a new
  /// execution attempt, preserving uids — the second half of the paper's
  /// restart semantics: re-run the same description, and let the
  /// AppManager's resume_journal skip what already completed.
  void reset_for_resume();

  // --- adaptive hold (ensemble::Controller) -------------------------------
  // A held-open pipeline is not marked DONE when its stages are exhausted:
  // it idles in Scheduling so an asynchronous controller can keep appending
  // stages (the generator loop). release_hold() lets the WFProcessor
  // complete it on the next rescan.
  void hold_open() { held_open_ = true; }
  void release_hold() { held_open_ = false; }
  bool held_open() const { return held_open_.load(); }

  // Internal (WFProcessor/Synchronizer).
  void set_state(PipelineState s) { state_ = s; }
  /// Move to the next stage; returns the new current stage or nullptr when
  /// the pipeline is exhausted.
  StagePtr advance();
  /// Idempotent advance: moves past `done` only if it is still the current
  /// stage, then returns the (possibly unchanged) current stage. Two threads
  /// can observe the same stage DONE — the dequeue thread finishing it and
  /// the enqueue rescan's crash-recovery branch — and both call this; only
  /// one increments, so a stage appended concurrently by an adaptive
  /// controller is never skipped.
  StagePtr advance_past(const StagePtr& done);
  /// One-shot guard for the SCHEDULING->DONE transition: the first caller
  /// (dequeue finishing the last stage, or the enqueue rescan after a
  /// release_hold) wins; everyone else backs off.
  bool begin_completion() { return !completing_.exchange(true); }

 private:
  std::string uid_;
  PipelineState state_ = PipelineState::Described;
  mutable std::mutex mutex_;
  std::vector<StagePtr> stages_;
  std::size_t current_ = 0;
  std::atomic<bool> held_open_{false};
  std::atomic<bool> completing_{false};
};

using PipelinePtr = std::shared_ptr<Pipeline>;

}  // namespace entk
