// ExecManager (paper Fig 2): the workload-management component.
//
// Rmgr acquires resources through the RTS (pilot submission); Emgr pulls
// tasks from the Pending queue (message 2), translates them into
// RTS-specific units and submits them for execution (message 3); the RTS
// Callback subcomponent pushes completed units to the Done queue
// (message 4); Heartbeat monitors RTS health and — because the RTS is a
// black box — handles full RTS failure by tearing it down, starting a new
// instance with fresh pilot resources, and resubmitting only the units
// that were in flight at the time of failure (paper §II-B-4).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/profiler.hpp"
#include "src/core/sync.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/rts.hpp"

namespace entk {

struct ExecConfig {
  int rts_restart_limit = 1;         ///< restarts of a failed RTS per run
  double heartbeat_interval_s = 0.02;  ///< wall seconds between probes
  double poll_timeout_s = 0.002;
  std::size_t submit_batch = 64;     ///< max units per RTS submission
};

class ExecManager {
 public:
  ExecManager(ExecConfig config, mq::BrokerPtr broker,
              ObjectRegistry* registry, std::string pending_queue,
              std::string done_queue, std::string states_queue,
              rts::RtsFactory rts_factory, ProfilerPtr profiler);
  ~ExecManager();

  /// Rmgr: create the RTS and acquire resources (blocking).
  void acquire_resources();

  /// Start Emgr and Heartbeat threads.
  void start();

  /// Stop threads and terminate the RTS gracefully. Returns the wall
  /// seconds spent inside Rts::terminate (so AppManager can report EnTK
  /// and RTS tear-down separately).
  double stop();

  /// Fault injection for tests/examples: hard-kill the current RTS.
  void inject_rts_failure();

  /// Set the handler invoked when the RTS is lost and the restart budget
  /// is exhausted.
  void set_fatal_handler(std::function<void(const std::string&)> handler);

  int rts_restarts() const { return restarts_.load(); }
  rts::RtsStats rts_stats() const;

  BusyAccumulator& emgr_busy() { return emgr_busy_; }

 private:
  void emgr_loop();
  void heartbeat_loop();
  void attach_callback();
  rts::TaskUnit translate(const TaskPtr& task) const;
  void restart_rts();

  const ExecConfig config_;
  mq::BrokerPtr broker_;
  ObjectRegistry* registry_;
  const std::string pending_queue_;
  const std::string done_queue_;
  const std::string states_queue_;
  rts::RtsFactory rts_factory_;
  ProfilerPtr profiler_;

  mutable std::mutex rts_mutex_;
  rts::RtsPtr rts_;

  std::function<void(const std::string&)> fatal_handler_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> restarts_{0};
  BusyAccumulator emgr_busy_;

  std::thread emgr_thread_;
  std::thread heartbeat_thread_;
};

}  // namespace entk
