// ExecManager (paper Fig 2): the workload-management component.
//
// Rmgr acquires resources through the RTS (pilot submission); Emgr pulls
// tasks from the Pending queue (message 2), translates them into
// RTS-specific units and submits them for execution (message 3); the RTS
// Callback subcomponent pushes completed units to the Done queue
// (message 4); Heartbeat monitors RTS health and — because the RTS is a
// black box — handles full RTS failure by tearing it down, starting a new
// instance with fresh pilot resources, and resubmitting only the units
// that were in flight at the time of failure (paper §II-B-4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/core/sync.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/rts.hpp"

namespace entk {

struct ExecConfig {
  /// RTS heartbeat interval and restart budget (shared knob set with the
  /// AppManager-level component supervisor).
  SupervisionConfig supervision;
  double poll_timeout_s = 0.002;
  std::size_t submit_batch = 64;     ///< max units per RTS submission

  /// Completion coalescing: when > 0, the RTS callback buffers results and
  /// a flusher publishes them as one bulk Done message ({"results": [...]})
  /// when the buffer reaches `completion_flush_max` or after this many wall
  /// seconds, whichever comes first. 0 = one Done message per unit (seed
  /// behavior).
  double completion_flush_window_s = 0.0;
  std::size_t completion_flush_max = 256;

  /// Sample ready/unacked depth of every broker queue from the heartbeat
  /// thread into the profiler ("queue_ready_depth"/"queue_unacked_depth"
  /// events, depth in the numeric field), so throughput runs can attribute
  /// stalls to a specific queue.
  bool sample_queue_depths = true;
};

/// A supervised Component with "emgr", "heartbeat" and (with a flush
/// window configured) "flush" workers. The RTS handle lives outside the
/// worker lifecycle, so a crashed-and-restarted ExecManager re-attaches to
/// the same RTS instance and the Pending queue without losing units.
class ExecManager : public Component {
 public:
  ExecManager(ExecConfig config, mq::BrokerHandlePtr broker,
              ObjectRegistry* registry, std::string pending_queue,
              std::string done_queue, std::string states_queue,
              rts::RtsFactory rts_factory, ProfilerPtr profiler);
  ~ExecManager() override;

  /// Rmgr: create the RTS and acquire resources (blocking).
  void acquire_resources();

  /// Stop the workers (Component::stop) and terminate the RTS gracefully.
  /// Idempotent: the second call is a no-op returning 0. Returns the wall
  /// seconds spent inside Rts::terminate (so AppManager can report EnTK
  /// and RTS tear-down separately). Hides Component::stop(), which stops
  /// the workers but leaves the RTS running (the supervisor's view).
  double stop();

  /// Fault injection for tests/examples: hard-kill the current RTS.
  void inject_rts_failure();

  /// Set the handler invoked when the RTS is lost and the restart budget
  /// is exhausted.
  void set_fatal_handler(std::function<void(const std::string&)> handler);

  int rts_restarts() const { return restarts_.load(); }
  rts::RtsStats rts_stats() const;

  BusyAccumulator& emgr_busy() { return emgr_busy_; }

 protected:
  void on_start() override;
  void on_stop_requested() override;
  void on_reattach() override;

 private:
  void emgr_loop();
  void heartbeat_loop();
  void attach_callback();
  rts::TaskUnit translate(const TaskPtr& task) const;
  void restart_rts();
  void sample_queue_depths();
  /// Cache "rts.*" metric handles once a registry is attached (idempotent).
  void resolve_metrics();
  void flush_loop();
  /// Publish buffered completion results as one bulk Done message.
  void flush_completions(std::vector<json::Value> buffered);

  const ExecConfig config_;
  mq::BrokerHandlePtr broker_;
  ObjectRegistry* registry_;
  const std::string pending_queue_;
  const std::string done_queue_;
  const std::string states_queue_;
  rts::RtsFactory rts_factory_;

  mutable std::mutex rts_mutex_;
  rts::RtsPtr rts_;

  std::function<void(const std::string&)> fatal_handler_;

  std::atomic<int> restarts_{0};
  std::atomic<bool> rts_terminated_{false};
  BusyAccumulator emgr_busy_;

  // Pre-resolved metric handles ("rts.*"); all null when metrics are off.
  obs::Histogram* submit_us_metric_ = nullptr;
  obs::Counter* submitted_metric_ = nullptr;
  obs::Counter* completed_metric_ = nullptr;

  // Completion coalescing (used only when completion_flush_window_s > 0).
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::vector<json::Value> completion_buffer_;
  bool flusher_running_ = false;
};

}  // namespace entk
