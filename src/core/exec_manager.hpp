// ExecManager (paper Fig 2): the workload-management component.
//
// Since the distributed-execution refactor this is a thin, registry-backed
// deployment of worker::WorkerRuntime — the reusable Rmgr/Emgr/RtsCallback
// stack in src/worker — embedded in the AppManager process. The wrapper
// resolves pending-queue uids through the live ObjectRegistry (so task
// callables survive translation) and keeps the historical component name,
// queue bindings and config shape, so in-process behaviour is unchanged.
// The same runtime, constructed against a RemoteBroker with inline units,
// is the entk_worker daemon (src/worker/worker_daemon.hpp).
#pragma once

#include "src/core/sync.hpp"
#include "src/core/task.hpp"
#include "src/worker/worker_runtime.hpp"

namespace entk {

/// Historical name: the embedded deployment's config is exactly the
/// runtime's (defaults preserve seed behaviour).
using ExecConfig = worker::WorkerRuntimeConfig;

/// A supervised Component with "emgr", "heartbeat" and (with a flush
/// window configured) "flush" workers. The RTS handle lives outside the
/// worker lifecycle, so a crashed-and-restarted ExecManager re-attaches to
/// the same RTS instance and the Pending queue without losing units.
class ExecManager : public worker::WorkerRuntime {
 public:
  ExecManager(ExecConfig config, mq::BrokerHandlePtr broker,
              ObjectRegistry* registry, std::string pending_queue,
              std::string done_queue, std::string states_queue,
              rts::RtsFactory rts_factory, ProfilerPtr profiler);
};

}  // namespace entk
