// Resource description: what the user tells AppManager about the CI
// (paper §II-B-3: "instantiate the AppManager component with information
// about the available CIs").
#pragma once

#include <string>

#include "src/rts/agent.hpp"
#include "src/sim/failure.hpp"

namespace entk {

struct ResourceDescription {
  std::string resource = "local.localhost";  ///< CI name (sim catalog)
  int cpus = 8;           ///< total cores to acquire
  int nodes = 0;          ///< alternative: whole nodes (wins when > 0)
  double walltime_s = 7200.0;
  std::string project;

  // Simulation knobs surfaced to benches/tests.
  rts::AgentConfig agent;
  sim::FailureSpec failure;
  double rts_teardown_base_s = 3.0;
  double rts_teardown_per_unit_s = 0.005;
};

/// Host-emulation model for EnTK's own overheads.
//
// The reference toolkit is Python: its setup / management / tear-down
// overheads are dominated by interpreter and process-handling costs on the
// host EnTK runs on (a shared TACC VM for XSEDE runs, a faster ORNL login
// node for Titan runs — paper §IV-A-2). The C++ control path measured here
// is orders of magnitude faster, so to compare *shapes* with the paper we
// additionally report a documented host model:
//   setup     = factor * setup_c
//   management= factor * (mgmt_c0 + mgmt_c1 * tasks_processed)
//   tear-down = factor * teardown_c
// with factor taken from the CI catalog (1.0 = TACC VM, 0.3 = ORNL login).
// OverheadReport carries both the measured and the modeled values.
struct HostModel {
  double factor = 1.0;
  double setup_c = 0.1;      ///< s; paper: ~0.1 s on the VM, ~0.05 on Titan
  double mgmt_c0 = 9.5;      ///< s; paper: ~10 s on the VM, ~3 s on Titan
  double mgmt_c1 = 0.0005;   ///< s/task; growth at O(10^3) concurrent tasks
  double teardown_c = 5.0;   ///< s; paper: 1–10 s (process/thread teardown)
};

}  // namespace entk
