// AppManager (paper Fig 2): the master component of EnTK.
//
// Holds the application description and all global state; creates the
// communication infrastructure (broker queues), spawns the Synchronizer,
// instantiates WFProcessor and ExecManager, and orchestrates the run:
//   users describe an application as pipelines of stages of tasks, hand it
//   to AppManager together with a resource description, and call run().
// AppManager is the single stateful component: every state change flows
// through its Synchronizer into the transactional StateStore.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/profiler.hpp"
#include "src/core/exec_manager.hpp"
#include "src/core/overheads.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/resource.hpp"
#include "src/core/state_store.hpp"
#include "src/core/supervisor.hpp"
#include "src/core/sync.hpp"
#include "src/core/wfprocessor.hpp"
#include "src/mq/broker.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/rts/rts.hpp"
#include "src/worker/registration.hpp"

namespace entk {

/// Wiring handed to an adaptive-extension factory (the ensemble
/// Controller): everything a rule engine needs to observe and steer a run.
/// Defined here — not in src/ensemble — so core never depends on the
/// ensemble library; the dependency points the other way.
struct AdaptiveWiring {
  mq::BrokerHandlePtr broker;
  std::string events_queue;  ///< WFProcessor completion-event stream
  ObjectRegistry* registry = nullptr;
  WFProcessor* wfprocessor = nullptr;
  ClockPtr clock;
  ProfilerPtr profiler;
  obs::MetricsPtr metrics;  ///< null when metrics are off
  /// Elastic-pilot hook; always callable, returns false when no local RTS
  /// exists (remote-workers mode) or the RTS cannot resize.
  std::function<bool(const rts::ResizeRequest&)> resize;
};

/// Invoked during run() setup once the core components exist. The returned
/// Component is supervised, started with the core components and stopped
/// at teardown. ensemble::Controller::attach() installs one of these.
using AdaptiveFactory =
    std::function<std::shared_ptr<Component>(const AdaptiveWiring&)>;

struct AppManagerConfig {
  ResourceDescription resource;

  /// Host-emulation model; factor < 0 -> use the CI catalog's factor.
  HostModel host{.factor = -1.0};

  int task_retry_limit = 0;   ///< default resubmission budget per task

  /// One knob set for all supervision: the component supervisor's probe
  /// interval and restart budget, and the ExecManager's RTS heartbeat and
  /// restart budget (previously two independently-set fields).
  SupervisionConfig supervision;

  /// Wall seconds per virtual second for the simulated CI (1e-3 runs
  /// simulated workloads 1000x faster than real time).
  double clock_scale = 1e-3;

  /// Directory for the broker journal and the transactional state journal
  /// ("" = in-memory only).
  std::string journal_dir;

  /// Group-commit policy of the broker journal AND the state journal
  /// (flush batch size, commit window, optional per-append sync). Ignored
  /// when journal_dir is "".
  mq::JournalConfig journal;

  /// Shards of the in-process broker's queue namespace: queues hash to
  /// independent lock + journal domains, so concurrent publishers and
  /// consumers of different queues never contend. 0 = one shard per
  /// hardware thread (capped — see mq::Broker::default_shards); 1 keeps
  /// the historical single-shard broker. Ignored when broker_endpoint is
  /// set (the daemon owns its own --shards knob).
  std::size_t broker_shards = 1;

  /// Endpoint ("host:port") of an entk_broker daemon. Empty (default) =
  /// in-process broker, which keeps the zero-copy fast path. When set,
  /// every component talks to the daemon through a net::RemoteBroker over
  /// the framed TCP protocol; broker durability is then the daemon's
  /// responsibility (its --journal-dir) and journal_dir here governs only
  /// the local state journal.
  std::string broker_endpoint;

  /// Tenant namespace on the broker daemon (requires broker_endpoint).
  /// Every queue this application declares lives inside the tenant, so
  /// many ensembles share one daemon without their identically-named
  /// queues colliding, and the daemon's per-tenant quotas/fair scheduling
  /// apply. Empty (default) = the daemon's default tenant — exact
  /// single-tenant behavior.
  std::string tenant;

  /// Path to the journal of a previous (crashed) durable broker: replayed
  /// into the in-process broker before the run (Broker::recover), then the
  /// recovered queue backlog is purged — in an AppManager-driven run, the
  /// WFProcessor is the scheduling authority and re-publishes everything
  /// the state journal says is still outstanding; replayed messages would
  /// only duplicate it (recovered-DONE tasks must not reappear at all).
  /// The broker-journal replay is what carries durable *broker* state
  /// (queue set + durability) across the crash; pair it with
  /// resume_journal to also skip completed tasks. Requires an empty
  /// broker_endpoint (a daemon recovers its own journal via --recover).
  std::string recover_broker_journal;

  /// Path to the state journal of a previous attempt of the SAME
  /// application description (matching uids). Tasks whose last committed
  /// state is DONE are recovered and not re-executed: the paper's restart
  /// semantics ("reacquire upon restarting information about the state of
  /// the execution up to the latest successful transaction", §II-B-4).
  std::string resume_journal;

  /// Override the runtime system (default: PilotRts on `resource`). The
  /// factory is invoked again after an RTS failure.
  rts::RtsFactory rts_factory;

  /// Tasks per dispatch batch through the whole pipeline: Enqueue publishes
  /// bulk pending messages, state syncs are vectored (one confirmed
  /// round-trip per batch), Dequeue and Emgr drain in batches, and the RTS
  /// callback coalesces completions into bulk Done messages. 1 reproduces
  /// the seed's strictly per-task message flow; per-task states, profiler
  /// events and recovery semantics are identical at any setting.
  std::size_t task_batch_size = 64;

  /// Observability: live metrics registry (broker/component/RTS counters,
  /// latency histograms) and post-run exports — Chrome trace_event JSON
  /// (obs.trace_out) and metrics JSONL (obs.metrics_out). All off by
  /// default; the hot paths then cost a single null check.
  obs::ObsConfig obs;

  /// Distributed execution plane: this process runs no ExecManager.
  /// Instead the WFProcessor publishes self-contained units
  /// ({"units": [...]}) on the Pending queue of the broker daemon at
  /// broker_endpoint (required), entk_worker daemons drain and execute
  /// them, and a WorkerDirectory consumes their registration/heartbeat
  /// events. Tasks must not carry callables (they cannot cross a process
  /// boundary); run() rejects them. Everything else — states, recovery,
  /// retries, reporting — is unchanged.
  bool remote_workers = false;

  /// Liveness TTL of the WorkerDirectory view (remote_workers mode):
  /// workers silent longer than this stop counting as live. Gauge-level
  /// only; requeue correctness is the broker daemon's worker TTL.
  double worker_ttl_s = 5.0;

  /// Adaptive-workflow extension (the ensemble Controller). When set, the
  /// WFProcessor publishes its completion-event stream to events_queue and
  /// the factory's Component joins the supervision tree for the run.
  AdaptiveFactory adaptive_factory;

  /// Queue carrying the completion-event stream. Empty = enabled only when
  /// adaptive_factory is set, under the default name "q.ensemble.events";
  /// set explicitly to tap the stream without a controller.
  std::string events_queue;
};

class AppManager {
 public:
  explicit AppManager(AppManagerConfig config);
  ~AppManager();

  AppManager(const AppManager&) = delete;
  AppManager& operator=(const AppManager&) = delete;

  /// Assign the application workflow. Must be called before run().
  void add_pipelines(std::vector<PipelinePtr> pipelines);

  /// Execute the application to completion (blocking). Throws EnTKError
  /// when the application cannot start; individual task/pipeline failures
  /// are reported through states and the overhead report instead.
  void run();

  /// Inject a hard RTS failure (fault-tolerance tests/examples).
  void inject_rts_failure();

  /// Inject a component fault: the named component ("wfprocessor",
  /// "synchronizer" or "exec_manager") throws out of its next worker-loop
  /// iteration and the supervisor takes over. Throws ValueError for an
  /// unknown component name.
  void inject_component_fault(const std::string& component);

  /// Cancel the running application from another thread: live tasks,
  /// stages and pipelines move to Canceled and run() returns after clean
  /// teardown. Results of units still executing in the RTS are discarded.
  void cancel();

  // --- introspection ------------------------------------------------------
  const std::string& uid() const { return uid_; }
  OverheadReport overheads() const { return report_; }
  ProfilerPtr profiler() { return profiler_; }
  /// Metrics registry (null unless config.obs enabled metrics).
  obs::MetricsPtr metrics() { return metrics_; }
  /// Causal trace stitched at the end of run() (empty before).
  const obs::Trace& trace() const { return trace_; }
  ClockPtr clock() { return clock_; }
  StateStore* state_store() { return store_.get(); }
  /// Journal path of this run's in-process durable broker ("" when the run
  /// was not durable or used a daemon): what a resumed run passes as
  /// recover_broker_journal.
  std::string broker_journal_path() const {
    return local_broker_ ? local_broker_->journal_path() : "";
  }
  const std::vector<PipelinePtr>& pipelines() const { return pipelines_; }
  /// Directory of announced remote workers (null unless remote_workers).
  worker::WorkerDirectory* worker_directory() {
    return worker_directory_.get();
  }
  std::size_t tasks_done() const;
  std::size_t tasks_failed() const;
  std::size_t resubmissions() const;
  std::size_t tasks_recovered() const;
  int rts_restarts() const;
  int component_restarts() const;

 private:
  rts::RtsFactory default_rts_factory();
  /// Record the first fatal failure for the report (later ones are noise).
  void note_fatal(const std::string& component, const std::string& reason);

  AppManagerConfig config_;
  std::string uid_;
  ClockPtr clock_;
  ProfilerPtr profiler_;
  obs::MetricsPtr metrics_;
  obs::Trace trace_;

  std::vector<PipelinePtr> pipelines_;

  /// What the components see: either the in-process broker or a
  /// net::RemoteBroker, behind the same BrokerHandle surface.
  mq::BrokerHandlePtr broker_;
  /// Set only on the in-process path (local recovery, metrics, tests).
  mq::BrokerPtr local_broker_;
  std::unique_ptr<StateStore> store_;
  ObjectRegistry registry_;
  std::unique_ptr<Synchronizer> synchronizer_;
  std::unique_ptr<WFProcessor> wfprocessor_;
  std::unique_ptr<ExecManager> exec_manager_;     ///< null in remote mode
  std::unique_ptr<worker::WorkerDirectory> worker_directory_;
  std::shared_ptr<Component> adaptive_;  ///< ensemble Controller (optional)
  std::unique_ptr<Supervisor> supervisor_;

  std::mutex fatal_mutex_;
  std::string fatal_component_;
  std::string fatal_reason_;

  OverheadReport report_;
  bool ran_ = false;
};

}  // namespace entk
