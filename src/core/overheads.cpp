#include "src/core/overheads.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace entk {
namespace {

struct VirtualSpans {
  double rts_init = 0.0;
  double rts_teardown = 0.0;
  double exec_span = 0.0;       // first exec start -> last exec end
  double staging_total = 0.0;   // sum of per-unit staging durations
  double staging_span = 0.0;    // first staging start -> last staging stop
  double lead_in = 0.0;         // avg unit wait: received -> exec start,
                                // staging excluded
  double lead_out = 0.0;        // avg unit wait: exec end -> done,
                                // staging excluded
};

VirtualSpans scan(const Profiler& profiler) {
  VirtualSpans out;
  double rts_init_start = -1, rts_init_stop = -1;
  double first_stage = -1, last_stage = -1;
  double rts_td_start = -1, rts_td_stop = -1;
  double first_exec = -1, last_exec = -1;

  struct UnitTimes {
    double received = -1, exec_start = -1, exec_end = -1, done = -1;
    double stage_in = 0, stage_out = 0;
    double stage_in_start = -1, stage_out_start = -1;
  };
  std::map<std::string, UnitTimes> units;

  for (const ProfileEvent& e : profiler.events()) {
    const double v = e.virtual_s;
    if (v < 0) continue;  // wall-only event
    if (e.event == "rts_init_start" && rts_init_start < 0) rts_init_start = v;
    else if (e.event == "rts_init_stop") rts_init_stop = v;
    else if (e.event == "rts_teardown_start" && rts_td_start < 0) rts_td_start = v;
    else if (e.event == "rts_teardown_stop") rts_td_stop = v;
    else if (e.event == "unit_received") units[e.uid].received = v;
    else if (e.event == "unit_exec_start") {
      if (first_exec < 0 || v < first_exec) first_exec = v;
      units[e.uid].exec_start = v;
    } else if (e.event == "unit_exec_stop") {
      if (v > last_exec) last_exec = v;
      units[e.uid].exec_end = v;
    } else if (e.event == "unit_done") {
      units[e.uid].done = v;
    } else if (e.event == "unit_stage_in_start") {
      units[e.uid].stage_in_start = v;
      if (first_stage < 0 || v < first_stage) first_stage = v;
    } else if (e.event == "unit_stage_in_stop") {
      UnitTimes& u = units[e.uid];
      if (u.stage_in_start >= 0) u.stage_in += v - u.stage_in_start;
      if (v > last_stage) last_stage = v;
    } else if (e.event == "unit_stage_out_start") {
      units[e.uid].stage_out_start = v;
      if (first_stage < 0 || v < first_stage) first_stage = v;
    } else if (e.event == "unit_stage_out_stop") {
      UnitTimes& u = units[e.uid];
      if (u.stage_out_start >= 0) u.stage_out += v - u.stage_out_start;
      if (v > last_stage) last_stage = v;
    }
  }

  if (rts_init_start >= 0 && rts_init_stop >= rts_init_start)
    out.rts_init = rts_init_stop - rts_init_start;
  if (rts_td_start >= 0 && rts_td_stop >= rts_td_start)
    out.rts_teardown = rts_td_stop - rts_td_start;
  if (first_exec >= 0 && last_exec >= first_exec)
    out.exec_span = last_exec - first_exec;
  if (first_stage >= 0 && last_stage >= first_stage)
    out.staging_span = last_stage - first_stage;

  // Lead-in uses the FIRST unit only: later units may legitimately queue
  // for cores (strong scaling runs multiple generations), and that wait is
  // workload time, not RTS overhead. The first unit of a run never waits.
  double first_received = -1;
  double lead_out_sum = 0;
  std::size_t n_out = 0;
  for (const auto& [uid, u] : units) {
    (void)uid;
    out.staging_total += u.stage_in + u.stage_out;
    if (u.received >= 0 && u.exec_start >= u.received &&
        (first_received < 0 || u.received < first_received)) {
      first_received = u.received;
      out.lead_in = std::max(0.0, u.exec_start - u.received - u.stage_in);
    }
    if (u.exec_end >= 0 && u.done >= u.exec_end) {
      lead_out_sum += std::max(0.0, u.done - u.exec_end - u.stage_out);
      ++n_out;
    }
  }
  if (n_out > 0) out.lead_out = lead_out_sum / static_cast<double>(n_out);
  return out;
}

}  // namespace

OverheadReport compute_overheads(const Profiler& profiler,
                                 const OverheadInputs& in) {
  OverheadReport r;
  const VirtualSpans v = scan(profiler);

  r.entk_setup_measured_s = in.setup_wall_s;
  r.entk_mgmt_measured_s = in.mgmt_wall_s;
  r.entk_teardown_measured_s = in.teardown_wall_s;

  r.entk_setup_model_s = in.host.factor * in.host.setup_c;
  r.entk_mgmt_model_s =
      in.host.factor *
      (in.host.mgmt_c0 +
       in.host.mgmt_c1 * static_cast<double>(in.tasks_processed));
  r.entk_teardown_model_s = in.host.factor * in.host.teardown_c;

  r.entk_setup_s = r.entk_setup_measured_s + r.entk_setup_model_s;
  r.entk_mgmt_s = r.entk_mgmt_measured_s + r.entk_mgmt_model_s;
  r.entk_teardown_s = r.entk_teardown_measured_s + r.entk_teardown_model_s;

  // RTS overhead: resource acquisition/bootstrap plus the average per-unit
  // submission/dispatch latencies the RTS adds around execution.
  r.rts_overhead_s = v.rts_init + v.lead_in + v.lead_out;
  r.rts_teardown_s = v.rts_teardown;
  r.staging_s = v.staging_total;
  r.staging_span_s = v.staging_span;
  r.task_exec_s = v.exec_span;
  return r;
}

std::string OverheadReport::to_table() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  EnTK Setup Overhead      %10.3f s  (measured %.4f + model %.3f)\n"
      "  EnTK Management Overhead %10.3f s  (measured %.4f + model %.3f)\n"
      "  EnTK Tear-Down Overhead  %10.3f s  (measured %.4f + model %.3f)\n"
      "  RTS Overhead             %10.3f s\n"
      "  RTS Tear-Down Overhead   %10.3f s\n"
      "  Data Staging Time        %10.3f s\n"
      "  Task Execution Time      %10.3f s\n"
      "  tasks done/failed/resub  %zu/%zu/%zu  rts restarts %d\n"
      "  component restarts       %d\n",
      entk_setup_s, entk_setup_measured_s, entk_setup_model_s, entk_mgmt_s,
      entk_mgmt_measured_s, entk_mgmt_model_s, entk_teardown_s,
      entk_teardown_measured_s, entk_teardown_model_s, rts_overhead_s,
      rts_teardown_s, staging_s, task_exec_s, tasks_done, tasks_failed,
      resubmissions, rts_restarts, component_restarts);
  std::string out = buf;
  if (!failed_component.empty()) {
    out += "  FAILED component         " + failed_component + ": " +
           failure_reason + "\n";
  }
  return out;
}

}  // namespace entk
