#include "src/core/overheads.hpp"

#include <algorithm>
#include <cstdio>

namespace entk {
namespace {

struct VirtualSpans {
  double rts_init = 0.0;
  double rts_teardown = 0.0;
  double exec_span = 0.0;       // first exec start -> last exec end
  double staging_total = 0.0;   // sum of per-unit staging durations
  double staging_span = 0.0;    // first staging start -> last staging stop
  double lead_in = 0.0;         // avg unit wait: received -> exec start,
                                // staging excluded
  double lead_out = 0.0;        // avg unit wait: exec end -> done,
                                // staging excluded
};

VirtualSpans from_trace(const obs::Trace& trace) {
  VirtualSpans out;
  out.rts_init = trace.rts_init_s();
  out.rts_teardown = trace.rts_teardown_s();
  out.exec_span = trace.exec_span_s();
  out.staging_span = trace.staging_span_s();

  // Lead-in uses the FIRST unit only: later units may legitimately queue
  // for cores (strong scaling runs multiple generations), and that wait is
  // workload time, not RTS overhead. The first unit of a run never waits.
  double first_received = -1;
  double lead_out_sum = 0;
  std::size_t n_out = 0;
  for (const auto& [uid, task] : trace.tasks) {
    (void)uid;
    const obs::UnitVirtualTimes& u = task.vt;
    out.staging_total += u.stage_in + u.stage_out;
    if (u.received >= 0 && u.exec_start >= u.received &&
        (first_received < 0 || u.received < first_received)) {
      first_received = u.received;
      out.lead_in = std::max(0.0, u.exec_start - u.received - u.stage_in);
    }
    if (u.exec_end >= 0 && u.done >= u.exec_end) {
      lead_out_sum += std::max(0.0, u.done - u.exec_end - u.stage_out);
      ++n_out;
    }
  }
  if (n_out > 0) out.lead_out = lead_out_sum / static_cast<double>(n_out);
  return out;
}

}  // namespace

OverheadReport compute_overheads(const Profiler& profiler,
                                 const OverheadInputs& in) {
  return compute_overheads(obs::build_trace(profiler), in);
}

OverheadReport compute_overheads(const obs::Trace& trace,
                                 const OverheadInputs& in) {
  OverheadReport r;
  const VirtualSpans v = from_trace(trace);

  r.entk_setup_measured_s = in.setup_wall_s;
  r.entk_mgmt_measured_s = in.mgmt_wall_s;
  r.entk_teardown_measured_s = in.teardown_wall_s;

  r.entk_setup_model_s = in.host.factor * in.host.setup_c;
  r.entk_mgmt_model_s =
      in.host.factor *
      (in.host.mgmt_c0 +
       in.host.mgmt_c1 * static_cast<double>(in.tasks_processed));
  r.entk_teardown_model_s = in.host.factor * in.host.teardown_c;

  r.entk_setup_s = r.entk_setup_measured_s + r.entk_setup_model_s;
  r.entk_mgmt_s = r.entk_mgmt_measured_s + r.entk_mgmt_model_s;
  r.entk_teardown_s = r.entk_teardown_measured_s + r.entk_teardown_model_s;

  // RTS overhead: resource acquisition/bootstrap plus the average per-unit
  // submission/dispatch latencies the RTS adds around execution.
  r.rts_overhead_s = v.rts_init + v.lead_in + v.lead_out;
  r.rts_teardown_s = v.rts_teardown;
  r.staging_s = v.staging_total;
  r.staging_span_s = v.staging_span;
  r.task_exec_s = v.exec_span;
  return r;
}

std::string OverheadReport::to_table() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  EnTK Setup Overhead      %10.3f s  (measured %.4f + model %.3f)\n"
      "  EnTK Management Overhead %10.3f s  (measured %.4f + model %.3f)\n"
      "  EnTK Tear-Down Overhead  %10.3f s  (measured %.4f + model %.3f)\n"
      "  RTS Overhead             %10.3f s\n"
      "  RTS Tear-Down Overhead   %10.3f s\n"
      "  Data Staging Time        %10.3f s\n"
      "  Task Execution Time      %10.3f s\n"
      "  tasks done/failed/resub  %zu/%zu/%zu  rts restarts %d\n"
      "  component restarts       %d\n",
      entk_setup_s, entk_setup_measured_s, entk_setup_model_s, entk_mgmt_s,
      entk_mgmt_measured_s, entk_mgmt_model_s, entk_teardown_s,
      entk_teardown_measured_s, entk_teardown_model_s, rts_overhead_s,
      rts_teardown_s, staging_s, task_exec_s, tasks_done, tasks_failed,
      resubmissions, rts_restarts, component_restarts);
  std::string out = buf;
  if (!failed_component.empty()) {
    out += "  FAILED component         " + failed_component + ": " +
           failure_reason + "\n";
  }
  return out;
}

}  // namespace entk
