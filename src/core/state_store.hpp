// Transactional state store (paper §II-B-4).
//
// "All state updates in EnTK are transactional, hence any EnTK component
// that fails can be restarted at runtime without losing information about
// ongoing execution." Every committed transition is appended as one JSONL
// record; recovery replays the journal to the last complete record. Hooks
// for an external database are modeled by the pluggable sink.
//
// Durability rides the same group-commit JournalWriter as the broker
// journal (one flush per batch instead of one fflush per commit) and obeys
// the same fsync-policy knob: with JournalConfig::sync_every_append the
// record is on disk when commit() returns (the seed's per-record flush);
// otherwise at most the unflushed tail inside the commit window is lost on
// a hard crash, and flush() is the explicit barrier. I/O errors are sticky
// and surface as MqError out of commit() — a transactional store must not
// silently drop transactions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/json/json.hpp"
#include "src/mq/journal.hpp"

namespace entk {

struct StateTransaction {
  std::uint64_t seq = 0;
  double wall_s = 0.0;
  std::string uid;        ///< subject (task/stage/pipeline uid)
  std::string kind;       ///< "task" | "stage" | "pipeline"
  std::string from_state;
  std::string to_state;
  std::string component;  ///< who requested the transition
};

class StateStore {
 public:
  /// `journal_path` empty -> in-memory only (no durability). `journal`
  /// sets the group-commit flush policy (sync_every_append = seed-style
  /// flush-per-commit).
  explicit StateStore(std::string journal_path = "",
                      mq::JournalConfig journal = {});
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Commit a transition; the record is in the group-commit segment when
  /// this returns (on disk with sync_every_append, or after flush()).
  /// Returns the transaction sequence number; throws MqError when the
  /// journal hit a sticky I/O error.
  std::uint64_t commit(const std::string& uid, const std::string& kind,
                       const std::string& from_state,
                       const std::string& to_state,
                       const std::string& component);

  /// Durability barrier: every commit so far is on disk when this
  /// returns. No-op for an in-memory store.
  void flush();

  /// Latest committed state of `uid` ("" when unknown).
  std::string state_of(const std::string& uid) const;

  /// All transactions, in commit order.
  std::vector<StateTransaction> history() const;
  std::size_t transaction_count() const;

  /// Optional external sink (the "hooks ... to use an external database"):
  /// invoked after each durable commit.
  void set_external_sink(std::function<void(const StateTransaction&)> sink);

  /// Replay a journal into this (fresh) store; stops at the first torn
  /// record. Returns the number of transactions recovered.
  std::size_t recover(const std::string& journal_path);

  const std::string& journal_path() const { return journal_path_; }

  /// The group-commit writer (nullptr for an in-memory store). Exposed for
  /// tests that need crash injection (simulate_crash) or flush accounting.
  mq::JournalWriter* journal_writer() { return writer_.get(); }

 private:
  void append_locked(const StateTransaction& t);

  const std::string journal_path_;
  mutable std::mutex mutex_;
  std::unique_ptr<mq::JournalWriter> writer_;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, std::string> latest_;
  std::vector<StateTransaction> history_;
  std::function<void(const StateTransaction&)> sink_;
};

}  // namespace entk
