// Transactional state store (paper §II-B-4).
//
// "All state updates in EnTK are transactional, hence any EnTK component
// that fails can be restarted at runtime without losing information about
// ongoing execution." Every committed transition is appended as one JSONL
// record and flushed before the commit returns; recovery replays the
// journal to the last complete record. Hooks for an external database are
// modeled by the pluggable sink.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/json/json.hpp"

namespace entk {

struct StateTransaction {
  std::uint64_t seq = 0;
  double wall_s = 0.0;
  std::string uid;        ///< subject (task/stage/pipeline uid)
  std::string kind;       ///< "task" | "stage" | "pipeline"
  std::string from_state;
  std::string to_state;
  std::string component;  ///< who requested the transition
};

class StateStore {
 public:
  /// `journal_path` empty -> in-memory only (no durability).
  explicit StateStore(std::string journal_path = "");
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Commit a transition; the record is on disk when this returns.
  /// Returns the transaction sequence number.
  std::uint64_t commit(const std::string& uid, const std::string& kind,
                       const std::string& from_state,
                       const std::string& to_state,
                       const std::string& component);

  /// Latest committed state of `uid` ("" when unknown).
  std::string state_of(const std::string& uid) const;

  /// All transactions, in commit order.
  std::vector<StateTransaction> history() const;
  std::size_t transaction_count() const;

  /// Optional external sink (the "hooks ... to use an external database"):
  /// invoked after each durable commit.
  void set_external_sink(std::function<void(const StateTransaction&)> sink);

  /// Replay a journal into this (fresh) store; stops at the first torn
  /// record. Returns the number of transactions recovered.
  std::size_t recover(const std::string& journal_path);

  const std::string& journal_path() const { return journal_path_; }

 private:
  void append_locked(const StateTransaction& t);

  const std::string journal_path_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, std::string> latest_;
  std::vector<StateTransaction> history_;
  std::function<void(const StateTransaction&)> sink_;
};

}  // namespace entk
