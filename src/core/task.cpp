#include "src/core/task.hpp"

#include "src/common/error.hpp"
#include "src/common/ids.hpp"

namespace entk {

Task::Task() : uid_(generate_uid("task")) {}

Task::Task(std::string task_name) : Task() { name = std::move(task_name); }

void Task::validate() const {
  if (executable.empty() && !function && duration_s <= 0.0) {
    throw MissingError("task " + uid_, "executable, function or duration_s");
  }
  if (cpu_reqs.processes <= 0 || cpu_reqs.threads_per_process <= 0) {
    throw ValueError("task " + uid_, "cpu_reqs", "positive process/thread counts");
  }
  if (gpu_reqs.processes < 0) {
    throw ValueError("task " + uid_, "gpu_reqs", "non-negative process count");
  }
  if (duration_s < 0.0) {
    throw ValueError("task " + uid_, "duration_s", "non-negative duration");
  }
  if (retry_limit < -1) {
    throw ValueError("task " + uid_, "retry_limit", ">= -1");
  }
  for (const auto& d : input_staging) {
    if (d.action != saga::StagingAction::Link && d.bytes == 0 &&
        d.source.empty()) {
      throw ValueError("task " + uid_, "input_staging",
                       "a source or a size for copy/transfer directives");
    }
  }
}

json::Value Task::to_json() const {
  json::Value v;
  v["uid"] = uid_;
  v["name"] = name;
  v["state"] = to_string(state_);
  v["executable"] = executable;
  json::Value args = json::Array{};
  for (const std::string& a : arguments) args.push_back(a);
  v["arguments"] = std::move(args);
  v["cpu_processes"] = cpu_reqs.processes;
  v["cpu_threads"] = cpu_reqs.threads_per_process;
  v["gpu_processes"] = gpu_reqs.processes;
  v["exclusive_nodes"] = exclusive_nodes;
  v["duration_s"] = duration_s;
  v["has_function"] = static_cast<bool>(function);
  v["retry_limit"] = retry_limit;
  v["attempts"] = attempts_;
  v["exit_code"] = exit_code_;
  v["parent_stage"] = parent_stage_;
  v["parent_pipeline"] = parent_pipeline_;
  v["metadata"] = metadata;
  return v;
}

rts::TaskUnit to_unit(const Task& task) {
  rts::TaskUnit unit;
  unit.uid = task.uid();
  unit.name = task.name;
  unit.executable = task.executable;
  unit.arguments = task.arguments;
  unit.cores = task.cpu_reqs.total();
  unit.gpus = task.gpu_reqs.total();
  unit.exclusive_nodes = task.exclusive_nodes;
  unit.duration_s = task.duration_s;
  unit.callable = task.function;
  unit.input_staging = task.input_staging;
  unit.output_staging = task.output_staging;
  unit.metadata = task.metadata;
  return unit;
}

}  // namespace entk
