// Stage: a set of tasks without mutual dependences that can execute
// concurrently (paper §II-B-1).
//
// A stage may carry a post-execution hook, invoked by the WFProcessor when
// the stage resolves. The hook is how applications express branches and
// adaptivity without altering the PST semantics (paper §II-B-1: "branching
// events can be specified as tasks where a decision is made about the
// runtime flow") — e.g. the AUA use case appends further compute/error
// stages to its pipeline until the prediction error drops below threshold.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/states.hpp"
#include "src/core/task.hpp"

namespace entk {

class Stage {
 public:
  Stage();
  explicit Stage(std::string name);

  std::string name;

  /// Invoked (on the workflow-processor thread) when every task of the
  /// stage has resolved successfully. May add stages to the parent
  /// pipeline; must not block for long.
  std::function<void()> post_exec;

  void add_task(TaskPtr task);
  const std::vector<TaskPtr>& tasks() const { return tasks_; }
  std::size_t task_count() const { return tasks_.size(); }

  const std::string& uid() const { return uid_; }
  StageState state() const { return state_; }
  const std::string& parent_pipeline() const { return parent_pipeline_; }

  /// Throws when empty or when any task description is invalid.
  void validate() const;

  json::Value to_json() const;

  // Internal.
  void set_state(StageState s) { state_ = s; }
  void set_parent(const std::string& pipeline);

 private:
  std::string uid_;
  StageState state_ = StageState::Described;
  std::string parent_pipeline_;
  std::vector<TaskPtr> tasks_;
};

using StagePtr = std::shared_ptr<Stage>;

}  // namespace entk
