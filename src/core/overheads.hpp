// Overhead accounting (paper §IV-A-2).
//
// Derives the seven durations the paper characterizes from the run's
// profiler trace and component busy counters:
//   EnTK Setup / Management / Tear-Down Overhead   (toolkit control plane)
//   RTS Overhead / RTS Tear-Down Overhead          (runtime system)
//   Data Staging Time / Task Execution Time        (workload, virtual time)
// EnTK values carry both the measured C++ wall cost and the documented
// host-emulation model (see HostModel); RTS and workload values are read
// from virtual-time profiler events.
#pragma once

#include <cstddef>
#include <string>

#include "src/common/profiler.hpp"
#include "src/core/resource.hpp"
#include "src/obs/trace.hpp"

namespace entk {

struct OverheadReport {
  // Paper-comparable values (seconds).
  double entk_setup_s = 0.0;
  double entk_mgmt_s = 0.0;
  double entk_teardown_s = 0.0;
  double rts_overhead_s = 0.0;
  double rts_teardown_s = 0.0;
  double staging_s = 0.0;      ///< total data staging (virtual, summed)
  double staging_span_s = 0.0; ///< staging makespan: first start -> last
                               ///< stop (shows stager parallelism)
  double task_exec_s = 0.0;    ///< first exec start -> last exec end (virtual)

  // Decomposition of the EnTK values.
  double entk_setup_measured_s = 0.0;
  double entk_mgmt_measured_s = 0.0;
  double entk_teardown_measured_s = 0.0;
  double entk_setup_model_s = 0.0;
  double entk_mgmt_model_s = 0.0;
  double entk_teardown_model_s = 0.0;

  // Workload counters.
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
  std::size_t resubmissions = 0;
  int rts_restarts = 0;
  int component_restarts = 0;  ///< supervisor restarts of EnTK components

  // First unrecoverable component failure of the run ("" = clean run):
  // set when a restart budget is exhausted and the run was aborted.
  std::string failed_component;
  std::string failure_reason;

  /// Render as an aligned human-readable block (used by benches).
  std::string to_table() const;
};

struct OverheadInputs {
  double setup_wall_s = 0.0;
  double mgmt_wall_s = 0.0;      ///< sum of component busy counters
  double teardown_wall_s = 0.0;  ///< EnTK-only teardown (RTS excluded)
  std::size_t tasks_processed = 0;
  HostModel host;
};

/// Compute the report from a stitched trace (obs::build_trace): the seven
/// paper categories derive from the trace's virtual-time aggregates and
/// per-unit spans rather than raw event-name scans.
OverheadReport compute_overheads(const obs::Trace& trace,
                                 const OverheadInputs& inputs);

/// Compatibility wrapper: stitch a trace from the raw profiler events
/// ("rts_init_start/stop", "rts_teardown_start/stop", "unit_exec_start/
/// stop", "unit_stage_*", "unit_received", "unit_done") and compute from
/// that.
OverheadReport compute_overheads(const Profiler& profiler,
                                 const OverheadInputs& inputs);

}  // namespace entk
