#include "src/core/exec_manager.hpp"

namespace entk {

ExecManager::ExecManager(ExecConfig config, mq::BrokerHandlePtr broker,
                         ObjectRegistry* registry, std::string pending_queue,
                         std::string done_queue, std::string states_queue,
                         rts::RtsFactory rts_factory, ProfilerPtr profiler)
    : worker::WorkerRuntime(
          "exec_manager", std::move(config), std::move(broker),
          [registry](const std::string& uid) -> std::optional<rts::TaskUnit> {
            TaskPtr task = registry->task(uid);
            if (!task) return std::nullopt;
            return to_unit(*task);
          },
          std::move(pending_queue), std::move(done_queue),
          std::move(states_queue), std::move(rts_factory),
          std::move(profiler)) {}

}  // namespace entk
