#include "src/core/exec_manager.hpp"

#include <chrono>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk {

ExecManager::ExecManager(ExecConfig config, mq::BrokerHandlePtr broker,
                         ObjectRegistry* registry, std::string pending_queue,
                         std::string done_queue, std::string states_queue,
                         rts::RtsFactory rts_factory, ProfilerPtr profiler)
    : Component("exec_manager", std::move(profiler)),
      config_(config),
      broker_(std::move(broker)),
      registry_(registry),
      pending_queue_(std::move(pending_queue)),
      done_queue_(std::move(done_queue)),
      states_queue_(std::move(states_queue)),
      rts_factory_(std::move(rts_factory)) {}

ExecManager::~ExecManager() {
  // Joins the workers; RTS termination stays with the explicit stop() (the
  // seed destructor likewise only joined threads).
  Component::stop();
}

void ExecManager::resolve_metrics() {
  auto* reg = metrics();
  if (reg == nullptr || submit_us_metric_ != nullptr) return;
  submit_us_metric_ = &reg->histogram("rts.submit_us");
  submitted_metric_ = &reg->counter("rts.units_submitted");
  completed_metric_ = &reg->counter("rts.units_completed");
}

void ExecManager::acquire_resources() {
  resolve_metrics();
  profiler_->record("rmgr", "resource_acquire_start");
  rts::RtsPtr rts = rts_factory_();
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    rts_ = std::move(rts);
  }
  attach_callback();
  rts_->initialize();
  profiler_->record("rmgr", "resource_acquire_stop");
}

void ExecManager::attach_callback() {
  // RTS Callback subcomponent: forward completions to the Done queue
  // (paper Fig 2, message 4). With a flush window configured, results are
  // coalesced into bulk Done messages instead of one publish per unit.
  std::lock_guard<std::mutex> lock(rts_mutex_);
  rts_->set_completion_callback([this](const rts::UnitResult& result) {
    json::Value msg;
    msg["uid"] = result.uid;
    msg["outcome"] = rts::to_string(result.outcome);
    msg["exit_code"] = result.exit_code;
    msg["exec_start_t"] = result.exec_start_t;
    msg["exec_end_t"] = result.exec_end_t;
    msg["staging_in_s"] = result.staging_in_s;
    msg["staging_out_s"] = result.staging_out_s;
    if (!result.metadata.is_null()) msg["metadata"] = result.metadata;
    bool coalesced = false;
    if (config_.completion_flush_window_s > 0) {
      std::vector<json::Value> overflow;
      {
        std::lock_guard<std::mutex> flush_lock(flush_mutex_);
        if (flusher_running_) {
          completion_buffer_.push_back(std::move(msg));
          coalesced = true;
          if (completion_buffer_.size() >= config_.completion_flush_max) {
            overflow.swap(completion_buffer_);
          }
        }
      }
      if (!overflow.empty()) {
        flush_completions(std::move(overflow));  // full buffer: flush inline
      } else if (coalesced) {
        flush_cv_.notify_one();
      }
    }
    if (!coalesced) {
      try {
        broker_->publish(done_queue_,
                         mq::Message::json_body(done_queue_, std::move(msg)));
      } catch (const MqError&) {
        // AppManager broker is gone: we are shutting down.
      }
    }
    profiler_->record("rts_callback", "unit_completed", result.uid);
    if (completed_metric_ != nullptr) completed_metric_->add(1);
  });
}

void ExecManager::flush_completions(std::vector<json::Value> buffered) {
  if (buffered.empty()) return;
  json::Value msg;
  json::Array results;
  results.reserve(buffered.size());
  for (json::Value& r : buffered) results.push_back(std::move(r));
  msg["results"] = std::move(results);
  try {
    broker_->publish(done_queue_,
                     mq::Message::json_body(done_queue_, std::move(msg)));
  } catch (const MqError&) {
    // AppManager broker is gone: we are shutting down.
  }
}

void ExecManager::flush_loop() {
  std::unique_lock<std::mutex> lock(flush_mutex_);
  while (!stop_requested()) {
    flush_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.completion_flush_window_s),
        [this] {
          return stop_requested() ||
                 completion_buffer_.size() >= config_.completion_flush_max;
        });
    if (completion_buffer_.empty()) continue;
    std::vector<json::Value> buffered;
    buffered.swap(completion_buffer_);
    lock.unlock();
    flush_completions(std::move(buffered));
    lock.lock();
  }
  // Final drain; late callbacks bypass the buffer once flusher_running_ is
  // cleared below.
  flusher_running_ = false;
  std::vector<json::Value> buffered;
  buffered.swap(completion_buffer_);
  lock.unlock();
  flush_completions(std::move(buffered));
}

void ExecManager::on_start() {
  resolve_metrics();
  if (config_.completion_flush_window_s > 0) {
    {
      std::lock_guard<std::mutex> lock(flush_mutex_);
      flusher_running_ = true;
    }
    add_worker("flush", [this] { flush_loop(); });
  }
  add_worker("emgr", [this] { emgr_loop(); });
  add_worker("heartbeat", [this] { heartbeat_loop(); });
  profiler_->record("exec_manager", "emgr_start");
}

void ExecManager::on_stop_requested() { flush_cv_.notify_all(); }

void ExecManager::on_reattach() {
  // Pending-queue deliveries (and sync acks) the dead emgr worker held
  // unacked go back for the new generation to submit.
  if (broker_->has_queue(pending_queue_)) {
    broker_->requeue_unacked(pending_queue_);
  }
  if (broker_->has_queue("q.ack.emgr")) {
    broker_->requeue_unacked("q.ack.emgr");
  }
}

double ExecManager::stop() {
  Component::stop();  // idempotent worker join (fixes the old double-join)
  if (rts_terminated_.exchange(true)) return 0.0;
  const double t0 = wall_now_s();
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    if (rts_) rts_->terminate();
  }
  profiler_->record("exec_manager", "emgr_stop");
  return wall_now_s() - t0;
}

void ExecManager::inject_rts_failure() {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  if (rts_) rts_->kill();
}

void ExecManager::set_fatal_handler(
    std::function<void(const std::string&)> handler) {
  fatal_handler_ = std::move(handler);
}

rts::RtsStats ExecManager::rts_stats() const {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  return rts_ ? rts_->stats() : rts::RtsStats{};
}

rts::TaskUnit ExecManager::translate(const TaskPtr& task) const {
  rts::TaskUnit unit;
  unit.uid = task->uid();
  unit.name = task->name;
  unit.executable = task->executable;
  unit.arguments = task->arguments;
  unit.cores = task->cpu_reqs.total();
  unit.gpus = task->gpu_reqs.total();
  unit.exclusive_nodes = task->exclusive_nodes;
  unit.duration_s = task->duration_s;
  unit.callable = task->function;
  unit.input_staging = task->input_staging;
  unit.output_staging = task->output_staging;
  unit.metadata = task->metadata;
  return unit;
}

void ExecManager::emgr_loop() {
  SyncClient sync(broker_, "emgr", states_queue_, "q.ack.emgr");
  while (!stop_requested()) {
    beat();
    // Batch: drain whatever is pending, up to submit_batch, in one broker
    // round-trip. Both wire formats are accepted: {"uid": ...} (one task
    // per message, seed format) and {"uids": [...]} (bulk Enqueue).
    const std::vector<mq::Delivery> deliveries = broker_->get_batch(
        pending_queue_, config_.submit_batch, config_.poll_timeout_s);
    if (deliveries.empty()) continue;
    BusyScope busy(emgr_busy_);
    std::vector<rts::TaskUnit> batch;
    std::vector<std::string> uids;
    std::vector<std::uint64_t> tags;
    tags.reserve(deliveries.size());
    auto take = [&](const std::string& uid) {
      TaskPtr task = registry_->task(uid);
      if (!task) {
        ENTK_WARN("emgr") << "pending message for unknown task " << uid;
        return;
      }
      batch.push_back(translate(task));
      uids.push_back(uid);
    };
    for (const mq::Delivery& delivery : deliveries) {
      tags.push_back(delivery.delivery_tag);
      std::shared_ptr<const json::Value> msg;
      try {
        msg = delivery.message.payload();  // shared, zero-copy in-process
      } catch (const json::ParseError&) {
        continue;
      }
      if (msg->contains("uids")) {
        for (const json::Value& u : msg->at("uids").as_array()) {
          take(u.as_string());
        }
      } else {
        take(msg->get_string("uid", ""));
      }
    }
    broker_->ack_batch(pending_queue_, tags);
    if (batch.empty()) continue;
    if (uids.size() > 1) {
      std::vector<Transition> submitting, submitted;
      submitting.reserve(uids.size());
      submitted.reserve(uids.size());
      for (const std::string& uid : uids) {
        submitting.push_back({uid, "task", "SCHEDULED", "SUBMITTING"});
        submitted.push_back({uid, "task", "SUBMITTING", "SUBMITTED"});
      }
      sync.sync_batch(submitting, false);
      // Publish the Submitted transitions BEFORE handing the units to the
      // RTS: a very short task could otherwise complete and have Dequeue's
      // Executed transition reach the Synchronizer first.
      sync.sync_batch(submitted, false);
    } else {
      sync.sync(uids.front(), "task", "SCHEDULED", "SUBMITTING", false);
      sync.sync(uids.front(), "task", "SUBMITTING", "SUBMITTED", false);
    }
    // Recorded before the RTS sees the units so the trace's causal order
    // holds: a very short unit could otherwise record unit_exec_start on
    // the RTS thread before the submit timestamp exists.
    for (const std::string& uid : uids) {
      profiler_->record("emgr", "task_submitted", uid);
    }
    const std::int64_t t0 = submit_us_metric_ != nullptr ? wall_now_us() : 0;
    try {
      std::lock_guard<std::mutex> lock(rts_mutex_);
      if (!rts_ || !rts_->is_healthy()) {
        throw RtsError("emgr: no healthy RTS");
      }
      rts_->submit(std::move(batch));
    } catch (const RtsError& e) {
      // The heartbeat will deal with the RTS; requeue by re-describing is
      // unnecessary — units stay tracked as in flight by uid below.
      ENTK_WARN("emgr") << e.what();
    }
    if (submit_us_metric_ != nullptr) {
      submit_us_metric_->observe(static_cast<double>(wall_now_us() - t0));
      submitted_metric_->add(uids.size());
    }
  }
}

void ExecManager::sample_queue_depths() {
  // Depth gauges: ready/unacked backlog per queue, recorded in the numeric
  // (virtual_s) field with the queue name as uid. Cheap — one shared-lock
  // map walk plus one mutex grab per queue — so it can ride the heartbeat.
  auto* reg = metrics();
  for (const mq::QueueDepth& d : broker_->depth_snapshot()) {
    profiler_->record("broker", "queue_ready_depth", d.queue,
                      static_cast<double>(d.ready));
    profiler_->record("broker", "queue_unacked_depth", d.queue,
                      static_cast<double>(d.unacked));
    if (reg != nullptr) {
      // Heartbeat cadence, a handful of queues: resolving through the
      // registry here is cheaper than a name->gauge cache would earn.
      reg->gauge("mq.ready." + d.queue).set(static_cast<std::int64_t>(d.ready));
      reg->gauge("mq.unacked." + d.queue)
          .set(static_cast<std::int64_t>(d.unacked));
    }
  }
}

void ExecManager::heartbeat_loop() {
  while (!stop_requested()) {
    // Interruptible probe interval: stop() wakes the heartbeat instead of
    // waiting out the sleep, so teardown is not taxed a full interval.
    if (wait_stop_for(config_.supervision.heartbeat_interval_s)) return;
    beat();
    if (config_.sample_queue_depths) sample_queue_depths();
    if (auto* reg = metrics()) reg->maybe_snapshot(wall_now_us());
    bool healthy;
    {
      std::lock_guard<std::mutex> lock(rts_mutex_);
      healthy = rts_ && rts_->is_healthy();
    }
    if (healthy) continue;
    profiler_->record("heartbeat", "rts_unhealthy");
    if (restarts_.load() >= config_.supervision.rts_restart_limit) {
      ENTK_ERROR("heartbeat") << "RTS lost and restart budget exhausted";
      if (fatal_handler_) fatal_handler_("RTS failed permanently");
      return;
    }
    restart_rts();
  }
}

void ExecManager::restart_rts() {
  ++restarts_;
  ENTK_WARN("heartbeat") << "restarting failed RTS (attempt "
                         << restarts_.load() << ")";
  profiler_->record("heartbeat", "rts_restart_start");

  // Units in execution at the time of the failure are lost (paper
  // §II-B-4); capture them from the dead instance for resubmission.
  std::vector<std::string> lost;
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    if (rts_) lost = rts_->in_flight_units();
    rts_ = rts_factory_();
  }
  attach_callback();
  rts_->initialize();

  std::vector<rts::TaskUnit> units;
  units.reserve(lost.size());
  for (const std::string& uid : lost) {
    TaskPtr task = registry_->task(uid);
    if (task) units.push_back(translate(task));
  }
  if (!units.empty()) {
    ENTK_WARN("heartbeat") << "resubmitting " << units.size()
                           << " lost units";
    std::lock_guard<std::mutex> lock(rts_mutex_);
    rts_->submit(std::move(units));
  }
  profiler_->record("heartbeat", "rts_restart_stop");
}

}  // namespace entk
