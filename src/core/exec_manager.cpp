#include "src/core/exec_manager.hpp"

#include <chrono>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk {

ExecManager::ExecManager(ExecConfig config, mq::BrokerPtr broker,
                         ObjectRegistry* registry, std::string pending_queue,
                         std::string done_queue, std::string states_queue,
                         rts::RtsFactory rts_factory, ProfilerPtr profiler)
    : config_(config),
      broker_(std::move(broker)),
      registry_(registry),
      pending_queue_(std::move(pending_queue)),
      done_queue_(std::move(done_queue)),
      states_queue_(std::move(states_queue)),
      rts_factory_(std::move(rts_factory)),
      profiler_(std::move(profiler)) {}

ExecManager::~ExecManager() {
  stopping_ = true;
  if (emgr_thread_.joinable()) emgr_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

void ExecManager::acquire_resources() {
  profiler_->record("rmgr", "resource_acquire_start");
  rts::RtsPtr rts = rts_factory_();
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    rts_ = std::move(rts);
  }
  attach_callback();
  rts_->initialize();
  profiler_->record("rmgr", "resource_acquire_stop");
}

void ExecManager::attach_callback() {
  // RTS Callback subcomponent: forward completions to the Done queue
  // (paper Fig 2, message 4).
  std::lock_guard<std::mutex> lock(rts_mutex_);
  rts_->set_completion_callback([this](const rts::UnitResult& result) {
    json::Value msg;
    msg["uid"] = result.uid;
    msg["outcome"] = rts::to_string(result.outcome);
    msg["exit_code"] = result.exit_code;
    msg["exec_start_t"] = result.exec_start_t;
    msg["exec_end_t"] = result.exec_end_t;
    msg["staging_in_s"] = result.staging_in_s;
    msg["staging_out_s"] = result.staging_out_s;
    try {
      broker_->publish(done_queue_, mq::Message::json_body(done_queue_, msg));
    } catch (const MqError&) {
      // AppManager broker is gone: we are shutting down.
    }
    profiler_->record("rts_callback", "unit_completed", result.uid);
  });
}

void ExecManager::start() {
  stopping_ = false;
  emgr_thread_ = std::thread(&ExecManager::emgr_loop, this);
  heartbeat_thread_ = std::thread(&ExecManager::heartbeat_loop, this);
  profiler_->record("exec_manager", "emgr_start");
}

double ExecManager::stop() {
  stopping_ = true;
  if (emgr_thread_.joinable()) emgr_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  const double t0 = wall_now_s();
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    if (rts_) rts_->terminate();
  }
  profiler_->record("exec_manager", "emgr_stop");
  return wall_now_s() - t0;
}

void ExecManager::inject_rts_failure() {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  if (rts_) rts_->kill();
}

void ExecManager::set_fatal_handler(
    std::function<void(const std::string&)> handler) {
  fatal_handler_ = std::move(handler);
}

rts::RtsStats ExecManager::rts_stats() const {
  std::lock_guard<std::mutex> lock(rts_mutex_);
  return rts_ ? rts_->stats() : rts::RtsStats{};
}

rts::TaskUnit ExecManager::translate(const TaskPtr& task) const {
  rts::TaskUnit unit;
  unit.uid = task->uid();
  unit.name = task->name;
  unit.executable = task->executable;
  unit.arguments = task->arguments;
  unit.cores = task->cpu_reqs.total();
  unit.gpus = task->gpu_reqs.total();
  unit.exclusive_nodes = task->exclusive_nodes;
  unit.duration_s = task->duration_s;
  unit.callable = task->function;
  unit.input_staging = task->input_staging;
  unit.output_staging = task->output_staging;
  unit.metadata = task->metadata;
  return unit;
}

void ExecManager::emgr_loop() {
  SyncClient sync(broker_, "emgr", states_queue_, "q.ack.emgr");
  while (!stopping_.load()) {
    // Batch: drain whatever is pending, up to submit_batch.
    std::vector<rts::TaskUnit> batch;
    std::vector<std::string> uids;
    auto first = broker_->get(pending_queue_, config_.poll_timeout_s);
    if (!first) continue;
    BusyScope busy(emgr_busy_);
    auto take = [&](const mq::Delivery& delivery) {
      json::Value msg;
      try {
        msg = delivery.message.body_json();
      } catch (const json::ParseError&) {
        return;
      }
      const std::string uid = msg.get_string("uid", "");
      TaskPtr task = registry_->task(uid);
      if (!task) {
        ENTK_WARN("emgr") << "pending message for unknown task " << uid;
        return;
      }
      sync.sync(uid, "task", "SCHEDULED", "SUBMITTING", false);
      batch.push_back(translate(task));
      uids.push_back(uid);
    };
    take(*first);
    broker_->ack(pending_queue_, first->delivery_tag);
    while (batch.size() < config_.submit_batch) {
      auto more = broker_->get(pending_queue_, 0.0);
      if (!more) break;
      take(*more);
      broker_->ack(pending_queue_, more->delivery_tag);
    }
    if (batch.empty()) continue;
    // Publish the Submitted transitions BEFORE handing the units to the
    // RTS: a very short task could otherwise complete and have Dequeue's
    // Executed transition reach the Synchronizer first.
    for (const std::string& uid : uids) {
      sync.sync(uid, "task", "SUBMITTING", "SUBMITTED", false);
    }
    try {
      std::lock_guard<std::mutex> lock(rts_mutex_);
      if (!rts_ || !rts_->is_healthy()) {
        throw RtsError("emgr: no healthy RTS");
      }
      rts_->submit(std::move(batch));
    } catch (const RtsError& e) {
      // The heartbeat will deal with the RTS; requeue by re-describing is
      // unnecessary — units stay tracked as in flight by uid below.
      ENTK_WARN("emgr") << e.what();
    }
    for (const std::string& uid : uids) {
      profiler_->record("emgr", "task_submitted", uid);
    }
  }
}

void ExecManager::heartbeat_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.heartbeat_interval_s));
    if (stopping_.load()) return;
    bool healthy;
    {
      std::lock_guard<std::mutex> lock(rts_mutex_);
      healthy = rts_ && rts_->is_healthy();
    }
    if (healthy) continue;
    profiler_->record("heartbeat", "rts_unhealthy");
    if (restarts_.load() >= config_.rts_restart_limit) {
      ENTK_ERROR("heartbeat") << "RTS lost and restart budget exhausted";
      if (fatal_handler_) fatal_handler_("RTS failed permanently");
      return;
    }
    restart_rts();
  }
}

void ExecManager::restart_rts() {
  ++restarts_;
  ENTK_WARN("heartbeat") << "restarting failed RTS (attempt "
                         << restarts_.load() << ")";
  profiler_->record("heartbeat", "rts_restart_start");

  // Units in execution at the time of the failure are lost (paper
  // §II-B-4); capture them from the dead instance for resubmission.
  std::vector<std::string> lost;
  {
    std::lock_guard<std::mutex> lock(rts_mutex_);
    if (rts_) lost = rts_->in_flight_units();
    rts_ = rts_factory_();
  }
  attach_callback();
  rts_->initialize();

  std::vector<rts::TaskUnit> units;
  units.reserve(lost.size());
  for (const std::string& uid : lost) {
    TaskPtr task = registry_->task(uid);
    if (task) units.push_back(translate(task));
  }
  if (!units.empty()) {
    ENTK_WARN("heartbeat") << "resubmitting " << units.size()
                           << " lost units";
    std::lock_guard<std::mutex> lock(rts_mutex_);
    rts_->submit(std::move(units));
  }
  profiler_->record("heartbeat", "rts_restart_stop");
}

}  // namespace entk
