#include "src/core/state_store.hpp"

#include <fstream>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk {

StateStore::StateStore(std::string journal_path, mq::JournalConfig journal)
    : journal_path_(std::move(journal_path)) {
  if (!journal_path_.empty()) {
    writer_ = std::make_unique<mq::JournalWriter>(journal_path_, journal);
  }
}

StateStore::~StateStore() = default;  // writer close() flushes the tail

std::uint64_t StateStore::commit(const std::string& uid,
                                 const std::string& kind,
                                 const std::string& from_state,
                                 const std::string& to_state,
                                 const std::string& component) {
  StateTransaction t;
  t.wall_s = wall_now_s();
  t.uid = uid;
  t.kind = kind;
  t.from_state = from_state;
  t.to_state = to_state;
  t.component = component;

  std::function<void(const StateTransaction&)> sink;
  const std::uint64_t seq = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    t.seq = next_seq_++;
    append_locked(t);
    latest_[uid] = to_state;
    sink = sink_;
    if (sink) {
      history_.push_back(t);  // t still needed for the sink call below
    } else {
      history_.push_back(std::move(t));
    }
    return history_.back().seq;
  }();
  if (sink) sink(t);
  return seq;
}

void StateStore::append_locked(const StateTransaction& t) {
  if (writer_ == nullptr) return;
  json::Value v;
  v["seq"] = t.seq;
  v["wall_s"] = t.wall_s;
  v["uid"] = t.uid;
  v["kind"] = t.kind;
  v["from"] = t.from_state;
  v["to"] = t.to_state;
  v["component"] = t.component;
  writer_->append(v.dump());
}

void StateStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (writer_ != nullptr) writer_->flush();
}

std::string StateStore::state_of(const std::string& uid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = latest_.find(uid);
  return it == latest_.end() ? "" : it->second;
}

std::vector<StateTransaction> StateStore::history() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

std::size_t StateStore::transaction_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_.size();
}

void StateStore::set_external_sink(
    std::function<void(const StateTransaction&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

std::size_t StateStore::recover(const std::string& journal_path) {
  std::ifstream in(journal_path);
  if (!in) throw EnTKError("StateStore: cannot read " + journal_path);
  std::size_t n = 0;
  std::string line;
  std::lock_guard<std::mutex> lock(mutex_);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const json::ParseError&) {
      ENTK_WARN("state_store") << "stopping recovery at torn record";
      break;
    }
    StateTransaction t;
    t.seq = static_cast<std::uint64_t>(v.get_int("seq", 0));
    t.wall_s = v.get_double("wall_s", 0.0);
    t.uid = v.get_string("uid", "");
    t.kind = v.get_string("kind", "");
    t.from_state = v.get_string("from", "");
    t.to_state = v.get_string("to", "");
    t.component = v.get_string("component", "");
    if (next_seq_ <= t.seq) next_seq_ = t.seq + 1;
    latest_[t.uid] = t.to_state;
    history_.push_back(std::move(t));
    ++n;
  }
  return n;
}

}  // namespace entk
