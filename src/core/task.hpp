// Task: the unit abstraction of the PST application model (paper §II-B-1).
//
// A task is a stand-alone process with well-defined input, output,
// termination criteria and dedicated resources: an executable, its software
// environment (arguments, resource requirements) and its data dependences
// (staging directives). Tasks carry either a modeled duration (simulated
// executables such as sleep / Gromacs mdrun / Specfem), a real callable
// (workloads computing actual results), or both.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/states.hpp"
#include "src/json/json.hpp"
#include "src/rts/unit.hpp"
#include "src/saga/stager.hpp"

namespace entk {

/// CPU requirements, RP-style: processes x threads-per-process cores.
struct CpuReqs {
  int processes = 1;
  int threads_per_process = 1;
  int total() const { return processes * threads_per_process; }
};

struct GpuReqs {
  int processes = 0;
  int total() const { return processes; }
};

class Task {
 public:
  Task();
  explicit Task(std::string name);

  // --- user-facing description ------------------------------------------
  std::string name;
  std::string executable;
  std::vector<std::string> arguments;

  CpuReqs cpu_reqs;
  GpuReqs gpu_reqs;
  /// Request whole nodes (e.g. the 384-node Specfem forward simulations).
  bool exclusive_nodes = false;

  /// Modeled execution duration in virtual seconds (e.g. "sleep 100").
  double duration_s = 0.0;

  /// Optional real work executed by the RTS; return value = exit code.
  std::function<int()> function;

  std::vector<saga::StagingDirective> input_staging;
  std::vector<saga::StagingDirective> output_staging;

  /// Maximum automatic resubmissions after failure; -1 = use the
  /// AppManager-wide default.
  int retry_limit = -1;

  json::Value metadata;  ///< user payload, echoed into results

  // --- runtime state (managed by the toolkit) ----------------------------
  const std::string& uid() const { return uid_; }
  TaskState state() const { return state_; }
  int exit_code() const { return exit_code_; }
  int attempts() const { return attempts_; }
  const std::string& parent_stage() const { return parent_stage_; }
  const std::string& parent_pipeline() const { return parent_pipeline_; }

  /// Throws ValueError/MissingError when the description is inconsistent
  /// (no executable nor function, non-positive resources, ...).
  void validate() const;

  json::Value to_json() const;

  // Internal setters used by the toolkit (Synchronizer, WFProcessor).
  void set_state(TaskState s) { state_ = s; }
  void set_exit_code(int c) { exit_code_ = c; }
  void bump_attempts() { ++attempts_; }
  void set_parents(std::string pipeline, std::string stage) {
    parent_pipeline_ = std::move(pipeline);
    parent_stage_ = std::move(stage);
  }

 private:
  std::string uid_;
  TaskState state_ = TaskState::Described;
  int exit_code_ = -1;
  int attempts_ = 0;
  std::string parent_stage_;
  std::string parent_pipeline_;
};

using TaskPtr = std::shared_ptr<Task>;

/// Translate a Task into an RTS-specific unit (paper §II-B-3). Shared by
/// the embedded ExecManager's registry resolver and the WFProcessor's
/// inline-units enqueue path (remote-worker mode).
rts::TaskUnit to_unit(const Task& task);

}  // namespace entk
