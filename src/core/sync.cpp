#include "src/core/sync.hpp"

#include "src/common/error.hpp"
#include "src/common/log.hpp"
#include "src/core/state_store.hpp"

namespace entk {

// --------------------------------------------------------- ObjectRegistry

void ObjectRegistry::add_pipeline(const PipelinePtr& pipeline) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  pipelines_[pipeline->uid()] = pipeline;
  for (const StagePtr& stage : pipeline->stages()) {
    stages_[stage->uid()] = stage;
    for (const TaskPtr& task : stage->tasks()) tasks_[task->uid()] = task;
  }
}

void ObjectRegistry::add_stage(const StagePtr& stage) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  stages_[stage->uid()] = stage;
  for (const TaskPtr& task : stage->tasks()) tasks_[task->uid()] = task;
}

TaskPtr ObjectRegistry::task(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tasks_.find(uid);
  return it == tasks_.end() ? nullptr : it->second;
}

StagePtr ObjectRegistry::stage(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = stages_.find(uid);
  return it == stages_.end() ? nullptr : it->second;
}

PipelinePtr ObjectRegistry::pipeline(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = pipelines_.find(uid);
  return it == pipelines_.end() ? nullptr : it->second;
}

std::size_t ObjectRegistry::task_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return tasks_.size();
}

std::vector<PipelinePtr> ObjectRegistry::pipelines() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<PipelinePtr> out;
  out.reserve(pipelines_.size());
  for (const auto& [uid, p] : pipelines_) {
    (void)uid;
    out.push_back(p);
  }
  return out;
}

// ----------------------------------------------------------- Synchronizer
// (SyncClient moved to src/worker/sync_client.cpp: remote workers use it
// through the broker without linking core.)

Synchronizer::Synchronizer(mq::BrokerHandlePtr broker, std::string states_queue,
                           ObjectRegistry* registry, StateStore* store,
                           ProfilerPtr profiler)
    : Component("synchronizer", std::move(profiler)),
      broker_(std::move(broker)),
      states_queue_(std::move(states_queue)),
      registry_(registry),
      store_(store) {}

Synchronizer::~Synchronizer() { stop(); }

void Synchronizer::on_start() {
  add_worker("sync", [this] { loop(); });
}

void Synchronizer::on_reattach() {
  // The dead worker may have died between get_batch and ack_batch; put
  // those deliveries back so no transition is lost. Replaying an entry the
  // old worker already applied is rejected by the transition tables.
  if (broker_->has_queue(states_queue_)) {
    broker_->requeue_unacked(states_queue_);
  }
}

void Synchronizer::loop() {
  profiler_->record("synchronizer", "sync_start");
  while (true) {
    beat();
    // Drain vectored: one lock acquisition pulls a whole backlog, one
    // ack_batch releases it. kDrain bounds latency for waiting requesters.
    constexpr std::size_t kDrain = 64;
    const std::vector<mq::Delivery> deliveries =
        broker_->get_batch(states_queue_, kDrain, 0.002);
    if (deliveries.empty()) {
      if (stop_requested()) break;
      continue;
    }
    BusyScope busy(busy_);
    std::vector<std::uint64_t> tags;
    tags.reserve(deliveries.size());
    for (const mq::Delivery& delivery : deliveries) {
      tags.push_back(delivery.delivery_tag);
      try {
        // Shared structured payload: in-process transitions arrive without
        // any serialization; only recovered/raw messages parse here (once).
        process(*delivery.message.payload());
      } catch (const json::ParseError& e) {
        ENTK_WARN("synchronizer") << "rejecting message: " << e.what();
        ++rejected_;
        continue;
      }
    }
    broker_->ack_batch(states_queue_, tags);
  }
  profiler_->record("synchronizer", "sync_stop");
}

void Synchronizer::process(const json::Value& msg) {
  const std::string component = msg.get_string("component", "?");
  bool ok = false;
  json::Value ack;
  if (msg.contains("batch") || msg.contains("uids")) {
    // Vectored request: the entries are applied as one uninterrupted
    // sequence (this thread is the only state writer), each validated and
    // committed individually, and the whole batch confirmed with one reply.
    // Two wire forms: compact homogeneous ({"uids": [...], kind, from, to})
    // and general per-entry ({"batch": [{uid, kind, from, to}, ...]}).
    std::size_t applied = 0;
    std::size_t total = 0;
    auto apply_entry = [&](const std::string& uid, const std::string& kind,
                           const std::string& from, const std::string& to) {
      ++total;
      bool entry_ok = false;
      try {
        entry_ok = apply(uid, kind, from, to, component);
      } catch (const EnTKError& e) {
        ENTK_WARN("synchronizer") << "rejecting batch entry: " << e.what();
      }
      if (entry_ok) {
        ++applied;
        ++processed_;
      } else {
        ++rejected_;
      }
    };
    if (msg.contains("uids")) {
      const std::string kind = msg.get_string("kind", "");
      const std::string from = msg.get_string("from", "");
      const std::string to = msg.get_string("to", "");
      for (const json::Value& u : msg.at("uids").as_array()) {
        apply_entry(u.as_string(), kind, from, to);
      }
    } else {
      for (const json::Value& entry : msg.at("batch").as_array()) {
        apply_entry(entry.get_string("uid", ""), entry.get_string("kind", ""),
                    entry.get_string("from", ""), entry.get_string("to", ""));
      }
    }
    ok = applied == total;
    ack["corr"] = msg.get_int("corr", 0);
    ack["applied"] = applied;
  } else {
    try {
      ok = apply(msg.get_string("uid", ""), msg.get_string("kind", ""),
                 msg.get_string("from", ""), msg.get_string("to", ""),
                 component);
    } catch (const EnTKError& e) {
      ENTK_WARN("synchronizer") << "rejecting message: " << e.what();
    }
    if (ok) {
      ++processed_;
    } else {
      ++rejected_;
    }
    ack["uid"] = msg.get_string("uid", "");
    ack["to"] = msg.get_string("to", "");
  }
  const std::string reply_to = msg.get_string("reply_to", "");
  if (!reply_to.empty()) {
    ack["ok"] = ok;
    try {
      broker_->publish(reply_to,
                       mq::Message::json_body(reply_to, std::move(ack)));
    } catch (const MqError&) {
      // Requester is gone; nothing to do.
    }
  }
}

bool Synchronizer::apply(const std::string& uid, const std::string& kind,
                         const std::string& from, const std::string& to,
                         const std::string& component) {
  if (kind == "task") {
    TaskPtr task = registry_->task(uid);
    if (!task) return false;
    const TaskState from_s = task_state_from_string(from);
    const TaskState to_s = task_state_from_string(to);
    if (task->state() != from_s || !is_valid_transition(from_s, to_s)) {
      ENTK_WARN("synchronizer")
          << component << ": invalid task transition " << from << "->" << to
          << " (current " << to_string(task->state()) << ") for " << uid;
      return false;
    }
    task->set_state(to_s);
  } else if (kind == "stage") {
    StagePtr stage = registry_->stage(uid);
    if (!stage) return false;
    const StageState from_s = stage_state_from_string(from);
    const StageState to_s = stage_state_from_string(to);
    if (stage->state() != from_s || !is_valid_transition(from_s, to_s)) {
      ENTK_WARN("synchronizer")
          << component << ": invalid stage transition " << from << "->" << to
          << " for " << uid;
      return false;
    }
    stage->set_state(to_s);
  } else if (kind == "pipeline") {
    PipelinePtr pipeline = registry_->pipeline(uid);
    if (!pipeline) return false;
    const PipelineState from_s = pipeline_state_from_string(from);
    const PipelineState to_s = pipeline_state_from_string(to);
    if (pipeline->state() != from_s || !is_valid_transition(from_s, to_s)) {
      ENTK_WARN("synchronizer")
          << component << ": invalid pipeline transition " << from << "->"
          << to << " for " << uid;
      return false;
    }
    pipeline->set_state(to_s);
  } else {
    return false;
  }

  store_->commit(uid, kind, from, to, component);
  profiler_->record("synchronizer", "state_commit", uid);
  return true;
}

}  // namespace entk
