#include "src/core/sync.hpp"

#include "src/common/error.hpp"
#include "src/common/log.hpp"
#include "src/core/state_store.hpp"

namespace entk {

// --------------------------------------------------------- ObjectRegistry

void ObjectRegistry::add_pipeline(const PipelinePtr& pipeline) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  pipelines_[pipeline->uid()] = pipeline;
  for (const StagePtr& stage : pipeline->stages()) {
    stages_[stage->uid()] = stage;
    for (const TaskPtr& task : stage->tasks()) tasks_[task->uid()] = task;
  }
}

void ObjectRegistry::add_stage(const StagePtr& stage) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  stages_[stage->uid()] = stage;
  for (const TaskPtr& task : stage->tasks()) tasks_[task->uid()] = task;
}

TaskPtr ObjectRegistry::task(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tasks_.find(uid);
  return it == tasks_.end() ? nullptr : it->second;
}

StagePtr ObjectRegistry::stage(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = stages_.find(uid);
  return it == stages_.end() ? nullptr : it->second;
}

PipelinePtr ObjectRegistry::pipeline(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = pipelines_.find(uid);
  return it == pipelines_.end() ? nullptr : it->second;
}

std::size_t ObjectRegistry::task_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return tasks_.size();
}

std::vector<PipelinePtr> ObjectRegistry::pipelines() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<PipelinePtr> out;
  out.reserve(pipelines_.size());
  for (const auto& [uid, p] : pipelines_) {
    (void)uid;
    out.push_back(p);
  }
  return out;
}

// ------------------------------------------------------------- SyncClient

SyncClient::SyncClient(mq::BrokerHandlePtr broker, std::string component,
                       std::string states_queue, std::string ack_queue)
    : broker_(std::move(broker)),
      component_(std::move(component)),
      states_queue_(std::move(states_queue)),
      ack_queue_(std::move(ack_queue)) {
  broker_->declare_queue(ack_queue_);
}

bool SyncClient::sync(const std::string& uid, const std::string& kind,
                      const std::string& from_state,
                      const std::string& to_state, bool await_ack) {
  json::Value msg;
  msg["uid"] = uid;
  msg["kind"] = kind;
  msg["from"] = from_state;
  msg["to"] = to_state;
  msg["component"] = component_;
  if (await_ack) msg["reply_to"] = ack_queue_;
  try {
    broker_->publish(states_queue_,
                     mq::Message::json_body(states_queue_, std::move(msg)));
  } catch (const MqError&) {
    return false;  // broker shutting down
  }
  if (!await_ack) return true;
  // Acks for this component arrive in request order (single synchronizer,
  // single blocked requester per ack queue).
  for (int spins = 0; spins < 2000; ++spins) {
    auto delivery = broker_->get(ack_queue_, 0.005);
    if (!delivery) {
      if (broker_->closed()) return false;
      continue;
    }
    broker_->ack(ack_queue_, delivery->delivery_tag);
    std::shared_ptr<const json::Value> ack;
    try {
      ack = delivery->message.payload();  // shared, no copy/parse in-process
    } catch (const json::ParseError&) {
      continue;
    }
    if (ack->get_string("uid", "") != uid ||
        ack->get_string("to", "") != to_state) {
      ENTK_WARN(component_) << "out-of-order ack for "
                            << ack->get_string("uid", "?");
      continue;
    }
    return ack->get_bool("ok", false);
  }
  return false;
}

bool SyncClient::sync_batch(const std::vector<Transition>& transitions,
                            bool await_ack) {
  if (transitions.empty()) return true;
  if (transitions.size() == 1) {
    // No amortization to gain; keep the single-transition wire format.
    const Transition& t = transitions.front();
    return sync(t.uid, t.kind, t.from_state, t.to_state, await_ack);
  }
  const std::uint64_t corr = next_corr_++;
  json::Value msg;
  // Dispatch batches are homogeneous (every entry shares kind/from/to); the
  // compact wire format hoists those fields out and ships only the uids.
  // Mixed batches fall back to the general per-entry form.
  bool homogeneous = true;
  for (const Transition& t : transitions) {
    if (t.kind != transitions.front().kind ||
        t.from_state != transitions.front().from_state ||
        t.to_state != transitions.front().to_state) {
      homogeneous = false;
      break;
    }
  }
  if (homogeneous) {
    json::Array uids;
    uids.reserve(transitions.size());
    for (const Transition& t : transitions) uids.push_back(t.uid);
    msg["uids"] = std::move(uids);
    msg["kind"] = transitions.front().kind;
    msg["from"] = transitions.front().from_state;
    msg["to"] = transitions.front().to_state;
  } else {
    json::Array batch;
    batch.reserve(transitions.size());
    for (const Transition& t : transitions) {
      json::Value entry;
      entry["uid"] = t.uid;
      entry["kind"] = t.kind;
      entry["from"] = t.from_state;
      entry["to"] = t.to_state;
      batch.push_back(std::move(entry));
    }
    msg["batch"] = std::move(batch);
  }
  msg["component"] = component_;
  msg["corr"] = corr;
  if (await_ack) msg["reply_to"] = ack_queue_;
  try {
    broker_->publish(states_queue_,
                     mq::Message::json_body(states_queue_, std::move(msg)));
  } catch (const MqError&) {
    return false;  // broker shutting down
  }
  if (!await_ack) return true;
  for (int spins = 0; spins < 2000; ++spins) {
    auto delivery = broker_->get(ack_queue_, 0.005);
    if (!delivery) {
      if (broker_->closed()) return false;
      continue;
    }
    broker_->ack(ack_queue_, delivery->delivery_tag);
    std::shared_ptr<const json::Value> ack;
    try {
      ack = delivery->message.payload();
    } catch (const json::ParseError&) {
      continue;
    }
    if (static_cast<std::uint64_t>(ack->get_int("corr", 0)) != corr) {
      ENTK_WARN(component_) << "out-of-order batch ack (corr "
                            << ack->get_int("corr", 0) << ")";
      continue;
    }
    return ack->get_bool("ok", false);
  }
  return false;
}

// ----------------------------------------------------------- Synchronizer

Synchronizer::Synchronizer(mq::BrokerHandlePtr broker, std::string states_queue,
                           ObjectRegistry* registry, StateStore* store,
                           ProfilerPtr profiler)
    : Component("synchronizer", std::move(profiler)),
      broker_(std::move(broker)),
      states_queue_(std::move(states_queue)),
      registry_(registry),
      store_(store) {}

Synchronizer::~Synchronizer() { stop(); }

void Synchronizer::on_start() {
  add_worker("sync", [this] { loop(); });
}

void Synchronizer::on_reattach() {
  // The dead worker may have died between get_batch and ack_batch; put
  // those deliveries back so no transition is lost. Replaying an entry the
  // old worker already applied is rejected by the transition tables.
  if (broker_->has_queue(states_queue_)) {
    broker_->requeue_unacked(states_queue_);
  }
}

void Synchronizer::loop() {
  profiler_->record("synchronizer", "sync_start");
  while (true) {
    beat();
    // Drain vectored: one lock acquisition pulls a whole backlog, one
    // ack_batch releases it. kDrain bounds latency for waiting requesters.
    constexpr std::size_t kDrain = 64;
    const std::vector<mq::Delivery> deliveries =
        broker_->get_batch(states_queue_, kDrain, 0.002);
    if (deliveries.empty()) {
      if (stop_requested()) break;
      continue;
    }
    BusyScope busy(busy_);
    std::vector<std::uint64_t> tags;
    tags.reserve(deliveries.size());
    for (const mq::Delivery& delivery : deliveries) {
      tags.push_back(delivery.delivery_tag);
      try {
        // Shared structured payload: in-process transitions arrive without
        // any serialization; only recovered/raw messages parse here (once).
        process(*delivery.message.payload());
      } catch (const json::ParseError& e) {
        ENTK_WARN("synchronizer") << "rejecting message: " << e.what();
        ++rejected_;
        continue;
      }
    }
    broker_->ack_batch(states_queue_, tags);
  }
  profiler_->record("synchronizer", "sync_stop");
}

void Synchronizer::process(const json::Value& msg) {
  const std::string component = msg.get_string("component", "?");
  bool ok = false;
  json::Value ack;
  if (msg.contains("batch") || msg.contains("uids")) {
    // Vectored request: the entries are applied as one uninterrupted
    // sequence (this thread is the only state writer), each validated and
    // committed individually, and the whole batch confirmed with one reply.
    // Two wire forms: compact homogeneous ({"uids": [...], kind, from, to})
    // and general per-entry ({"batch": [{uid, kind, from, to}, ...]}).
    std::size_t applied = 0;
    std::size_t total = 0;
    auto apply_entry = [&](const std::string& uid, const std::string& kind,
                           const std::string& from, const std::string& to) {
      ++total;
      bool entry_ok = false;
      try {
        entry_ok = apply(uid, kind, from, to, component);
      } catch (const EnTKError& e) {
        ENTK_WARN("synchronizer") << "rejecting batch entry: " << e.what();
      }
      if (entry_ok) {
        ++applied;
        ++processed_;
      } else {
        ++rejected_;
      }
    };
    if (msg.contains("uids")) {
      const std::string kind = msg.get_string("kind", "");
      const std::string from = msg.get_string("from", "");
      const std::string to = msg.get_string("to", "");
      for (const json::Value& u : msg.at("uids").as_array()) {
        apply_entry(u.as_string(), kind, from, to);
      }
    } else {
      for (const json::Value& entry : msg.at("batch").as_array()) {
        apply_entry(entry.get_string("uid", ""), entry.get_string("kind", ""),
                    entry.get_string("from", ""), entry.get_string("to", ""));
      }
    }
    ok = applied == total;
    ack["corr"] = msg.get_int("corr", 0);
    ack["applied"] = applied;
  } else {
    try {
      ok = apply(msg.get_string("uid", ""), msg.get_string("kind", ""),
                 msg.get_string("from", ""), msg.get_string("to", ""),
                 component);
    } catch (const EnTKError& e) {
      ENTK_WARN("synchronizer") << "rejecting message: " << e.what();
    }
    if (ok) {
      ++processed_;
    } else {
      ++rejected_;
    }
    ack["uid"] = msg.get_string("uid", "");
    ack["to"] = msg.get_string("to", "");
  }
  const std::string reply_to = msg.get_string("reply_to", "");
  if (!reply_to.empty()) {
    ack["ok"] = ok;
    try {
      broker_->publish(reply_to,
                       mq::Message::json_body(reply_to, std::move(ack)));
    } catch (const MqError&) {
      // Requester is gone; nothing to do.
    }
  }
}

bool Synchronizer::apply(const std::string& uid, const std::string& kind,
                         const std::string& from, const std::string& to,
                         const std::string& component) {
  if (kind == "task") {
    TaskPtr task = registry_->task(uid);
    if (!task) return false;
    const TaskState from_s = task_state_from_string(from);
    const TaskState to_s = task_state_from_string(to);
    if (task->state() != from_s || !is_valid_transition(from_s, to_s)) {
      ENTK_WARN("synchronizer")
          << component << ": invalid task transition " << from << "->" << to
          << " (current " << to_string(task->state()) << ") for " << uid;
      return false;
    }
    task->set_state(to_s);
  } else if (kind == "stage") {
    StagePtr stage = registry_->stage(uid);
    if (!stage) return false;
    const StageState from_s = stage_state_from_string(from);
    const StageState to_s = stage_state_from_string(to);
    if (stage->state() != from_s || !is_valid_transition(from_s, to_s)) {
      ENTK_WARN("synchronizer")
          << component << ": invalid stage transition " << from << "->" << to
          << " for " << uid;
      return false;
    }
    stage->set_state(to_s);
  } else if (kind == "pipeline") {
    PipelinePtr pipeline = registry_->pipeline(uid);
    if (!pipeline) return false;
    const PipelineState from_s = pipeline_state_from_string(from);
    const PipelineState to_s = pipeline_state_from_string(to);
    if (pipeline->state() != from_s || !is_valid_transition(from_s, to_s)) {
      ENTK_WARN("synchronizer")
          << component << ": invalid pipeline transition " << from << "->"
          << to << " for " << uid;
      return false;
    }
    pipeline->set_state(to_s);
  } else {
    return false;
  }

  store_->commit(uid, kind, from, to, component);
  profiler_->record("synchronizer", "state_commit", uid);
  return true;
}

}  // namespace entk
