#include "src/core/supervisor.hpp"

#include <chrono>

#include "src/common/log.hpp"

namespace entk {

Supervisor::Supervisor(SupervisionConfig config, ProfilerPtr profiler)
    : Component("supervisor", std::move(profiler)), config_(config) {}

Supervisor::~Supervisor() { stop(); }

void Supervisor::supervise(Component* component) {
  {
    std::lock_guard<std::mutex> lock(entries_mutex_);
    entries_.push_back(Entry{component});
  }
  // The listener runs on the failing component's dying worker thread: only
  // kick the probe loop, never restart inline.
  component->set_fault_listener(
      [this](Component&, const std::string&) { kick(); });
}

void Supervisor::watch_broker(mq::BrokerHandlePtr broker) {
  watched_broker_ = std::move(broker);
}

void Supervisor::set_fatal_handler(
    std::function<void(const std::string&, const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  fatal_handler_ = std::move(handler);
}

int Supervisor::total_restarts() const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  int total = 0;
  for (const Entry& entry : entries_) total += entry.restarts;
  return total;
}

int Supervisor::restarts_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  for (const Entry& entry : entries_) {
    if (entry.component->name() == name) return entry.restarts;
  }
  return 0;
}

void Supervisor::on_start() {
  add_worker("probe", [this] { probe_loop(); });
}

void Supervisor::on_stop_requested() { kick_cv_.notify_all(); }

void Supervisor::kick() {
  {
    std::lock_guard<std::mutex> lock(kick_mutex_);
    kicked_ = true;
  }
  kick_cv_.notify_all();
}

void Supervisor::probe_loop() {
  while (!stop_requested()) {
    beat();
    {
      std::unique_lock<std::mutex> lock(kick_mutex_);
      kick_cv_.wait_for(
          lock, std::chrono::duration<double>(config_.heartbeat_interval_s),
          [this] { return kicked_ || stop_requested(); });
      kicked_ = false;
    }
    if (stop_requested()) break;
    // Collect actions under the lock, act outside it: Component::start()
    // can do real work, and the fatal handler (AppManager's abort path)
    // does confirmed syncs.
    std::vector<Component*> to_restart;
    std::vector<std::pair<std::string, std::string>> fatals;
    {
      std::lock_guard<std::mutex> lock(entries_mutex_);
      for (Entry& entry : entries_) {
        if (entry.given_up ||
            entry.component->state() != ComponentState::Failed) {
          continue;
        }
        if (entry.restarts < config_.component_restart_limit) {
          ++entry.restarts;
          to_restart.push_back(entry.component);
        } else {
          entry.given_up = true;
          fatals.emplace_back(entry.component->name(),
                              entry.component->fault_reason());
        }
      }
    }
    for (Component* component : to_restart) {
      if (profiler_) {
        profiler_->record("supervisor", "component_restart", component->name());
      }
      // Restarts are rare; resolving through the registry here is fine.
      if (auto* reg = metrics()) reg->counter("supervisor.restarts").add(1);
      ENTK_WARN("supervisor")
          << "restarting failed component '" << component->name() << "' ("
          << component->fault_reason() << ")";
      try {
        component->start();
      } catch (const std::exception& e) {
        // Still Failed; the next probe retries until the budget runs out.
        ENTK_WARN("supervisor") << "restart of '" << component->name()
                                << "' failed: " << e.what();
      }
    }
    if (watched_broker_ && !broker_fatal_reported_) {
      // "" = healthy. Anything else is a sticky durability failure (e.g.
      // the journal flusher hit a full disk): not restartable, so it goes
      // straight to the fatal path instead of a restart budget.
      const std::string health = watched_broker_->health();
      if (!health.empty()) {
        broker_fatal_reported_ = true;
        fatals.emplace_back("broker", health);
      }
    }
    std::function<void(const std::string&, const std::string&)> handler;
    {
      std::lock_guard<std::mutex> lock(entries_mutex_);
      handler = fatal_handler_;
    }
    for (const auto& [name, reason] : fatals) {
      if (profiler_) profiler_->record("supervisor", "component_fatal", name);
      ENTK_ERROR("supervisor") << "component '" << name
                               << "' exhausted its restart budget: " << reason;
      if (handler) handler(name, reason);
    }
  }
}

}  // namespace entk
