// AppManager-level component supervisor (paper §II-B-4).
//
// The paper's fault model treats every EnTK component as a restartable
// unit: the master (AppManager) heartbeats its components and re-creates
// one that died, re-attaching it to the same queues and state store so no
// task state is lost. This generalizes the ExecManager's RTS-restart logic
// to every Component in the process:
//
//     AppManager
//       └── Supervisor ── probes ──> { WFProcessor, ExecManager, Synchronizer }
//                                        ExecManager ── heartbeats ──> RTS
//
// The Supervisor is itself a Component with a single "probe" worker. It
// wakes every heartbeat interval — or immediately, when a supervised
// component's fault listener kicks it — scans for Failed components, and
// restarts each one up to `component_restart_limit` times. When a
// component exhausts its budget the supervisor gives up and invokes the
// fatal handler, which AppManager wires to abort the run and surface the
// failure in the OverheadReport.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/component.hpp"
#include "src/mq/broker_handle.hpp"

namespace entk {

class Supervisor : public Component {
 public:
  Supervisor(SupervisionConfig config, ProfilerPtr profiler);
  ~Supervisor() override;

  /// Register a component for supervision; installs its fault listener.
  /// Call before start(); `component` must outlive the supervisor.
  void supervise(Component* component);

  /// Invoked (on the probe thread) when a component exhausts its restart
  /// budget, with (component name, fault reason).
  void set_fatal_handler(
      std::function<void(const std::string&, const std::string&)> handler);

  /// Probe `broker`'s durability health on every heartbeat. A broker is
  /// not restartable the way a component is — a sticky journal-flusher
  /// I/O error means durability is already lost — so a non-empty health
  /// string goes straight to the fatal handler (as component "broker",
  /// reported once). Call before start().
  void watch_broker(mq::BrokerHandlePtr broker);

  int total_restarts() const;
  int restarts_of(const std::string& name) const;

 protected:
  void on_start() override;
  void on_stop_requested() override;

 private:
  struct Entry {
    Component* component;
    int restarts = 0;
    bool given_up = false;
  };

  void probe_loop();
  void kick();

  const SupervisionConfig config_;

  mq::BrokerHandlePtr watched_broker_;
  bool broker_fatal_reported_ = false;  ///< probe-thread only

  mutable std::mutex entries_mutex_;
  std::vector<Entry> entries_;
  std::function<void(const std::string&, const std::string&)> fatal_handler_;

  std::mutex kick_mutex_;
  std::condition_variable kick_cv_;
  bool kicked_ = false;
};

}  // namespace entk
