#include "src/core/pipeline.hpp"

#include "src/common/error.hpp"
#include "src/common/ids.hpp"

namespace entk {

Pipeline::Pipeline() : uid_(generate_uid("pipeline")) {}

Pipeline::Pipeline(std::string pipeline_name) : Pipeline() {
  name = std::move(pipeline_name);
}

void Pipeline::add_stage(StagePtr stage) {
  if (!stage) throw ValueError("pipeline " + uid_, "stage", "non-null stage");
  if (is_final(state_)) {
    throw StateError("pipeline " + uid_ +
                     ": cannot add stages to a finished pipeline");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stage->set_parent(uid_);
  stages_.push_back(std::move(stage));
}

std::size_t Pipeline::stage_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_.size();
}

StagePtr Pipeline::stage_at(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= stages_.size()) return nullptr;
  return stages_[index];
}

std::vector<StagePtr> Pipeline::stages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::size_t Pipeline::current_stage_index() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

StagePtr Pipeline::current_stage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ >= stages_.size()) return nullptr;
  return stages_[current_];
}

std::size_t Pipeline::task_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const StagePtr& s : stages_) n += s->task_count();
  return n;
}

void Pipeline::validate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stages_.empty()) throw MissingError("pipeline " + uid_, "stages");
  for (const StagePtr& s : stages_) s->validate();
}

StagePtr Pipeline::advance() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++current_;
  if (current_ >= stages_.size()) return nullptr;
  return stages_[current_];
}

StagePtr Pipeline::advance_past(const StagePtr& done) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ < stages_.size() && stages_[current_] == done) ++current_;
  if (current_ >= stages_.size()) return nullptr;
  return stages_[current_];
}

void Pipeline::reset_for_resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = PipelineState::Described;
  current_ = 0;
  completing_ = false;
  for (const StagePtr& stage : stages_) {
    stage->set_state(StageState::Described);
    for (const TaskPtr& task : stage->tasks()) {
      task->set_state(TaskState::Described);
    }
  }
}

json::Value Pipeline::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value v;
  v["uid"] = uid_;
  v["name"] = name;
  v["state"] = to_string(state_);
  v["current_stage"] = current_;
  json::Value stages = json::Array{};
  for (const StagePtr& s : stages_) stages.push_back(s->to_json());
  v["stages"] = std::move(stages);
  return v;
}

}  // namespace entk
