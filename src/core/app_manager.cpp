#include "src/core/app_manager.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/ids.hpp"
#include "src/common/log.hpp"
#include "src/net/remote_broker.hpp"
#include "src/rts/pilot_rts.hpp"
#include "src/sim/cluster.hpp"

namespace entk {

AppManager::AppManager(AppManagerConfig config)
    : config_(std::move(config)),
      uid_(generate_uid("appmanager")),
      clock_(std::make_shared<ScaledClock>(config_.clock_scale)),
      profiler_(std::make_shared<Profiler>()) {
  if (config_.host.factor < 0) {
    config_.host.factor =
        sim::cluster_by_name(config_.resource.resource).entk_host_factor;
  }
  if (!config_.rts_factory) config_.rts_factory = default_rts_factory();
  if (config_.obs.metrics_enabled()) {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
    metrics_->set_snapshot_interval(config_.obs.snapshot_interval_s);
  }
}

AppManager::~AppManager() = default;

rts::RtsFactory AppManager::default_rts_factory() {
  // Copy what the factory needs by value: it outlives individual RTS
  // instances and is re-invoked after an RTS failure.
  const ResourceDescription res = config_.resource;
  ClockPtr clock = clock_;
  ProfilerPtr profiler = profiler_;
  return [res, clock, profiler]() -> rts::RtsPtr {
    rts::PilotRtsConfig cfg;
    cfg.pilot.resource = res.resource;
    cfg.pilot.cores = res.cpus;
    cfg.pilot.nodes = res.nodes;
    cfg.pilot.walltime_s = res.walltime_s;
    cfg.pilot.project = res.project;
    cfg.agent = res.agent;
    cfg.failure = res.failure;
    cfg.teardown_base_s = res.rts_teardown_base_s;
    cfg.teardown_per_unit_s = res.rts_teardown_per_unit_s;
    return std::make_shared<rts::PilotRts>(cfg, clock, profiler);
  };
}

void AppManager::add_pipelines(std::vector<PipelinePtr> pipelines) {
  if (ran_) throw StateError(uid_ + ": cannot add pipelines after run()");
  for (PipelinePtr& p : pipelines) {
    if (!p) throw ValueError(uid_, "pipeline", "non-null pipeline");
    p->validate();
    pipelines_.push_back(std::move(p));
  }
}

void AppManager::run() {
  if (ran_) throw StateError(uid_ + ": run() may only be called once");
  ran_ = true;
  if (pipelines_.empty()) throw MissingError(uid_, "pipelines");

  // ---------------------------------------------------------- EnTK setup
  profiler_->record("amgr", "amgr_setup_start");
  const double setup_t0 = wall_now_s();

  if (config_.remote_workers) {
    if (config_.broker_endpoint.empty()) {
      throw ValueError(uid_, "broker_endpoint",
                       "an entk_broker endpoint when remote_workers is set "
                       "(workers rendezvous through the daemon)");
    }
    // Callables cannot cross a process boundary; reject them up front
    // instead of letting a worker fail the unit at execution time.
    for (const PipelinePtr& p : pipelines_) {
      for (const StagePtr& stage : p->stages()) {
        for (const TaskPtr& task : stage->tasks()) {
          if (task->function) {
            throw ValueError(
                uid_, "task " + task->uid(),
                "no callable in remote_workers mode (functions do not "
                "survive serialization to a worker process)");
          }
        }
      }
    }
  }

  const std::string journal_dir = config_.journal_dir;
  if (!config_.broker_endpoint.empty()) {
    if (!config_.recover_broker_journal.empty()) {
      throw ValueError(uid_, "recover_broker_journal",
                       "empty when broker_endpoint is set (a daemon "
                       "recovers its own journal via --recover)");
    }
    net::RemoteBrokerConfig remote_cfg;
    remote_cfg.endpoint = config_.broker_endpoint;
    remote_cfg.tenant = config_.tenant;
    auto remote = std::make_shared<net::RemoteBroker>(remote_cfg);
    if (metrics_) remote->set_metrics(metrics_);
    broker_ = remote;
    ENTK_INFO(uid_) << "using broker daemon at " << config_.broker_endpoint
                    << (config_.tenant.empty()
                            ? std::string()
                            : " as tenant '" + config_.tenant + "'");
  } else {
    if (!config_.tenant.empty()) {
      throw ValueError(uid_, "tenant",
                       "a broker_endpoint when tenant is set (tenancy is a "
                       "shared-daemon concept; the in-process broker is "
                       "single-application by construction)");
    }
    local_broker_ = std::make_shared<mq::Broker>(
        uid_, journal_dir, config_.journal, config_.broker_shards);
    if (metrics_) local_broker_->set_metrics(metrics_);
    broker_ = local_broker_;
  }
  if (!config_.recover_broker_journal.empty()) {
    const std::size_t restored =
        local_broker_->recover(config_.recover_broker_journal);
    // Replay proved the backlog survived, but in an AppManager-driven run
    // the WFProcessor re-publishes outstanding work from the workflow +
    // state journal — keeping the replayed messages would double-dispatch
    // them (and resurrect tasks a resume_journal marks DONE). A daemon
    // serving remote clients mid-run keeps its backlog instead
    // (entk_broker --recover).
    std::size_t purged = 0;
    for (const std::string& queue : local_broker_->queue_names()) {
      purged += local_broker_->queue(queue)->purge();
    }
    ENTK_INFO(uid_) << "broker recovery: replayed " << restored
                    << " message(s) from " << config_.recover_broker_journal
                    << ", purged " << purged
                    << " (WFProcessor re-publishes outstanding work)";
  }
  // With a journal directory the component queues are durable: every
  // publish/ack lands in the broker's group-commit journal, so a post-
  // mortem (or Broker::recover) can replay the in-flight backlog. Queues
  // that already exist (broker recovery) keep their recovered options.
  const mq::QueueOptions queue_opts{.durable = !journal_dir.empty()};
  for (const char* queue : {"q.pending", "q.completed", "q.states"}) {
    if (local_broker_ && local_broker_->has_queue(queue)) continue;
    broker_->declare_queue(queue, queue_opts);
  }
  std::string events_queue = config_.events_queue;
  if (events_queue.empty() && config_.adaptive_factory) {
    events_queue = "q.ensemble.events";
  }
  if (!events_queue.empty() &&
      !(local_broker_ && local_broker_->has_queue(events_queue))) {
    // The event stream is advisory (rules re-derive nothing from it that
    // the state journal does not also hold), so it is never durable.
    broker_->declare_queue(events_queue, mq::QueueOptions{});
  }

  store_ = std::make_unique<StateStore>(
      journal_dir.empty() ? "" : journal_dir + "/" + uid_ + ".states",
      config_.journal);

  for (const PipelinePtr& p : pipelines_) registry_.add_pipeline(p);

  synchronizer_ = std::make_unique<Synchronizer>(
      broker_, "q.states", &registry_, store_.get(), profiler_);
  synchronizer_->start();

  const std::size_t batch =
      std::max<std::size_t>(1, config_.task_batch_size);
  WfConfig wf_cfg;
  wf_cfg.default_task_retry_limit = config_.task_retry_limit;
  wf_cfg.batch_size = batch;
  wf_cfg.inline_units = config_.remote_workers;
  wf_cfg.events_queue = events_queue;
  if (!config_.resume_journal.empty()) {
    StateStore previous;
    previous.recover(config_.resume_journal);
    for (const PipelinePtr& p : pipelines_) {
      for (const StagePtr& stage : p->stages()) {
        for (const TaskPtr& task : stage->tasks()) {
          if (previous.state_of(task->uid()) == "DONE") {
            task->set_state(TaskState::Done);
            wf_cfg.recovered_done.insert(task->uid());
            store_->commit(task->uid(), "task", "DESCRIBED", "DONE",
                           "recovery");
            profiler_->record("amgr", "task_recovered", task->uid());
          }
        }
      }
    }
    ENTK_INFO(uid_) << "resume: recovered " << wf_cfg.recovered_done.size()
                    << " completed task(s) from " << config_.resume_journal;
  }
  wfprocessor_ = std::make_unique<WFProcessor>(wf_cfg, broker_, &registry_,
                                               "q.pending", "q.completed",
                                               "q.states", profiler_);

  if (config_.remote_workers) {
    // The execution stack lives in entk_worker processes; this side only
    // tracks who is out there.
    worker_directory_ = std::make_unique<worker::WorkerDirectory>(
        broker_, config_.worker_ttl_s, profiler_);
  } else {
    ExecConfig exec_cfg;
    exec_cfg.supervision = config_.supervision;
    exec_cfg.submit_batch = std::max(exec_cfg.submit_batch, batch);
    if (batch > 1) {
      // Coalesce completions on a short window so Dequeue drains bulk Done
      // messages instead of one per unit.
      exec_cfg.completion_flush_window_s = 0.002;
      exec_cfg.completion_flush_max = batch;
    }
    exec_manager_ = std::make_unique<ExecManager>(
        exec_cfg, broker_, &registry_, "q.pending", "q.completed",
        "q.states", config_.rts_factory, profiler_);
    exec_manager_->set_fatal_handler([this](const std::string& reason) {
      note_fatal("rts", reason);
      wfprocessor_->abort(reason);
    });
  }

  if (config_.adaptive_factory) {
    AdaptiveWiring wiring;
    wiring.broker = broker_;
    wiring.events_queue = events_queue;
    wiring.registry = &registry_;
    wiring.wfprocessor = wfprocessor_.get();
    wiring.clock = clock_;
    wiring.profiler = profiler_;
    wiring.metrics = metrics_;
    wiring.resize = [this](const rts::ResizeRequest& request) {
      return exec_manager_ ? exec_manager_->request_resize(request) : false;
    };
    adaptive_ = config_.adaptive_factory(wiring);
  }

  // Supervision tree (paper §II-B-4): the supervisor heartbeat-probes the
  // sibling components and restarts any that fail, re-attached to the same
  // queues and state store; the ExecManager supervises the RTS below it.
  supervisor_ = std::make_unique<Supervisor>(config_.supervision, profiler_);
  supervisor_->supervise(synchronizer_.get());
  supervisor_->supervise(wfprocessor_.get());
  if (exec_manager_) supervisor_->supervise(exec_manager_.get());
  if (worker_directory_) supervisor_->supervise(worker_directory_.get());
  if (adaptive_) supervisor_->supervise(adaptive_.get());
  supervisor_->set_fatal_handler(
      [this](const std::string& component, const std::string& reason) {
        note_fatal(component, reason);
        wfprocessor_->abort(component + ": " + reason);
      });
  // Sticky broker durability failures (journal-flusher I/O errors —
  // local or forwarded from the daemon on heartbeats) surface through the
  // same fatal path.
  supervisor_->watch_broker(broker_);

  if (metrics_) {
    synchronizer_->set_metrics(metrics_);
    wfprocessor_->set_metrics(metrics_);
    if (exec_manager_) exec_manager_->set_metrics(metrics_);
    if (worker_directory_) worker_directory_->set_metrics(metrics_);
    if (adaptive_) adaptive_->set_metrics(metrics_);
    supervisor_->set_metrics(metrics_);
  }

  const double setup_wall = wall_now_s() - setup_t0;
  profiler_->record("amgr", "amgr_setup_stop");

  // ----------------------------------------------- resource acquisition
  if (exec_manager_) exec_manager_->acquire_resources();

  // ------------------------------------------------------------ execute
  profiler_->record("amgr", "amgr_run_start");
  if (exec_manager_) exec_manager_->start();
  if (worker_directory_) worker_directory_->start();
  // Before the WFProcessor, so the controller observes the event stream
  // from the first completion onward.
  if (adaptive_) adaptive_->start();
  wfprocessor_->start();
  supervisor_->start();
  wfprocessor_->wait_completion();
  profiler_->record("amgr", "amgr_run_stop");

  // ----------------------------------------------------------- teardown
  profiler_->record("amgr", "amgr_teardown_start");
  const double teardown_t0 = wall_now_s();
  // Supervisor first, so an intentionally-stopping component is not
  // mistaken for a crashed one and restarted mid-teardown.
  supervisor_->stop();
  // The controller before the WFProcessor: its actions (cancel, append,
  // resize) route through a still-live workflow stack.
  if (adaptive_) adaptive_->stop();
  wfprocessor_->stop();
  const double rts_terminate_wall =
      exec_manager_ ? exec_manager_->stop() : 0.0;
  if (worker_directory_) worker_directory_->stop();
  synchronizer_->stop();
  // Durability barrier before the run is declared over: group-committed
  // state records must be readable by whoever inspects the journal next.
  store_->flush();
  broker_->close();
  const double teardown_wall =
      wall_now_s() - teardown_t0 - rts_terminate_wall;
  profiler_->record("amgr", "amgr_teardown_stop");

  // ------------------------------------------------------------- report
  // Stitch the causal trace once: the overhead report, the span
  // histograms and the exporters all read this one model.
  obs::TraceLinks links;
  for (const PipelinePtr& p : pipelines_) {
    for (const StagePtr& stage : p->stages()) {
      links.stage_pipeline[stage->uid()] = p->uid();
      for (const TaskPtr& task : stage->tasks()) {
        links.task_stage[task->uid()] = stage->uid();
      }
    }
  }
  trace_ = obs::build_trace(*profiler_, links);

  OverheadInputs inputs;
  inputs.setup_wall_s = setup_wall;
  inputs.mgmt_wall_s =
      wfprocessor_->enqueue_busy().total_s() +
      wfprocessor_->dequeue_busy().total_s() +
      (exec_manager_ ? exec_manager_->emgr_busy().total_s() : 0.0) +
      synchronizer_->busy().total_s();
  inputs.teardown_wall_s = teardown_wall;
  inputs.tasks_processed =
      wfprocessor_->tasks_done() + wfprocessor_->tasks_failed() +
      wfprocessor_->resubmissions();
  inputs.host = config_.host;
  report_ = compute_overheads(trace_, inputs);
  report_.tasks_done = wfprocessor_->tasks_done();
  report_.tasks_failed = wfprocessor_->tasks_failed();
  report_.resubmissions = wfprocessor_->resubmissions();
  report_.rts_restarts = exec_manager_ ? exec_manager_->rts_restarts() : 0;
  report_.component_restarts = supervisor_->total_restarts();
  {
    std::lock_guard<std::mutex> lock(fatal_mutex_);
    report_.failed_component = fatal_component_;
    report_.failure_reason = fatal_reason_;
  }

  ENTK_INFO(uid_) << "run complete: " << report_.tasks_done << " done, "
                  << report_.tasks_failed << " failed, "
                  << report_.resubmissions << " resubmissions";

  // ------------------------------------------------------------- exports
  if (metrics_) obs::fill_span_histograms(trace_, *metrics_);
  try {
    if (!config_.obs.trace_out.empty()) {
      obs::write_chrome_trace(trace_, config_.obs.trace_out);
      ENTK_INFO(uid_) << "trace written to " << config_.obs.trace_out;
    }
    if (!config_.obs.metrics_out.empty() && metrics_) {
      metrics_->dump_jsonl(config_.obs.metrics_out, wall_now_us());
      ENTK_INFO(uid_) << "metrics written to " << config_.obs.metrics_out;
    }
  } catch (const std::exception& e) {
    // A failed export must not turn a completed run into a failure.
    ENTK_ERROR(uid_) << "observability export failed: " << e.what();
  }
}

void AppManager::inject_rts_failure() {
  if (exec_manager_) exec_manager_->inject_rts_failure();
}

void AppManager::inject_component_fault(const std::string& component) {
  Component* target = nullptr;
  if (component == "wfprocessor") target = wfprocessor_.get();
  if (component == "synchronizer") target = synchronizer_.get();
  if (component == "exec_manager") target = exec_manager_.get();
  if (!target) {
    throw ValueError(uid_, "component",
                     "wfprocessor | synchronizer | exec_manager");
  }
  target->inject_fault("injected fault in " + component);
}

void AppManager::note_fatal(const std::string& component,
                            const std::string& reason) {
  std::lock_guard<std::mutex> lock(fatal_mutex_);
  if (!fatal_component_.empty()) return;
  fatal_component_ = component;
  fatal_reason_ = reason;
}

void AppManager::cancel() {
  if (wfprocessor_) wfprocessor_->cancel();
}

std::size_t AppManager::tasks_done() const {
  return wfprocessor_ ? wfprocessor_->tasks_done() : 0;
}

std::size_t AppManager::tasks_failed() const {
  return wfprocessor_ ? wfprocessor_->tasks_failed() : 0;
}

std::size_t AppManager::resubmissions() const {
  return wfprocessor_ ? wfprocessor_->resubmissions() : 0;
}

std::size_t AppManager::tasks_recovered() const {
  return wfprocessor_ ? wfprocessor_->tasks_recovered() : 0;
}

int AppManager::rts_restarts() const {
  return exec_manager_ ? exec_manager_->rts_restarts() : 0;
}

int AppManager::component_restarts() const {
  return supervisor_ ? supervisor_->total_restarts() : 0;
}

}  // namespace entk
