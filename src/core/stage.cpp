#include "src/core/stage.hpp"

#include "src/common/error.hpp"
#include "src/common/ids.hpp"

namespace entk {

Stage::Stage() : uid_(generate_uid("stage")) {}

Stage::Stage(std::string stage_name) : Stage() { name = std::move(stage_name); }

void Stage::add_task(TaskPtr task) {
  if (!task) throw ValueError("stage " + uid_, "task", "non-null task");
  tasks_.push_back(std::move(task));
}

void Stage::validate() const {
  if (tasks_.empty()) {
    throw MissingError("stage " + uid_, "tasks");
  }
  for (const TaskPtr& t : tasks_) t->validate();
}

void Stage::set_parent(const std::string& pipeline) {
  parent_pipeline_ = pipeline;
  for (const TaskPtr& t : tasks_) t->set_parents(pipeline, uid_);
}

json::Value Stage::to_json() const {
  json::Value v;
  v["uid"] = uid_;
  v["name"] = name;
  v["state"] = to_string(state_);
  v["parent_pipeline"] = parent_pipeline_;
  json::Value tasks = json::Array{};
  for (const TaskPtr& t : tasks_) tasks.push_back(t->to_json());
  v["tasks"] = std::move(tasks);
  return v;
}

}  // namespace entk
