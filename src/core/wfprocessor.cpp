#include "src/core/wfprocessor.hpp"

#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk {

WFProcessor::WFProcessor(WfConfig config, mq::BrokerHandlePtr broker,
                         ObjectRegistry* registry, std::string pending_queue,
                         std::string done_queue, std::string states_queue,
                         ProfilerPtr profiler)
    : Component("wfprocessor", std::move(profiler)),
      config_(config),
      broker_(std::move(broker)),
      registry_(registry),
      pending_queue_(std::move(pending_queue)),
      done_queue_(std::move(done_queue)),
      states_queue_(std::move(states_queue)) {}

WFProcessor::~WFProcessor() { stop(); }

void WFProcessor::on_start() {
  profiler_->record("wfprocessor", "wfp_start");
  if (auto* reg = metrics()) {
    enqueued_metric_ = &reg->counter("wfp.tasks_enqueued");
    done_metric_ = &reg->counter("wfp.tasks_done");
    failed_metric_ = &reg->counter("wfp.tasks_failed");
    resubmit_metric_ = &reg->counter("wfp.resubmissions");
    duplicate_metric_ = &reg->counter("wfp.duplicate_results");
  }
  {
    // Force a full pipeline rescan on (re)start: a previous generation may
    // have died after consuming its wake-up but before scheduling.
    std::lock_guard<std::mutex> lock(work_mutex_);
    work_available_ = true;
  }
  add_worker("enqueue", [this] { enqueue_loop(); });
  add_worker("dequeue", [this] { dequeue_loop(); });
}

void WFProcessor::on_stop_requested() {
  work_cv_.notify_all();
  done_cv_.notify_all();
}

void WFProcessor::on_stopped() { profiler_->record("wfprocessor", "wfp_stop"); }

void WFProcessor::on_reattach() {
  // Deliveries the dead workers held unacked (Done-queue results, sync
  // acks) go back to their queues so the new generation resolves them.
  for (const std::string& queue :
       {done_queue_, std::string("q.ack.wfp.enq"), std::string("q.ack.wfp.deq")}) {
    if (broker_->has_queue(queue)) broker_->requeue_unacked(queue);
  }
}

bool WFProcessor::all_pipelines_final() const {
  for (const PipelinePtr& p : registry_->pipelines()) {
    if (!is_final(p->state())) return false;
  }
  return true;
}

void WFProcessor::wait_completion() {
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [this] { return aborted_ || all_pipelines_final(); });
}

void WFProcessor::abort(const std::string& reason) {
  ENTK_ERROR("wfprocessor") << "aborting workflow: " << reason;
  SyncClient sync(broker_, "wfp.abort", states_queue_, "q.ack.wfp.abort");
  for (const PipelinePtr& p : registry_->pipelines()) {
    if (!is_final(p->state())) {
      // Described pipelines must pass through Scheduling to fail.
      if (p->state() == PipelineState::Described) {
        sync.sync(p->uid(), "pipeline", "DESCRIBED", "SCHEDULING", true);
      }
      sync.sync(p->uid(), "pipeline", to_string(p->state()), "FAILED", true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    aborted_ = true;
  }
  done_cv_.notify_all();
}

void WFProcessor::cancel() {
  ENTK_INFO("wfprocessor") << "canceling workflow";
  canceling_ = true;
  SyncClient sync(broker_, "wfp.cancel", states_queue_, "q.ack.wfp.cancel");
  for (const PipelinePtr& p : registry_->pipelines()) {
    if (is_final(p->state())) continue;
    for (const StagePtr& stage : p->stages()) {
      for (const TaskPtr& task : stage->tasks()) {
        if (!is_final(task->state())) {
          sync.sync(task->uid(), "task", to_string(task->state()), "CANCELED",
                    true);
        }
      }
      if (!is_final(stage->state())) {
        sync.sync(stage->uid(), "stage", to_string(stage->state()),
                  "CANCELED", true);
      }
    }
    sync.sync(p->uid(), "pipeline", to_string(p->state()), "CANCELED", true);
  }
  done_cv_.notify_all();
}

// ------------------------------------------------------------- Enqueue --

void WFProcessor::enqueue_loop() {
  SyncClient sync(broker_, "wfp.enqueue", states_queue_, "q.ack.wfp.enq");
  std::uint64_t scans = 0;
  while (!stop_requested()) {
    beat();
    if (++scans % 2048 == 0) {
      ENTK_DEBUG("wfprocessor") << "enqueue alive, scan " << scans;
    }
    std::deque<std::string> retries;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
        return stop_requested() || work_available_ || !retry_uids_.empty();
      });
      if (stop_requested()) return;
      work_available_ = false;
      retries.swap(retry_uids_);
    }

    BusyScope busy(enqueue_busy_);

    // Resubmissions first: failed tasks that were re-described.
    for (const std::string& uid : retries) {
      TaskPtr task = registry_->task(uid);
      if (task) enqueue_task(task, sync);
    }

    if (canceling_.load()) continue;
    // Walk pipelines looking for schedulable stages.
    for (const PipelinePtr& pipeline : registry_->pipelines()) {
      if (is_final(pipeline->state())) continue;
      if (pipeline->state() == PipelineState::Described) {
        sync.sync(pipeline->uid(), "pipeline", "DESCRIBED", "SCHEDULING",
                  true);
      }
      StagePtr stage = pipeline->current_stage();
      if (!stage) {
        // Exhausted: either the controller still holds the pipeline open
        // (a generator may append more stages) or it is ready to complete.
        complete_pipeline(pipeline, sync);
        continue;
      }
      if (stage->state() == StageState::Done) {
        // Crash recovery: a previous generation died inside a post_exec
        // hook after the stage committed DONE but before the pipeline
        // advanced. Pick up where it left off — the hook itself was
        // consumed (at-most-once) and does not re-run.
        register_appended_stages(pipeline);
        stage = pipeline->advance_past(stage);
        if (!stage) {
          complete_pipeline(pipeline, sync);
          continue;
        }
      }
      if (stage->state() != StageState::Described) continue;
      schedule_stage(pipeline, stage, sync);
    }
  }
}

void WFProcessor::notify_work() {
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    work_available_ = true;
  }
  work_cv_.notify_all();
}

void WFProcessor::register_appended_stages(const PipelinePtr& pipeline) {
  for (const StagePtr& s : pipeline->stages()) {
    if (!registry_->stage(s->uid())) registry_->add_stage(s);
  }
}

void WFProcessor::complete_pipeline(const PipelinePtr& pipeline,
                                    SyncClient& sync) {
  if (pipeline->state() != PipelineState::Scheduling) return;
  if (pipeline->held_open()) return;
  if (!pipeline->begin_completion()) return;
  sync.sync(pipeline->uid(), "pipeline", "SCHEDULING", "DONE", true);
  profiler_->record("wfprocessor", "pipeline_done", pipeline->uid());
  json::Value ev;
  ev["event"] = "pipeline";
  ev["uid"] = pipeline->uid();
  ev["name"] = pipeline->name;
  ev["outcome"] = "DONE";
  emit_event(std::move(ev));
  done_cv_.notify_all();
}

void WFProcessor::schedule_stage(const PipelinePtr& pipeline,
                                 const StagePtr& stage, SyncClient& sync) {
  ENTK_DEBUG("wfprocessor") << "scheduling stage " << stage->uid() << " ("
                            << stage->task_count() << " tasks) of "
                            << pipeline->uid();
  profiler_->record("wfprocessor", "stage_schedule_start", stage->uid());
  sync.sync(stage->uid(), "stage", "DESCRIBED", "SCHEDULING", true);
  std::size_t recovered = 0;
  std::vector<TaskPtr> chunk;
  for (const TaskPtr& task : stage->tasks()) {
    if (config_.recovered_done.count(task->uid()) > 0) {
      // Completed in a previous attempt: skip execution entirely.
      ++recovered;
      ++tasks_recovered_;
      profiler_->record("wfprocessor", "task_recovered", task->uid());
      continue;
    }
    if (task->state() == TaskState::Canceled) {
      // Canceled before this stage was scheduled (cancel_tasks counted it
      // as resolved in the book already): never dispatch it.
      continue;
    }
    if (config_.batch_size <= 1) {
      enqueue_task(task, sync);
      continue;
    }
    chunk.push_back(task);
    if (chunk.size() >= config_.batch_size) {
      enqueue_task_batch(chunk, sync);
      chunk.clear();
    }
  }
  if (!chunk.empty()) enqueue_task_batch(chunk, sync);
  sync.sync(stage->uid(), "stage", "SCHEDULING", "SCHEDULED", true);
  profiler_->record("wfprocessor", "stage_schedule_stop", stage->uid());
  // Completion check even when nothing was recovered: cancellations may
  // have pre-resolved tasks of this stage in the book.
  bool stage_complete = false;
  bool stage_failed = false;
  {
    std::lock_guard<std::mutex> lock(book_mutex_);
    StageBook& book = stage_books_[stage->uid()];
    book.resolved += recovered;
    if (book.resolved >= stage->task_count() && !book.finished) {
      book.finished = true;
      stage_complete = true;
    }
    stage_failed = book.failed > 0;
  }
  if (stage_complete) {
    finish_stage(pipeline, stage, stage_failed, sync);
  }
}

void WFProcessor::enqueue_task(const TaskPtr& task, SyncClient& sync) {
  sync.sync(task->uid(), "task", "DESCRIBED", "SCHEDULING", false);
  // The Scheduled transition is confirmed before the task becomes runnable:
  // the state store must know about the task before the RTS can see it.
  sync.sync(task->uid(), "task", "SCHEDULING", "SCHEDULED", true);
  json::Value msg;
  if (config_.inline_units) {
    // Remote workers have no registry: ship the full unit description.
    json::Array units;
    units.push_back(to_unit(*task).to_json());
    msg["units"] = std::move(units);
  } else {
    msg["uid"] = task->uid();
  }
  // Recorded before the publish so the trace's causal order holds even
  // when the consumer records task_submitted on another thread first.
  profiler_->record("wfprocessor", "task_enqueued", task->uid());
  if (enqueued_metric_ != nullptr) enqueued_metric_->add(1);
  broker_->publish(pending_queue_,
                   mq::Message::json_body(pending_queue_, std::move(msg)));
}

void WFProcessor::enqueue_task_batch(const std::vector<TaskPtr>& tasks,
                                     SyncClient& sync) {
  std::vector<Transition> scheduling;
  std::vector<Transition> scheduled;
  scheduling.reserve(tasks.size());
  scheduled.reserve(tasks.size());
  json::Array uids;
  json::Array units;
  uids.reserve(tasks.size());
  for (const TaskPtr& task : tasks) {
    scheduling.push_back({task->uid(), "task", "DESCRIBED", "SCHEDULING"});
    scheduled.push_back({task->uid(), "task", "SCHEDULING", "SCHEDULED"});
    if (config_.inline_units) {
      units.push_back(to_unit(*task).to_json());
    } else {
      uids.push_back(task->uid());
    }
  }
  sync.sync_batch(scheduling, false);
  // As in the per-task path, the Scheduled transitions are confirmed
  // before the tasks become runnable — but with ONE round-trip for the
  // whole batch.
  sync.sync_batch(scheduled, true);
  // As in enqueue_task: record before the publish for causal trace order.
  for (const TaskPtr& task : tasks) {
    profiler_->record("wfprocessor", "task_enqueued", task->uid());
  }
  if (enqueued_metric_ != nullptr) enqueued_metric_->add(tasks.size());
  if (config_.inline_units) {
    // One message PER task, published in one vectored broker call: the
    // syncs above still amortize across the batch, but the work-sharing
    // granule on the Pending queue stays a single task — N workers split
    // a burst instead of one worker's batch get swallowing it whole, and
    // a killed worker's requeue returns only what it actually held.
    std::vector<mq::Message> msgs;
    msgs.reserve(units.size());
    for (json::Value& unit : units) {
      json::Value msg;
      json::Array one;
      one.push_back(std::move(unit));
      msg["units"] = std::move(one);
      msgs.push_back(mq::Message::json_body(pending_queue_, std::move(msg)));
    }
    broker_->publish_batch(pending_queue_, std::move(msgs));
  } else {
    json::Value msg;
    msg["uids"] = std::move(uids);
    broker_->publish(pending_queue_,
                     mq::Message::json_body(pending_queue_, std::move(msg)));
  }
}

// ------------------------------------------------------------- Dequeue --

void WFProcessor::dequeue_loop() {
  SyncClient sync(broker_, "wfp.dequeue", states_queue_, "q.ack.wfp.deq");
  // Drain size: at batch_size 1 pull single deliveries (the seed path);
  // otherwise pull whole backlogs in one queue-lock acquisition.
  const std::size_t drain = config_.batch_size <= 1 ? 1 : config_.batch_size;
  while (!stop_requested()) {
    beat();
    const std::vector<mq::Delivery> deliveries =
        broker_->get_batch(done_queue_, drain, config_.poll_timeout_s);
    if (deliveries.empty()) continue;
    BusyScope busy(dequeue_busy_);
    std::vector<std::uint64_t> tags;
    // The shared payloads are read in place (zero-copy); `payloads` keeps
    // them alive while `results` points at individual completion records
    // inside them.
    std::vector<std::shared_ptr<const json::Value>> payloads;
    std::vector<const json::Value*> results;
    tags.reserve(deliveries.size());
    payloads.reserve(deliveries.size());
    results.reserve(deliveries.size());
    for (const mq::Delivery& delivery : deliveries) {
      tags.push_back(delivery.delivery_tag);
      std::shared_ptr<const json::Value> body;
      try {
        body = delivery.message.payload();
      } catch (const json::ParseError&) {
        continue;
      }
      if (body->contains("results")) {
        // Coalesced completion message from the RTS callback flush window.
        for (const json::Value& r : body->at("results").as_array()) {
          results.push_back(&r);
        }
      } else {
        results.push_back(body.get());
      }
      payloads.push_back(std::move(body));
    }
    broker_->ack_batch(done_queue_, tags);
    if (config_.batch_size <= 1) {
      for (const json::Value* result : results) {
        try {
          resolve_task(*result, sync);
        } catch (const EnTKError& e) {
          ENTK_ERROR("wfprocessor") << "failed to resolve task result: "
                                    << e.what();
        }
      }
    } else {
      resolve_results(results, sync);
    }
  }
}

void WFProcessor::resolve_task(const json::Value& result, SyncClient& sync) {
  const std::string uid = result.get_string("uid", "");
  TaskPtr task = registry_->task(uid);
  if (!task) {
    ENTK_WARN("wfprocessor") << "result for unknown task " << uid;
    return;
  }
  if (canceling_.load() || task->state() == TaskState::Canceled) {
    // Result of a unit that outlived cancellation: ignore it.
    return;
  }
  if (task->state() == TaskState::Done || task->state() == TaskState::Failed) {
    // At-least-once redelivery: a worker lost its connection after
    // executing but before acking, a survivor re-executed, and both
    // results arrived. The first resolution already advanced the stage
    // book and the state store; dropping the duplicate keeps "DONE exactly
    // once" true for the workflow even though execution was at-least-once.
    ENTK_WARN("wfprocessor") << "duplicate result for " << uid
                             << " ignored (task already "
                             << to_string(task->state()) << ")";
    if (duplicate_metric_ != nullptr) duplicate_metric_->add(1);
    return;
  }
  const std::string outcome = result.get_string("outcome", "DONE");
  const int exit_code = static_cast<int>(result.get_int("exit_code", 0));
  task->set_exit_code(exit_code);

  sync.sync(uid, "task", "SUBMITTED", "EXECUTED", false);
  profiler_->record("wfprocessor", "task_dequeued", uid);

  StagePtr stage = registry_->stage(task->parent_stage());
  PipelinePtr pipeline = registry_->pipeline(task->parent_pipeline());
  if (!stage || !pipeline) {
    throw EnTKError("task " + uid + " has no registered parents");
  }

  const bool failed = outcome != "DONE";
  if (failed) {
    sync.sync(uid, "task", "EXECUTED", "FAILED", true);
    int limit = task->retry_limit >= 0 ? task->retry_limit
                                       : config_.default_task_retry_limit;
    if (task->attempts() < limit) {
      // Resubmission: re-describe and hand back to Enqueue (paper §II-A:
      // failed tasks are resubmitted without restarting completed tasks).
      task->bump_attempts();
      sync.sync(uid, "task", "FAILED", "DESCRIBED", true);
      ++resubmissions_;
      profiler_->record("wfprocessor", "task_resubmit", uid);
      {
        std::lock_guard<std::mutex> lock(work_mutex_);
        retry_uids_.push_back(uid);
      }
      work_cv_.notify_all();
      if (resubmit_metric_ != nullptr) resubmit_metric_->add(1);
      return;
    }
    ++tasks_failed_;
    profiler_->record("wfprocessor", "task_failed", uid);
    if (failed_metric_ != nullptr) failed_metric_->add(1);
    emit_task_event(task, "FAILED");
  } else {
    sync.sync(uid, "task", "EXECUTED", "DONE", true);
    ++tasks_done_;
    profiler_->record("wfprocessor", "task_done", uid);
    if (done_metric_ != nullptr) done_metric_->add(1);
    emit_task_event(task, "DONE");
  }

  bool stage_complete = false;
  bool stage_failed = false;
  {
    std::lock_guard<std::mutex> lock(book_mutex_);
    StageBook& book = stage_books_[stage->uid()];
    ++book.resolved;
    if (failed) ++book.failed;
    if (book.resolved >= stage->task_count() && !book.finished) {
      book.finished = true;
      stage_complete = true;
    }
    stage_failed = book.failed > 0;
  }
  if (!stage_complete) return;

  finish_stage(pipeline, stage, stage_failed, sync);
}

void WFProcessor::resolve_results(const std::vector<const json::Value*>& results,
                                  SyncClient& sync) {
  // DONE results of the drained batch share two vectored syncs (Executed
  // unconfirmed, Done confirmed — one round-trip for the whole batch);
  // failures and retries keep the per-task path, which owns the branching.
  struct Resolved {
    TaskPtr task;
    StagePtr stage;
    PipelinePtr pipeline;
  };
  std::vector<Resolved> resolved;
  std::vector<const json::Value*> rest;
  std::vector<Transition> executed;
  std::vector<Transition> done;
  for (const json::Value* result_ptr : results) {
    const json::Value& result = *result_ptr;
    if (result.get_string("outcome", "DONE") != "DONE") {
      rest.push_back(&result);
      continue;
    }
    const std::string uid = result.get_string("uid", "");
    TaskPtr task = registry_->task(uid);
    if (!task) {
      ENTK_WARN("wfprocessor") << "result for unknown task " << uid;
      continue;
    }
    if (canceling_.load() || task->state() == TaskState::Canceled) {
      continue;  // unit outlived cancellation: ignore
    }
    if (task->state() == TaskState::Done ||
        task->state() == TaskState::Failed) {
      // Duplicate of an already-resolved task (at-least-once redelivery):
      // see resolve_task for the rationale.
      ENTK_WARN("wfprocessor") << "duplicate result for " << uid
                               << " ignored (task already "
                               << to_string(task->state()) << ")";
      if (duplicate_metric_ != nullptr) duplicate_metric_->add(1);
      continue;
    }
    StagePtr stage = registry_->stage(task->parent_stage());
    PipelinePtr pipeline = registry_->pipeline(task->parent_pipeline());
    if (!stage || !pipeline) {
      ENTK_ERROR("wfprocessor") << "task " << uid << " has no registered "
                                << "parents";
      continue;
    }
    task->set_exit_code(static_cast<int>(result.get_int("exit_code", 0)));
    executed.push_back({uid, "task", "SUBMITTED", "EXECUTED"});
    done.push_back({uid, "task", "EXECUTED", "DONE"});
    resolved.push_back({std::move(task), std::move(stage),
                        std::move(pipeline)});
  }

  if (!resolved.empty()) {
    sync.sync_batch(executed, false);
    for (const Resolved& r : resolved) {
      profiler_->record("wfprocessor", "task_dequeued", r.task->uid());
    }
    sync.sync_batch(done, true);
    tasks_done_ += resolved.size();
    for (const Resolved& r : resolved) {
      profiler_->record("wfprocessor", "task_done", r.task->uid());
      emit_task_event(r.task, "DONE");
    }
    if (done_metric_ != nullptr) done_metric_->add(resolved.size());

    // Stage bookkeeping: one lock acquisition for the whole batch, then
    // finish whichever stages the batch completed.
    std::vector<std::pair<const Resolved*, bool>> completions;
    {
      std::lock_guard<std::mutex> lock(book_mutex_);
      for (const Resolved& r : resolved) {
        StageBook& book = stage_books_[r.stage->uid()];
        ++book.resolved;
        if (book.resolved >= r.stage->task_count() && !book.finished) {
          book.finished = true;
          completions.emplace_back(&r, book.failed > 0);
        }
      }
    }
    for (const auto& [r, stage_failed] : completions) {
      finish_stage(r->pipeline, r->stage, stage_failed, sync);
    }
  }

  for (const json::Value* result : rest) {
    try {
      resolve_task(*result, sync);
    } catch (const EnTKError& e) {
      ENTK_ERROR("wfprocessor") << "failed to resolve task result: "
                                << e.what();
    }
  }
}

void WFProcessor::finish_stage(const PipelinePtr& pipeline,
                               const StagePtr& stage, bool stage_failed,
                               SyncClient& sync) {
  json::Value stage_ev;
  stage_ev["event"] = "stage";
  stage_ev["uid"] = stage->uid();
  stage_ev["name"] = stage->name;
  stage_ev["pipeline"] = pipeline->uid();

  if (stage_failed) {
    sync.sync(stage->uid(), "stage", "SCHEDULED", "FAILED", true);
    sync.sync(pipeline->uid(), "pipeline", "SCHEDULING", "FAILED", true);
    ENTK_WARN("wfprocessor") << "pipeline " << pipeline->uid()
                             << " failed at stage " << stage->uid();
    stage_ev["outcome"] = "FAILED";
    emit_event(std::move(stage_ev));
    json::Value pipe_ev;
    pipe_ev["event"] = "pipeline";
    pipe_ev["uid"] = pipeline->uid();
    pipe_ev["name"] = pipeline->name;
    pipe_ev["outcome"] = "FAILED";
    emit_event(std::move(pipe_ev));
    done_cv_.notify_all();
    return;
  }

  sync.sync(stage->uid(), "stage", "SCHEDULED", "DONE", true);
  profiler_->record("wfprocessor", "stage_done", stage->uid());
  stage_ev["outcome"] = "DONE";
  emit_event(std::move(stage_ev));

  // Post-execution hook: may extend the pipeline (adaptivity/branching).
  // The hook is consumed before it runs (at-most-once): an escaping
  // exception becomes a captured component fault — the supervisor restarts
  // the WFProcessor and the enqueue rescan advances past this stage
  // WITHOUT re-running user code.
  if (stage->post_exec) {
    auto hook = std::move(stage->post_exec);
    stage->post_exec = nullptr;
    try {
      hook();
    } catch (const std::exception& e) {
      throw EnTKError("stage " + stage->uid() + " post_exec threw: " +
                      e.what());
    } catch (...) {
      throw EnTKError("stage " + stage->uid() +
                      " post_exec threw a non-standard exception");
    }
    // Register any stages the hook appended.
    register_appended_stages(pipeline);
  }

  StagePtr next = pipeline->advance_past(stage);
  ENTK_DEBUG("wfprocessor") << "stage " << stage->uid() << " done, next="
                            << (next ? next->uid() : "none") << " held="
                            << (pipeline->held_open() ? "y" : "n");
  if (next) {
    notify_work();
  } else if (pipeline->held_open()) {
    // The ensemble Controller owns this pipeline's lifetime: it idles in
    // Scheduling until rules append more stages or release the hold (the
    // enqueue rescan completes it then).
    notify_work();
  } else {
    complete_pipeline(pipeline, sync);
  }
}

std::size_t WFProcessor::cancel_tasks(const std::vector<std::string>& uids) {
  // Runs on the caller's thread (the ensemble Controller), so it owns a
  // private sync channel.
  SyncClient sync(broker_, "wfp.cancel_tasks", states_queue_,
                  "q.ack.wfp.cancel_tasks");
  std::size_t canceled = 0;
  for (const std::string& uid : uids) {
    TaskPtr task = registry_->task(uid);
    if (!task) continue;
    bool won = false;
    // The current state can move under us (SCHEDULING -> SCHEDULED -> ...);
    // re-read and retry a few times. Only winning the CANCELED transition
    // entitles us to the stage-book credit — if a completion raced in
    // first, resolve_task already took it.
    for (int attempt = 0; attempt < 3 && !won; ++attempt) {
      const TaskState st = task->state();
      if (is_final(st)) break;
      won = sync.sync(uid, "task", to_string(st), "CANCELED", true);
    }
    if (!won) continue;
    ++canceled;
    ++tasks_canceled_;
    profiler_->record("wfprocessor", "task_canceled", uid);
    emit_task_event(task, "CANCELED");
    StagePtr stage = registry_->stage(task->parent_stage());
    PipelinePtr pipeline = registry_->pipeline(task->parent_pipeline());
    if (!stage || !pipeline) continue;
    // A canceled task counts as resolved or its stage would never finish.
    // Completion may only fire once the stage is fully dispatched
    // (Scheduled); earlier cancellations are picked up by the completion
    // check at the end of schedule_stage.
    bool stage_complete = false;
    {
      std::lock_guard<std::mutex> lock(book_mutex_);
      StageBook& book = stage_books_[stage->uid()];
      ++book.resolved;
      if (stage->state() == StageState::Scheduled &&
          book.resolved >= stage->task_count() && !book.finished) {
        book.finished = true;
        stage_complete = true;
      }
    }
    if (stage_complete) {
      bool stage_failed = false;
      {
        std::lock_guard<std::mutex> lock(book_mutex_);
        stage_failed = stage_books_[stage->uid()].failed > 0;
      }
      finish_stage(pipeline, stage, stage_failed, sync);
    }
  }
  return canceled;
}

void WFProcessor::emit_event(json::Value event) {
  if (config_.events_queue.empty()) return;
  ENTK_DEBUG("wfprocessor") << "emit " << event.get_string("event", "?")
                            << " " << event.get_string("uid", "?") << " "
                            << event.get_string("outcome", "?");
  try {
    broker_->publish(config_.events_queue,
                     mq::Message::json_body(config_.events_queue,
                                            std::move(event)));
  } catch (const std::exception&) {
    // Broker closing during teardown: the stream consumer is gone anyway.
  }
}

void WFProcessor::emit_task_event(const TaskPtr& task, const char* outcome) {
  if (config_.events_queue.empty()) return;
  json::Value ev;
  ev["event"] = "task";
  ev["uid"] = task->uid();
  ev["name"] = task->name;
  ev["outcome"] = outcome;
  ev["exit_code"] = task->exit_code();
  ev["stage"] = task->parent_stage();
  ev["pipeline"] = task->parent_pipeline();
  if (!task->metadata.is_null()) ev["metadata"] = task->metadata;
  emit_event(std::move(ev));
}

}  // namespace entk
