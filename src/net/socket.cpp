#include "src/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/net/frame.hpp"

namespace entk::net {

bool split_endpoint(const std::string& endpoint, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return false;
  }
  const std::string port_str = endpoint.substr(colon + 1);
  char* end = nullptr;
  const long value = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0 || value > 0xffff) {
    return false;
  }
  host = endpoint.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

namespace {

bool resolve_ipv4(const std::string& host, in_addr* out) {
  if (::inet_pton(AF_INET, host.c_str(), out) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    return false;
  }
  *out = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return true;
}

}  // namespace

int listen_tcp(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(address, &addr.sin_addr)) {
    throw NetError("net: cannot resolve bind address '" + address + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError("net: socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = strerror(errno);
    ::close(fd);
    throw NetError("net: bind " + address + ":" + std::to_string(port) +
                   ": " + what);
  }
  if (::listen(fd, 64) != 0) {
    const std::string what = strerror(errno);
    ::close(fd);
    throw NetError("net: listen: " + what);
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, std::uint16_t port,
                double timeout_s) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host, &addr.sin_addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  set_nonblocking(fd, true);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(timeout_s * 1e3);
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  set_nonblocking(fd, false);
  set_nodelay(fd);
  return fd;
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

void set_nodelay(int fd) {
  // The protocol is request/response with small frames: Nagle would add a
  // full RTT of batching delay to every operation.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace entk::net
