// Framed binary wire protocol of the networked broker transport.
//
// RabbitMQ puts a real TCP wire between the workflow manager and the HPC
// resource (paper §II-C); this header defines our equivalent: a
// length-prefixed binary frame carrying one broker operation or response.
// Layout (all integers little-endian):
//
//   u32  length      bytes after this prefix (capped at kMaxFrameBytes)
//   u8   op          Op code below
//   u64  corr        correlation id (responses echo the request's)
//   u64  arg         op-specific scalar: delivery tag, seq, max_n, count
//   u32  flags       kFlag* bits
//   u16  queue_len   + that many queue-name bytes
//   ...  body        op-specific payload (rest of the frame)
//
// Messages cross the wire as (headers-JSON, seq, body-bytes) triples —
// this is the serialization boundary the PR-4 lazy Message was built for:
// Message::body() renders exactly here, and the in-process fast path never
// pays it.
//
// decode_frame is incremental: feed it a receive buffer and an offset; it
// returns nullopt while the buffer holds only a partial frame and throws
// NetError on a malformed or oversized one (a corrupt length prefix must
// kill the connection, not allocate 4 GiB).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/error.hpp"
#include "src/json/json.hpp"
#include "src/mq/message.hpp"

namespace entk::net {

/// Transport-layer failure (framing violation, socket error, lost
/// connection). Subtype of MqError so existing broker-error handling in
/// the components applies unchanged.
class NetError : public MqError {
 public:
  explicit NetError(const std::string& what) : MqError(what) {}
};

enum class Op : std::uint8_t {
  // requests (client -> server)
  kDeclare = 1,
  kHasQueue = 2,
  kPublish = 3,
  kPublishBatch = 4,
  kGet = 5,        ///< arg unused; body = u64 timeout_us (server long-poll)
  kGetBatch = 6,   ///< arg = max_n; body = u64 timeout_us
  kAck = 7,        ///< arg = delivery tag
  kAckBatch = 8,   ///< body = u32 count + count * u64 tags
  kNack = 9,       ///< arg = delivery tag; kFlagRequeue selects redelivery
  kRequeue = 10,   ///< requeue_unacked(queue)
  kDepth = 11,
  kHeartbeat = 12, ///< server echoes with broker health in the body
  kClose = 13,     ///< client going away; server requeues its unacked
  kHello = 14,     ///< codec + tenant negotiation: arg = highest codec the
                   ///< sender speaks; body = tenant id (empty/absent = the
                   ///< default tenant, i.e. tenant-less wire behavior —
                   ///< old clients never send a body here and land there
                   ///< automatically). The server echoes kHello with the
                   ///< negotiated codec (min of both sides) and binds the
                   ///< connection to the tenant; an invalid or unknown
                   ///< (auto-register off) tenant id gets kError and the
                   ///< connection is dropped — a misaddressed ensemble
                   ///< must not silently run in the default namespace. A
                   ///< pre-hello server answers kError instead — the
                   ///< client ignores it and stays on the text codec, so
                   ///< old peers interoperate.
  kWorkerHello = 15, ///< worker identity: body = worker id. Marks this
                     ///< connection as an execution worker, subject to the
                     ///< server's worker liveness TTL (a silent worker's
                     ///< connection is dropped and its unacked deliveries
                     ///< requeued). A pre-worker server answers kError,
                     ///< which identity-announcing clients ignore.

  // responses (server -> client)
  kOk = 64,           ///< arg = op-specific count/seq; kFlagEmpty on dry get
  kError = 65,        ///< body = error text (client rethrows MqError)
  kDelivery = 66,     ///< arg = delivery tag; body = one encoded message
  kDeliveryBatch = 67,///< body = u32 count + count * (u64 tag, message)
  kDepthReport = 68,  ///< body = u32 count + count * (queue, ready, unacked)
  kErrQuota = 69,     ///< publish rejected by a tenant quota: body = reason
                      ///< text, arg = suggested retry-after in microseconds.
                      ///< Unlike kError this is transient per-tenant
                      ///< backpressure — the client retries with bounded
                      ///< backoff instead of failing the operation.
};

inline constexpr std::uint32_t kFlagDurable = 1u << 0;  ///< kDeclare
inline constexpr std::uint32_t kFlagRequeue = 1u << 1;  ///< kNack
inline constexpr std::uint32_t kFlagEmpty = 1u << 2;    ///< kOk: empty get
inline constexpr std::uint32_t kFlagTrue = 1u << 3;     ///< kOk: bool result
/// Message-bearing frame bodies use the binary typed-value codec
/// (append_message_binary) instead of JSON text. Set per frame, so a
/// decoder never guesses: negotiation only decides what a sender *emits*.
inline constexpr std::uint32_t kFlagBinary = 1u << 4;

/// Codec identifiers exchanged via kHello. Text is the implicit default
/// every peer speaks; binary is the typed-value codec of this revision.
inline constexpr std::uint64_t kCodecText = 0;
inline constexpr std::uint64_t kCodecBinary = 1;

/// Upper bound on one frame (prefix excluded): large enough for any
/// realistic dispatch batch, small enough that a corrupt prefix fails fast.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

struct Frame {
  Op op = Op::kHeartbeat;
  std::uint64_t corr = 0;
  std::uint64_t arg = 0;
  std::uint32_t flags = 0;
  std::string queue;
  std::string body;

  bool operator==(const Frame& other) const = default;
};

// --- scalar codec (exposed for op-payload building and tests) ------------
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// Read little-endian scalars at `offset`, advancing it; throw NetError
/// when the buffer is too short (a framing violation — the frame length
/// promised more payload than the op encoding provides).
std::uint16_t get_u16(std::string_view buf, std::size_t& offset);
std::uint32_t get_u32(std::string_view buf, std::size_t& offset);
std::uint64_t get_u64(std::string_view buf, std::size_t& offset);

// --- frame codec ----------------------------------------------------------
void append_frame(std::string& out, const Frame& frame);
std::string encode_frame(const Frame& frame);

/// Append only the length prefix + fixed header + queue name, declaring
/// `body_bytes` of body to follow. The body travels as a separate buffer —
/// the scatter-gather write path hands (header, body) to one writev
/// instead of copying the body into a contiguous frame.
void append_frame_header(std::string& out, const Frame& frame,
                         std::size_t body_bytes);

/// Decode one frame from `buf` starting at `offset`; on success advances
/// `offset` past it. Returns nullopt for a partial frame. Throws NetError
/// for an oversized or truncated-inside-header frame.
std::optional<Frame> decode_frame(std::string_view buf, std::size_t& offset);

// --- message codec (text, codec 0) ----------------------------------------
/// Wire form of one mq::Message: u32 headers_len (0 = null headers) +
/// headers JSON text, u64 seq, u32 body_len + body bytes. Rendering the
/// byte body here IS the process boundary of the zero-copy design.
void append_message(std::string& out, const mq::Message& msg);
mq::Message decode_message(std::string_view buf, std::size_t& offset);

// --- typed-value codec (binary, codec 1) ----------------------------------
// Compact tag-length-value encoding of json::Value, so structured payloads
// cross the wire without ever rendering JSON text (PR 4's
// serialize-at-the-boundary invariant pushed through the network boundary).
// One value is a u8 tag followed by tag-specific bytes (integers
// little-endian, same scalar codec as the frame header):
//
//   tag 0  null      (nothing)
//   tag 1  false     (nothing)
//   tag 2  true      (nothing)
//   tag 3  int64     u64 (two's complement bit pattern)
//   tag 4  double    u64 (IEEE-754 bit pattern)
//   tag 5  string    u32 byte count + UTF-8 bytes
//   tag 6  array     u32 element count + that many values
//   tag 7  object    u32 entry count + entries (u32 key len + key + value)
//
// decode_value throws NetError on an unknown tag, a truncated payload, or
// nesting deeper than kMaxValueDepth (a hostile frame must not overflow
// the stack).
inline constexpr std::size_t kMaxValueDepth = 64;
void append_value(std::string& out, const json::Value& v);
json::Value decode_value(std::string_view buf, std::size_t& offset);

/// Binary wire form of one mq::Message: headers value (TLV), u64 seq, u8
/// payload kind + kind-specific bytes:
///   kind 0  no payload (message carried neither representation)
///   kind 1  raw bytes: u32 len + the already-rendered body verbatim
///   kind 2  structured: one TLV value
/// A message holding a structured payload ships kind 2 — append never
/// calls Message::body(), so NO JSON text is rendered; the receiver's
/// Message comes back with set_payload(), keeping the zero-copy chain
/// intact across the socket. Messages that only ever had bytes (recovered
/// journals, raw publishes) ship those bytes verbatim as kind 1.
void append_message_binary(std::string& out, const mq::Message& msg);
mq::Message decode_message_binary(std::string_view buf, std::size_t& offset);

}  // namespace entk::net
