// BrokerServer: the network front end of the in-process mq::Broker.
//
// One poll(2)-driven worker thread owns every connection: it accepts
// clients, decodes request frames from per-connection read buffers,
// executes them against the broker, and appends response frames to
// per-connection write buffers (flushed under POLLOUT backpressure). All
// broker calls happen on that one thread, so connection state needs no
// locking.
//
// Blocking semantics are translated, not forwarded: a kGet/kGetBatch with
// a timeout is *parked* instead of blocking the event loop, and the parked
// slot is re-tried after every input-processing pass (every publish enters
// through the same thread) or answered empty when its deadline passes —
// a cooperative long-poll.
//
// Delivery accounting: the server records (queue, delivery_tag) for every
// message it hands a client. When that client disconnects — crash, kill,
// or kClose — the orphaned deliveries are nack-requeued so another
// consumer (or the same one after reconnecting) sees them again:
// at-least-once across the wire, same contract as in-process.
//
// The server is a supervised Component: the AppManager-level Supervisor
// can probe and restart it like any other; the listening socket is bound
// in the constructor so port() is valid (and the ephemeral port resolved)
// before start().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/component.hpp"
#include "src/mq/broker.hpp"
#include "src/net/frame.hpp"
#include "src/obs/metrics.hpp"

namespace entk::net {

struct BrokerServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0 = ephemeral, resolved via port()
  double drain_timeout_s = 2.0;  ///< bound on flushing write buffers at stop
  /// Liveness TTL for connections that announced a worker identity
  /// (kWorkerHello): a worker silent for longer than this is presumed
  /// dead — its connection is dropped and every delivery it held is
  /// nack-requeued so another worker re-executes the tasks. Workers
  /// heartbeat every RemoteBrokerConfig::heartbeat_interval_s (0.25 s
  /// default), so 5 s tolerates ~20 missed beats. <= 0 disables the scan.
  double worker_ttl_s = 5.0;
};

class BrokerServer : public Component {
 public:
  /// Binds and listens immediately (throws NetError on failure); the event
  /// loop starts serving on start().
  BrokerServer(mq::BrokerPtr broker, BrokerServerConfig config,
               ProfilerPtr profiler);
  ~BrokerServer() override;

  /// The bound port (stable across restarts of this instance).
  std::uint16_t port() const { return port_; }

  /// Endpoint string clients can dial ("host:port").
  std::string endpoint() const;

  /// Attach metrics: frame/byte counters, connection gauge and a per-op
  /// service-time histogram under "net.server.*" (plus the base
  /// component.* lifecycle counters). Attach before start().
  void set_metrics(obs::MetricsPtr metrics);

  std::size_t connection_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Deliveries nack-requeued because their consumer disconnected (or a
  /// worker's TTL expired). Always counted, metrics attached or not — the
  /// daemon's periodic stats line reports it.
  std::uint64_t requeued_on_disconnect() const {
    return requeued_total_.load(std::memory_order_relaxed);
  }

 protected:
  void on_start() override;
  void on_stop_requested() override;
  void on_stopped() override;

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int fd = -1;
    std::string rbuf;
    std::size_t rbuf_off = 0;
    /// Pending response buffers, FIFO. A response is queued as its frame
    /// header plus (separately) its body buffer, moved — not copied — in;
    /// the flush hands the whole queue to one sendmsg as an iovec array,
    /// so a get_batch of N messages leaves in a single syscall without
    /// ever being assembled contiguously.
    std::deque<std::string> wq;
    std::size_t wq_front_off = 0;  ///< bytes of wq.front() already sent
    std::size_t wq_bytes = 0;      ///< unsent bytes across the queue
    /// Wire codec negotiated via kHello; kCodecText until then, so
    /// pre-hello clients are served exactly as before.
    std::uint64_t codec = kCodecText;
    /// Deliveries handed to this client and not yet acked/nacked:
    /// requeued on disconnect.
    std::vector<std::pair<std::string, std::uint64_t>> unacked;
    bool closing = false;  ///< kClose received: drop once writes drain
    /// Worker identity announced via kWorkerHello; empty for ordinary
    /// clients. Identified workers are subject to worker_ttl_s.
    std::string worker_id;
    /// Last time any bytes arrived from this peer (heartbeats count).
    Clock::time_point last_activity;
  };

  /// A long-poll get waiting for a message or its deadline.
  struct ParkedGet {
    int fd = -1;
    std::uint64_t corr = 0;
    std::string queue;
    std::size_t max_n = 1;
    bool batch = false;
    Clock::time_point deadline;
  };

  void poll_loop();
  void accept_clients();
  /// Read what the socket has; returns false when the peer is gone.
  bool read_input(Conn& conn);
  /// Decode and execute every complete frame in the read buffer.
  void process_frames(Conn& conn);
  void handle_frame(Conn& conn, Frame&& req);
  void respond(Conn& conn, Frame&& resp);
  /// Flush the write queue (scatter-gather, one sendmsg per pass); returns
  /// false on a dead socket.
  bool flush_writes(Conn& conn);
  /// Retry every parked get; answer expired ones empty.
  void service_parked();
  /// Answer one get against the broker right now. Returns false when the
  /// queue is empty (caller parks or answers empty).
  bool try_answer_get(Conn& conn, std::uint64_t corr, const std::string& queue,
                      std::size_t max_n, bool batch);
  /// Drop connections whose announced worker identity has been silent
  /// beyond worker_ttl_s (their unacked deliveries requeue via drop_conn).
  void expire_workers();
  void drop_conn(int fd, bool requeue_unacked);
  void forget_unacked(const std::string& queue);
  /// Best-effort flush of pending responses at stop, bounded by
  /// drain_timeout_s.
  void drain_connections();
  void record_op_us(Clock::time_point started);

  mq::BrokerPtr broker_;
  const BrokerServerConfig config_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  // Owned by the poll worker; touched outside it only between start/stop.
  std::map<int, Conn> conns_;
  std::vector<ParkedGet> parked_;

  std::atomic<std::size_t> conn_count_{0};
  /// Always-on requeue accounting (the obs counter below mirrors it when
  /// metrics are attached).
  std::atomic<std::uint64_t> requeued_total_{0};

  // Pre-resolved "net.server.*" handles; all null when metrics are off.
  obs::MetricsPtr net_metrics_;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* requeued_on_disconnect_ = nullptr;
  obs::Gauge* connections_ = nullptr;
  obs::Histogram* op_us_ = nullptr;
};

}  // namespace entk::net
