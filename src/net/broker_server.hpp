// BrokerServer: the network front end of the in-process mq::Broker.
//
// One poll(2)-driven worker thread owns every connection: it accepts
// clients, decodes request frames from per-connection read buffers,
// executes them against the broker, and appends response frames to
// per-connection write buffers (flushed under POLLOUT backpressure). All
// broker calls happen on that one thread, so connection state needs no
// locking.
//
// Blocking semantics are translated, not forwarded: a kGet/kGetBatch with
// a timeout is *parked* instead of blocking the event loop, and the parked
// slot is re-tried after every input-processing pass (every publish enters
// through the same thread) or answered empty when its deadline passes —
// a cooperative long-poll.
//
// Delivery accounting: the server records (queue, delivery_tag) for every
// message it hands a client. When that client disconnects — crash, kill,
// or kClose — the orphaned deliveries are nack-requeued so another
// consumer (or the same one after reconnecting) sees them again:
// at-least-once across the wire, same contract as in-process.
//
// The server is a supervised Component: the AppManager-level Supervisor
// can probe and restart it like any other; the listening socket is bound
// in the constructor so port() is valid (and the ephemeral port resolved)
// before start().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/component.hpp"
#include "src/mq/broker.hpp"
#include "src/mq/tenant.hpp"
#include "src/net/frame.hpp"
#include "src/obs/metrics.hpp"

namespace entk::net {

struct BrokerServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0 = ephemeral, resolved via port()
  double drain_timeout_s = 2.0;  ///< bound on flushing write buffers at stop
  /// Liveness TTL for connections that announced a worker identity
  /// (kWorkerHello): a worker silent for longer than this is presumed
  /// dead — its connection is dropped and every delivery it held is
  /// nack-requeued so another worker re-executes the tasks. Workers
  /// heartbeat every RemoteBrokerConfig::heartbeat_interval_s (0.25 s
  /// default), so 5 s tolerates ~20 missed beats. <= 0 disables the scan.
  double worker_ttl_s = 5.0;
  /// Tenant table the server binds kHello tenant ids against. When null
  /// the server creates a private auto-registering registry with no
  /// quotas — every pre-tenancy deployment keeps its exact behavior.
  mq::TenantRegistryPtr tenants;
  /// Accept cap: connections past this limit are refused with a clean
  /// kError frame instead of growing the fd table without bound.
  /// 0 = unlimited.
  std::size_t max_connections = 0;
  /// Deficit-round-robin quantum of the fair input pass: bytes of request
  /// frames one tenant may process per scheduling round while other
  /// tenants have frames waiting. Only engaged when connections of two or
  /// more distinct tenants hold buffered input — a single-tenant daemon
  /// never pays the scheduling overhead.
  std::size_t fair_quantum_bytes = 64 * 1024;
};

class BrokerServer : public Component {
 public:
  /// Binds and listens immediately (throws NetError on failure); the event
  /// loop starts serving on start().
  BrokerServer(mq::BrokerPtr broker, BrokerServerConfig config,
               ProfilerPtr profiler);
  ~BrokerServer() override;

  /// The bound port (stable across restarts of this instance).
  std::uint16_t port() const { return port_; }

  /// Endpoint string clients can dial ("host:port").
  std::string endpoint() const;

  /// Attach metrics: frame/byte counters, connection gauge and a per-op
  /// service-time histogram under "net.server.*" (plus the base
  /// component.* lifecycle counters). Attach before start().
  void set_metrics(obs::MetricsPtr metrics);

  std::size_t connection_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Deliveries nack-requeued because their consumer disconnected (or a
  /// worker's TTL expired). Always counted, metrics attached or not — the
  /// daemon's periodic stats line reports it.
  std::uint64_t requeued_on_disconnect() const {
    return requeued_total_.load(std::memory_order_relaxed);
  }

  /// Connections refused at the max_connections cap (always counted).
  std::uint64_t rejected_at_capacity() const {
    return rejected_at_capacity_.load(std::memory_order_relaxed);
  }

  /// Publishes rejected by a tenant quota, across all tenants (always
  /// counted; per-tenant splits live on the TenantRegistry).
  std::uint64_t quota_rejections() const {
    return quota_rejections_.load(std::memory_order_relaxed);
  }

  /// The tenant table this server binds connections against (the config's,
  /// or the private default registry when none was supplied).
  const mq::TenantRegistryPtr& tenants() const { return tenants_; }

 protected:
  void on_start() override;
  void on_stop_requested() override;
  void on_stopped() override;

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int fd = -1;
    std::string rbuf;
    std::size_t rbuf_off = 0;
    /// Pending response buffers, FIFO. A response is queued as its frame
    /// header plus (separately) its body buffer, moved — not copied — in;
    /// the flush hands the whole queue to one sendmsg as an iovec array,
    /// so a get_batch of N messages leaves in a single syscall without
    /// ever being assembled contiguously.
    std::deque<std::string> wq;
    std::size_t wq_front_off = 0;  ///< bytes of wq.front() already sent
    std::size_t wq_bytes = 0;      ///< unsent bytes across the queue
    /// Wire codec negotiated via kHello; kCodecText until then, so
    /// pre-hello clients are served exactly as before.
    std::uint64_t codec = kCodecText;
    /// Deliveries handed to this client and not yet acked/nacked:
    /// requeued on disconnect.
    std::vector<std::pair<std::string, std::uint64_t>> unacked;
    bool closing = false;  ///< kClose received: drop once writes drain
    /// Worker identity announced via kWorkerHello; empty for ordinary
    /// clients. Identified workers are subject to worker_ttl_s.
    std::string worker_id;
    /// Last time any bytes arrived from this peer (heartbeats count).
    Clock::time_point last_activity;
    /// Tenant this connection is bound to (the default tenant until a
    /// kHello names another). Queue names in request frames are qualified
    /// into its namespace; publishes are admitted against its quota.
    std::shared_ptr<mq::Tenant> tenant;
    bool hello_seen = false;  ///< a kHello bound this connection already
  };

  /// A long-poll get waiting for a message or its deadline.
  struct ParkedGet {
    int fd = -1;
    std::uint64_t corr = 0;
    std::string queue;
    std::size_t max_n = 1;
    bool batch = false;
    Clock::time_point deadline;
  };

  void poll_loop();
  void accept_clients();
  /// Read what the socket has; returns false when the peer is gone.
  bool read_input(Conn& conn);
  /// Decode and execute one complete frame from the read buffer. Returns
  /// false when only a partial frame is buffered; sets *cost to the wire
  /// bytes the frame consumed (the DRR accounting unit). Throws on a
  /// framing violation.
  bool process_one_frame(Conn& conn, std::size_t* cost);
  /// Decode and execute every complete frame in the read buffer.
  void process_frames(Conn& conn);
  /// Fair input pass: process buffered frames across all live connections,
  /// deficit-round-robin by tenant when more than one tenant has input
  /// pending, so a flooding tenant's burst cannot starve the others'
  /// requests within a pass. Appends connections that hit framing
  /// violations to `dead` (already-listed fds are skipped).
  void process_frames_fair(std::vector<int>& dead);
  void handle_frame(Conn& conn, Frame&& req);
  /// Admit `n` published messages against the connection's tenant quota.
  /// On rejection answers kErrQuota (with a retry-after hint) and returns
  /// false.
  bool admit_publish(Conn& conn, std::uint64_t corr, std::size_t n,
                     std::size_t incoming_bytes);
  void respond(Conn& conn, Frame&& resp);
  /// Flush the write queue (scatter-gather, one sendmsg per pass); returns
  /// false on a dead socket.
  bool flush_writes(Conn& conn);
  /// Retry every parked get; answer expired ones empty.
  void service_parked();
  /// Answer one get against the broker right now. Returns false when the
  /// queue is empty (caller parks or answers empty).
  bool try_answer_get(Conn& conn, std::uint64_t corr, const std::string& queue,
                      std::size_t max_n, bool batch);
  /// Drop connections whose announced worker identity has been silent
  /// beyond worker_ttl_s (their unacked deliveries requeue via drop_conn).
  void expire_workers();
  void drop_conn(int fd, bool requeue_unacked);
  void forget_unacked(const std::string& queue);
  /// Best-effort flush of pending responses at stop, bounded by
  /// drain_timeout_s.
  void drain_connections();
  void record_op_us(Clock::time_point started);

  mq::BrokerPtr broker_;
  const BrokerServerConfig config_;
  mq::TenantRegistryPtr tenants_;
  std::shared_ptr<mq::Tenant> default_tenant_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  // Owned by the poll worker; touched outside it only between start/stop.
  std::map<int, Conn> conns_;
  std::vector<ParkedGet> parked_;

  std::atomic<std::size_t> conn_count_{0};
  /// Always-on requeue accounting (the obs counter below mirrors it when
  /// metrics are attached).
  std::atomic<std::uint64_t> requeued_total_{0};
  std::atomic<std::uint64_t> rejected_at_capacity_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};

  // Pre-resolved "net.server.*" handles; all null when metrics are off.
  obs::MetricsPtr net_metrics_;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* requeued_on_disconnect_ = nullptr;
  obs::Counter* quota_rejections_metric_ = nullptr;
  obs::Counter* rejected_at_capacity_metric_ = nullptr;
  obs::Gauge* connections_ = nullptr;
  obs::Histogram* op_us_ = nullptr;
};

}  // namespace entk::net
