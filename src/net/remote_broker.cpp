#include "src/net/remote_broker.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/mq/tenant.hpp"
#include "src/net/socket.hpp"

namespace entk::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::chrono::duration<double> secs(double s) {
  return std::chrono::duration<double>(s);
}

}  // namespace

RemoteBroker::RemoteBroker(RemoteBrokerConfig config)
    : config_(std::move(config)) {
  if (!split_endpoint(config_.endpoint, host_, port_)) {
    throw NetError("net: malformed endpoint '" + config_.endpoint +
                   "' (want host:port)");
  }
  const int fd = connect_tcp(host_, port_, config_.connect_timeout_s);
  if (fd < 0) {
    throw NetError("net: cannot connect to " + config_.endpoint);
  }
  fd_ = fd;
  send_hello();
  announce_worker();
  last_pong_us_.store(now_us(), std::memory_order_relaxed);
  connected_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
}

RemoteBroker::~RemoteBroker() { close(); }

void RemoteBroker::set_metrics(obs::MetricsPtr metrics) {
  metrics_ = std::move(metrics);
  if (metrics_ == nullptr) {
    frames_in_ = frames_out_ = bytes_in_ = bytes_out_ = nullptr;
    reconnects_metric_ = quota_throttled_metric_ = nullptr;
    publish_us_ = publish_batch_us_ = get_us_ = get_batch_us_ = ack_us_ =
        ack_batch_us_ = nullptr;
    return;
  }
  frames_in_ = &metrics_->counter("net.client.frames_in");
  frames_out_ = &metrics_->counter("net.client.frames_out");
  bytes_in_ = &metrics_->counter("net.client.bytes_in");
  bytes_out_ = &metrics_->counter("net.client.bytes_out");
  reconnects_metric_ = &metrics_->counter("net.client.reconnects");
  quota_throttled_metric_ = &metrics_->counter("net.client.quota_throttled");
  publish_us_ = &metrics_->histogram("net.client.publish_us");
  publish_batch_us_ = &metrics_->histogram("net.client.publish_batch_us");
  get_us_ = &metrics_->histogram("net.client.get_us");
  get_batch_us_ = &metrics_->histogram("net.client.get_batch_us");
  ack_us_ = &metrics_->histogram("net.client.ack_us");
  ack_batch_us_ = &metrics_->histogram("net.client.ack_batch_us");
}

// --- io thread -------------------------------------------------------------

void RemoteBroker::io_loop() {
  double backoff = config_.initial_backoff_s;
  while (!closed_.load(std::memory_order_acquire)) {
    int fd;
    {
      std::lock_guard<std::mutex> lk(write_mutex_);
      fd = fd_;
    }
    if (fd < 0) {
      fd = connect_tcp(host_, port_, config_.connect_timeout_s);
      if (fd < 0) {
        std::unique_lock<std::mutex> lk(conn_mutex_);
        conn_cv_.wait_for(lk, secs(backoff), [this] {
          return closed_.load(std::memory_order_acquire);
        });
        backoff = std::min(backoff * 2, config_.max_backoff_s);
        continue;
      }
      {
        std::lock_guard<std::mutex> lk(write_mutex_);
        fd_ = fd;
      }
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (reconnects_metric_ != nullptr) reconnects_metric_->add();
      // Re-hello: the new connection (possibly to a restarted, older
      // daemon) starts from text and the default tenant like every
      // connection does.
      send_hello();
      announce_worker();
      // Re-declare before announcing connected: TCP ordering then puts
      // the declares ahead of any operation retried by a caller thread.
      {
        std::lock_guard<std::mutex> lk(declared_mutex_);
        for (const auto& [queue, durable] : declared_) {
          Frame declare;
          declare.op = Op::kDeclare;
          declare.corr = 0;
          declare.queue = queue;
          declare.flags = durable ? kFlagDurable : 0;
          send_frame(declare);
        }
      }
      last_pong_us_.store(now_us(), std::memory_order_relaxed);
      connected_.store(true, std::memory_order_release);
      conn_cv_.notify_all();
    }

    serve_connection(fd);

    connected_.store(false, std::memory_order_release);
    codec_.store(kCodecText, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(write_mutex_);
      if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        close_fd(fd_);
        fd_ = -1;
      }
    }
    fail_pending("net: connection to " + config_.endpoint + " lost");
    backoff = config_.initial_backoff_s;
  }
}

void RemoteBroker::serve_connection(int fd) {
  std::string rbuf;
  std::size_t rbuf_off = 0;
  char chunk[kReadChunk];
  auto next_heartbeat = Clock::now() + secs(config_.heartbeat_interval_s);
  const std::int64_t stale_us = static_cast<std::int64_t>(
      std::max(4 * config_.heartbeat_interval_s, 1.0) * 1e6);

  while (!closed_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 20);
    if (r < 0 && errno != EINTR) return;
    if (r > 0) {
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) return;
      if (pfd.revents & POLLIN) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) return;
        if (n < 0) {
          if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
            return;
          }
        } else {
          if (bytes_in_ != nullptr) {
            bytes_in_->add(static_cast<std::uint64_t>(n));
          }
          rbuf.append(chunk, static_cast<std::size_t>(n));
          try {
            while (true) {
              std::optional<Frame> frame = decode_frame(rbuf, rbuf_off);
              if (!frame.has_value()) break;
              if (frames_in_ != nullptr) frames_in_->add();
              dispatch(std::move(*frame));
            }
          } catch (const MqError&) {
            return;  // corrupt stream: reconnect from scratch
          }
          if (rbuf_off > 0) {
            rbuf.erase(0, rbuf_off);
            rbuf_off = 0;
          }
        }
      }
    }

    const auto now = Clock::now();
    if (now >= next_heartbeat) {
      Frame heartbeat;
      heartbeat.op = Op::kHeartbeat;
      heartbeat.corr = 0;
      if (!send_frame(heartbeat)) return;
      next_heartbeat = now + secs(config_.heartbeat_interval_s);
    }
    if (now_us() - last_pong_us_.load(std::memory_order_relaxed) > stale_us) {
      return;  // server stopped echoing heartbeats: assume it is gone
    }
  }
}

void RemoteBroker::dispatch(Frame&& resp) {
  // Any inbound frame proves the server is alive.
  last_pong_us_.store(now_us(), std::memory_order_relaxed);
  if (resp.corr == 0) {
    // io-thread-originated traffic: heartbeat echoes carry broker health;
    // re-declare kOk responses need no handling. A kError here is an old
    // server rejecting our hello — ignored, the codec stays text.
    if (resp.op == Op::kHeartbeat) {
      std::lock_guard<std::mutex> lk(health_mutex_);
      last_health_ = std::move(resp.body);
    } else if (resp.op == Op::kHello) {
      codec_.store(std::min(resp.arg, kCodecBinary),
                   std::memory_order_release);
    }
    return;
  }
  std::lock_guard<std::mutex> lk(pending_mutex_);
  auto it = pending_.find(resp.corr);
  if (it == pending_.end()) return;  // caller already gave up
  it->second.done = true;
  it->second.response = std::move(resp);
  pending_cv_.notify_all();
}

void RemoteBroker::fail_pending(const std::string& why) {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  for (auto& [corr, slot] : pending_) {
    if (slot.done) continue;
    slot.failed = true;
    slot.error = why;
  }
  pending_cv_.notify_all();
}

void RemoteBroker::send_hello() {
  if (!config_.binary_codec && config_.tenant.empty()) return;
  // Offer the codec and name the tenant; until the ack lands (handled by
  // the io thread) every frame this client emits stays text, which any
  // server understands — so the offer costs nothing against old daemons.
  // A pre-tenancy daemon ignores the body entirely.
  Frame hello;
  hello.op = Op::kHello;
  hello.corr = 0;
  hello.arg = config_.binary_codec ? kCodecBinary : kCodecText;
  hello.body = config_.tenant;
  send_frame(hello);
}

void RemoteBroker::announce_worker() {
  if (config_.worker_id.empty()) return;
  // Fire-and-forget like the codec hello: a pre-worker daemon answers
  // kError with corr 0, which dispatch() ignores.
  Frame hello;
  hello.op = Op::kWorkerHello;
  hello.corr = 0;
  hello.body = config_.worker_id;
  send_frame(hello);
}

// --- request path ----------------------------------------------------------

bool RemoteBroker::send_frame(const Frame& frame) const {
  // Scatter-gather write: only the small fixed header is materialized; the
  // body — a whole publish_batch, potentially megabytes — goes to the
  // socket straight from the frame, so a batch costs one sendmsg and zero
  // body copies.
  std::string header;
  append_frame_header(header, frame, frame.body.size());
  iovec iov[2];
  iov[0] = {header.data(), header.size()};
  iov[1] = {const_cast<char*>(frame.body.data()), frame.body.size()};
  const std::size_t total = header.size() + frame.body.size();

  std::lock_guard<std::mutex> lk(write_mutex_);
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  std::size_t idx = 0;
  while (sent < total) {
    msghdr mh{};
    mh.msg_iov = iov + idx;
    mh.msg_iovlen = 2 - idx;
    const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Half-dead socket: shut it down so the io thread's poll wakes and
      // runs the reconnect path instead of waiting for a heartbeat miss.
      ::shutdown(fd_, SHUT_RDWR);
      return false;
    }
    sent += static_cast<std::size_t>(n);
    std::size_t advance = static_cast<std::size_t>(n);
    while (idx < 2 && advance >= iov[idx].iov_len) {
      advance -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < 2 && advance > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + advance;
      iov[idx].iov_len -= advance;
    }
  }
  if (frames_out_ != nullptr) frames_out_->add();
  if (bytes_out_ != nullptr) bytes_out_->add(total);
  return true;
}

bool RemoteBroker::wait_connected(double timeout_s) const {
  if (connected_.load(std::memory_order_acquire)) return true;
  if (closed_.load(std::memory_order_acquire) || timeout_s <= 0) {
    return connected_.load(std::memory_order_acquire);
  }
  std::unique_lock<std::mutex> lk(conn_mutex_);
  conn_cv_.wait_for(lk, secs(timeout_s), [this] {
    return connected_.load(std::memory_order_acquire) ||
           closed_.load(std::memory_order_acquire);
  });
  return connected_.load(std::memory_order_acquire);
}

std::optional<Frame> RemoteBroker::roundtrip(Frame req, double wait_s,
                                             std::string* why) const {
  const std::uint64_t corr =
      next_corr_.fetch_add(1, std::memory_order_relaxed);
  req.corr = corr;
  {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    pending_.emplace(corr, PendingSlot{});
  }
  if (!send_frame(req)) {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    pending_.erase(corr);
    *why = "not connected";
    return std::nullopt;
  }

  std::unique_lock<std::mutex> lk(pending_mutex_);
  pending_cv_.wait_for(lk, secs(wait_s), [this, corr] {
    auto it = pending_.find(corr);
    return it == pending_.end() || it->second.done || it->second.failed;
  });
  auto it = pending_.find(corr);
  PendingSlot slot = std::move(it->second);
  pending_.erase(it);
  lk.unlock();

  if (slot.done) {
    if (slot.response.op == Op::kError) throw MqError(slot.response.body);
    return std::move(slot.response);
  }
  *why = slot.failed ? slot.error : "response timed out";
  return std::nullopt;
}

Frame RemoteBroker::roundtrip_retry(const Frame& req,
                                    const char* op_name) const {
  const auto deadline = Clock::now() + secs(config_.retry_deadline_s);
  std::string why = "not connected";
  bool throttled = false;
  double slice = std::max(config_.initial_backoff_s, 0.01);
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      throw MqError("net: broker handle closed");
    }
    if (wait_connected(slice)) {
      std::string err;
      std::optional<Frame> resp =
          roundtrip(req, config_.response_grace_s, &err);
      if (resp.has_value()) {
        if (resp->op != Op::kErrQuota) return std::move(*resp);
        // Per-tenant backpressure, not a failure: honor the server's
        // retry-after hint (bounded — a large hint must not overshoot the
        // deadline, a zero hint must not busy-spin) and try again.
        throttled = true;
        why = resp->body.empty() ? "tenant quota exceeded" : resp->body;
        quota_throttled_.fetch_add(1, std::memory_order_relaxed);
        if (quota_throttled_metric_ != nullptr) quota_throttled_metric_->add();
        const double remaining =
            std::chrono::duration<double>(deadline - Clock::now()).count();
        const double pause = std::clamp(
            std::min(static_cast<double>(resp->arg) * 1e-6, remaining),
            0.001, 0.2);
        std::this_thread::sleep_for(secs(pause));
      } else {
        throttled = false;
        why = err;
      }
    }
    slice = std::min(slice * 2, config_.max_backoff_s);
    if (Clock::now() >= deadline) {
      const std::string detail = std::string("net: ") + op_name + " to " +
                                 config_.endpoint + " failed after " +
                                 std::to_string(config_.retry_deadline_s) +
                                 "s of retries: " + why;
      if (throttled) throw mq::QuotaError(detail);
      throw NetError(detail);
    }
  }
}

void RemoteBroker::observe_op(obs::Histogram* h,
                              Clock::time_point started) const {
  if (h == nullptr) return;
  h->observe(
      std::chrono::duration<double, std::micro>(Clock::now() - started)
          .count());
}

// --- BrokerHandle ----------------------------------------------------------

std::shared_ptr<mq::Queue> RemoteBroker::declare_queue(
    const std::string& queue, mq::QueueOptions options) {
  {
    // Recorded before the first attempt so a reconnect mid-declare still
    // re-declares it.
    std::lock_guard<std::mutex> lk(declared_mutex_);
    declared_[queue] = options.durable;
  }
  Frame req;
  req.op = Op::kDeclare;
  req.queue = queue;
  req.flags = options.durable ? kFlagDurable : 0;
  roundtrip_retry(req, "declare");
  return nullptr;  // the queue lives in the daemon's address space
}

bool RemoteBroker::has_queue(const std::string& queue) const {
  Frame req;
  req.op = Op::kHasQueue;
  req.queue = queue;
  const Frame resp = roundtrip_retry(req, "has_queue");
  return (resp.flags & kFlagTrue) != 0;
}

std::uint64_t RemoteBroker::publish(const std::string& queue,
                                    mq::Message msg) {
  const auto started = Clock::now();
  Frame req;
  req.op = Op::kPublish;
  req.queue = queue;
  if (codec_.load(std::memory_order_acquire) == kCodecBinary) {
    req.flags |= kFlagBinary;
    append_message_binary(req.body, msg);
  } else {
    append_message(req.body, msg);
  }
  const Frame resp = roundtrip_retry(req, "publish");
  observe_op(publish_us_, started);
  return resp.arg;
}

std::uint64_t RemoteBroker::publish_batch(const std::string& queue,
                                          std::vector<mq::Message> msgs) {
  const auto started = Clock::now();
  Frame req;
  req.op = Op::kPublishBatch;
  req.queue = queue;
  put_u32(req.body, static_cast<std::uint32_t>(msgs.size()));
  if (codec_.load(std::memory_order_acquire) == kCodecBinary) {
    req.flags |= kFlagBinary;
    for (const mq::Message& msg : msgs) append_message_binary(req.body, msg);
  } else {
    for (const mq::Message& msg : msgs) append_message(req.body, msg);
  }
  const Frame resp = roundtrip_retry(req, "publish_batch");
  observe_op(publish_batch_us_, started);
  return resp.arg;
}

std::optional<mq::Delivery> RemoteBroker::get(const std::string& queue,
                                              double timeout_s) {
  const auto started = Clock::now();
  if (!wait_connected(timeout_s)) return std::nullopt;
  Frame req;
  req.op = Op::kGet;
  req.queue = queue;
  put_u64(req.body, static_cast<std::uint64_t>(timeout_s * 1e6));
  std::string why;
  std::optional<Frame> resp =
      roundtrip(req, timeout_s + config_.response_grace_s, &why);
  observe_op(get_us_, started);
  if (!resp.has_value() || resp->op != Op::kDelivery) return std::nullopt;
  std::size_t off = 0;
  mq::Delivery delivery;
  delivery.delivery_tag = resp->arg;
  // kFlagBinary is per frame, so deliveries decode correctly even across
  // the hello handshake race on a fresh connection.
  delivery.message = (resp->flags & kFlagBinary) != 0
                         ? decode_message_binary(resp->body, off)
                         : decode_message(resp->body, off);
  return delivery;
}

std::vector<mq::Delivery> RemoteBroker::get_batch(const std::string& queue,
                                                  std::size_t max_n,
                                                  double timeout_s) {
  const auto started = Clock::now();
  if (max_n == 0 || !wait_connected(timeout_s)) return {};
  Frame req;
  req.op = Op::kGetBatch;
  req.queue = queue;
  req.arg = max_n;
  put_u64(req.body, static_cast<std::uint64_t>(timeout_s * 1e6));
  std::string why;
  std::optional<Frame> resp =
      roundtrip(req, timeout_s + config_.response_grace_s, &why);
  observe_op(get_batch_us_, started);
  if (!resp.has_value() || resp->op != Op::kDeliveryBatch) return {};
  std::size_t off = 0;
  const bool binary = (resp->flags & kFlagBinary) != 0;
  const std::uint32_t count = get_u32(resp->body, off);
  std::vector<mq::Delivery> deliveries;
  deliveries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    mq::Delivery delivery;
    delivery.delivery_tag = get_u64(resp->body, off);
    delivery.message = binary ? decode_message_binary(resp->body, off)
                              : decode_message(resp->body, off);
    deliveries.push_back(std::move(delivery));
  }
  return deliveries;
}

bool RemoteBroker::ack(const std::string& queue, std::uint64_t delivery_tag) {
  // Single-shot by design: if the connection died, the server already
  // requeued this delivery, so "not acked" is the truthful answer and the
  // message will be redelivered.
  const auto started = Clock::now();
  if (!wait_connected(1.0)) return false;
  Frame req;
  req.op = Op::kAck;
  req.queue = queue;
  req.arg = delivery_tag;
  std::string why;
  std::optional<Frame> resp =
      roundtrip(req, config_.response_grace_s, &why);
  observe_op(ack_us_, started);
  return resp.has_value() && (resp->flags & kFlagTrue) != 0;
}

bool RemoteBroker::nack(const std::string& queue, std::uint64_t delivery_tag,
                        bool requeue) {
  if (!wait_connected(1.0)) return false;
  Frame req;
  req.op = Op::kNack;
  req.queue = queue;
  req.arg = delivery_tag;
  if (requeue) req.flags |= kFlagRequeue;
  std::string why;
  std::optional<Frame> resp =
      roundtrip(req, config_.response_grace_s, &why);
  return resp.has_value() && (resp->flags & kFlagTrue) != 0;
}

std::size_t RemoteBroker::ack_batch(
    const std::string& queue,
    const std::vector<std::uint64_t>& delivery_tags) {
  const auto started = Clock::now();
  if (delivery_tags.empty() || !wait_connected(1.0)) return 0;
  Frame req;
  req.op = Op::kAckBatch;
  req.queue = queue;
  put_u32(req.body, static_cast<std::uint32_t>(delivery_tags.size()));
  for (std::uint64_t tag : delivery_tags) put_u64(req.body, tag);
  std::string why;
  std::optional<Frame> resp =
      roundtrip(req, config_.response_grace_s, &why);
  observe_op(ack_batch_us_, started);
  return resp.has_value() ? static_cast<std::size_t>(resp->arg) : 0;
}

std::size_t RemoteBroker::requeue_unacked(const std::string& queue) {
  // Best effort: a dead connection already requeued everything this
  // client held (the server's disconnect path), so 0 is not a loss.
  if (!wait_connected(1.0)) return 0;
  Frame req;
  req.op = Op::kRequeue;
  req.queue = queue;
  std::string why;
  std::optional<Frame> resp =
      roundtrip(req, config_.response_grace_s, &why);
  return resp.has_value() ? static_cast<std::size_t>(resp->arg) : 0;
}

std::vector<mq::QueueDepth> RemoteBroker::depth_snapshot() const {
  if (!connected_.load(std::memory_order_acquire)) return {};
  Frame req;
  req.op = Op::kDepth;
  std::string why;
  try {
    std::optional<Frame> resp =
        roundtrip(req, config_.response_grace_s, &why);
    if (!resp.has_value() || resp->op != Op::kDepthReport) return {};
    std::size_t off = 0;
    const std::uint32_t count = get_u32(resp->body, off);
    std::vector<mq::QueueDepth> depths;
    depths.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      mq::QueueDepth depth;
      const std::uint16_t name_len = get_u16(resp->body, off);
      if (resp->body.size() - off < name_len) return depths;
      depth.queue.assign(resp->body, off, name_len);
      off += name_len;
      depth.ready = static_cast<std::size_t>(get_u64(resp->body, off));
      depth.unacked = static_cast<std::size_t>(get_u64(resp->body, off));
      depths.push_back(std::move(depth));
    }
    return depths;
  } catch (const MqError&) {
    return {};
  }
}

void RemoteBroker::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  if (connected_.load(std::memory_order_acquire)) {
    Frame bye;
    bye.op = Op::kClose;
    bye.corr = 0;
    send_frame(bye);  // best effort: lets the daemon requeue eagerly
  }
  conn_cv_.notify_all();
  {
    // Wake the io thread's poll immediately.
    std::lock_guard<std::mutex> lk(write_mutex_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lk(write_mutex_);
    if (fd_ >= 0) {
      close_fd(fd_);
      fd_ = -1;
    }
  }
  connected_.store(false, std::memory_order_release);
  fail_pending("net: broker handle closed");
}

std::string RemoteBroker::health() const {
  std::lock_guard<std::mutex> lk(health_mutex_);
  return last_health_;
}

}  // namespace entk::net
