// RemoteBroker: a BrokerHandle speaking the framed wire protocol to an
// entk_broker daemon.
//
// One multiplexed TCP connection carries every component's traffic: caller
// threads assign a correlation id, register a pending slot, write the
// request frame (serialized by a write mutex) and block on the slot; a
// single io thread reads response frames and completes slots by
// correlation id. Long-poll gets therefore don't starve each other — the
// server parks them and the client just waits on its own slot.
//
// The io thread also owns liveness: it sends heartbeat frames (corr = 0)
// every heartbeat_interval_s, treats a missing echo as a dead connection,
// and runs the reconnect loop with exponential backoff. On reconnect it
// re-declares every queue this client ever declared (fire-and-forget,
// before the handle is marked connected, so TCP ordering puts the
// declares ahead of any retried operation).
//
// Failure semantics per operation class:
//   * publish / publish_batch / declare / has_queue — retried across
//     reconnects until retry_deadline_s, then NetError. A retry after a
//     lost response may duplicate a publish: at-least-once, the same
//     contract redelivery already imposes on consumers.
//   * get / get_batch — single-shot: empty on a dead connection (every
//     component polls in a loop anyway).
//   * ack / ack_batch / nack — single-shot: failure means the broker will
//     redeliver (it requeued our unacked messages when the connection
//     died), which is exactly what un-acked means.
//   * depth_snapshot — best-effort, {} when disconnected.
//   * kError responses (semantic failures like an unknown queue) rethrow
//     as MqError immediately, never retried.
//
// health() reports the *server's* broker health (sticky journal errors
// forwarded on heartbeat echoes) — not transient connection loss, which
// the reconnect loop owns; a restarting daemon must not read as a fatal
// condition to the Supervisor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/mq/broker_handle.hpp"
#include "src/net/frame.hpp"
#include "src/obs/metrics.hpp"

namespace entk::net {

struct RemoteBrokerConfig {
  std::string endpoint;            ///< "host:port"
  double connect_timeout_s = 2.0;  ///< per connect attempt
  double initial_backoff_s = 0.05;
  double max_backoff_s = 1.0;
  double retry_deadline_s = 30.0;  ///< bound on retried operations
  double heartbeat_interval_s = 0.25;
  double response_grace_s = 5.0;   ///< response wait beyond the op timeout
  /// Offer the binary typed-value codec via kHello on every (re)connect.
  /// Publishes switch to binary only after the server's hello ack, so a
  /// pre-hello daemon keeps this client on the text codec transparently.
  bool binary_codec = true;
  /// Tenant namespace this client binds via kHello (the hello body carries
  /// the id on every (re)connect). Empty = the default tenant, i.e. exact
  /// tenant-less wire behavior against every daemon generation. A
  /// tenant-enabled daemon rejects an unknown/invalid id with kError and
  /// drops the connection — the retried operation then fails with MqError
  /// instead of silently running in the wrong namespace.
  std::string tenant;
  /// When non-empty, announce this connection as an execution worker
  /// (kWorkerHello on every (re)connect): the server then applies its
  /// worker liveness TTL, dropping the connection — and requeuing its
  /// unacked deliveries — if the worker falls silent. A pre-worker daemon
  /// answers kError, which is ignored.
  std::string worker_id;
};

class RemoteBroker : public mq::BrokerHandle {
 public:
  /// Dials the endpoint synchronously (one attempt, connect_timeout_s) so
  /// a wrong address fails fast; throws NetError when unreachable or
  /// malformed. Reconnection after that is automatic and backgrounded.
  explicit RemoteBroker(RemoteBrokerConfig config);
  ~RemoteBroker() override;

  RemoteBroker(const RemoteBroker&) = delete;
  RemoteBroker& operator=(const RemoteBroker&) = delete;

  /// Attach metrics: frame/byte counters, reconnect counter and per-op
  /// round-trip histograms under "net.client.*". Attach before use.
  void set_metrics(obs::MetricsPtr metrics);

  // --- BrokerHandle --------------------------------------------------------
  /// Remote declare; returns nullptr (the queue lives in the daemon).
  std::shared_ptr<mq::Queue> declare_queue(const std::string& queue,
                                           mq::QueueOptions options = {}) override;
  bool has_queue(const std::string& queue) const override;
  std::uint64_t publish(const std::string& queue, mq::Message msg) override;
  std::uint64_t publish_batch(const std::string& queue,
                              std::vector<mq::Message> msgs) override;
  std::optional<mq::Delivery> get(const std::string& queue,
                                  double timeout_s) override;
  std::vector<mq::Delivery> get_batch(const std::string& queue,
                                      std::size_t max_n,
                                      double timeout_s) override;
  bool ack(const std::string& queue, std::uint64_t delivery_tag) override;
  bool nack(const std::string& queue, std::uint64_t delivery_tag,
            bool requeue) override;
  std::size_t ack_batch(
      const std::string& queue,
      const std::vector<std::uint64_t>& delivery_tags) override;
  std::size_t requeue_unacked(const std::string& queue) override;
  std::vector<mq::QueueDepth> depth_snapshot() const override;
  void close() override;
  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }
  std::string health() const override;

  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// kErrQuota responses absorbed by the retry loop (per-tenant
  /// backpressure events; each one cost a retry-after sleep).
  std::uint64_t quota_throttled() const {
    return quota_throttled_.load(std::memory_order_relaxed);
  }
  /// Codec this connection negotiated (kCodecText until the hello ack
  /// lands; resets on every disconnect).
  std::uint64_t negotiated_codec() const {
    return codec_.load(std::memory_order_acquire);
  }

 private:
  struct PendingSlot {
    bool done = false;
    bool failed = false;
    Frame response;
    std::string error;
  };

  void io_loop();
  /// Fire-and-forget kHello carrying the codec offer and the tenant id
  /// (run on every (re)connect; skipped when neither is configured, i.e.
  /// a text-codec default-tenant client stays byte-identical to PR 5).
  void send_hello();
  /// Fire-and-forget kWorkerHello when config_.worker_id is set (run on
  /// every (re)connect, like the codec hello).
  void announce_worker();
  /// Read/dispatch/heartbeat until the connection dies or close() runs.
  void serve_connection(int fd);
  void dispatch(Frame&& resp);
  void fail_pending(const std::string& why);
  /// Encode + write one frame on the live connection. Returns false when
  /// there is no live connection or the write fails (the io thread then
  /// tears the connection down).
  bool send_frame(const Frame& frame) const;
  /// Block until connected, close() or the timeout. Returns connected().
  bool wait_connected(double timeout_s) const;
  /// Send `req` and wait up to `wait_s` for its response. Returns the
  /// response frame, or nullopt on a transport failure (error text in
  /// *why). Throws MqError when the server answered kError.
  std::optional<Frame> roundtrip(Frame req, double wait_s,
                                 std::string* why) const;
  /// roundtrip with reconnect-and-retry until retry_deadline_s; NetError
  /// after the deadline.
  Frame roundtrip_retry(const Frame& req, const char* op_name) const;
  void observe_op(obs::Histogram* h,
                  std::chrono::steady_clock::time_point started) const;

  const RemoteBrokerConfig config_;
  std::string host_;
  std::uint16_t port_ = 0;

  // Connection state. fd_ is guarded by write_mutex_ (senders write on it;
  // the io thread installs/closes it under the same mutex).
  mutable std::mutex write_mutex_;
  int fd_ = -1;
  std::atomic<bool> connected_{false};
  std::atomic<bool> closed_{false};
  /// Negotiated wire codec; written by the io thread (hello ack /
  /// disconnect), read by publisher threads deciding what to emit.
  std::atomic<std::uint64_t> codec_{kCodecText};
  mutable std::mutex conn_mutex_;
  mutable std::condition_variable conn_cv_;

  // Request/response multiplexing.
  mutable std::mutex pending_mutex_;
  mutable std::condition_variable pending_cv_;
  mutable std::map<std::uint64_t, PendingSlot> pending_;
  mutable std::atomic<std::uint64_t> next_corr_{1};

  // Queues declared through this handle, re-declared after reconnect.
  mutable std::mutex declared_mutex_;
  std::map<std::string, bool> declared_;  // name -> durable requested

  // Server-reported health, refreshed by heartbeat echoes.
  mutable std::mutex health_mutex_;
  std::string last_health_;
  std::atomic<std::int64_t> last_pong_us_{0};

  std::atomic<std::uint64_t> reconnects_{0};
  /// Mutable: throttles are absorbed inside const request paths
  /// (publish goes through the const roundtrip_retry).
  mutable std::atomic<std::uint64_t> quota_throttled_{0};
  std::thread io_thread_;

  // Pre-resolved "net.client.*" handles; all null when metrics are off.
  obs::MetricsPtr metrics_;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* reconnects_metric_ = nullptr;
  obs::Counter* quota_throttled_metric_ = nullptr;
  obs::Histogram* publish_us_ = nullptr;
  obs::Histogram* publish_batch_us_ = nullptr;
  obs::Histogram* get_us_ = nullptr;
  obs::Histogram* get_batch_us_ = nullptr;
  obs::Histogram* ack_us_ = nullptr;
  obs::Histogram* ack_batch_us_ = nullptr;
};

}  // namespace entk::net
