// Thin POSIX TCP helpers shared by the broker server, the RemoteBroker
// client and the loopback bench. Error reporting is by NetError (listen
// setup) or by sentinel return (connect attempts, which the reconnect
// loop retries); SIGPIPE is avoided with MSG_NOSIGNAL at the send sites.
#pragma once

#include <cstdint>
#include <string>

namespace entk::net {

/// Parse "host:port". Returns false on a malformed endpoint.
bool split_endpoint(const std::string& endpoint, std::string& host,
                    std::uint16_t& port);

/// Bind + listen on `address:port` (port 0 = ephemeral; SO_REUSEADDR set
/// so a restarted daemon rebinds immediately). Returns the listening fd.
/// Throws NetError when the socket cannot be bound.
int listen_tcp(const std::string& address, std::uint16_t port);

/// The locally bound port of a socket (resolves an ephemeral bind).
std::uint16_t local_port(int fd);

/// Connect to host:port with a bounded wait (non-blocking connect + poll).
/// Returns the connected fd, or -1 on failure/timeout (reconnect loops
/// treat that as one failed attempt).
int connect_tcp(const std::string& host, std::uint16_t port,
                double timeout_s);

void set_nonblocking(int fd, bool on);
void set_nodelay(int fd);
void close_fd(int fd);

}  // namespace entk::net
