#include "src/net/broker_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "src/common/log.hpp"
#include "src/net/socket.hpp"

namespace entk::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kIdlePollMs = 20;
// Buffers handed to one sendmsg. Linux caps msg_iovlen at IOV_MAX (1024);
// 256 covers a 128-frame response burst (header + body per frame).
constexpr std::size_t kMaxWriteIov = 256;

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

BrokerServer::BrokerServer(mq::BrokerPtr broker, BrokerServerConfig config,
                           ProfilerPtr profiler)
    : Component("broker_server", std::move(profiler)),
      broker_(std::move(broker)),
      config_(std::move(config)) {
  // No registry supplied: a private auto-registering one with no quotas,
  // so a pre-tenancy deployment behaves exactly as before.
  tenants_ = config_.tenants != nullptr
                 ? config_.tenants
                 : std::make_shared<mq::TenantRegistry>();
  default_tenant_ = tenants_->bind("");
  listen_fd_ = listen_tcp(config_.bind_address, config_.port);
  set_nonblocking(listen_fd_, true);
  port_ = local_port(listen_fd_);
  if (::pipe(wake_pipe_) != 0) {
    close_fd(listen_fd_);
    listen_fd_ = -1;
    throw NetError("net: wake pipe: " + std::string(strerror(errno)));
  }
  set_nonblocking(wake_pipe_[0], true);
  set_nonblocking(wake_pipe_[1], true);
}

BrokerServer::~BrokerServer() {
  stop();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  for (auto& [fd, conn] : conns_) close_fd(fd);
  conns_.clear();
}

std::string BrokerServer::endpoint() const {
  return config_.bind_address + ":" + std::to_string(port_);
}

void BrokerServer::set_metrics(obs::MetricsPtr metrics) {
  Component::set_metrics(metrics);
  net_metrics_ = std::move(metrics);
  if (net_metrics_ == nullptr) {
    frames_in_ = frames_out_ = bytes_in_ = bytes_out_ = nullptr;
    requeued_on_disconnect_ = nullptr;
    quota_rejections_metric_ = rejected_at_capacity_metric_ = nullptr;
    connections_ = nullptr;
    op_us_ = nullptr;
    tenants_->set_metrics(nullptr);
    return;
  }
  frames_in_ = &net_metrics_->counter("net.server.frames_in");
  frames_out_ = &net_metrics_->counter("net.server.frames_out");
  bytes_in_ = &net_metrics_->counter("net.server.bytes_in");
  bytes_out_ = &net_metrics_->counter("net.server.bytes_out");
  requeued_on_disconnect_ =
      &net_metrics_->counter("net.server.requeued_on_disconnect");
  quota_rejections_metric_ =
      &net_metrics_->counter("net.server.quota_rejections");
  rejected_at_capacity_metric_ =
      &net_metrics_->counter("net.server.rejected_at_capacity");
  connections_ = &net_metrics_->gauge("net.server.connections");
  op_us_ = &net_metrics_->histogram("net.server.op_us");
  // "tenant.<id>.*" counters/gauges for every current and future tenant.
  tenants_->set_metrics(net_metrics_);
}

void BrokerServer::on_start() {
  if (listen_fd_ < 0) {
    // Restart after a stop/failure: rebind the same port (SO_REUSEADDR
    // makes the rebind immediate).
    listen_fd_ = listen_tcp(config_.bind_address, port_);
    set_nonblocking(listen_fd_, true);
  }
  add_worker("poll", [this] { poll_loop(); });
}

void BrokerServer::on_stop_requested() {
  // Kick the worker out of poll(2) immediately.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    (void)::write(wake_pipe_[1], &byte, 1);
  }
}

void BrokerServer::on_stopped() {
  close_fd(listen_fd_);
  listen_fd_ = -1;
}

void BrokerServer::poll_loop() {
  std::vector<pollfd> pfds;
  while (!stop_requested()) {
    beat();

    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (conn.wq_bytes > 0) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
    }

    int timeout_ms = kIdlePollMs;
    if (!parked_.empty()) {
      const auto now = Clock::now();
      for (const ParkedGet& p : parked_) {
        const auto wait_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(p.deadline -
                                                                  now)
                .count();
        timeout_ms = std::clamp<int>(static_cast<int>(wait_ms), 1, timeout_ms);
      }
    }

    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw NetError("net: poll(): " + std::string(strerror(errno)));
    }

    if (pfds[0].revents & POLLIN) accept_clients();
    if (pfds[1].revents & POLLIN) {
      char sink[64];
      while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }

    // Input pass in two phases: read every ready socket first, then
    // process the buffered frames — fair-scheduled across tenants. With
    // per-connection processing a flooding client's whole burst executed
    // before the next fd was even read; splitting the phases gives the
    // deficit-round-robin scheduler all tenants' frames to arbitrate.
    std::vector<int> dead;
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      auto it = conns_.find(pfds[i].fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        dead.push_back(pfds[i].fd);
        continue;
      }
      if ((pfds[i].revents & POLLIN) && !read_input(conn)) {
        dead.push_back(pfds[i].fd);
      }
    }
    process_frames_fair(dead);
    for (auto& [fd, conn] : conns_) {
      if (std::find(dead.begin(), dead.end(), fd) != dead.end()) continue;
      bool alive = true;
      if (conn.wq_bytes > 0) alive = flush_writes(conn);
      if (alive && conn.closing && conn.wq_bytes == 0) alive = false;
      if (!alive) dead.push_back(fd);
    }
    for (int fd : dead) drop_conn(fd, /*requeue_unacked=*/true);

    expire_workers();

    // Every publish entered through this thread, so parked long-polls can
    // only be satisfiable now (or expired).
    service_parked();
  }

  drain_connections();
}

void BrokerServer::accept_clients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll pass
    if (config_.max_connections > 0 &&
        conns_.size() >= config_.max_connections) {
      // Refuse cleanly: a best-effort error frame tells the client *why*
      // before the close, instead of letting the fd table grow without
      // bound until accept() itself starts failing with EMFILE.
      Frame resp;
      resp.op = Op::kError;
      resp.body = "net: server at connection capacity (" +
                  std::to_string(config_.max_connections) + ")";
      const std::string encoded = encode_frame(resp);
      (void)::send(fd, encoded.data(), encoded.size(), MSG_NOSIGNAL);
      close_fd(fd);
      rejected_at_capacity_.fetch_add(1, std::memory_order_relaxed);
      if (rejected_at_capacity_metric_ != nullptr) {
        rejected_at_capacity_metric_->add();
      }
      ENTK_WARN("broker_server")
          << "refused connection: at capacity (" << config_.max_connections
          << ")";
      continue;
    }
    set_nonblocking(fd, true);
    set_nodelay(fd);
    Conn conn;
    conn.fd = fd;
    conn.last_activity = Clock::now();
    conn.tenant = default_tenant_;
    conns_.emplace(fd, std::move(conn));
    conn_count_.store(conns_.size(), std::memory_order_relaxed);
    if (connections_ != nullptr) {
      connections_->set(static_cast<std::int64_t>(conns_.size()));
    }
  }
}

bool BrokerServer::read_input(Conn& conn) {
  // Scatter read: the primary iovec lands directly in the connection's
  // read buffer (no bounce copy); the stack spill vector catches bursts
  // bigger than one chunk in the same syscall. A read that fills neither
  // completely means the socket is drained — skip the extra syscall the
  // old loop-until-EAGAIN paid.
  char spill[kReadChunk];
  while (true) {
    const std::size_t used = conn.rbuf.size();
    conn.rbuf.resize(used + kReadChunk);
    iovec iov[2];
    iov[0] = {conn.rbuf.data() + used, kReadChunk};
    iov[1] = {spill, sizeof spill};
    const ssize_t n = ::readv(conn.fd, iov, 2);
    if (n > 0) {
      const auto got = static_cast<std::size_t>(n);
      if (got <= kReadChunk) {
        conn.rbuf.resize(used + got);
      } else {
        conn.rbuf.append(spill, got - kReadChunk);
      }
      if (bytes_in_ != nullptr) bytes_in_->add(got);
      conn.last_activity = Clock::now();
      if (got < kReadChunk + sizeof spill) return true;  // socket drained
      continue;
    }
    conn.rbuf.resize(used);
    if (n == 0) return false;  // orderly shutdown from the peer
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool BrokerServer::process_one_frame(Conn& conn, std::size_t* cost) {
  const std::size_t before = conn.rbuf_off;
  std::optional<Frame> frame = decode_frame(conn.rbuf, conn.rbuf_off);
  if (!frame.has_value()) return false;
  if (frames_in_ != nullptr) frames_in_->add();
  if (cost != nullptr) *cost = conn.rbuf_off - before;
  // A closing connection's remaining frames are consumed but not served:
  // after a refused hello (invalid/unknown tenant), requests the client
  // pipelined behind the hello must NOT execute in the default tenant —
  // that would be exactly the silent misaddressing the refusal prevents.
  // (After kClose this is equally right: the client said goodbye.)
  if (!conn.closing) handle_frame(conn, std::move(*frame));
  return true;
}

void BrokerServer::process_frames(Conn& conn) {
  while (process_one_frame(conn, nullptr)) {
  }
  if (conn.rbuf_off > 0) {
    conn.rbuf.erase(0, conn.rbuf_off);
    conn.rbuf_off = 0;
  }
}

void BrokerServer::process_frames_fair(std::vector<int>& dead) {
  // Group connections holding buffered input by bound tenant.
  struct Group {
    std::vector<Conn*> conns;
    std::size_t next = 0;       ///< round-robin cursor within the tenant
    std::int64_t deficit = 0;   ///< DRR byte credit
  };
  std::map<std::string, Group> groups;
  for (auto& [fd, conn] : conns_) {
    if (conn.rbuf.size() <= conn.rbuf_off) continue;
    if (std::find(dead.begin(), dead.end(), fd) != dead.end()) continue;
    groups[conn.tenant != nullptr ? conn.tenant->id() : std::string()]
        .conns.push_back(&conn);
  }
  const auto compact = [](Conn& conn) {
    if (conn.rbuf_off > 0) {
      conn.rbuf.erase(0, conn.rbuf_off);
      conn.rbuf_off = 0;
    }
  };
  if (groups.size() <= 1) {
    // Zero or one tenant with input: plain FIFO drain, no scheduling
    // overhead — the single-ensemble hot path is untouched.
    for (auto& [id, group] : groups) {
      (void)id;
      for (Conn* conn : group.conns) {
        try {
          while (process_one_frame(*conn, nullptr)) {
          }
        } catch (const MqError&) {
          // Framing violation: the stream is unrecoverable — drop the
          // client, requeue what it held.
          dead.push_back(conn->fd);
        }
        compact(*conn);
      }
    }
    return;
  }
  // Deficit round robin across tenants, costed in wire bytes: each round
  // every tenant earns one quantum of credit and spends it on its own
  // frames (round-robin over its connections); a tenant whose burst
  // outruns its credit waits for the next round while the others drain.
  // One oversized frame may overdraw the credit (classic DRR) — the debt
  // carries into later rounds, so amortized fairness holds.
  const auto quantum =
      static_cast<std::int64_t>(std::max<std::size_t>(
          config_.fair_quantum_bytes, 1));
  std::vector<Conn*> violators;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [id, group] : groups) {
      (void)id;
      group.deficit += quantum;
      bool any = true;
      while (group.deficit > 0 && any) {
        any = false;
        for (std::size_t i = 0;
             i < group.conns.size() && group.deficit > 0; ++i) {
          Conn* conn = group.conns[group.next % group.conns.size()];
          ++group.next;
          if (std::find(violators.begin(), violators.end(), conn) !=
              violators.end()) {
            continue;
          }
          std::size_t cost = 0;
          bool processed = false;
          try {
            processed = process_one_frame(*conn, &cost);
          } catch (const MqError&) {
            dead.push_back(conn->fd);
            violators.push_back(conn);
            continue;
          }
          if (processed) {
            group.deficit -= static_cast<std::int64_t>(cost);
            any = true;
            progress = true;
          }
        }
      }
      // An idle tenant banks no credit: fairness bounds bursts, it does
      // not reward past silence.
      if (!any) group.deficit = 0;
    }
  }
  for (auto& [id, group] : groups) {
    (void)id;
    for (Conn* conn : group.conns) compact(*conn);
  }
}

void BrokerServer::handle_frame(Conn& conn, Frame&& req) {
  const auto started = Clock::now();
  // Namespace integrity: "t.<id>/" is the daemon's reserved qualification
  // prefix. A client-visible name that already parses as tenant-qualified
  // would address another tenant's physical queues directly — from the
  // default tenant it bypasses namespacing AND every quota (admit_publish
  // bounds only the connection's own tenant) — so it is rejected before
  // qualification, on every connection including the default tenant.
  if (!req.queue.empty() && !mq::tenant_of_queue(req.queue).empty()) {
    Frame resp;
    resp.op = Op::kError;
    resp.corr = req.corr;
    resp.body = "net: queue name '" + req.queue +
                "' is reserved (tenant-qualified names cannot be "
                "addressed directly)";
    respond(conn, std::move(resp));
    record_op_us(started);
    return;
  }
  // Transparent namespacing: a tenant-bound connection's queue names are
  // qualified into its namespace before they touch the broker, so two
  // ensembles both using "q.pending" land on disjoint physical queues.
  // The default tenant's prefix is empty — byte-identical legacy behavior.
  if (conn.tenant != nullptr && !req.queue.empty() &&
      !conn.tenant->queue_prefix().empty()) {
    req.queue = conn.tenant->queue_prefix() + req.queue;
  }
  Frame resp;
  resp.op = Op::kOk;
  resp.corr = req.corr;
  try {
    switch (req.op) {
      case Op::kDeclare: {
        // Idempotent across the wire: an existing queue satisfies any
        // re-declare (clients re-declare blindly after reconnecting, and
        // may disagree with the daemon about durability). Durability is
        // the daemon's decision — it is on whichever side owns a journal.
        if (!broker_->has_queue(req.queue)) {
          mq::QueueOptions options;
          options.durable = !broker_->journal_path().empty();
          broker_->declare_queue(req.queue, options);
        }
        break;
      }
      case Op::kHasQueue:
        if (broker_->has_queue(req.queue)) resp.flags |= kFlagTrue;
        break;
      case Op::kPublish: {
        if (!admit_publish(conn, req.corr, 1, req.body.size())) {
          record_op_us(started);
          return;  // admit_publish answered kErrQuota
        }
        std::size_t off = 0;
        // kFlagBinary is per frame: the decoder never guesses the codec.
        mq::Message msg = (req.flags & kFlagBinary) != 0
                              ? decode_message_binary(req.body, off)
                              : decode_message(req.body, off);
        resp.arg = broker_->publish(req.queue, std::move(msg));
        conn.tenant->count_published(1);
        break;
      }
      case Op::kPublishBatch: {
        std::size_t off = 0;
        const bool binary = (req.flags & kFlagBinary) != 0;
        const std::uint32_t count = get_u32(req.body, off);
        // Admission happens before any message decodes: a throttled batch
        // costs the server a header read, not a full deserialization.
        if (!admit_publish(conn, req.corr, count, req.body.size())) {
          record_op_us(started);
          return;
        }
        std::vector<mq::Message> msgs;
        msgs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          msgs.push_back(binary ? decode_message_binary(req.body, off)
                                : decode_message(req.body, off));
        }
        resp.arg = broker_->publish_batch(req.queue, std::move(msgs));
        conn.tenant->count_published(count);
        break;
      }
      case Op::kGet:
      case Op::kGetBatch: {
        std::size_t off = 0;
        const std::uint64_t timeout_us = get_u64(req.body, off);
        const bool batch = req.op == Op::kGetBatch;
        const std::size_t max_n =
            batch ? static_cast<std::size_t>(req.arg) : 1;
        if (try_answer_get(conn, req.corr, req.queue, max_n, batch)) {
          record_op_us(started);
          return;  // try_answer_get sent the response
        }
        if (timeout_us > 0) {
          ParkedGet parked;
          parked.fd = conn.fd;
          parked.corr = req.corr;
          parked.queue = req.queue;
          parked.max_n = max_n;
          parked.batch = batch;
          parked.deadline =
              Clock::now() + std::chrono::microseconds(timeout_us);
          parked_.push_back(std::move(parked));
          record_op_us(started);
          return;  // response deferred until satisfied or expired
        }
        resp.flags |= kFlagEmpty;
        break;
      }
      case Op::kAck: {
        if (broker_->ack(req.queue, req.arg)) resp.flags |= kFlagTrue;
        auto& unacked = conn.unacked;
        unacked.erase(std::remove(unacked.begin(), unacked.end(),
                                  std::make_pair(req.queue, req.arg)),
                      unacked.end());
        break;
      }
      case Op::kAckBatch: {
        std::size_t off = 0;
        const std::uint32_t count = get_u32(req.body, off);
        std::vector<std::uint64_t> tags;
        tags.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          tags.push_back(get_u64(req.body, off));
        }
        resp.arg = broker_->ack_batch(req.queue, tags);
        auto& unacked = conn.unacked;
        for (std::uint64_t tag : tags) {
          unacked.erase(std::remove(unacked.begin(), unacked.end(),
                                    std::make_pair(req.queue, tag)),
                        unacked.end());
        }
        break;
      }
      case Op::kNack: {
        const bool requeue = (req.flags & kFlagRequeue) != 0;
        if (broker_->nack(req.queue, req.arg, requeue)) {
          resp.flags |= kFlagTrue;
        }
        auto& unacked = conn.unacked;
        unacked.erase(std::remove(unacked.begin(), unacked.end(),
                                  std::make_pair(req.queue, req.arg)),
                      unacked.end());
        break;
      }
      case Op::kRequeue: {
        resp.arg = broker_->requeue_unacked(req.queue);
        // Those deliveries are back in the queue: no connection should
        // requeue them a second time on disconnect.
        forget_unacked(req.queue);
        break;
      }
      case Op::kDepth: {
        // Each tenant sees its own namespace, with client-visible (un-
        // qualified) names. The default tenant sees the unqualified queues
        // only — a tenant-less client on a shared daemon is not shown
        // other ensembles' backlogs.
        std::vector<mq::QueueDepth> depths;
        const std::string prefix =
            conn.tenant != nullptr ? conn.tenant->queue_prefix()
                                   : std::string();
        if (prefix.empty()) {
          for (mq::QueueDepth& d : broker_->depth_snapshot()) {
            if (mq::tenant_of_queue(d.queue).empty()) {
              depths.push_back(std::move(d));
            }
          }
        } else {
          depths = broker_->depth_snapshot(prefix);
          for (mq::QueueDepth& d : depths) {
            d.queue.erase(0, prefix.size());
          }
        }
        resp.op = Op::kDepthReport;
        put_u32(resp.body, static_cast<std::uint32_t>(depths.size()));
        for (const mq::QueueDepth& d : depths) {
          put_u16(resp.body, static_cast<std::uint16_t>(d.queue.size()));
          resp.body.append(d.queue);
          put_u64(resp.body, d.ready);
          put_u64(resp.body, d.unacked);
        }
        break;
      }
      case Op::kHeartbeat:
        resp.op = Op::kHeartbeat;
        resp.body = broker_->health();
        break;
      case Op::kHello: {
        // Codec negotiation: meet the client at the highest codec both
        // sides speak. Takes effect for every later delivery this
        // connection sends; publishes are already self-describing.
        conn.codec = std::min<std::uint64_t>(req.arg, kCodecBinary);
        // Tenant binding: the hello body names the tenant (empty = the
        // default — exactly what pre-tenancy clients send). Re-hello with
        // the same id is idempotent (reconnect paths re-send); naming a
        // *different* id is an error and leaves the binding unchanged.
        const std::string& tenant_id = req.body;
        if (conn.hello_seen && conn.tenant != nullptr &&
            tenant_id != conn.tenant->id()) {
          resp.op = Op::kError;
          resp.body = "net: connection already bound to tenant '" +
                      conn.tenant->id() + "'; cannot rebind to '" +
                      tenant_id + "'";
          break;
        }
        std::shared_ptr<mq::Tenant> tenant = tenants_->bind(tenant_id);
        if (tenant == nullptr) {
          // Invalid id, or unknown with auto-register off. Refuse AND
          // drop: serving this client as the default tenant would silently
          // put a misaddressed ensemble in the wrong namespace.
          resp.op = Op::kError;
          resp.body = "net: unknown or invalid tenant id '" + tenant_id +
                      "'";
          conn.closing = true;  // error frame flushes, then the drop
          break;
        }
        conn.tenant = std::move(tenant);
        conn.hello_seen = true;
        if (!conn.tenant->id().empty()) {
          ENTK_INFO("broker_server")
              << "connection fd=" << conn.fd << " bound to tenant '"
              << conn.tenant->id() << "'";
        }
        resp.op = Op::kHello;
        resp.arg = conn.codec;
        break;
      }
      case Op::kWorkerHello: {
        conn.worker_id = req.body;
        ENTK_INFO("broker_server")
            << "connection fd=" << conn.fd << " identified as worker '"
            << conn.worker_id << "'";
        break;
      }
      case Op::kClose: {
        for (const auto& [queue, tag] : conn.unacked) {
          broker_->nack(queue, tag, /*requeue=*/true);
        }
        conn.unacked.clear();
        conn.closing = true;
        break;
      }
      default:
        resp.op = Op::kError;
        resp.body = "net: unknown op " +
                    std::to_string(static_cast<int>(req.op));
        break;
    }
  } catch (const MqError& e) {
    resp = Frame{};
    resp.op = Op::kError;
    resp.corr = req.corr;
    resp.body = e.what();
  }
  respond(conn, std::move(resp));
  record_op_us(started);
}

bool BrokerServer::admit_publish(Conn& conn, std::uint64_t corr,
                                 std::size_t n, std::size_t incoming_bytes) {
  mq::Tenant* tenant = conn.tenant.get();
  if (tenant == nullptr) return true;
  const mq::TenantQuota& quota = tenant->quota();
  std::string reason;
  double retry_after_s = 0.0;
  // Backlog quotas first (exact, via the prefix-filtered snapshot), THEN
  // the rate bucket — a backlog-blocked publish must not burn rate tokens
  // it never used.
  if (quota.max_queue_depth > 0 || quota.max_bytes > 0) {
    std::size_t depth = 0, bytes = 0;
    for (const mq::QueueDepth& d :
         broker_->depth_snapshot(tenant->queue_prefix())) {
      depth += d.ready + d.unacked;
      bytes += d.bytes;
    }
    tenant->observe_backlog(depth, bytes);
    if (quota.max_queue_depth > 0 && depth + n > quota.max_queue_depth) {
      reason = "tenant '" + tenant->id() + "' backlog depth quota (" +
               std::to_string(quota.max_queue_depth) + ") exceeded";
      // No analytic hint: backlog drains at the consumers' pace. A short
      // fixed hint keeps the client's retry cadence snappy.
      retry_after_s = 0.02;
    } else if (quota.max_bytes > 0 &&
               bytes + std::min(incoming_bytes, quota.max_bytes) >
                   quota.max_bytes) {
      // The incoming frame body (known before any decode) is folded into
      // the check so a tenant sitting just under the limit cannot overshoot
      // by one arbitrarily large batch. Clamped to the quota itself:
      // mirroring the token bucket's debt, a single publish larger than the
      // whole byte quota is admitted only against an empty backlog —
      // otherwise it could never be admitted at all.
      reason = "tenant '" + tenant->id() + "' backlog byte quota (" +
               std::to_string(quota.max_bytes) + ") exceeded";
      retry_after_s = 0.02;
    }
  }
  if (reason.empty() && !tenant->try_acquire_rate(n, &retry_after_s)) {
    reason = "tenant '" + tenant->id() + "' publish rate quota (" +
             std::to_string(quota.publish_rate) + "/s) exceeded";
  }
  if (reason.empty()) return true;
  tenant->count_throttled();
  quota_rejections_.fetch_add(1, std::memory_order_relaxed);
  if (quota_rejections_metric_ != nullptr) quota_rejections_metric_->add();
  Frame resp;
  resp.op = Op::kErrQuota;
  resp.corr = corr;
  resp.arg = static_cast<std::uint64_t>(
      std::max(retry_after_s, 0.0) * 1e6);  // retry-after hint, µs
  resp.body = std::move(reason);
  respond(conn, std::move(resp));
  return false;
}

bool BrokerServer::try_answer_get(Conn& conn, std::uint64_t corr,
                                  const std::string& queue, std::size_t max_n,
                                  bool batch) {
  Frame resp;
  resp.corr = corr;
  // Deliveries use whatever codec this connection negotiated; text-codec
  // clients keep getting exactly the pre-binary wire format.
  const bool binary = conn.codec == kCodecBinary;
  if (binary) resp.flags |= kFlagBinary;
  if (batch) {
    std::vector<mq::Delivery> deliveries =
        broker_->get_batch(queue, max_n, 0.0);
    if (deliveries.empty()) return false;
    resp.op = Op::kDeliveryBatch;
    put_u32(resp.body, static_cast<std::uint32_t>(deliveries.size()));
    for (const mq::Delivery& d : deliveries) {
      put_u64(resp.body, d.delivery_tag);
      if (binary) {
        append_message_binary(resp.body, d.message);
      } else {
        append_message(resp.body, d.message);
      }
      conn.unacked.emplace_back(queue, d.delivery_tag);
    }
  } else {
    std::optional<mq::Delivery> delivery = broker_->get(queue, 0.0);
    if (!delivery.has_value()) return false;
    resp.op = Op::kDelivery;
    resp.arg = delivery->delivery_tag;
    if (binary) {
      append_message_binary(resp.body, delivery->message);
    } else {
      append_message(resp.body, delivery->message);
    }
    conn.unacked.emplace_back(queue, delivery->delivery_tag);
  }
  respond(conn, std::move(resp));
  return true;
}

void BrokerServer::respond(Conn& conn, Frame&& resp) {
  // Header and body stay separate buffers: the body (often a multi-message
  // delivery batch) is moved into the write queue, never copied into a
  // contiguous frame; flush_writes gathers both into one sendmsg.
  std::string header;
  append_frame_header(header, resp, resp.body.size());
  conn.wq_bytes += header.size() + resp.body.size();
  conn.wq.push_back(std::move(header));
  if (!resp.body.empty()) conn.wq.push_back(std::move(resp.body));
  if (frames_out_ != nullptr) frames_out_->add();
}

bool BrokerServer::flush_writes(Conn& conn) {
  while (conn.wq_bytes > 0) {
    // Gather the queued buffers into one scatter-gather write: a whole
    // response burst (e.g. 64 parked gets answered in one pass) leaves in
    // a single syscall.
    iovec iov[kMaxWriteIov];
    std::size_t niov = 0;
    std::size_t skip = conn.wq_front_off;
    for (const std::string& buf : conn.wq) {
      if (niov == kMaxWriteIov) break;
      iov[niov].iov_base = const_cast<char*>(buf.data()) + skip;
      iov[niov].iov_len = buf.size() - skip;
      ++niov;
      skip = 0;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      if (bytes_out_ != nullptr) bytes_out_->add(static_cast<std::uint64_t>(n));
      std::size_t sent = static_cast<std::size_t>(n);
      conn.wq_bytes -= sent;
      while (sent > 0) {
        std::string& front = conn.wq.front();
        const std::size_t avail = front.size() - conn.wq_front_off;
        if (sent >= avail) {
          sent -= avail;
          conn.wq.pop_front();
          conn.wq_front_off = 0;
        } else {
          conn.wq_front_off += sent;
          sent = 0;
        }
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // POLLOUT later
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

void BrokerServer::service_parked() {
  if (parked_.empty()) return;
  const auto now = Clock::now();
  std::vector<ParkedGet> still_parked;
  still_parked.reserve(parked_.size());
  for (ParkedGet& p : parked_) {
    auto it = conns_.find(p.fd);
    if (it == conns_.end()) continue;  // client gone; nothing to answer
    Conn& conn = it->second;
    bool answered = false;
    try {
      answered = try_answer_get(conn, p.corr, p.queue, p.max_n, p.batch);
    } catch (const MqError& e) {
      Frame resp;
      resp.op = Op::kError;
      resp.corr = p.corr;
      resp.body = e.what();
      respond(conn, std::move(resp));
      answered = true;
    }
    if (answered) continue;
    if (now >= p.deadline) {
      Frame resp;
      resp.op = Op::kOk;
      resp.corr = p.corr;
      resp.flags = kFlagEmpty;
      respond(conn, std::move(resp));
      continue;
    }
    still_parked.push_back(std::move(p));
  }
  parked_.swap(still_parked);
}

void BrokerServer::expire_workers() {
  if (config_.worker_ttl_s <= 0) return;
  const auto now = Clock::now();
  const auto ttl = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.worker_ttl_s));
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn.worker_id.empty()) continue;
    if (now - conn.last_activity > ttl) expired.push_back(fd);
  }
  for (int fd : expired) {
    ENTK_WARN("broker_server")
        << "worker '" << conns_[fd].worker_id << "' silent for more than "
        << config_.worker_ttl_s << "s: dropping its connection";
    drop_conn(fd, /*requeue_unacked=*/true);
  }
}

void BrokerServer::drop_conn(int fd, bool requeue_unacked) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (requeue_unacked && !it->second.unacked.empty()) {
    // Per-queue tally for the warn log: requeue-on-disconnect is the
    // at-least-once recovery path firing, which an operator wants to see.
    std::map<std::string, std::size_t> per_queue;
    std::uint64_t requeued = 0;
    for (const auto& [queue, tag] : it->second.unacked) {
      try {
        broker_->nack(queue, tag, /*requeue=*/true);
        ++requeued;
        ++per_queue[queue];
        if (requeued_on_disconnect_ != nullptr) requeued_on_disconnect_->add();
      } catch (const MqError&) {
        // Queue deleted since delivery: nothing left to requeue into.
      }
    }
    if (requeued > 0) {
      requeued_total_.fetch_add(requeued, std::memory_order_relaxed);
      std::string detail;
      for (const auto& [queue, count] : per_queue) {
        if (!detail.empty()) detail += ", ";
        detail += queue + "=" + std::to_string(count);
      }
      ENTK_WARN("broker_server")
          << "requeued " << requeued << " unacked delivery(ies) from "
          << (it->second.worker_id.empty()
                  ? std::string("client fd=") + std::to_string(fd)
                  : "worker '" + it->second.worker_id + "'")
          << " on disconnect: " << detail;
    }
  }
  close_fd(fd);
  conns_.erase(it);
  parked_.erase(std::remove_if(parked_.begin(), parked_.end(),
                               [fd](const ParkedGet& p) { return p.fd == fd; }),
                parked_.end());
  conn_count_.store(conns_.size(), std::memory_order_relaxed);
  if (connections_ != nullptr) {
    connections_->set(static_cast<std::int64_t>(conns_.size()));
  }
}

void BrokerServer::forget_unacked(const std::string& queue) {
  for (auto& [fd, conn] : conns_) {
    auto& unacked = conn.unacked;
    unacked.erase(
        std::remove_if(unacked.begin(), unacked.end(),
                       [&queue](const std::pair<std::string, std::uint64_t>& e) {
                         return e.first == queue;
                       }),
        unacked.end());
  }
}

void BrokerServer::drain_connections() {
  // Answer every parked long-poll empty so no client blocks on a response
  // that will never come, then flush write buffers within the drain budget.
  for (const ParkedGet& p : parked_) {
    auto it = conns_.find(p.fd);
    if (it == conns_.end()) continue;
    Frame resp;
    resp.op = Op::kOk;
    resp.corr = p.corr;
    resp.flags = kFlagEmpty;
    respond(it->second, std::move(resp));
  }
  parked_.clear();

  const auto deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(config_.drain_timeout_s));
  while (Clock::now() < deadline) {
    bool pending = false;
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (conn.wq_bytes == 0) continue;
      if (!flush_writes(conn)) {
        dead.push_back(fd);
      } else if (conn.wq_bytes > 0) {
        pending = true;
      }
    }
    for (int fd : dead) drop_conn(fd, /*requeue_unacked=*/true);
    if (!pending) break;
    pollfd pfd{-1, POLLOUT, 0};
    std::vector<pollfd> pfds;
    for (auto& [fd, conn] : conns_) {
      if (conn.wq_bytes > 0) {
        pfd.fd = fd;
        pfds.push_back(pfd);
      }
    }
    ::poll(pfds.data(), pfds.size(), 10);
  }

  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) drop_conn(fd, /*requeue_unacked=*/true);
}

void BrokerServer::record_op_us(Clock::time_point started) {
  if (op_us_ != nullptr) op_us_->observe(us_between(started, Clock::now()));
}

}  // namespace entk::net
