#include "src/net/frame.hpp"

#include <cstring>

#include "src/json/json.hpp"

namespace entk::net {

namespace {

// Fixed header bytes after the u32 length prefix: op(1) + corr(8) + arg(8)
// + flags(4) + queue_len(2).
constexpr std::size_t kHeaderBytes = 1 + 8 + 8 + 4 + 2;

void need(std::string_view buf, std::size_t offset, std::size_t n) {
  if (buf.size() - offset < n) {
    throw NetError("net: truncated payload (need " + std::to_string(n) +
                   " bytes, have " + std::to_string(buf.size() - offset) +
                   ")");
  }
}

}  // namespace

// The put_* helpers stage the little-endian bytes in a stack buffer and
// append once: one length/capacity check per integer instead of one per
// byte, which matters in the TLV codec's numeric hot loops.
void put_u16(std::string& out, std::uint16_t v) {
  char b[2];
  for (int i = 0; i < 2; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, sizeof b);
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, sizeof b);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, sizeof b);
}

std::uint16_t get_u16(std::string_view buf, std::size_t& offset) {
  need(buf, offset, 2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<unsigned char>(buf[offset + i]) << (8 * i));
  }
  offset += 2;
  return v;
}

std::uint32_t get_u32(std::string_view buf, std::size_t& offset) {
  need(buf, offset, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf[offset + i]))
         << (8 * i);
  }
  offset += 4;
  return v;
}

std::uint64_t get_u64(std::string_view buf, std::size_t& offset) {
  need(buf, offset, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(buf[offset + i]))
         << (8 * i);
  }
  offset += 8;
  return v;
}

void append_frame_header(std::string& out, const Frame& frame,
                         std::size_t body_bytes) {
  if (frame.queue.size() > 0xffff) {
    throw NetError("net: queue name too long (" +
                   std::to_string(frame.queue.size()) + " bytes)");
  }
  const std::size_t length = kHeaderBytes + frame.queue.size() + body_bytes;
  if (length > kMaxFrameBytes) {
    throw NetError("net: frame too large (" + std::to_string(length) +
                   " bytes)");
  }
  out.reserve(out.size() + 4 + kHeaderBytes + frame.queue.size());
  put_u32(out, static_cast<std::uint32_t>(length));
  out.push_back(static_cast<char>(frame.op));
  put_u64(out, frame.corr);
  put_u64(out, frame.arg);
  put_u32(out, frame.flags);
  put_u16(out, static_cast<std::uint16_t>(frame.queue.size()));
  out.append(frame.queue);
}

void append_frame(std::string& out, const Frame& frame) {
  append_frame_header(out, frame, frame.body.size());
  out.append(frame.body);
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  append_frame(out, frame);
  return out;
}

std::optional<Frame> decode_frame(std::string_view buf, std::size_t& offset) {
  if (buf.size() - offset < 4) return std::nullopt;
  std::size_t cursor = offset;
  const std::uint32_t length = get_u32(buf, cursor);
  if (length > kMaxFrameBytes) {
    throw NetError("net: oversized frame (" + std::to_string(length) +
                   " bytes; limit " + std::to_string(kMaxFrameBytes) + ")");
  }
  if (length < kHeaderBytes) {
    throw NetError("net: short frame header (" + std::to_string(length) +
                   " bytes)");
  }
  if (buf.size() - cursor < length) return std::nullopt;  // partial frame
  const std::size_t frame_end = cursor + length;

  Frame frame;
  frame.op = static_cast<Op>(static_cast<unsigned char>(buf[cursor++]));
  frame.corr = get_u64(buf, cursor);
  frame.arg = get_u64(buf, cursor);
  frame.flags = get_u32(buf, cursor);
  const std::uint16_t queue_len = get_u16(buf, cursor);
  if (frame_end - cursor < queue_len) {
    throw NetError("net: queue name overruns frame");
  }
  frame.queue.assign(buf.substr(cursor, queue_len));
  cursor += queue_len;
  frame.body.assign(buf.substr(cursor, frame_end - cursor));
  offset = frame_end;
  return frame;
}

void append_message(std::string& out, const mq::Message& msg) {
  if (msg.headers.is_null()) {
    put_u32(out, 0);
  } else {
    const std::string headers = msg.headers.dump();
    put_u32(out, static_cast<std::uint32_t>(headers.size()));
    out.append(headers);
  }
  put_u64(out, msg.seq);
  // The byte boundary: renders (and memoizes) the structured payload.
  // A message with neither representation ships an empty body.
  const std::string& body = msg.body();
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
}

mq::Message decode_message(std::string_view buf, std::size_t& offset) {
  mq::Message msg;
  const std::uint32_t headers_len = get_u32(buf, offset);
  if (headers_len > 0) {
    need(buf, offset, headers_len);
    msg.headers = json::parse(std::string(buf.substr(offset, headers_len)));
    offset += headers_len;
  }
  msg.seq = get_u64(buf, offset);
  const std::uint32_t body_len = get_u32(buf, offset);
  need(buf, offset, body_len);
  // Arrives as bytes; the consumer's first payload() access parses once
  // and memoizes (recovered-message contract of the lazy Message).
  msg.set_body(std::string(buf.substr(offset, body_len)));
  offset += body_len;
  return msg;
}

namespace {

// TLV tags of the typed-value codec (see frame.hpp wire-format table).
enum : unsigned char {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagArray = 6,
  kTagObject = 7,
};

void append_string_tlv(std::string& out, const std::string& s) {
  if (s.size() > kMaxFrameBytes) {
    throw NetError("net: string too large for typed-value codec");
  }
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

json::Value decode_value_at(std::string_view buf, std::size_t& offset,
                            std::size_t depth);

json::Value decode_container(std::string_view buf, std::size_t& offset,
                             std::size_t depth, bool object) {
  if (depth > kMaxValueDepth) {
    throw NetError("net: typed value nested too deeply");
  }
  const std::uint32_t count = get_u32(buf, offset);
  // Each element costs >= 1 byte on the wire, so a count beyond the
  // remaining bytes is a framing lie — reject before reserving memory.
  if (count > buf.size() - offset) {
    throw NetError("net: typed container count overruns frame");
  }
  if (object) {
    json::Object obj;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t key_len = get_u32(buf, offset);
      need(buf, offset, key_len);
      std::string key(buf.substr(offset, key_len));
      offset += key_len;
      obj[key] = decode_value_at(buf, offset, depth + 1);
    }
    return json::Value(std::move(obj));
  }
  json::Array arr;
  arr.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    arr.push_back(decode_value_at(buf, offset, depth + 1));
  }
  return json::Value(std::move(arr));
}

json::Value decode_value_at(std::string_view buf, std::size_t& offset,
                            std::size_t depth) {
  need(buf, offset, 1);
  const auto tag = static_cast<unsigned char>(buf[offset++]);
  switch (tag) {
    case kTagNull:
      return json::Value();
    case kTagFalse:
      return json::Value(false);
    case kTagTrue:
      return json::Value(true);
    case kTagInt: {
      const std::uint64_t bits = get_u64(buf, offset);
      return json::Value(static_cast<std::int64_t>(bits));
    }
    case kTagDouble: {
      const std::uint64_t bits = get_u64(buf, offset);
      double d;
      static_assert(sizeof(d) == sizeof(bits));
      std::memcpy(&d, &bits, sizeof(d));
      return json::Value(d);
    }
    case kTagString: {
      const std::uint32_t len = get_u32(buf, offset);
      need(buf, offset, len);
      json::Value v(std::string(buf.substr(offset, len)));
      offset += len;
      return v;
    }
    case kTagArray:
      return decode_container(buf, offset, depth, /*object=*/false);
    case kTagObject:
      return decode_container(buf, offset, depth, /*object=*/true);
    default:
      throw NetError("net: unknown typed-value tag " + std::to_string(tag));
  }
}

// Walks one TLV value without building anything: same grammar and limits
// as decode_value_at, allocation-free. The frame decoder uses it to
// validate an incoming payload at the protocol boundary (malformed bytes
// become a NetError on the connection, not a surprise deep inside a
// consumer) and to find the payload's extent so the bytes can be kept
// verbatim for zero-decode relay.
void skip_value_at(std::string_view buf, std::size_t& offset,
                   std::size_t depth) {
  if (depth > kMaxValueDepth) {
    throw NetError("net: typed value nested too deeply");
  }
  need(buf, offset, 1);
  const auto tag = static_cast<unsigned char>(buf[offset++]);
  switch (tag) {
    case kTagNull:
    case kTagFalse:
    case kTagTrue:
      return;
    case kTagInt:
    case kTagDouble:
      need(buf, offset, 8);
      offset += 8;
      return;
    case kTagString: {
      const std::uint32_t len = get_u32(buf, offset);
      need(buf, offset, len);
      offset += len;
      return;
    }
    case kTagArray:
    case kTagObject: {
      const std::uint32_t count = get_u32(buf, offset);
      if (count > buf.size() - offset) {
        throw NetError("net: typed container count overruns frame");
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        if (tag == kTagObject) {
          const std::uint32_t key_len = get_u32(buf, offset);
          need(buf, offset, key_len);
          offset += key_len;
        }
        skip_value_at(buf, offset, depth + 1);
      }
      return;
    }
    default:
      throw NetError("net: unknown typed-value tag " + std::to_string(tag));
  }
}

// TlvDecoder bridge registered with mq at load time: materializes the
// structured payload of a TLV-backed Message on its first payload()
// access.
json::Value decode_tlv_payload(const std::string& bytes) {
  std::size_t offset = 0;
  json::Value v = decode_value_at(bytes, offset, 0);
  if (offset != bytes.size()) {
    throw NetError("net: trailing bytes after typed-value payload");
  }
  return v;
}

[[maybe_unused]] const bool g_tlv_decoder_registered = [] {
  mq::set_tlv_decoder(&decode_tlv_payload);
  return true;
}();

}  // namespace

void append_value(std::string& out, const json::Value& v) {
  switch (v.type()) {
    case json::Type::Null:
      out.push_back(static_cast<char>(kTagNull));
      return;
    case json::Type::Bool:
      out.push_back(static_cast<char>(v.as_bool() ? kTagTrue : kTagFalse));
      return;
    case json::Type::Int: {
      out.push_back(static_cast<char>(kTagInt));
      put_u64(out, static_cast<std::uint64_t>(v.as_int()));
      return;
    }
    case json::Type::Double: {
      out.push_back(static_cast<char>(kTagDouble));
      const double d = v.as_double();
      std::uint64_t bits;
      static_assert(sizeof(d) == sizeof(bits));
      std::memcpy(&bits, &d, sizeof(bits));
      put_u64(out, bits);
      return;
    }
    case json::Type::String:
      out.push_back(static_cast<char>(kTagString));
      append_string_tlv(out, v.as_string());
      return;
    case json::Type::Array: {
      out.push_back(static_cast<char>(kTagArray));
      const json::Array& arr = v.as_array();
      put_u32(out, static_cast<std::uint32_t>(arr.size()));
      for (const json::Value& item : arr) append_value(out, item);
      return;
    }
    case json::Type::Object: {
      out.push_back(static_cast<char>(kTagObject));
      const json::Object& obj = v.as_object();
      put_u32(out, static_cast<std::uint32_t>(obj.size()));
      for (const auto& [key, item] : obj) {
        append_string_tlv(out, key);
        append_value(out, item);
      }
      return;
    }
  }
  throw NetError("net: unencodable json value");
}

json::Value decode_value(std::string_view buf, std::size_t& offset) {
  return decode_value_at(buf, offset, 0);
}

namespace {

// Payload-kind discriminants of the binary message encoding.
enum : unsigned char {
  kPayloadNone = 0,
  kPayloadBytes = 1,
  kPayloadValue = 2,
};

}  // namespace

void append_message_binary(std::string& out, const mq::Message& msg) {
  append_value(out, msg.headers);
  put_u64(out, msg.seq);
  if (msg.shared_tlv_payload() != nullptr) {
    // The payload arrived over a binary connection and was never touched
    // since: relay the already-validated TLV bytes verbatim. A broker
    // sitting between two binary peers moves payloads by memcpy alone.
    out.push_back(static_cast<char>(kPayloadValue));
    out.append(*msg.shared_tlv_payload());
  } else if (msg.has_payload()) {
    // The whole point: the structured payload is walked directly into TLV
    // bytes. Message::body() is never called, so no JSON text is rendered
    // (body_render_count() stays flat across this path).
    out.push_back(static_cast<char>(kPayloadValue));
    append_value(out, *msg.payload());
  } else if (msg.has_rendered_body()) {
    out.push_back(static_cast<char>(kPayloadBytes));
    const std::string& body = *msg.shared_body();
    if (body.size() > kMaxFrameBytes) {
      throw NetError("net: message body too large");
    }
    put_u32(out, static_cast<std::uint32_t>(body.size()));
    out.append(body);
  } else {
    out.push_back(static_cast<char>(kPayloadNone));
  }
}

mq::Message decode_message_binary(std::string_view buf, std::size_t& offset) {
  mq::Message msg;
  msg.headers = decode_value(buf, offset);
  msg.seq = get_u64(buf, offset);
  need(buf, offset, 1);
  const auto kind = static_cast<unsigned char>(buf[offset++]);
  switch (kind) {
    case kPayloadNone:
      break;
    case kPayloadBytes: {
      const std::uint32_t len = get_u32(buf, offset);
      need(buf, offset, len);
      msg.set_body(std::string(buf.substr(offset, len)));
      offset += len;
      break;
    }
    case kPayloadValue: {
      // Validate the TLV grammar now (allocation-free walk), but keep the
      // bytes instead of building the value tree: a relaying broker
      // re-encodes them verbatim, and a real consumer's first payload()
      // access decodes exactly once. No JSON parse ever happens for this
      // message.
      const std::size_t start = offset;
      skip_value_at(buf, offset, 0);
      msg.set_tlv_payload(std::make_shared<const std::string>(
          buf.substr(start, offset - start)));
      break;
    }
    default:
      throw NetError("net: unknown message payload kind " +
                     std::to_string(kind));
  }
  return msg;
}

}  // namespace entk::net
