#include "src/net/frame.hpp"

#include "src/json/json.hpp"

namespace entk::net {

namespace {

// Fixed header bytes after the u32 length prefix: op(1) + corr(8) + arg(8)
// + flags(4) + queue_len(2).
constexpr std::size_t kHeaderBytes = 1 + 8 + 8 + 4 + 2;

void need(std::string_view buf, std::size_t offset, std::size_t n) {
  if (buf.size() - offset < n) {
    throw NetError("net: truncated payload (need " + std::to_string(n) +
                   " bytes, have " + std::to_string(buf.size() - offset) +
                   ")");
  }
}

}  // namespace

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint16_t get_u16(std::string_view buf, std::size_t& offset) {
  need(buf, offset, 2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<unsigned char>(buf[offset + i]) << (8 * i));
  }
  offset += 2;
  return v;
}

std::uint32_t get_u32(std::string_view buf, std::size_t& offset) {
  need(buf, offset, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf[offset + i]))
         << (8 * i);
  }
  offset += 4;
  return v;
}

std::uint64_t get_u64(std::string_view buf, std::size_t& offset) {
  need(buf, offset, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(buf[offset + i]))
         << (8 * i);
  }
  offset += 8;
  return v;
}

void append_frame(std::string& out, const Frame& frame) {
  if (frame.queue.size() > 0xffff) {
    throw NetError("net: queue name too long (" +
                   std::to_string(frame.queue.size()) + " bytes)");
  }
  const std::size_t length =
      kHeaderBytes + frame.queue.size() + frame.body.size();
  if (length > kMaxFrameBytes) {
    throw NetError("net: frame too large (" + std::to_string(length) +
                   " bytes)");
  }
  out.reserve(out.size() + 4 + length);
  put_u32(out, static_cast<std::uint32_t>(length));
  out.push_back(static_cast<char>(frame.op));
  put_u64(out, frame.corr);
  put_u64(out, frame.arg);
  put_u32(out, frame.flags);
  put_u16(out, static_cast<std::uint16_t>(frame.queue.size()));
  out.append(frame.queue);
  out.append(frame.body);
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  append_frame(out, frame);
  return out;
}

std::optional<Frame> decode_frame(std::string_view buf, std::size_t& offset) {
  if (buf.size() - offset < 4) return std::nullopt;
  std::size_t cursor = offset;
  const std::uint32_t length = get_u32(buf, cursor);
  if (length > kMaxFrameBytes) {
    throw NetError("net: oversized frame (" + std::to_string(length) +
                   " bytes; limit " + std::to_string(kMaxFrameBytes) + ")");
  }
  if (length < kHeaderBytes) {
    throw NetError("net: short frame header (" + std::to_string(length) +
                   " bytes)");
  }
  if (buf.size() - cursor < length) return std::nullopt;  // partial frame
  const std::size_t frame_end = cursor + length;

  Frame frame;
  frame.op = static_cast<Op>(static_cast<unsigned char>(buf[cursor++]));
  frame.corr = get_u64(buf, cursor);
  frame.arg = get_u64(buf, cursor);
  frame.flags = get_u32(buf, cursor);
  const std::uint16_t queue_len = get_u16(buf, cursor);
  if (frame_end - cursor < queue_len) {
    throw NetError("net: queue name overruns frame");
  }
  frame.queue.assign(buf.substr(cursor, queue_len));
  cursor += queue_len;
  frame.body.assign(buf.substr(cursor, frame_end - cursor));
  offset = frame_end;
  return frame;
}

void append_message(std::string& out, const mq::Message& msg) {
  if (msg.headers.is_null()) {
    put_u32(out, 0);
  } else {
    const std::string headers = msg.headers.dump();
    put_u32(out, static_cast<std::uint32_t>(headers.size()));
    out.append(headers);
  }
  put_u64(out, msg.seq);
  // The byte boundary: renders (and memoizes) the structured payload.
  // A message with neither representation ships an empty body.
  const std::string& body = msg.body();
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
}

mq::Message decode_message(std::string_view buf, std::size_t& offset) {
  mq::Message msg;
  const std::uint32_t headers_len = get_u32(buf, offset);
  if (headers_len > 0) {
    need(buf, offset, headers_len);
    msg.headers = json::parse(std::string(buf.substr(offset, headers_len)));
    offset += headers_len;
  }
  msg.seq = get_u64(buf, offset);
  const std::uint32_t body_len = get_u32(buf, offset);
  need(buf, offset, body_len);
  // Arrives as bytes; the consumer's first payload() access parses once
  // and memoizes (recovered-message contract of the lazy Message).
  msg.set_body(std::string(buf.substr(offset, body_len)));
  offset += body_len;
  return msg;
}

}  // namespace entk::net
