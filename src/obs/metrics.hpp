// Metrics registry: the live half of the observability subsystem.
//
// Named counters, gauges and fixed-bucket latency histograms with
// nanosecond-class record paths: every hot-path mutation is a handful of
// relaxed atomic operations on pre-resolved handles — no locks, no string
// lookups, no allocation. The registry mutex is touched only on handle
// creation and on snapshots.
//
// Layering: this header is deliberately self-contained (std only) and
// header-only, so the low layers that record into it — entk_common's
// Component runtime and entk_mq's Broker — can include it without a link
// dependency on the entk_obs library (which itself depends on
// entk_common for the profiler-fed tracer, src/obs/trace.hpp).
//
// Usage:
//   obs::MetricsRegistry reg;
//   obs::Counter& published = reg.counter("mq.published");   // resolve once
//   published.add(n);                                        // hot path
//   obs::Histogram& h = reg.histogram("mq.publish_us");
//   h.observe(3.7);                                          // microseconds
//   for (const obs::MetricSnapshot& m : reg.snapshot()) ...;
//   reg.dump_jsonl("metrics.jsonl");
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace entk::obs {

/// Monotone counter, sharded across cache lines so concurrent producers
/// (broker publishers, RTS workers) never contend on one atomic.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t shard_index() {
    // One slot per thread, assigned on first use: cheaper and more evenly
    // spread than hashing std::thread::id on every add().
    static std::atomic<std::size_t> next{0};
    static thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot % kShards;
  }

  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depths, in-flight units).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over double samples (latencies in microseconds by
/// convention). Bucket bounds are frozen at construction; observe() is a
/// short bound scan plus four relaxed atomics.
class Histogram {
 public:
  /// Log-spaced microsecond bounds covering 1 us .. 5 s.
  static std::vector<double> default_latency_bounds_us() {
    return {1,    2,    5,    10,   20,   50,   100,  200,
            500,  1e3,  2e3,  5e3,  1e4,  2e4,  5e4,  1e5,
            2e5,  5e5,  1e6,  2e6,  5e6};
  }

  explicit Histogram(std::vector<double> bounds = default_latency_bounds_us())
      : bounds_(std::move(bounds)),
        buckets_(std::make_unique<Bucket[]>(bounds_.size() + 1)) {}

  void observe(double sample) {
    std::size_t i = 0;
    while (i < bounds_.size() && sample > bounds_[i]) ++i;
    buckets_[i].c.fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<std::int64_t>(sample * 1e3),
                      std::memory_order_relaxed);
    std::int64_t prev = max_ns_.load(std::memory_order_relaxed);
    const std::int64_t ns = static_cast<std::int64_t>(sample * 1e3);
    while (prev < ns &&
           !max_ns_.compare_exchange_weak(prev, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-3;
  }
  double max() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-3;
  }
  const std::vector<double>& bounds() const { return bounds_; }

  std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = buckets_[i].c.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct alignas(64) Bucket {
    std::atomic<std::uint64_t> c{0};
  };

  const std::vector<double> bounds_;
  std::unique_ptr<Bucket[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Point-in-time view of one metric.
struct MetricSnapshot {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  double value = 0;  ///< counter total / gauge value / histogram sum
  std::uint64_t count = 0;            ///< histogram samples
  double max = 0;                     ///< histogram max sample
  std::vector<double> bounds;         ///< histogram bucket upper bounds
  std::vector<std::uint64_t> buckets; ///< histogram bucket counts (+overflow)

  /// Estimate quantile q in [0,1] by linear interpolation within the
  /// bucket holding the target rank. Returns `max` for samples landing in
  /// the overflow bucket; 0 with no samples.
  double quantile(double q) const {
    if (type != "histogram" || count == 0) return 0.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const std::uint64_t in_bucket = buckets[i];
      if (cumulative + in_bucket < target) {
        cumulative += in_bucket;
        continue;
      }
      if (i >= bounds.size()) return max;  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      if (in_bucket == 0) return hi;
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return std::min(max > 0 ? max : hi, lo + frac * (hi - lo));
    }
    return max;
  }
};

/// One periodic snapshot: a label plus every metric's state.
struct TimedSnapshot {
  std::int64_t wall_us = 0;
  std::string label;
  std::vector<MetricSnapshot> metrics;
};

class MetricsRegistry {
 public:
  /// Resolve (create on first use) a handle. Handles stay valid for the
  /// registry's lifetime; resolve once and keep the reference on hot paths.
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }

  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds =
                           Histogram::default_latency_bounds_us()) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
  }

  std::vector<MetricSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_locked();
  }

  // --- periodic snapshots -------------------------------------------------

  void set_snapshot_interval(double seconds) {
    snapshot_interval_us_.store(static_cast<std::int64_t>(seconds * 1e6),
                                std::memory_order_relaxed);
  }

  /// Append a labeled snapshot to the history unconditionally.
  void take_snapshot(std::int64_t wall_us, const std::string& label = "") {
    std::lock_guard<std::mutex> lock(mutex_);
    history_.push_back({wall_us, label, snapshot_locked()});
  }

  /// Rate-limited take_snapshot: appends only when the configured interval
  /// elapsed since the previous periodic snapshot. Designed to ride an
  /// existing heartbeat loop.
  void maybe_snapshot(std::int64_t wall_us) {
    const std::int64_t interval =
        snapshot_interval_us_.load(std::memory_order_relaxed);
    if (interval <= 0) return;
    std::int64_t last = last_snapshot_us_.load(std::memory_order_relaxed);
    if (wall_us - last < interval) return;
    if (!last_snapshot_us_.compare_exchange_strong(last, wall_us)) return;
    take_snapshot(wall_us, "periodic");
  }

  std::vector<TimedSnapshot> history() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return history_;
  }

  /// Write the snapshot history plus a final snapshot as JSONL: one object
  /// per metric per snapshot. Throws std::runtime_error on I/O failure.
  void dump_jsonl(const std::string& path, std::int64_t wall_us) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("MetricsRegistry: cannot open " + path);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TimedSnapshot& s : history_) write_snapshot(f, s);
    write_snapshot(f, {wall_us, "final", snapshot_locked()});
    std::fclose(f);
  }

 private:
  std::vector<MetricSnapshot> snapshot_locked() const {
    std::vector<MetricSnapshot> out;
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
      MetricSnapshot m;
      m.name = name;
      m.type = "counter";
      m.value = static_cast<double>(c->value());
      out.push_back(std::move(m));
    }
    for (const auto& [name, g] : gauges_) {
      MetricSnapshot m;
      m.name = name;
      m.type = "gauge";
      m.value = static_cast<double>(g->value());
      out.push_back(std::move(m));
    }
    for (const auto& [name, h] : histograms_) {
      MetricSnapshot m;
      m.name = name;
      m.type = "histogram";
      m.value = h->sum();
      m.count = h->count();
      m.max = h->max();
      m.bounds = h->bounds();
      m.buckets = h->bucket_counts();
      out.push_back(std::move(m));
    }
    return out;
  }

  static void write_snapshot(std::FILE* f, const TimedSnapshot& s) {
    for (const MetricSnapshot& m : s.metrics) {
      // Metric names and labels are code-controlled identifiers (no
      // quotes/backslashes), so plain %s is JSON-safe here.
      std::fprintf(f,
                   "{\"wall_us\":%lld,\"label\":\"%s\",\"name\":\"%s\","
                   "\"type\":\"%s\",\"value\":%.6f",
                   static_cast<long long>(s.wall_us), s.label.c_str(),
                   m.name.c_str(), m.type.c_str(), m.value);
      if (m.type == "histogram") {
        std::fprintf(f, ",\"count\":%llu,\"max\":%.3f,\"p50\":%.3f,"
                        "\"p95\":%.3f,\"buckets\":[",
                     static_cast<unsigned long long>(m.count), m.max,
                     m.quantile(0.50), m.quantile(0.95));
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          std::fprintf(f, "%s%llu", i == 0 ? "" : ",",
                       static_cast<unsigned long long>(m.buckets[i]));
        }
        std::fputc(']', f);
      }
      std::fputs("}\n", f);
    }
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<TimedSnapshot> history_;
  std::atomic<std::int64_t> snapshot_interval_us_{0};
  std::atomic<std::int64_t> last_snapshot_us_{0};
};

using MetricsPtr = std::shared_ptr<MetricsRegistry>;

/// Observability knobs carried by AppManagerConfig (and entk_run flags).
struct ObsConfig {
  bool metrics = false;       ///< enable the live metrics registry
  std::string trace_out;      ///< Chrome trace_event JSON path ("" = off)
  std::string metrics_out;    ///< metrics JSONL path ("" = off)
  double snapshot_interval_s = 0.05;  ///< periodic snapshot cadence

  /// Metrics are live when requested explicitly or needed for an export.
  bool metrics_enabled() const { return metrics || !metrics_out.empty(); }
};

}  // namespace entk::obs
