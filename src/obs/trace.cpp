#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "src/common/error.hpp"
#include "src/json/json.hpp"

namespace entk::obs {
namespace {

// Indices into the per-task boundary vector; the chain segment
// task_span_names()[i] spans boundary i -> boundary i+1.
enum Boundary {
  kEnqueued = 0,   // wfprocessor task_enqueued
  kSubmitted = 1,  // emgr task_submitted
  kExecStart = 2,  // rts unit_exec_start
  kExecStop = 3,   // rts unit_exec_stop
  kDequeued = 4,   // wfprocessor task_dequeued
  kDone = 5,       // wfprocessor task_done (confirmed DONE commit)
  kBoundaries = 6
};

struct RawTask {
  std::int64_t b[kBoundaries] = {-1, -1, -1, -1, -1, -1};
  UnitVirtualTimes vt;
  bool resolved_done = false;
  int attempts = 0;
};

void stitch_chain(const RawTask& raw, TaskTrace& out) {
  // Boundaries are recorded on different threads; even though wall_now_us
  // is a single steady clock, a boundary can be recorded out of causal
  // order around a queue hop. Clamp each boundary to the running maximum so
  // every emitted span is monotone (dur >= 0).
  const auto& names = task_span_names();
  std::int64_t prev = -1;
  int prev_i = -1;
  for (int i = 0; i < kBoundaries; ++i) {
    if (raw.b[i] < 0) continue;
    const std::int64_t t = std::max(raw.b[i], prev);
    if (prev_i >= 0) {
      // A gap (missing interior boundary) merges segments into the span
      // named after the first covered segment.
      out.spans.push_back({names[static_cast<std::size_t>(prev_i)], prev, t});
    }
    prev = t;
    prev_i = i;
  }
}

}  // namespace

Trace build_trace(const std::vector<ProfileEvent>& events,
                  const TraceLinks& links) {
  Trace trace;
  std::map<std::string, RawTask> raw;

  auto phase = [&trace](const std::string& name) -> PhaseSpan& {
    for (PhaseSpan& p : trace.phases) {
      if (p.name == name) return p;
    }
    trace.phases.push_back({name, -1, -1});
    return trace.phases.back();
  };

  for (const ProfileEvent& e : events) {
    const double v = e.virtual_s;
    // --- per-task causal chain (wall clock) -----------------------------
    if (e.event == "task_enqueued") {
      RawTask& t = raw[e.uid];
      t.b[kEnqueued] = e.wall_us;
      // A resubmitted task restarts its chain: forget the dead attempt's
      // later boundaries so the chain reflects the attempt that resolved.
      for (int i = kSubmitted; i < kBoundaries; ++i) t.b[i] = -1;
      ++t.attempts;
    } else if (e.event == "task_submitted") {
      raw[e.uid].b[kSubmitted] = e.wall_us;
    } else if (e.event == "unit_exec_start") {
      RawTask& t = raw[e.uid];
      t.b[kExecStart] = e.wall_us;
      if (v >= 0) {
        t.vt.exec_start = v;
        if (trace.first_exec_v < 0 || v < trace.first_exec_v)
          trace.first_exec_v = v;
      }
    } else if (e.event == "unit_exec_stop") {
      RawTask& t = raw[e.uid];
      t.b[kExecStop] = e.wall_us;
      if (v >= 0) {
        t.vt.exec_end = v;
        if (v > trace.last_exec_v) trace.last_exec_v = v;
      }
    } else if (e.event == "task_dequeued") {
      raw[e.uid].b[kDequeued] = e.wall_us;
    } else if (e.event == "task_done") {
      RawTask& t = raw[e.uid];
      t.b[kDone] = e.wall_us;
      t.resolved_done = true;
    }
    // --- virtual-time unit view (paper overhead inputs) -----------------
    else if (e.event == "unit_received") {
      if (v >= 0) raw[e.uid].vt.received = v;
    } else if (e.event == "unit_done") {
      if (v >= 0) raw[e.uid].vt.done = v;
    } else if (e.event == "unit_stage_in_start") {
      if (v >= 0) {
        raw[e.uid].vt.stage_in_start = v;
        if (trace.first_stage_v < 0 || v < trace.first_stage_v)
          trace.first_stage_v = v;
      }
    } else if (e.event == "unit_stage_in_stop") {
      if (v >= 0) {
        UnitVirtualTimes& vt = raw[e.uid].vt;
        if (vt.stage_in_start >= 0) vt.stage_in += v - vt.stage_in_start;
        if (v > trace.last_stage_v) trace.last_stage_v = v;
      }
    } else if (e.event == "unit_stage_out_start") {
      if (v >= 0) {
        raw[e.uid].vt.stage_out_start = v;
        if (trace.first_stage_v < 0 || v < trace.first_stage_v)
          trace.first_stage_v = v;
      }
    } else if (e.event == "unit_stage_out_stop") {
      if (v >= 0) {
        UnitVirtualTimes& vt = raw[e.uid].vt;
        if (vt.stage_out_start >= 0) vt.stage_out += v - vt.stage_out_start;
        if (v > trace.last_stage_v) trace.last_stage_v = v;
      }
    }
    // --- run-level virtual spans ----------------------------------------
    else if (e.event == "rts_init_start") {
      if (v >= 0 && trace.rts_init_start_v < 0) trace.rts_init_start_v = v;
    } else if (e.event == "rts_init_stop") {
      if (v >= 0) trace.rts_init_stop_v = v;
    } else if (e.event == "rts_teardown_start") {
      if (v >= 0 && trace.rts_teardown_start_v < 0)
        trace.rts_teardown_start_v = v;
    } else if (e.event == "rts_teardown_stop") {
      if (v >= 0) trace.rts_teardown_stop_v = v;
    }
    // --- run-level wall phases ------------------------------------------
    else if (e.event == "amgr_setup_start") {
      phase("setup").start_us = e.wall_us;
    } else if (e.event == "amgr_setup_stop") {
      phase("setup").end_us = e.wall_us;
    } else if (e.event == "resource_acquire_start") {
      phase("resource_acquire").start_us = e.wall_us;
    } else if (e.event == "resource_acquire_stop") {
      phase("resource_acquire").end_us = e.wall_us;
    } else if (e.event == "amgr_run_start") {
      phase("run").start_us = e.wall_us;
    } else if (e.event == "amgr_run_stop") {
      phase("run").end_us = e.wall_us;
    } else if (e.event == "amgr_teardown_start") {
      phase("teardown").start_us = e.wall_us;
    } else if (e.event == "amgr_teardown_stop") {
      phase("teardown").end_us = e.wall_us;
    }
    // --- stage / pipeline scopes ----------------------------------------
    else if (e.event == "stage_schedule_start") {
      ScopeSpan& s = trace.stages[e.uid];
      s.uid = e.uid;
      if (s.start_us < 0) s.start_us = e.wall_us;
    } else if (e.event == "stage_done") {
      ScopeSpan& s = trace.stages[e.uid];
      s.uid = e.uid;
      s.end_us = e.wall_us;
    } else if (e.event == "pipeline_done") {
      ScopeSpan& p = trace.pipelines[e.uid];
      p.uid = e.uid;
      p.end_us = e.wall_us;
    }
  }

  // Materialize the per-task chains and attach parent links.
  for (auto& [uid, r] : raw) {
    TaskTrace t;
    t.uid = uid;
    t.vt = r.vt;
    t.resolved_done = r.resolved_done;
    t.attempts = r.attempts;
    stitch_chain(r, t);
    const auto stage_it = links.task_stage.find(uid);
    if (stage_it != links.task_stage.end()) {
      t.stage_uid = stage_it->second;
      trace.stages[t.stage_uid].uid = t.stage_uid;
      const auto pipe_it = links.stage_pipeline.find(t.stage_uid);
      if (pipe_it != links.stage_pipeline.end()) {
        t.pipeline_uid = pipe_it->second;
      }
    }
    trace.tasks.emplace(uid, std::move(t));
  }

  // Stage -> pipeline links; pipelines start when their first stage does.
  for (auto& [stage_uid, stage] : trace.stages) {
    const auto it = links.stage_pipeline.find(stage_uid);
    if (it == links.stage_pipeline.end()) continue;
    stage.parent = it->second;
    ScopeSpan& pipeline = trace.pipelines[it->second];
    pipeline.uid = it->second;
    if (stage.start_us >= 0 &&
        (pipeline.start_us < 0 || stage.start_us < pipeline.start_us)) {
      pipeline.start_us = stage.start_us;
    }
  }
  return trace;
}

Trace build_trace(const Profiler& profiler, const TraceLinks& links) {
  return build_trace(profiler.events(), links);
}

// ----------------------------------------------------------- exporters --

namespace {

void emit_complete(std::FILE* f, bool& first, const std::string& name,
                   const char* cat, int pid, int tid, std::int64_t start_us,
                   std::int64_t end_us, const std::string& arg_uid = "") {
  if (start_us < 0 || end_us < start_us) return;
  std::fprintf(f,
               "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
               "\"ts\":%lld,\"dur\":%lld,\"pid\":%d,\"tid\":%d",
               first ? "" : ",", json::escape(name).c_str(), cat,
               static_cast<long long>(start_us),
               static_cast<long long>(end_us - start_us), pid, tid);
  if (!arg_uid.empty()) {
    std::fprintf(f, ",\"args\":{\"uid\":\"%s\"}",
                 json::escape(arg_uid).c_str());
  }
  std::fputc('}', f);
  first = false;
}

void emit_metadata(std::FILE* f, bool& first, const char* what, int pid,
                   int tid, const std::string& label) {
  std::fprintf(f,
               "%s\n{\"name\":\"%s\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,"
               "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
               first ? "" : ",", what, pid, tid,
               json::escape(label).c_str());
  first = false;
}

}  // namespace

void write_chrome_trace(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw EnTKError("write_chrome_trace: cannot open " + path);
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;

  // pid 0 = the run scope; pid 1..N = pipelines (sorted by uid).
  std::map<std::string, int> pipeline_pid;
  for (const auto& [uid, p] : trace.pipelines) {
    (void)p;
    pipeline_pid.emplace(uid, static_cast<int>(pipeline_pid.size()) + 1);
  }
  auto pid_of = [&pipeline_pid](const std::string& pipeline_uid) {
    const auto it = pipeline_pid.find(pipeline_uid);
    return it == pipeline_pid.end() ? 0 : it->second;
  };

  emit_metadata(f, first, "process_name", 0, 0, "entk.run");
  for (const auto& [uid, pid] : pipeline_pid) {
    emit_metadata(f, first, "process_name", pid, 0, uid);
  }
  const auto& names = task_span_names();
  const std::vector<int> pids = [&] {
    std::vector<int> out{0};
    for (const auto& [uid, pid] : pipeline_pid) {
      (void)uid;
      out.push_back(pid);
    }
    return out;
  }();
  for (const int pid : pids) {
    emit_metadata(f, first, "thread_name", pid, 0, "run");
    emit_metadata(f, first, "thread_name", pid, 1, "stages");
    for (std::size_t i = 0; i < names.size(); ++i) {
      emit_metadata(f, first, "thread_name", pid, static_cast<int>(i) + 2,
                    "task." + names[i]);
    }
  }

  for (const PhaseSpan& p : trace.phases) {
    emit_complete(f, first, p.name, "run", 0, 0, p.start_us, p.end_us);
  }
  for (const auto& [uid, p] : trace.pipelines) {
    emit_complete(f, first, uid, "pipeline", pid_of(uid), 1, p.start_us,
                  p.end_us);
  }
  for (const auto& [uid, s] : trace.stages) {
    emit_complete(f, first, uid, "stage", pid_of(s.parent), 1, s.start_us,
                  s.end_us);
  }
  for (const auto& [uid, t] : trace.tasks) {
    const int pid = pid_of(t.pipeline_uid);
    for (const TaskSpan& span : t.spans) {
      int tid = 2;
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == span.name) tid = static_cast<int>(i) + 2;
      }
      emit_complete(f, first, span.name, "task", pid, tid, span.start_us,
                    span.end_us, uid);
    }
  }

  std::fputs("\n]}\n", f);
  std::fclose(f);
}

void fill_span_histograms(const Trace& trace, MetricsRegistry& registry) {
  // Resolve all handles up front: one lookup per span name, not per task.
  std::map<std::string, Histogram*> by_name;
  for (const std::string& name : task_span_names()) {
    by_name[name] = &registry.histogram("span." + name + "_us");
  }
  Histogram& total = registry.histogram("span.total_us");
  for (const auto& [uid, t] : trace.tasks) {
    (void)uid;
    if (t.spans.empty()) continue;
    for (const TaskSpan& span : t.spans) {
      const auto it = by_name.find(span.name);
      if (it != by_name.end()) {
        it->second->observe(static_cast<double>(span.end_us - span.start_us));
      }
    }
    total.observe(static_cast<double>(t.spans.back().end_us -
                                      t.spans.front().start_us));
  }
}

std::string span_latency_table(const MetricsRegistry& registry) {
  std::map<std::string, MetricSnapshot> histograms;
  for (MetricSnapshot& m : registry.snapshot()) {
    if (m.type == "histogram" && m.name.rfind("span.", 0) == 0) {
      histograms.emplace(m.name, std::move(m));
    }
  }
  std::string out =
      "  span            count     p50 (us)     p95 (us)     max (us)\n";
  std::vector<std::string> order;
  for (const std::string& name : task_span_names()) {
    order.push_back("span." + name + "_us");
  }
  order.push_back("span.total_us");
  for (const std::string& name : order) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) continue;
    const MetricSnapshot& m = it->second;
    // "span.enqueue_us" -> "enqueue"
    const std::string label = name.substr(5, name.size() - 5 - 3);
    char line[160];
    std::snprintf(line, sizeof(line), "  %-12s %8llu %12.1f %12.1f %12.1f\n",
                  label.c_str(), static_cast<unsigned long long>(m.count),
                  m.quantile(0.50), m.quantile(0.95), m.max);
    out += line;
  }
  return out;
}

}  // namespace entk::obs
