// Causal task tracer: the post-hoc half of the observability subsystem.
//
// The raw Profiler (src/common/profiler.hpp) stays the single event source
// every component already feeds; this module stitches its flat event log
// into a causal model:
//
//   - per-task span chains across WFProcessor, the broker queues, the
//     ExecManager and the RTS, keyed by the task uid:
//         enqueue -> schedule -> exec -> sync -> done
//     (wall-clock microseconds; each boundary is clamped monotone, since
//     the underlying events are recorded from different threads),
//   - stage and pipeline scope spans with parent/child links,
//   - run-level phase spans (setup / run / teardown, resource acquisition)
//     and the virtual-time aggregates (RTS init/teardown, exec makespan,
//     staging) that OverheadReport derives the paper's seven overhead
//     categories from.
//
// Exporters: write_chrome_trace() emits Chrome trace_event JSON loadable
// in chrome://tracing or Perfetto; fill_span_histograms() feeds a
// MetricsRegistry so span latencies get p50/p95/max summaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/profiler.hpp"
#include "src/obs/metrics.hpp"

namespace entk::obs {

/// Names of the per-task causal chain segments, in order.
/// enqueue : Pending-queue publish -> Emgr pickup+submission
/// schedule: Emgr submission -> RTS starts executing the unit
/// exec    : unit execution on the RTS
/// sync    : execution end -> Dequeue drains the Done-queue result
/// done    : Dequeue pickup -> confirmed DONE state commit
inline const std::vector<std::string>& task_span_names() {
  static const std::vector<std::string> names = {"enqueue", "schedule", "exec",
                                                 "sync", "done"};
  return names;
}

/// One wall-clock segment of a task's causal chain.
struct TaskSpan {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
};

/// Virtual-time view of one unit's life inside the RTS (the event shapes
/// OverheadReport historically scanned for). -1 = never observed.
struct UnitVirtualTimes {
  double received = -1, exec_start = -1, exec_end = -1, done = -1;
  double stage_in = 0, stage_out = 0;          // accumulated durations
  double stage_in_start = -1, stage_out_start = -1;
};

struct TaskTrace {
  std::string uid;
  std::string stage_uid;     ///< from TraceLinks ("" when unknown)
  std::string pipeline_uid;  ///< from TraceLinks ("" when unknown)
  std::vector<TaskSpan> spans;  ///< causal chain, monotone, possibly partial
  UnitVirtualTimes vt;
  bool resolved_done = false;  ///< a confirmed DONE commit was traced
  int attempts = 0;            ///< enqueue events seen (resubmissions > 1)
};

/// Stage / pipeline scope span (wall us). -1 = boundary never observed.
struct ScopeSpan {
  std::string uid;
  std::string parent;  ///< pipeline uid for stages, "" for pipelines
  std::int64_t start_us = -1;
  std::int64_t end_us = -1;
};

/// Run-level phase (amgr_setup, amgr_run, amgr_teardown, resource_acquire).
struct PhaseSpan {
  std::string name;
  std::int64_t start_us = -1;
  std::int64_t end_us = -1;
};

/// Parent links the flat event log cannot express; supplied by the caller
/// (AppManager walks its ObjectRegistry). All maps may be empty.
struct TraceLinks {
  std::map<std::string, std::string> task_stage;
  std::map<std::string, std::string> stage_pipeline;
};

struct Trace {
  std::vector<PhaseSpan> phases;
  std::map<std::string, TaskTrace> tasks;
  std::map<std::string, ScopeSpan> stages;
  std::map<std::string, ScopeSpan> pipelines;

  // Virtual-time aggregates (paper overhead inputs; -1/-inf = absent).
  double rts_init_start_v = -1, rts_init_stop_v = -1;
  double rts_teardown_start_v = -1, rts_teardown_stop_v = -1;
  double first_exec_v = -1, last_exec_v = -1;
  double first_stage_v = -1, last_stage_v = -1;

  double rts_init_s() const {
    return (rts_init_start_v >= 0 && rts_init_stop_v >= rts_init_start_v)
               ? rts_init_stop_v - rts_init_start_v
               : 0.0;
  }
  double rts_teardown_s() const {
    return (rts_teardown_start_v >= 0 &&
            rts_teardown_stop_v >= rts_teardown_start_v)
               ? rts_teardown_stop_v - rts_teardown_start_v
               : 0.0;
  }
  double exec_span_s() const {
    return (first_exec_v >= 0 && last_exec_v >= first_exec_v)
               ? last_exec_v - first_exec_v
               : 0.0;
  }
  double staging_span_s() const {
    return (first_stage_v >= 0 && last_stage_v >= first_stage_v)
               ? last_stage_v - first_stage_v
               : 0.0;
  }
};

/// Stitch a trace out of a flat event log. Tolerates partial logs: absent
/// events simply leave the corresponding spans/aggregates unset.
Trace build_trace(const std::vector<ProfileEvent>& events,
                  const TraceLinks& links = {});
Trace build_trace(const Profiler& profiler, const TraceLinks& links = {});

/// Chrome trace_event JSON ("X" complete events + "M" metadata), loadable
/// in chrome://tracing / Perfetto. One pid per pipeline, one tid lane per
/// chain segment. Throws std::runtime_error on I/O failure.
void write_chrome_trace(const Trace& trace, const std::string& path);

/// Record every task span's duration into `registry` histograms named
/// "span.<name>_us", plus "span.total_us" for the whole chain.
void fill_span_histograms(const Trace& trace, MetricsRegistry& registry);

/// Aligned per-span latency table (count / p50 / p95 / max in us) over the
/// "span.*_us" histograms of `registry` — the `--summarize` output.
std::string span_latency_table(const MetricsRegistry& registry);

}  // namespace entk::obs
