#include "src/rts/local_rts.hpp"

#include <algorithm>
#include <chrono>
#include <random>

#include "src/common/error.hpp"
#include "src/common/ids.hpp"
#include "src/rts/process.hpp"
#include "src/common/log.hpp"

namespace entk::rts {

LocalRts::LocalRts(LocalRtsConfig config, ClockPtr clock, ProfilerPtr profiler)
    : Component(generate_uid("rts.local"), std::move(profiler)),
      config_(config),
      clock_(std::move(clock)) {}

LocalRts::~LocalRts() { kill(); }

void LocalRts::initialize() {
  profiler_->record(name(), "rts_init_start", "", clock_->now());
  Component::start();
  healthy_ = true;
  profiler_->record(name(), "rts_init_stop", "", clock_->now());
}

void LocalRts::on_start() {
  for (int i = 0; i < config_.workers; ++i) {
    const std::uint64_t seed = config_.seed + static_cast<std::uint64_t>(i);
    add_worker("worker-" + std::to_string(i),
               [this, seed] { worker_loop(seed); });
  }
}

void LocalRts::on_stop_requested() { cv_.notify_all(); }

void LocalRts::set_completion_callback(
    std::function<void(const UnitResult&)> callback) {
  callback_ = std::move(callback);
}

void LocalRts::submit(std::vector<TaskUnit> units) {
  if (!healthy_.load()) throw RtsError(name() + ": submit on unhealthy RTS");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (TaskUnit& u : units) {
      in_flight_.insert(u.uid);
      queue_.push_back(std::move(u));
      ++submitted_;
    }
  }
  cv_.notify_all();
}

bool LocalRts::is_healthy() const { return healthy_.load(); }

void LocalRts::terminate() {
  healthy_ = false;
  if (state() != ComponentState::Running) return;  // never started / killed
  // Drain: wait for queued units to finish before stopping workers. Bail
  // out if a worker faults mid-drain: nothing would empty the queue.
  while (state() == ComponentState::Running) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty() && in_flight_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Component::stop();
  profiler_->record(name(), "rts_teardown_stop", "", clock_->now());
}

void LocalRts::kill() {
  healthy_ = false;
  const ComponentState s = state();
  if (s != ComponentState::Running && s != ComponentState::Draining) return;
  // In-flight units deliberately stay tracked: the ExecManager heartbeat
  // reads in_flight_units() off the dead instance to resubmit them.
  fail("killed");
}

RtsStats LocalRts::stats() const {
  RtsStats s;
  s.units_submitted = submitted_.load();
  s.units_completed = completed_.load();
  s.units_failed = failed_.load();
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mutex_));
  s.units_in_flight = in_flight_.size();
  return s;
}

std::vector<std::string> LocalRts::in_flight_units() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mutex_));
  return {in_flight_.begin(), in_flight_.end()};
}

void LocalRts::worker_loop(std::uint64_t worker_seed) {
  std::mt19937_64 rng(worker_seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  while (true) {
    beat();
    TaskUnit unit;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_requested() || !queue_.empty(); });
      if (stop_requested()) return;
      unit = std::move(queue_.front());
      queue_.pop_front();
    }
    UnitResult result;
    result.uid = unit.uid;
    result.name = unit.name;
    result.metadata = unit.metadata;
    result.submit_t = clock_->now();
    result.sched_t = result.submit_t;
    result.exec_start_t = clock_->now();
    profiler_->record(name(), "unit_exec_start", unit.uid, result.exec_start_t);

    int exit_code = 0;
    const bool injected_failure =
        config_.failure_probability > 0.0 &&
        dist(rng) < config_.failure_probability;
    if (injected_failure) {
      exit_code = 1;
    } else {
      if (unit.duration_s > 0) {
        // Interruptible sleep: a kill() must not wait out long durations.
        double remaining_wall = unit.duration_s * clock_->scale();
        while (remaining_wall > 0 && !stop_requested()) {
          const double slice = std::min(remaining_wall, 0.005);
          std::this_thread::sleep_for(std::chrono::duration<double>(slice));
          remaining_wall -= slice;
        }
        if (stop_requested()) {
          // Hard death mid-execution: the unit is lost (stays in-flight,
          // no result) — the paper's RTS-failure semantics.
          return;
        }
      }
      if (unit.callable) {
        try {
          exit_code = unit.callable();
        } catch (const std::exception& e) {
          ENTK_WARN(name()) << "unit " << unit.uid << " threw: " << e.what();
          exit_code = 255;
        }
      } else if (is_spawnable(unit.executable)) {
        // A real stand-alone executable: spawn it and adopt its exit code.
        exit_code = run_process(unit.executable, unit.arguments);
      }
    }
    result.exec_end_t = clock_->now();
    result.done_t = result.exec_end_t;
    result.exit_code = exit_code;
    result.outcome = exit_code == 0 ? UnitOutcome::Done : UnitOutcome::Failed;
    profiler_->record(name(), "unit_exec_stop", unit.uid, result.exec_end_t);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_.erase(unit.uid);
    }
    if (exit_code == 0) ++completed_; else ++failed_;
    if (callback_) callback_(result);
  }
}

}  // namespace entk::rts
