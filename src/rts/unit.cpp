#include "src/rts/unit.hpp"

namespace entk::rts {

const char* to_string(UnitOutcome o) {
  switch (o) {
    case UnitOutcome::Done: return "DONE";
    case UnitOutcome::Failed: return "FAILED";
    case UnitOutcome::Canceled: return "CANCELED";
    case UnitOutcome::Lost: return "LOST";
  }
  return "?";
}

namespace {

json::Value staging_to_json(const std::vector<saga::StagingDirective>& list) {
  json::Value arr = json::Array{};
  for (const saga::StagingDirective& d : list) {
    json::Value v;
    v["source"] = d.source;
    v["target"] = d.target;
    v["action"] = saga::to_string(d.action);
    v["bytes"] = d.bytes;
    arr.push_back(std::move(v));
  }
  return arr;
}

std::vector<saga::StagingDirective> staging_from_json(const json::Value& v) {
  std::vector<saga::StagingDirective> out;
  if (!v.is_array()) return out;
  for (const json::Value& item : v.as_array()) {
    saga::StagingDirective d;
    d.source = item.get_string("source", "");
    d.target = item.get_string("target", "");
    const std::string action = item.get_string("action", "copy");
    if (action == "link") d.action = saga::StagingAction::Link;
    else if (action == "transfer") d.action = saga::StagingAction::Transfer;
    else d.action = saga::StagingAction::Copy;
    d.bytes = static_cast<std::uint64_t>(item.get_int("bytes", 0));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

json::Value TaskUnit::to_json() const {
  json::Value v;
  v["uid"] = uid;
  v["name"] = name;
  v["executable"] = executable;
  json::Value args = json::Array{};
  for (const std::string& a : arguments) args.push_back(a);
  v["arguments"] = std::move(args);
  v["cores"] = cores;
  v["gpus"] = gpus;
  v["exclusive_nodes"] = exclusive_nodes;
  v["duration_s"] = duration_s;
  v["has_callable"] = static_cast<bool>(callable);
  v["input_staging"] = staging_to_json(input_staging);
  v["output_staging"] = staging_to_json(output_staging);
  v["metadata"] = metadata;
  return v;
}

TaskUnit TaskUnit::from_json(const json::Value& v) {
  TaskUnit u;
  u.uid = v.get_string("uid", "");
  u.name = v.get_string("name", "");
  u.executable = v.get_string("executable", "");
  if (v.contains("arguments") && v.at("arguments").is_array()) {
    for (const json::Value& a : v.at("arguments").as_array()) {
      if (a.is_string()) u.arguments.push_back(a.as_string());
    }
  }
  u.cores = static_cast<int>(v.get_int("cores", 1));
  u.gpus = static_cast<int>(v.get_int("gpus", 0));
  u.exclusive_nodes = v.get_bool("exclusive_nodes", false);
  u.duration_s = v.get_double("duration_s", 0.0);
  if (v.contains("input_staging"))
    u.input_staging = staging_from_json(v.at("input_staging"));
  if (v.contains("output_staging"))
    u.output_staging = staging_from_json(v.at("output_staging"));
  if (v.contains("metadata")) u.metadata = v.at("metadata");
  return u;
}

json::Value UnitResult::to_json() const {
  json::Value v;
  v["uid"] = uid;
  v["name"] = name;
  v["outcome"] = to_string(outcome);
  v["exit_code"] = exit_code;
  v["submit_t"] = submit_t;
  v["sched_t"] = sched_t;
  v["exec_start_t"] = exec_start_t;
  v["exec_end_t"] = exec_end_t;
  v["done_t"] = done_t;
  v["staging_in_s"] = staging_in_s;
  v["staging_out_s"] = staging_out_s;
  v["metadata"] = metadata;
  return v;
}

UnitResult UnitResult::from_json(const json::Value& v) {
  UnitResult r;
  r.uid = v.get_string("uid", "");
  r.name = v.get_string("name", "");
  const std::string outcome = v.get_string("outcome", "DONE");
  if (outcome == "FAILED") r.outcome = UnitOutcome::Failed;
  else if (outcome == "CANCELED") r.outcome = UnitOutcome::Canceled;
  else if (outcome == "LOST") r.outcome = UnitOutcome::Lost;
  else r.outcome = UnitOutcome::Done;
  r.exit_code = static_cast<int>(v.get_int("exit_code", 0));
  r.submit_t = v.get_double("submit_t", 0.0);
  r.sched_t = v.get_double("sched_t", 0.0);
  r.exec_start_t = v.get_double("exec_start_t", 0.0);
  r.exec_end_t = v.get_double("exec_end_t", 0.0);
  r.done_t = v.get_double("done_t", 0.0);
  r.staging_in_s = v.get_double("staging_in_s", 0.0);
  r.staging_out_s = v.get_double("staging_out_s", 0.0);
  if (v.contains("metadata")) r.metadata = v.at("metadata");
  return r;
}

}  // namespace entk::rts
