#include "src/rts/unit_manager.hpp"

#include "src/common/log.hpp"

namespace entk::rts {

UnitManager::UnitManager(std::string uid, ClockPtr clock, ProfilerPtr profiler,
                         mq::BrokerPtr broker, std::string agent_queue,
                         std::string done_queue,
                         std::shared_ptr<UnitRegistry> registry)
    : Component(std::move(uid), std::move(profiler)),
      clock_(std::move(clock)),
      broker_(std::move(broker)),
      agent_queue_(std::move(agent_queue)),
      done_queue_(std::move(done_queue)),
      registry_(std::move(registry)) {}

UnitManager::~UnitManager() { stop(); }

void UnitManager::set_callback(std::function<void(const UnitResult&)> cb) {
  callback_ = std::move(cb);
}

void UnitManager::start() {
  if (state() == ComponentState::Running) return;
  Component::start();
}

void UnitManager::on_start() {
  add_worker("callback", [this] { callback_loop(); });
}

void UnitManager::submit(std::vector<TaskUnit> units) {
  for (TaskUnit& unit : units) {
    profiler_->record(name(), "unit_submit", unit.uid, clock_->now());
    json::Value wire = unit.to_json();
    registry_->put(std::move(unit));
    broker_->publish(agent_queue_,
                     mq::Message::json_body(agent_queue_, std::move(wire)));
    ++submitted_;
  }
}

void UnitManager::callback_loop() {
  while (!stop_requested()) {
    beat();
    auto delivery = broker_->get(done_queue_, 0.002);
    if (!delivery) continue;
    UnitResult result;
    try {
      result = UnitResult::from_json(delivery->message.payload());
    } catch (const EnTKError& e) {
      ENTK_WARN(name()) << "dropping malformed result: " << e.what();
      broker_->ack(done_queue_, delivery->delivery_tag);
      continue;
    }
    profiler_->record(name(), "unit_callback", result.uid, clock_->now());
    ++delivered_;
    if (callback_) callback_(result);
    broker_->ack(done_queue_, delivery->delivery_tag);
  }
}

}  // namespace entk::rts
