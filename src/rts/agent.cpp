#include "src/rts/agent.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/log.hpp"

namespace entk::rts {

// ----------------------------------------------------------- UnitRegistry

void UnitRegistry::put(TaskUnit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  units_[unit.uid] = std::move(unit);
}

TaskUnit UnitRegistry::take(const std::string& uid,
                            const json::Value& from_wire) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = units_.find(uid);
    if (it != units_.end()) {
      TaskUnit u = std::move(it->second);
      units_.erase(it);
      return u;
    }
  }
  return TaskUnit::from_json(from_wire);
}

std::size_t UnitRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return units_.size();
}

// ------------------------------------------------------------------ Agent

Agent::Agent(std::string uid, AgentConfig config, sim::NodeMap* node_map,
             sim::SharedFilesystem* filesystem,
             sim::FailureModel* failure_model, double compute_factor,
             ClockPtr clock, ProfilerPtr profiler, mq::BrokerPtr broker,
             std::string in_queue, std::string out_queue,
             std::shared_ptr<UnitRegistry> registry)
    : Component(std::move(uid), std::move(profiler)),
      config_(config),
      node_map_(node_map),
      filesystem_(filesystem),
      failure_model_(failure_model),
      compute_factor_(compute_factor),
      clock_(std::move(clock)),
      broker_(std::move(broker)),
      in_queue_(std::move(in_queue)),
      out_queue_(std::move(out_queue)),
      registry_(std::move(registry)) {}

Agent::~Agent() { kill(); }

void Agent::start() {
  if (state() == ComponentState::Running) return;
  Component::start();
}

void Agent::on_start() {
  stopping_ = false;
  next_dispatch_v_ = clock_->now();
  stager_free_v_.assign(
      static_cast<std::size_t>(std::max(1, config_.stager_workers)),
      clock_->now());
  profiler_->record(name(), "agent_start", "", clock_->now());
  add_worker("intake", [this] { intake_loop(); });
  add_worker("executor", [this] { executor_loop(); });
  for (int i = 0; i < config_.callable_workers; ++i) {
    add_worker("callable-" + std::to_string(i), [this] { worker_loop(); });
  }
}

void Agent::on_stop_requested() {
  exec_cv_.notify_all();
  worker_cv_.notify_all();
}

void Agent::notify_capacity() {
  // The executor re-runs placement at the top of every loop iteration;
  // waking it is enough for pending units to see the resized NodeMap.
  exec_cv_.notify_all();
}

void Agent::stop() {
  if (state() != ComponentState::Running) return;
  stopping_ = true;
  // Wait until everything in flight has drained or been canceled. Bail out
  // if a worker faults mid-drain: nothing would empty in_flight_ anymore.
  while (state() == ComponentState::Running) {
    {
      // Cancel units that have not been placed on cores yet.
      std::lock_guard<std::mutex> lock(exec_mutex_);
      for (CtxPtr& ctx : pending_) {
        finalize_unit(ctx, UnitOutcome::Canceled);
      }
      pending_.clear();
    }
    {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      if (in_flight_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Component::stop();
  profiler_->record(name(), "agent_stop", "", clock_->now());
}

void Agent::kill() {
  const ComponentState s = state();
  if (s != ComponentState::Running && s != ComponentState::Draining) return;
  stopping_ = true;
  fail("killed");
  {
    // In-flight units are lost: no results, allocations dropped.
    std::lock_guard<std::mutex> lock(flight_mutex_);
    in_flight_.clear();
  }
  profiler_->record(name(), "agent_killed", "", clock_->now());
}

std::vector<std::string> Agent::in_flight() const {
  std::lock_guard<std::mutex> lock(flight_mutex_);
  std::vector<std::string> out;
  out.reserve(in_flight_.size());
  for (const auto& [uid, ctx] : in_flight_) {
    (void)ctx;
    out.push_back(uid);
  }
  return out;
}

std::pair<double, double> Agent::charge_staging(
    const std::vector<saga::StagingDirective>& directives) {
  double charge = 0.0;
  for (const saga::StagingDirective& d : directives) {
    sim::FsOp op = sim::FsOp::Copy;
    if (d.action == saga::StagingAction::Link) op = sim::FsOp::Link;
    if (d.action == saga::StagingAction::Transfer) op = sim::FsOp::Transfer;
    charge += filesystem_->charge(op, d.bytes);
  }
  std::lock_guard<std::mutex> lock(stage_mutex_);
  auto it = std::min_element(stager_free_v_.begin(), stager_free_v_.end());
  const double start_v = std::max(*it, clock_->now());
  const double end_v = start_v + charge;
  *it = end_v;
  return {start_v, end_v};
}

void Agent::schedule_event_locked(double at_v, Phase phase, CtxPtr ctx) {
  events_.push(Event{at_v, phase, std::move(ctx)});
  exec_cv_.notify_all();
}

void Agent::intake_loop() {
  while (!stop_requested()) {
    beat();
    auto delivery = broker_->get(in_queue_, config_.poll_timeout_s);
    if (!delivery) {
      if (stopping_.load()) return;
      continue;
    }
    std::shared_ptr<const json::Value> wire;
    try {
      wire = delivery->message.payload();  // shared, zero-copy in-process
    } catch (const json::ParseError&) {
      broker_->ack(in_queue_, delivery->delivery_tag);
      ENTK_WARN(name()) << "dropping malformed unit message";
      continue;
    }
    const std::string uid = wire->get_string("uid", "");
    auto ctx = std::make_shared<UnitCtx>();
    ctx->unit = registry_->take(uid, *wire);
    ctx->result.uid = ctx->unit.uid;
    ctx->result.name = ctx->unit.name;
    ctx->result.metadata = ctx->unit.metadata;
    ctx->result.submit_t = clock_->now();
    profiler_->record(name(), "unit_received", uid, ctx->result.submit_t);
    {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      in_flight_[uid] = ctx;
    }
    broker_->ack(in_queue_, delivery->delivery_tag);
    if (ctx->unit.input_staging.empty()) {
      enqueue_pending(std::move(ctx));
    } else {
      const auto [start_v, end_v] = charge_staging(ctx->unit.input_staging);
      ctx->result.staging_in_s = end_v - start_v;
      profiler_->record(name(), "unit_stage_in_start", uid, start_v);
      profiler_->record(name(), "unit_stage_in_stop", uid, end_v);
      std::lock_guard<std::mutex> lock(exec_mutex_);
      schedule_event_locked(end_v, Phase::StageInDone, std::move(ctx));
    }
  }
}

void Agent::enqueue_pending(CtxPtr ctx) {
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    pending_.push_back(std::move(ctx));
  }
  exec_cv_.notify_all();
}

void Agent::try_place_pending_locked() {
  // FIFO placement: stop at the first unit that does not fit, preserving
  // submission order (head-of-line blocking, like RP's agent scheduler).
  while (!pending_.empty()) {
    CtxPtr ctx = pending_.front();
    sim::SlotRequest req;
    req.cores = ctx->unit.cores;
    req.gpus = ctx->unit.gpus;
    req.exclusive_nodes = ctx->unit.exclusive_nodes;
    if (!node_map_->fits_capacity(req)) {
      // Can never run on this pilot: fail immediately.
      pending_.pop_front();
      ctx->result.exit_code = -1;
      ctx->will_fail = true;
      finalize_unit(std::move(ctx), UnitOutcome::Failed);
      continue;
    }
    auto alloc = node_map_->try_allocate(req);
    if (!alloc) return;  // wait for a completion to free resources
    pending_.pop_front();

    ctx->alloc_id = alloc->id;
    const double now_v = clock_->now();
    ctx->result.sched_t = now_v;
    // Bounded spawn rate: units dispatch one-by-one through the executor.
    const double start_v = std::max(now_v, next_dispatch_v_);
    next_dispatch_v_ = start_v + 1.0 / config_.dispatch_rate_per_s;
    ctx->result.exec_start_t = start_v;

    ++executing_;
    const double duration = ctx->unit.duration_s * compute_factor_;
    const double end_v = start_v + config_.env_setup_s + duration;
    ctx->result.exec_end_t = end_v;
    profiler_->record(name(), "unit_exec_start", ctx->unit.uid, start_v);

    if (ctx->unit.callable) {
      // Real-compute units decide failure from their exit code (plus the
      // injection model, evaluated now).
      ctx->will_fail = failure_model_ != nullptr &&
                       failure_model_->should_fail(executing_);
      if (ctx->will_fail) {
        ctx->result.exit_code = 1;
        const double fail_v = start_v + config_.env_setup_s +
                              duration * config_.failed_unit_fraction;
        ctx->result.exec_end_t = fail_v;
        schedule_event_locked(fail_v, Phase::ExecDone, std::move(ctx));
      } else {
        std::lock_guard<std::mutex> lock(worker_mutex_);
        worker_jobs_.push_back(std::move(ctx));
        worker_cv_.notify_one();
      }
    } else {
      // Modeled units: the overload failure decision happens once the
      // whole placement wave is executing (mid environment-setup), so a
      // unit placed early in a 32-wide burst sees the full concurrency —
      // matching the paper's filesystem-overload regime.
      if (failure_model_ != nullptr) {
        schedule_event_locked(start_v + 0.5 * config_.env_setup_s,
                              Phase::FailureCheck, ctx);
      }
      schedule_event_locked(end_v, Phase::ExecDone, std::move(ctx));
    }
  }
}

void Agent::executor_loop() {
  std::unique_lock<std::mutex> lock(exec_mutex_);
  while (!stop_requested()) {
    beat();
    try_place_pending_locked();
    if (events_.empty()) {
      exec_cv_.wait_for(lock, std::chrono::milliseconds(2));
      continue;
    }
    const double next_at_v = events_.top().at_v;
    const double now_v = clock_->now();
    if (now_v < next_at_v) {
      // Sleep toward the ABSOLUTE deadline (bounded so kill() stays
      // responsive); overshoot cannot accumulate across events.
      const double wall_wait = (next_at_v - now_v) * clock_->scale();
      exec_cv_.wait_for(lock, std::chrono::duration<double>(
                                  std::min(wall_wait, 0.05)));
      continue;
    }
    Event event = events_.top();
    events_.pop();
    lock.unlock();
    switch (event.phase) {
      case Phase::StageInDone:
        enqueue_pending(std::move(event.ctx));
        break;
      case Phase::FailureCheck:
        handle_failure_check(std::move(event.ctx));
        break;
      case Phase::ExecDone:
        handle_exec_done(std::move(event.ctx));
        break;
      case Phase::StageOutDone: {
        const UnitOutcome outcome =
            event.ctx->will_fail ? UnitOutcome::Failed : UnitOutcome::Done;
        finalize_unit(std::move(event.ctx), outcome);
        break;
      }
    }
    lock.lock();
  }
}

void Agent::worker_loop() {
  while (!stop_requested()) {
    beat();
    CtxPtr ctx;
    {
      std::unique_lock<std::mutex> lock(worker_mutex_);
      worker_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
        return stop_requested() || !worker_jobs_.empty();
      });
      if (stop_requested()) return;
      if (worker_jobs_.empty()) continue;
      ctx = std::move(worker_jobs_.front());
      worker_jobs_.pop_front();
    }
    int exit_code = 0;
    try {
      exit_code = ctx->unit.callable();
    } catch (const std::exception& e) {
      ENTK_WARN(name()) << "unit " << ctx->unit.uid
                      << " callable threw: " << e.what();
      exit_code = 255;
    }
    ctx->result.exit_code = exit_code;
    if (exit_code != 0) ctx->will_fail = true;
    // Completion is the later of the modeled end time and the callable
    // returning: wait out any remaining modeled duration (absolute
    // deadline, so overshoot does not accumulate).
    const double remaining = ctx->result.exec_end_t - clock_->now();
    if (remaining > 0) clock_->sleep_for(remaining);
    ctx->result.exec_end_t = std::max(ctx->result.exec_end_t, clock_->now());
    handle_exec_done(std::move(ctx));
  }
}

void Agent::handle_failure_check(CtxPtr ctx) {
  if (ctx->exec_done_fired) return;
  int concurrent;
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    concurrent = executing_;
  }
  if (failure_model_ == nullptr || !failure_model_->should_fail(concurrent)) {
    return;
  }
  // The unit dies partway through: pull its completion forward.
  ctx->will_fail = true;
  ctx->result.exit_code = 1;
  const double fail_v =
      ctx->result.exec_start_t + config_.env_setup_s +
      ctx->unit.duration_s * compute_factor_ * config_.failed_unit_fraction;
  ctx->result.exec_end_t = std::min(ctx->result.exec_end_t, fail_v);
  const double end_v = ctx->result.exec_end_t;
  std::lock_guard<std::mutex> lock(exec_mutex_);
  schedule_event_locked(end_v, Phase::ExecDone, std::move(ctx));
}

void Agent::handle_exec_done(CtxPtr ctx) {
  if (ctx->exec_done_fired) return;  // a failure check superseded this event
  ctx->exec_done_fired = true;
  profiler_->record(name(), "unit_exec_stop", ctx->unit.uid,
                    ctx->result.exec_end_t);
  node_map_->release(ctx->alloc_id);
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    --executing_;
  }
  exec_cv_.notify_all();
  const bool failed = ctx->will_fail || ctx->result.exit_code != 0;
  if (!failed && !ctx->unit.output_staging.empty()) {
    const auto [start_v, end_v] = charge_staging(ctx->unit.output_staging);
    ctx->result.staging_out_s = end_v - start_v;
    profiler_->record(name(), "unit_stage_out_start", ctx->unit.uid, start_v);
    profiler_->record(name(), "unit_stage_out_stop", ctx->unit.uid, end_v);
    std::lock_guard<std::mutex> lock(exec_mutex_);
    schedule_event_locked(end_v, Phase::StageOutDone, std::move(ctx));
    return;
  }
  finalize_unit(std::move(ctx),
                failed ? UnitOutcome::Failed : UnitOutcome::Done);
}

void Agent::finalize_unit(CtxPtr ctx, UnitOutcome outcome) {
  ctx->result.outcome = outcome;
  ctx->result.done_t = clock_->now();
  if (outcome == UnitOutcome::Failed && ctx->result.exit_code == 0) {
    ctx->result.exit_code = 1;
  }
  profiler_->record(name(), "unit_done", ctx->unit.uid, ctx->result.done_t);
  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    in_flight_.erase(ctx->unit.uid);
  }
  if (outcome == UnitOutcome::Done) {
    ++completed_;
  } else if (outcome == UnitOutcome::Failed) {
    ++failed_;
  }
  try {
    broker_->publish(out_queue_, mq::Message::json_body(
                                     out_queue_, ctx->result.to_json()));
  } catch (const MqError&) {
    // Broker shut down while we were finishing: result is lost, which is
    // exactly the paper's semantics for a dying RTS.
  }
}

}  // namespace entk::rts
