// RTS Agent (paper §II-D, Fig 3).
//
// The Agent bootstraps on a pilot's compute nodes and executes units:
//   - it pulls unit descriptions from its input queue (the stand-in for
//     RP's MongoDB-backed agent queue),
//   - its *stager* charges input/output staging against the CI's shared
//     filesystem model on a sequential staging timeline (RP ships with one
//     stager, which is what makes staging time grow linearly with task
//     count in the weak-scaling experiment; more stager workers =
//     parallel timelines),
//   - its *scheduler* places units onto concrete cores/nodes (first-fit
//     over the pilot's NodeMap, FIFO),
//   - its *executor* charges per-unit environment-setup time and a bounded
//     spawn rate (modeling ORTE/aprun dispatch, the cause of non-ideal
//     weak scaling the paper observes), then completes the unit after its
//     modeled duration on the virtual clock — or after its real callable
//     returns, for units carrying actual computation.
//
// Timing discipline: every modeled duration becomes an ABSOLUTE virtual
// deadline in one event heap; the executor thread sleeps until the next
// deadline. Absolute deadlines mean OS sleep overshoot never accumulates,
// so thousands of sub-millisecond staging charges stay exact.
//
// Failure injection: modeled units consult the CI FailureModel once the
// placement wave is fully executing (so a 32-wide burst sees concurrency
// 32, the paper's overload regime); a failing unit consumes half its
// modeled duration and exits non-zero.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/unit.hpp"
#include "src/saga/stager.hpp"
#include "src/sim/failure.hpp"
#include "src/sim/node_map.hpp"

namespace entk::rts {

struct AgentConfig {
  double env_setup_s = 4.0;          ///< virtual s to set up a unit's env
  double dispatch_rate_per_s = 25.0; ///< max unit spawns per virtual second
  int stager_workers = 1;            ///< parallel staging timelines
  int callable_workers = 4;          ///< threads for real-compute units
  double poll_timeout_s = 0.002;     ///< wall s for queue polls
  double failed_unit_fraction = 0.5; ///< fraction of duration a failing
                                     ///< unit consumes before dying
};

/// Shared uid -> TaskUnit registry. Units travel through the broker as
/// JSON, but callables cannot be serialized; the UnitManager parks the
/// full unit here and the Agent picks it up by uid.
class UnitRegistry {
 public:
  void put(TaskUnit unit);
  /// Remove and return the unit for `uid`; falls back to `from_wire` when
  /// the registry has no entry (cross-process transport).
  TaskUnit take(const std::string& uid, const json::Value& from_wire);
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TaskUnit> units_;
};

/// A supervised Component ("intake", "executor" and N "callable-i"
/// workers); the agent uid is the component name.
class Agent : public Component {
 public:
  /// `in_queue`/`out_queue` must already be declared on `broker`.
  Agent(std::string uid, AgentConfig config, sim::NodeMap* node_map,
        sim::SharedFilesystem* filesystem, sim::FailureModel* failure_model,
        double compute_factor, ClockPtr clock, ProfilerPtr profiler,
        mq::BrokerPtr broker, std::string in_queue, std::string out_queue,
        std::shared_ptr<UnitRegistry> registry);
  ~Agent() override;

  /// Spawn the intake/executor/worker loops (idempotent while running).
  void start();

  /// Graceful stop: drain nothing further from the input queue, cancel
  /// units not yet executing, wait for executing units to finish.
  void stop();

  /// Hard failure: all threads die immediately; in-flight units are lost
  /// (no results are emitted for them).
  void kill();

  bool running() const { return state() == ComponentState::Running; }

  /// Units accepted but not yet finalized.
  std::vector<std::string> in_flight() const;

  /// Poke the executor after the pilot's NodeMap changed capacity (elastic
  /// resize): pending units get a placement attempt immediately instead of
  /// on the next poll tick.
  void notify_capacity();

  std::size_t completed() const { return completed_.load(); }
  std::size_t failed() const { return failed_.load(); }

 protected:
  void on_start() override;
  void on_stop_requested() override;

 private:
  enum class Phase { StageInDone, FailureCheck, ExecDone, StageOutDone };

  struct UnitCtx {
    TaskUnit unit;
    UnitResult result;
    std::uint64_t alloc_id = 0;
    bool will_fail = false;
    bool exec_done_fired = false;  ///< guards duplicate ExecDone events
  };
  using CtxPtr = std::shared_ptr<UnitCtx>;

  struct Event {
    double at_v = 0.0;
    Phase phase = Phase::ExecDone;
    CtxPtr ctx;
    bool operator>(const Event& other) const { return at_v > other.at_v; }
  };

  void intake_loop();
  void executor_loop();
  void worker_loop();

  /// Charge `directives` on the earliest-free staging timeline; returns
  /// {start_v, end_v} of the staging window. Thread-safe.
  std::pair<double, double> charge_staging(
      const std::vector<saga::StagingDirective>& directives);

  void schedule_event_locked(double at_v, Phase phase, CtxPtr ctx);
  void enqueue_pending(CtxPtr ctx);
  void try_place_pending_locked();
  void handle_failure_check(CtxPtr ctx);
  void handle_exec_done(CtxPtr ctx);
  void finalize_unit(CtxPtr ctx, UnitOutcome outcome);

  const AgentConfig config_;
  sim::NodeMap* node_map_;
  sim::SharedFilesystem* filesystem_;
  sim::FailureModel* failure_model_;
  const double compute_factor_;
  ClockPtr clock_;
  mq::BrokerPtr broker_;
  const std::string in_queue_;
  const std::string out_queue_;
  std::shared_ptr<UnitRegistry> registry_;

  std::atomic<bool> stopping_{false};   // graceful drain flag

  // Sequential staging timelines (virtual time when each stager frees up).
  std::mutex stage_mutex_;
  std::vector<double> stager_free_v_;

  // Executor state: pending placements + the absolute-deadline event heap.
  std::mutex exec_mutex_;
  std::condition_variable exec_cv_;
  std::deque<CtxPtr> pending_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  double next_dispatch_v_ = 0.0;
  int executing_ = 0;

  // Callable worker pool.
  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;
  std::deque<CtxPtr> worker_jobs_;

  // In-flight accounting.
  mutable std::mutex flight_mutex_;
  std::map<std::string, CtxPtr> in_flight_;

  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> failed_{0};
};

}  // namespace entk::rts
