// UnitManager (paper §II-D, Fig 3): routes units to a pilot's Agent via a
// broker queue (the stand-in for RP's MongoDB-backed channel) and delivers
// completion callbacks from the agent's output queue.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "src/common/clock.hpp"
#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/agent.hpp"
#include "src/rts/unit.hpp"

namespace entk::rts {

/// A supervised Component with one "callback" worker.
class UnitManager : public Component {
 public:
  UnitManager(std::string uid, ClockPtr clock, ProfilerPtr profiler,
              mq::BrokerPtr broker, std::string agent_queue,
              std::string done_queue, std::shared_ptr<UnitRegistry> registry);
  ~UnitManager() override;

  void set_callback(std::function<void(const UnitResult&)> callback);

  /// Start the completion-delivery worker (idempotent while running).
  void start();

  /// Submit units: park the full unit (with callable) in the registry and
  /// publish its wire form to the agent queue.
  void submit(std::vector<TaskUnit> units);

  std::size_t submitted() const { return submitted_.load(); }
  std::size_t delivered() const { return delivered_.load(); }

 protected:
  void on_start() override;

 private:
  void callback_loop();

  ClockPtr clock_;
  mq::BrokerPtr broker_;
  const std::string agent_queue_;
  const std::string done_queue_;
  std::shared_ptr<UnitRegistry> registry_;

  std::function<void(const UnitResult&)> callback_;
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> delivered_{0};
};

}  // namespace entk::rts
