// UnitManager (paper §II-D, Fig 3): routes units to a pilot's Agent via a
// broker queue (the stand-in for RP's MongoDB-backed channel) and delivers
// completion callbacks from the agent's output queue.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/agent.hpp"
#include "src/rts/unit.hpp"

namespace entk::rts {

class UnitManager {
 public:
  UnitManager(std::string uid, ClockPtr clock, ProfilerPtr profiler,
              mq::BrokerPtr broker, std::string agent_queue,
              std::string done_queue, std::shared_ptr<UnitRegistry> registry);
  ~UnitManager();

  UnitManager(const UnitManager&) = delete;
  UnitManager& operator=(const UnitManager&) = delete;

  void set_callback(std::function<void(const UnitResult&)> callback);

  /// Start the completion-delivery thread.
  void start();

  /// Stop delivering completions and join.
  void stop();

  /// Submit units: park the full unit (with callable) in the registry and
  /// publish its wire form to the agent queue.
  void submit(std::vector<TaskUnit> units);

  std::size_t submitted() const { return submitted_.load(); }
  std::size_t delivered() const { return delivered_.load(); }

 private:
  void callback_loop();

  const std::string uid_;
  ClockPtr clock_;
  ProfilerPtr profiler_;
  mq::BrokerPtr broker_;
  const std::string agent_queue_;
  const std::string done_queue_;
  std::shared_ptr<UnitRegistry> registry_;

  std::function<void(const UnitResult&)> callback_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> delivered_{0};
  std::thread thread_;
};

}  // namespace entk::rts
