#include "src/rts/pilot_rts.hpp"

#include "src/common/error.hpp"
#include "src/common/ids.hpp"
#include "src/common/log.hpp"

namespace entk::rts {

PilotRts::PilotRts(PilotRtsConfig config, ClockPtr clock, ProfilerPtr profiler)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      profiler_(std::move(profiler)),
      uid_(generate_uid("rts")) {}

PilotRts::~PilotRts() {
  if (healthy_.load()) kill();
}

void PilotRts::initialize() {
  profiler_->record(uid_, "rts_init_start", "", clock_->now());

  broker_ = std::make_shared<mq::Broker>(uid_ + ".broker");
  const std::string agent_queue = uid_ + ".units";
  const std::string done_queue = uid_ + ".done";
  broker_->declare_queue(agent_queue);
  broker_->declare_queue(done_queue);
  registry_ = std::make_shared<UnitRegistry>();

  pilot_manager_ = std::make_unique<PilotManager>(clock_, profiler_);
  pilot_ = pilot_manager_->submit(config_.pilot);
  pilot_->wait_bootstrapped();

  failure_model_ = std::make_unique<sim::FailureModel>(config_.failure);
  auto agent = std::make_unique<Agent>(
      uid_ + ".agent", config_.agent, &pilot_->node_map(),
      &pilot_->filesystem(), failure_model_.get(),
      pilot_->cluster().compute_factor, clock_, profiler_, broker_,
      agent_queue, done_queue, registry_);
  agent->start();
  pilot_->set_agent(std::move(agent));

  unit_manager_ = std::make_unique<UnitManager>(uid_ + ".umgr", clock_,
                                                profiler_, broker_,
                                                agent_queue, done_queue,
                                                registry_);
  unit_manager_->set_callback([this](const UnitResult& result) {
    {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      in_flight_.erase(result.uid);
    }
    if (result.outcome == UnitOutcome::Failed) {
      ++failed_;
    } else if (result.outcome == UnitOutcome::Done) {
      ++completed_;
    }
    if (callback_) callback_(result);
  });
  unit_manager_->start();

  healthy_ = true;
  profiler_->record(uid_, "rts_init_stop", "", clock_->now());
}

void PilotRts::set_completion_callback(
    std::function<void(const UnitResult&)> callback) {
  callback_ = std::move(callback);
}

void PilotRts::submit(std::vector<TaskUnit> units) {
  if (!healthy_.load()) throw RtsError(uid_ + ": submit on unhealthy RTS");
  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    for (const TaskUnit& u : units) in_flight_.insert(u.uid);
  }
  submitted_ += units.size();
  unit_manager_->submit(std::move(units));
}

bool PilotRts::is_healthy() const { return healthy_.load(); }

void PilotRts::terminate() {
  if (terminated_.exchange(true)) return;
  profiler_->record(uid_, "rts_teardown_start", "", clock_->now());
  healthy_ = false;
  if (pilot_ && pilot_->agent() != nullptr) pilot_->agent()->stop();
  if (unit_manager_) unit_manager_->stop();
  if (pilot_) pilot_->cancel();
  // Modeled tear-down cost: the reference RTS spends seconds to tens of
  // seconds terminating its many processes and threads.
  const double teardown =
      config_.teardown_base_s +
      config_.teardown_per_unit_s * static_cast<double>(submitted_.load());
  clock_->sleep_for(teardown);
  if (broker_) broker_->close();
  profiler_->record(uid_, "rts_teardown_stop", "", clock_->now());
}

void PilotRts::kill() {
  if (terminated_.exchange(true)) return;
  healthy_ = false;
  profiler_->record(uid_, "rts_killed", "", clock_->now());
  // Hard death: agent dies with its in-flight units; the unit manager and
  // broker vanish. in_flight_ keeps the lost uids so EnTK can resubmit.
  if (pilot_ && pilot_->agent() != nullptr) pilot_->agent()->kill();
  if (unit_manager_) unit_manager_->stop();
  if (broker_) broker_->close();
  if (pilot_) pilot_->cancel();
}

bool PilotRts::resize(const ResizeRequest& request) {
  if (!healthy_.load() || !pilot_) return false;
  if (request.delta_nodes == 0) return false;
  const int before = pilot_->nodes();
  const int after = pilot_->resize(request.delta_nodes);
  profiler_->record(uid_, request.delta_nodes > 0 ? "pilot_grow"
                                                  : "pilot_shrink",
                    pilot_->uid(), clock_->now());
  if (pilot_->agent() != nullptr) pilot_->agent()->notify_capacity();
  return after != before;
}

RtsStats PilotRts::stats() const {
  RtsStats s;
  s.units_submitted = submitted_.load();
  s.units_completed = completed_.load();
  s.units_failed = failed_.load();
  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    s.units_in_flight = in_flight_.size();
  }
  return s;
}

std::vector<std::string> PilotRts::in_flight_units() const {
  std::lock_guard<std::mutex> lock(flight_mutex_);
  return {in_flight_.begin(), in_flight_.end()};
}

}  // namespace entk::rts
