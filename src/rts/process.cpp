#include "src/rts/process.hpp"

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

extern char** environ;

namespace entk::rts {

bool is_spawnable(const std::string& executable) {
  return !executable.empty() && executable[0] == '/';
}

int run_process(const std::string& executable,
                const std::vector<std::string>& arguments) {
  std::vector<char*> argv;
  argv.reserve(arguments.size() + 2);
  argv.push_back(const_cast<char*>(executable.c_str()));
  for (const std::string& a : arguments) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, "/dev/null",
                                   O_WRONLY, 0);
  posix_spawn_file_actions_addopen(&actions, STDERR_FILENO, "/dev/null",
                                   O_WRONLY, 0);

  pid_t pid = -1;
  const int rc = posix_spawn(&pid, executable.c_str(), &actions, nullptr,
                             argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  if (rc != 0) return 127;

  int status = 0;
  if (waitpid(pid, &status, 0) < 0) return 127;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 127;
}

}  // namespace entk::rts
