#include "src/rts/pilot.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/ids.hpp"

namespace entk::rts {

const char* to_string(PilotState s) {
  switch (s) {
    case PilotState::New: return "NEW";
    case PilotState::Queued: return "QUEUED";
    case PilotState::Active: return "ACTIVE";
    case PilotState::Done: return "DONE";
    case PilotState::Failed: return "FAILED";
    case PilotState::Canceled: return "CANCELED";
  }
  return "?";
}

Pilot::Pilot(std::string uid, PilotDescription description,
             sim::ClusterSpec cluster, saga::JobPtr job, ClockPtr clock)
    : uid_(std::move(uid)),
      description_(std::move(description)),
      cluster_(std::move(cluster)),
      job_(std::move(job)),
      clock_(std::move(clock)) {
  int nodes = description_.nodes;
  if (nodes <= 0) {
    nodes = (description_.cores + cluster_.cores_per_node - 1) /
            cluster_.cores_per_node;
  }
  if (nodes <= 0) nodes = 1;
  nodes_ = nodes;
  node_map_ = std::make_unique<sim::NodeMap>(nodes, cluster_.cores_per_node,
                                             cluster_.gpus_per_node);
  filesystem_ = std::make_unique<sim::SharedFilesystem>(cluster_.filesystem);
}

PilotState Pilot::state() const {
  switch (job_->state()) {
    case saga::JobState::New: return PilotState::New;
    case saga::JobState::Pending: return PilotState::Queued;
    case saga::JobState::Active:
      return bootstrapped_ ? PilotState::Active : PilotState::Queued;
    case saga::JobState::Done: return PilotState::Done;
    case saga::JobState::Failed: return PilotState::Failed;
    case saga::JobState::Canceled: return PilotState::Canceled;
  }
  return PilotState::New;
}

void Pilot::wait_bootstrapped() {
  job_->wait_active();
  if (job_->state() == saga::JobState::Failed) {
    throw RtsError("pilot " + uid_ + ": job failed (requested " +
                   std::to_string(nodes_.load()) + " nodes on " +
                   cluster_.name + " with " + std::to_string(cluster_.nodes) +
                   ")");
  }
  if (!bootstrapped_) {
    clock_->sleep_for(cluster_.agent_bootstrap_s);
    bootstrapped_ = true;
  }
}

int Pilot::resize(int delta_nodes) {
  if (delta_nodes > 0) {
    // Growing is capped at the CI's machine size — a pilot cannot hold
    // more nodes than the cluster has.
    const int room = cluster_.nodes - node_map_->nodes();
    const int grow = std::min(delta_nodes, std::max(0, room));
    if (grow > 0) nodes_ = node_map_->add_nodes(grow);
  } else if (delta_nodes < 0) {
    node_map_->retire_nodes(-delta_nodes);
    nodes_ = node_map_->nodes();
  }
  return nodes_.load();
}

void Pilot::cancel() {
  if (agent_) agent_->stop();
  job_->cancel();
}

PilotManager::PilotManager(ClockPtr clock, ProfilerPtr profiler,
                           std::uint64_t seed)
    : clock_(std::move(clock)), profiler_(std::move(profiler)), seed_(seed) {}

PilotPtr PilotManager::submit(const PilotDescription& description) {
  const sim::ClusterSpec cluster = sim::cluster_by_name(description.resource);
  saga::JobService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = services_.find(cluster.name);
    if (it == services_.end()) {
      it = services_
               .emplace(cluster.name, std::make_unique<saga::JobService>(
                                          cluster, clock_, seed_))
               .first;
    }
    service = it->second.get();
  }
  const std::string uid = generate_uid("pilot");
  saga::JobDescription jd;
  jd.name = uid;
  jd.nodes = description.nodes > 0
                 ? description.nodes
                 : (description.cores + cluster.cores_per_node - 1) /
                       cluster.cores_per_node;
  jd.walltime_s = description.walltime_s;
  jd.project = description.project;
  profiler_->record("pmgr", "pilot_submit", uid, clock_->now());
  auto job = service->submit(jd);
  return std::make_shared<Pilot>(uid, description, cluster, std::move(job),
                                 clock_);
}

}  // namespace entk::rts
