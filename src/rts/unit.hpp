// Compute-unit types exchanged between the workload layer and the RTS.
//
// EnTK translates every Task into an RTS-specific unit (paper §II-B-3,
// "translate tasks from and to RTS-specific objects"). A unit carries the
// resource request, an execution-duration model (for simulated executables
// such as sleep/mdrun/Specfem) and/or a real callable (for workloads that
// compute actual results, e.g. the AnEn kernels), plus staging directives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/json/json.hpp"
#include "src/saga/stager.hpp"

namespace entk::rts {

struct TaskUnit {
  std::string uid;            ///< EnTK task uid (round-trips through the RTS)
  std::string name;
  std::string executable;     ///< modeled name ("sleep", "mdrun", ...) or an
                              ///< absolute path for real process execution
  std::vector<std::string> arguments;

  int cores = 1;
  int gpus = 0;
  bool exclusive_nodes = false;  ///< request whole nodes (e.g. 384-node runs)

  /// Modeled execution duration in virtual seconds (0 for pure callables).
  double duration_s = 0.0;

  /// Optional real work, run on an agent worker thread; its return value is
  /// the unit's exit code. Completion is the later of the modeled duration
  /// and the callable finishing.
  std::function<int()> callable;

  std::vector<saga::StagingDirective> input_staging;
  std::vector<saga::StagingDirective> output_staging;

  json::Value metadata;  ///< opaque round-trip payload for the upper layer

  /// Serialization for transport through broker queues (callables do not
  /// survive serialization; in-process submission preserves them).
  json::Value to_json() const;
  static TaskUnit from_json(const json::Value& v);
  /// Zero-copy variant: reads a shared message payload in place.
  static TaskUnit from_json(const std::shared_ptr<const json::Value>& v) {
    return from_json(*v);
  }
};

enum class UnitOutcome { Done, Failed, Canceled, Lost };

const char* to_string(UnitOutcome o);

struct UnitResult {
  std::string uid;
  std::string name;
  UnitOutcome outcome = UnitOutcome::Done;
  int exit_code = 0;

  // Virtual-time milestones.
  double submit_t = 0.0;      ///< unit accepted by the RTS
  double sched_t = 0.0;       ///< cores assigned
  double exec_start_t = 0.0;  ///< executor spawned the unit (incl. env setup)
  double exec_end_t = 0.0;
  double done_t = 0.0;        ///< result pushed back to the upper layer

  double staging_in_s = 0.0;
  double staging_out_s = 0.0;

  json::Value metadata;  ///< echoed from the unit

  json::Value to_json() const;
  static UnitResult from_json(const json::Value& v);
  /// Zero-copy variant: reads a shared message payload in place.
  static UnitResult from_json(const std::shared_ptr<const json::Value>& v) {
    return from_json(*v);
  }
};

}  // namespace entk::rts
