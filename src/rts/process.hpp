// Real process execution for units whose executable is an absolute path.
//
// The paper's tasks are stand-alone executables (sleep, Gromacs mdrun,
// Specfem, Canalogs). The simulated agents model their duration; the
// LocalRts can additionally *really* launch them, which is what makes the
// toolkit usable for actual local workloads and not just simulations.
#pragma once

#include <string>
#include <vector>

namespace entk::rts {

/// True when `executable` denotes a real program to spawn (absolute path).
bool is_spawnable(const std::string& executable);

/// Spawn `executable` with `arguments`, wait for it, and return its exit
/// code. stdout/stderr are redirected to /dev/null. Returns:
///   the child's exit status on normal exit,
///   128 + signal for signal death,
///   127 when the executable cannot be spawned.
int run_process(const std::string& executable,
                const std::vector<std::string>& arguments);

}  // namespace entk::rts
