// Abstract runtime-system interface.
//
// EnTK treats the RTS as a black box (paper §II-B-2): the workload layer
// submits units, receives completion callbacks, monitors health, and can
// tear the RTS down and bring a fresh instance back after a failure,
// losing only in-flight units. Everything behind this interface —
// pilots, agents, schedulers — is invisible to EnTK, which is what makes
// the toolkit composable with different runtimes (building-blocks design).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/rts/unit.hpp"

namespace entk::rts {

struct RtsStats {
  std::size_t units_submitted = 0;
  std::size_t units_completed = 0;
  std::size_t units_failed = 0;
  std::size_t units_in_flight = 0;
};

/// Elastic-pilot request: grow (+N) or shrink (-N) the allocated nodes
/// mid-run. Shrinks drain — in-flight units finish on retiring nodes and
/// no unit is ever killed by a resize. `reason` lands in the profiler
/// trace and the ensemble decision journal.
struct ResizeRequest {
  int delta_nodes = 0;
  std::string reason;
};

class Rts {
 public:
  virtual ~Rts() = default;

  /// Acquire resources (submit the pilot and wait until its agent is up).
  /// Blocking; throws RtsError when the resource request is infeasible.
  virtual void initialize() = 0;

  /// Register the completion callback. Must be called before submit().
  /// The callback runs on an RTS thread; it must not block for long.
  virtual void set_completion_callback(
      std::function<void(const UnitResult&)> callback) = 0;

  /// Submit units for execution. Non-blocking.
  virtual void submit(std::vector<TaskUnit> units) = 0;

  /// Health probe used by EnTK's heartbeat subcomponent.
  virtual bool is_healthy() const = 0;

  /// Graceful shutdown: stop accepting work, drain components, release the
  /// pilot. In-flight units are canceled.
  virtual void terminate() = 0;

  /// Simulated hard failure: the RTS dies, losing all in-flight units and
  /// pilot resources (paper failure model §II-B-4). After kill() the RTS is
  /// unhealthy and unusable; EnTK must create a fresh instance.
  virtual void kill() = 0;

  /// Elastic resize (paper §II-B "resource-level adaptivity"). Returns
  /// false when this RTS cannot resize (the default — fixed-size runtimes
  /// like the local thread pool) or when the request changed nothing.
  virtual bool resize(const ResizeRequest& request) {
    (void)request;
    return false;
  }

  virtual RtsStats stats() const = 0;

  /// Uids of units submitted but not yet resolved (used by EnTK to decide
  /// what to resubmit after an RTS failure).
  virtual std::vector<std::string> in_flight_units() const = 0;
};

using RtsPtr = std::shared_ptr<Rts>;

/// Factory so EnTK can restart a failed RTS with identical configuration.
using RtsFactory = std::function<RtsPtr()>;

}  // namespace entk::rts
