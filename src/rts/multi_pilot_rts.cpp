#include "src/rts/multi_pilot_rts.hpp"

#include "src/common/error.hpp"
#include "src/common/ids.hpp"
#include "src/common/log.hpp"

namespace entk::rts {

MultiPilotRts::MultiPilotRts(MultiPilotRtsConfig config, ClockPtr clock,
                             ProfilerPtr profiler)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      profiler_(std::move(profiler)),
      uid_(generate_uid("rts.multi")) {
  if (config_.pilots.empty()) {
    throw ValueError("MultiPilotRts: at least one pilot required");
  }
}

void MultiPilotRts::initialize() {
  profiler_->record(uid_, "rts_init_start", "", clock_->now());
  for (const PilotRtsConfig& pilot_cfg : config_.pilots) {
    members_.push_back(
        std::make_shared<PilotRts>(pilot_cfg, clock_, profiler_));
  }
  for (auto& member : members_) {
    member->set_completion_callback([this](const UnitResult& result) {
      if (callback_) callback_(result);
    });
    member->initialize();
  }
  healthy_ = true;
  profiler_->record(uid_, "rts_init_stop", "", clock_->now());
}

void MultiPilotRts::set_completion_callback(
    std::function<void(const UnitResult&)> callback) {
  callback_ = std::move(callback);
}

int MultiPilotRts::route(const TaskUnit& unit) const {
  int best = -1;
  int best_free = -1;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Pilot* pilot = const_cast<PilotRts&>(*members_[i]).pilot();
    if (pilot == nullptr) continue;
    sim::SlotRequest req;
    req.cores = unit.cores;
    req.gpus = unit.gpus;
    req.exclusive_nodes = unit.exclusive_nodes;
    if (!pilot->node_map().fits_capacity(req)) continue;
    const int free = pilot->node_map().free_cores();
    if (free > best_free) {
      best_free = free;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void MultiPilotRts::submit(std::vector<TaskUnit> units) {
  if (!healthy_.load()) throw RtsError(uid_ + ": submit on unhealthy RTS");
  // Group per member to keep one submit call per pilot.
  std::vector<std::vector<TaskUnit>> batches(members_.size());
  for (TaskUnit& unit : units) {
    const int target = route(unit);
    if (target < 0) {
      // No pilot can ever run this unit: route to the widest pilot, whose
      // agent will fail it with the standard infeasibility path.
      std::size_t widest = 0;
      for (std::size_t i = 1; i < members_.size(); ++i) {
        if (members_[i]->pilot()->cores() >
            members_[widest]->pilot()->cores()) {
          widest = i;
        }
      }
      ENTK_WARN(uid_) << "unit " << unit.uid
                      << " fits no pilot; failing via "
                      << members_[widest]->pilot()->uid();
      batches[widest].push_back(std::move(unit));
      continue;
    }
    profiler_->record(uid_, "unit_routed", unit.uid, clock_->now());
    batches[static_cast<std::size_t>(target)].push_back(std::move(unit));
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!batches[i].empty()) members_[i]->submit(std::move(batches[i]));
  }
}

bool MultiPilotRts::is_healthy() const {
  if (!healthy_.load()) return false;
  for (const auto& member : members_) {
    if (!member->is_healthy()) return false;
  }
  return true;
}

void MultiPilotRts::terminate() {
  healthy_ = false;
  for (auto& member : members_) member->terminate();
}

void MultiPilotRts::kill() {
  healthy_ = false;
  for (auto& member : members_) member->kill();
}

bool MultiPilotRts::resize(const ResizeRequest& request) {
  if (!healthy_.load() || members_.empty()) return false;
  if (request.delta_nodes == 0) return false;
  // Grow the most-loaded pilot (least free cores) — it is the one starving;
  // shrink the most-idle pilot so the drain finishes soonest.
  std::size_t target = 0;
  int target_free = -1;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Pilot* pilot = members_[i]->pilot();
    if (pilot == nullptr || !members_[i]->is_healthy()) continue;
    const int free = pilot->node_map().free_cores();
    const bool better = target_free < 0 ||
                        (request.delta_nodes > 0 ? free < target_free
                                                 : free > target_free);
    if (better) {
      target_free = free;
      target = i;
    }
  }
  if (target_free < 0) return false;
  return members_[target]->resize(request);
}

RtsStats MultiPilotRts::stats() const {
  RtsStats total;
  for (const auto& member : members_) {
    const RtsStats s = member->stats();
    total.units_submitted += s.units_submitted;
    total.units_completed += s.units_completed;
    total.units_failed += s.units_failed;
    total.units_in_flight += s.units_in_flight;
  }
  return total;
}

std::vector<std::string> MultiPilotRts::in_flight_units() const {
  std::vector<std::string> out;
  for (const auto& member : members_) {
    const std::vector<std::string> part = member->in_flight_units();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace entk::rts
