// LocalRts: a minimal thread-pool runtime behind the same Rts interface.
//
// Demonstrates the building-blocks composability claim (paper §V): EnTK is
// agnostic to the RTS below it, so a completely different runtime — here a
// plain worker pool running units on the local machine in (clock-scaled)
// time, with no pilots, agents or staging — drops in without any change to
// the workflow layer. Used by unit tests and the quickstart example.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/component.hpp"
#include "src/common/profiler.hpp"
#include "src/rts/rts.hpp"

namespace entk::rts {

struct LocalRtsConfig {
  int workers = 4;
  /// Probability that a unit fails (exit code 1); deterministic per seed.
  double failure_probability = 0.0;
  std::uint64_t seed = 17;
};

/// Doubles as a supervised Component (N "worker-i" loops); the generated
/// rts.local uid is the component name. kill() maps to a component fault,
/// so the pool dies the way any crashed component does — leaving its
/// in-flight set intact for the ExecManager to resubmit.
class LocalRts final : public Rts, public Component {
 public:
  LocalRts(LocalRtsConfig config, ClockPtr clock, ProfilerPtr profiler);
  ~LocalRts() override;

  void initialize() override;
  void set_completion_callback(
      std::function<void(const UnitResult&)> callback) override;
  void submit(std::vector<TaskUnit> units) override;
  bool is_healthy() const override;
  void terminate() override;
  void kill() override;
  RtsStats stats() const override;
  std::vector<std::string> in_flight_units() const override;

 protected:
  void on_start() override;
  void on_stop_requested() override;

 private:
  void worker_loop(std::uint64_t worker_seed);

  LocalRtsConfig config_;
  ClockPtr clock_;

  std::function<void(const UnitResult&)> callback_;
  std::atomic<bool> healthy_{false};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<TaskUnit> queue_;
  std::set<std::string> in_flight_;

  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> failed_{0};
};

}  // namespace entk::rts
