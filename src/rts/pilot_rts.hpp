// Pilot-based RTS implementation (the RADICAL-Pilot analog).
//
// Composes PilotManager + Pilot/Agent + UnitManager behind the abstract
// Rts interface. Owns a private broker for its internal unit/done queues —
// mirroring RP's own communication infrastructure being separate from
// EnTK's RabbitMQ — so killing the RTS severs exactly the channels the
// paper's failure model says are lost.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <set>

#include "src/rts/pilot.hpp"
#include "src/rts/rts.hpp"
#include "src/rts/unit_manager.hpp"

namespace entk::rts {

struct PilotRtsConfig {
  PilotDescription pilot;
  AgentConfig agent;
  sim::FailureSpec failure;

  /// Modeled RTS tear-down cost (paper: 3–80 s, dominated by process and
  /// thread termination): base + per_submitted_unit, in virtual seconds.
  double teardown_base_s = 3.0;
  double teardown_per_unit_s = 0.005;
};

class PilotRts final : public Rts {
 public:
  PilotRts(PilotRtsConfig config, ClockPtr clock, ProfilerPtr profiler);
  ~PilotRts() override;

  void initialize() override;
  void set_completion_callback(
      std::function<void(const UnitResult&)> callback) override;
  void submit(std::vector<TaskUnit> units) override;
  bool is_healthy() const override;
  void terminate() override;
  void kill() override;
  bool resize(const ResizeRequest& request) override;
  RtsStats stats() const override;
  std::vector<std::string> in_flight_units() const override;

  /// The live pilot (nullptr before initialize()); exposed for tests and
  /// resource-utilization reporting.
  Pilot* pilot() { return pilot_.get(); }

  const PilotRtsConfig& config() const { return config_; }

 private:
  PilotRtsConfig config_;
  ClockPtr clock_;
  ProfilerPtr profiler_;
  std::string uid_;

  mq::BrokerPtr broker_;
  std::shared_ptr<UnitRegistry> registry_;
  std::unique_ptr<PilotManager> pilot_manager_;
  PilotPtr pilot_;
  std::unique_ptr<sim::FailureModel> failure_model_;
  std::unique_ptr<UnitManager> unit_manager_;

  std::function<void(const UnitResult&)> callback_;
  std::atomic<bool> healthy_{false};
  std::atomic<bool> terminated_{false};

  mutable std::mutex flight_mutex_;
  std::set<std::string> in_flight_;
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> failed_{0};
};

}  // namespace entk::rts
