// Multi-pilot RTS (paper §II-D / Fig 3: RP's concurrent components
// "enable RP to manage multiple pilots and tasks at the same time", and
// §III-A: simulation tasks need leadership-class systems while data
// processing fits moderately sized clusters).
//
// Composes several PilotRts instances behind the single Rts interface and
// routes each unit to a pilot that can hold it: among the pilots whose
// total capacity fits the unit's resource request, the one with the most
// free cores wins (late binding). Units that fit no pilot fail
// immediately, mirroring the agent's infeasibility rule.
#pragma once

#include <memory>
#include <vector>

#include "src/rts/pilot_rts.hpp"

namespace entk::rts {

struct MultiPilotRtsConfig {
  std::vector<PilotRtsConfig> pilots;
};

class MultiPilotRts final : public Rts {
 public:
  MultiPilotRts(MultiPilotRtsConfig config, ClockPtr clock,
                ProfilerPtr profiler);

  void initialize() override;
  void set_completion_callback(
      std::function<void(const UnitResult&)> callback) override;
  void submit(std::vector<TaskUnit> units) override;
  bool is_healthy() const override;
  void terminate() override;
  void kill() override;
  bool resize(const ResizeRequest& request) override;
  RtsStats stats() const override;
  std::vector<std::string> in_flight_units() const override;

  std::size_t pilot_count() const { return members_.size(); }
  PilotRts* member(std::size_t i) { return members_[i].get(); }

  /// Routing decision used by submit(); exposed for tests. Returns the
  /// member index, or -1 when no pilot can ever hold the unit.
  int route(const TaskUnit& unit) const;

 private:
  MultiPilotRtsConfig config_;
  ClockPtr clock_;
  ProfilerPtr profiler_;
  std::string uid_;
  std::vector<std::shared_ptr<PilotRts>> members_;
  std::function<void(const UnitResult&)> callback_;
  std::atomic<bool> healthy_{false};
};

}  // namespace entk::rts
