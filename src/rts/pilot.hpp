// Pilot and PilotManager (paper §II-D, Fig 3).
//
// A pilot is a placeholder job: the PilotManager submits it to the CI via
// the SAGA job adapter, it waits in the batch queue, and once active it
// bootstraps an Agent on its nodes. Tasks then execute inside the pilot
// without further queue round-trips — the mechanism that lets EnTK vary
// ensemble concurrency freely (e.g. the seismic use case trading pilot
// width for walltime, Fig 10).
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "src/common/clock.hpp"
#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/agent.hpp"
#include "src/saga/job_service.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/failure.hpp"
#include "src/sim/filesystem.hpp"
#include "src/sim/node_map.hpp"

namespace entk::rts {

struct PilotDescription {
  std::string resource;     ///< CI name, e.g. "ornl.titan"
  int cores = 0;            ///< total cores requested (rounded up to nodes)
  int nodes = 0;            ///< alternative: whole nodes (wins when > 0)
  double walltime_s = 7200; ///< virtual seconds
  std::string project;
};

enum class PilotState { New, Queued, Active, Done, Failed, Canceled };

const char* to_string(PilotState s);

/// A live pilot: the CI job plus the simulated resources (NodeMap, shared
/// filesystem) and the Agent bootstrapped on them.
class Pilot {
 public:
  Pilot(std::string uid, PilotDescription description,
        sim::ClusterSpec cluster, saga::JobPtr job, ClockPtr clock);

  const std::string& uid() const { return uid_; }
  const PilotDescription& description() const { return description_; }
  const sim::ClusterSpec& cluster() const { return cluster_; }
  PilotState state() const;

  int nodes() const { return nodes_.load(); }
  int cores() const { return nodes_.load() * cluster_.cores_per_node; }

  /// Elastic resize: grow (+N, capped at the CI's machine size) or shrink
  /// (-N, never below one node; retiring nodes drain their in-flight
  /// units). Returns the new active node count.
  int resize(int delta_nodes);

  sim::NodeMap& node_map() { return *node_map_; }
  sim::SharedFilesystem& filesystem() { return *filesystem_; }

  /// Block until the CI job is active, then charge agent bootstrap time.
  /// Throws RtsError when the job failed (e.g. infeasible request).
  void wait_bootstrapped();

  void set_agent(std::unique_ptr<Agent> agent) { agent_ = std::move(agent); }
  Agent* agent() { return agent_.get(); }

  void cancel();

 private:
  const std::string uid_;
  const PilotDescription description_;
  const sim::ClusterSpec cluster_;
  saga::JobPtr job_;
  ClockPtr clock_;
  std::atomic<int> nodes_{0};
  bool bootstrapped_ = false;
  std::unique_ptr<sim::NodeMap> node_map_;
  std::unique_ptr<sim::SharedFilesystem> filesystem_;
  std::unique_ptr<Agent> agent_;
};

using PilotPtr = std::shared_ptr<Pilot>;

/// Submits pilots as jobs through the SAGA adapter of the target CI.
class PilotManager {
 public:
  PilotManager(ClockPtr clock, ProfilerPtr profiler, std::uint64_t seed = 7);

  /// Submit a pilot to its CI. Non-blocking: the returned pilot is Queued;
  /// call Pilot::wait_bootstrapped() to block until it is usable.
  PilotPtr submit(const PilotDescription& description);

 private:
  ClockPtr clock_;
  ProfilerPtr profiler_;
  std::uint64_t seed_;
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<saga::JobService>> services_;
};

}  // namespace entk::rts
