#include "src/sim/failure.hpp"

namespace entk::sim {

FailureModel::FailureModel(FailureSpec spec) : spec_(spec), rng_(spec.seed) {}

bool FailureModel::should_fail(int concurrent_tasks) {
  std::lock_guard<std::mutex> lock(mutex_);
  double p = spec_.base_probability;
  if (spec_.concurrency_threshold > 0) {
    if (concurrent_tasks >= spec_.concurrency_threshold) {
      overloaded_ = true;
    } else if (spec_.sticky) {
      const int recovery = spec_.recovery_threshold > 0
                               ? spec_.recovery_threshold
                               : spec_.concurrency_threshold / 2;
      if (concurrent_tasks < recovery) overloaded_ = false;
    } else {
      overloaded_ = false;
    }
    if (overloaded_) p = spec_.overload_probability;
  }
  if (p <= 0.0) return false;
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const bool fail = dist(rng_) < p;
  if (fail) ++injected_;
  return fail;
}

std::uint64_t FailureModel::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

}  // namespace entk::sim
