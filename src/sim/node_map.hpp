// Core/GPU allocator over a pilot's set of simulated compute nodes.
//
// The RTS Agent's scheduler places each task onto concrete cores. Two
// request shapes cover the paper's workloads: core-level requests (N cores,
// may share nodes — the 1-core Gromacs tasks of the scaling runs) and
// node-level requests (N whole nodes — the 384-node Specfem forward
// simulations). First-fit placement; thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace entk::sim {

struct SlotRequest {
  int cores = 1;
  int gpus = 0;
  bool exclusive_nodes = false;  ///< true: allocate whole nodes
};

struct Allocation {
  std::uint64_t id = 0;
  std::vector<int> node_ids;  ///< nodes touched by this allocation
  int cores = 0;
  int gpus = 0;
};

struct NodeMapStats {
  int total_cores = 0;
  int total_gpus = 0;
  int used_cores = 0;
  int used_gpus = 0;
  std::uint64_t allocations = 0;  ///< total successful allocations ever
  std::uint64_t rejections = 0;   ///< try_allocate calls that found no room
};

class NodeMap {
 public:
  NodeMap(int nodes, int cores_per_node, int gpus_per_node);

  /// Attempt placement; nullopt when the request does not fit right now.
  /// Requests larger than the whole machine also return nullopt (and count
  /// as rejections) — callers must validate against capacity() first if
  /// they need to distinguish "busy" from "impossible".
  std::optional<Allocation> try_allocate(const SlotRequest& request);

  /// Release a previous allocation; unknown ids are ignored.
  void release(std::uint64_t allocation_id);

  NodeMapStats stats() const;
  int free_cores() const;
  int nodes() const { return static_cast<int>(free_cores_per_node_.size()); }
  int cores_per_node() const { return cores_per_node_; }

  /// Whole-machine capacity check (ignoring current occupancy).
  bool fits_capacity(const SlotRequest& request) const;

 private:
  struct Held {
    std::vector<std::pair<int, int>> cores_per_node;  // (node, cores)
    std::vector<std::pair<int, int>> gpus_per_node;   // (node, gpus)
  };

  const int cores_per_node_;
  const int gpus_per_node_;

  mutable std::mutex mutex_;
  std::vector<int> free_cores_per_node_;
  std::vector<int> free_gpus_per_node_;
  std::map<std::uint64_t, Held> held_;
  std::uint64_t next_id_ = 1;
  NodeMapStats stats_;
};

}  // namespace entk::sim
