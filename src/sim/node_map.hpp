// Core/GPU allocator over a pilot's set of simulated compute nodes.
//
// The RTS Agent's scheduler places each task onto concrete cores. Two
// request shapes cover the paper's workloads: core-level requests (N cores,
// may share nodes — the 1-core Gromacs tasks of the scaling runs) and
// node-level requests (N whole nodes — the 384-node Specfem forward
// simulations). First-fit placement; thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace entk::sim {

struct SlotRequest {
  int cores = 1;
  int gpus = 0;
  bool exclusive_nodes = false;  ///< true: allocate whole nodes
};

struct Allocation {
  std::uint64_t id = 0;
  std::vector<int> node_ids;  ///< nodes touched by this allocation
  int cores = 0;
  int gpus = 0;
};

struct NodeMapStats {
  int total_cores = 0;
  int total_gpus = 0;
  int used_cores = 0;
  int used_gpus = 0;
  std::uint64_t allocations = 0;  ///< total successful allocations ever
  std::uint64_t rejections = 0;   ///< try_allocate calls that found no room
  int active_nodes = 0;           ///< nodes eligible for new placements
  int draining_nodes = 0;         ///< retired nodes still running old work
};

class NodeMap {
 public:
  NodeMap(int nodes, int cores_per_node, int gpus_per_node);

  /// Attempt placement; nullopt when the request does not fit right now.
  /// Requests larger than the whole machine also return nullopt (and count
  /// as rejections) — callers must validate against capacity() first if
  /// they need to distinguish "busy" from "impossible".
  std::optional<Allocation> try_allocate(const SlotRequest& request);

  /// Release a previous allocation; unknown ids are ignored.
  void release(std::uint64_t allocation_id);

  NodeMapStats stats() const;
  int free_cores() const;
  /// Nodes eligible for new placements (excludes retired/draining nodes).
  int nodes() const;
  int cores_per_node() const { return cores_per_node_; }

  /// Whole-machine capacity check (ignoring current occupancy). Considers
  /// active nodes only — a draining node can finish work but never take new.
  bool fits_capacity(const SlotRequest& request) const;

  // --- Elasticity (pilot resize) ------------------------------------------
  //
  // Growing first resurrects retired nodes (their ids and any still-running
  // allocations come back as-is), then appends fresh empty nodes. Shrinking
  // retires nodes: free nodes leave capacity immediately; busy nodes become
  // "draining" — excluded from new placements, their in-flight allocations
  // run to completion and release normally. Nothing is ever killed here.

  /// Add `count` nodes; returns the new active node count.
  int add_nodes(int count);

  /// Retire up to `count` nodes (never below one active node), preferring
  /// the freest nodes so the drain finishes soonest. Returns the number
  /// actually retired.
  int retire_nodes(int count);

  /// Retired nodes still holding live allocations.
  int draining_nodes() const;

 private:
  struct Held {
    std::vector<std::pair<int, int>> cores_per_node;  // (node, cores)
    std::vector<std::pair<int, int>> gpus_per_node;   // (node, gpus)
  };

  const int cores_per_node_;
  const int gpus_per_node_;

  int active_nodes_locked() const;
  int draining_nodes_locked() const;
  bool node_fully_free(std::size_t n) const;

  mutable std::mutex mutex_;
  std::vector<int> free_cores_per_node_;
  std::vector<int> free_gpus_per_node_;
  std::vector<char> retired_;  ///< parallel to the per-node vectors
  std::map<std::uint64_t, Held> held_;
  std::uint64_t next_id_ = 1;
  NodeMapStats stats_;
};

}  // namespace entk::sim
