#include "src/sim/batch_queue.hpp"

#include <algorithm>

namespace entk::sim {

BatchQueue::BatchQueue(BatchQueueSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

double BatchQueue::sample_wait(int nodes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double mean =
      spec_.base_wait_s + spec_.per_node_wait_s * static_cast<double>(nodes);
  if (mean <= 0.0) return 0.0;
  if (spec_.jitter_frac <= 0.0) return mean;
  std::uniform_real_distribution<double> dist(1.0 - spec_.jitter_frac,
                                              1.0 + spec_.jitter_frac);
  return std::max(0.0, mean * dist(rng_));
}

}  // namespace entk::sim
