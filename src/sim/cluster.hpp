// Simulated computing-infrastructure (CI) catalog.
//
// The paper evaluates EnTK on four production machines: XSEDE SuperMIC,
// Stampede and Comet, and ORNL Titan. We cannot submit to those machines,
// so each is modeled by a ClusterSpec capturing the properties the paper's
// experiments actually vary or attribute differences to:
//   - node count and cores/GPUs per node (capacity; Titan is the
//     leadership-class machine used for scaling runs),
//   - a host performance factor for the machine EnTK itself runs on
//     (the paper attributes smaller EnTK overheads on Titan to the faster
//     ORNL login nodes vs the TACC VM used for XSEDE runs, §IV-A-2),
//   - pilot bootstrap latency and batch-queue parameters,
//   - shared-filesystem staging characteristics (OLCF Lustre for Titan).
#pragma once

#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace entk::sim {

struct FilesystemSpec {
  double latency_s = 5e-3;          ///< per-operation fixed cost
  double bandwidth_bps = 500e6;     ///< sustained copy bandwidth
  double link_latency_s = 2e-3;     ///< cost of a soft link / metadata op
  int contention_free_ops = 4;      ///< concurrent ops before slowdown
};

struct BatchQueueSpec {
  double base_wait_s = 0.0;     ///< mean queue wait for a pilot job
  double per_node_wait_s = 0.0; ///< additional mean wait per requested node
  double jitter_frac = 0.0;     ///< +- uniform jitter fraction
};

struct ClusterSpec {
  std::string name;
  int nodes = 0;
  int cores_per_node = 0;
  int gpus_per_node = 0;

  /// Relative speed of the host EnTK runs on for this CI (1.0 = the TACC
  /// VM baseline; smaller = faster host = smaller toolkit overheads).
  double entk_host_factor = 1.0;

  /// Relative task slowdown of this CI's compute nodes (1.0 = nominal).
  double compute_factor = 1.0;

  /// Virtual seconds for a pilot to bootstrap its Agent once active.
  double agent_bootstrap_s = 1.0;

  FilesystemSpec filesystem;
  BatchQueueSpec batch_queue;

  int total_cores() const { return nodes * cores_per_node; }
  int total_gpus() const { return nodes * gpus_per_node; }
};

/// Named lookups for the four CIs used in the paper's experiments.
/// Throws ValueError for unknown names.
ClusterSpec cluster_by_name(const std::string& name);

/// All catalog entries, in the order used by Experiment 3 (Fig 7c).
std::vector<ClusterSpec> cluster_catalog();

}  // namespace entk::sim
