#include "src/sim/filesystem.hpp"

#include <algorithm>

namespace entk::sim {

SharedFilesystem::SharedFilesystem(FilesystemSpec spec) : spec_(spec) {}

double SharedFilesystem::duration_locked(FsOp op, std::uint64_t bytes) const {
  if (op == FsOp::Link) return spec_.link_latency_s;
  const int active = std::max(1, stats_.in_flight);
  const double slowdown =
      active <= spec_.contention_free_ops
          ? 1.0
          : static_cast<double>(active) / spec_.contention_free_ops;
  const double transfer =
      static_cast<double>(bytes) / spec_.bandwidth_bps * slowdown;
  return spec_.latency_s + transfer;
}

double SharedFilesystem::begin_op(FsOp op, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.in_flight;
  stats_.max_in_flight = std::max(stats_.max_in_flight, stats_.in_flight);
  const double d = duration_locked(op, bytes);
  ++stats_.ops;
  stats_.bytes += bytes;
  stats_.busy_virtual_s += d;
  return d;
}

void SharedFilesystem::end_op() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.in_flight > 0) --stats_.in_flight;
}

double SharedFilesystem::charge(FsOp op, std::uint64_t bytes) {
  const double d = begin_op(op, bytes);
  end_op();
  return d;
}

FilesystemStats SharedFilesystem::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace entk::sim
