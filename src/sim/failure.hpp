// Failure injection for simulated task execution.
//
// Models the two failure regimes the paper reports:
//   - a (usually zero) base per-task failure probability, and
//   - a concurrency-dependent regime: when the number of concurrently
//     executing tasks reaches `concurrency_threshold`, the per-task failure
//     probability jumps to `overload_probability`. This reproduces the
//     seismic use case (Fig 10), where runs with up to 2^4 concurrent
//     384-node simulations saw no failures while 2^5 concurrent simulations
//     overloaded the shared filesystem and 50% of tasks failed.
// Deterministic given the seed.
#pragma once

#include <cstdint>
#include <mutex>
#include <random>

namespace entk::sim {

struct FailureSpec {
  double base_probability = 0.0;
  int concurrency_threshold = 0;     ///< 0 = no overload regime
  double overload_probability = 0.0;
  /// Sticky overload: once the threshold has been hit, the elevated
  /// failure probability persists (a degraded shared filesystem does not
  /// recover instantly) until concurrency drops below recovery_threshold.
  bool sticky = false;
  int recovery_threshold = 0;        ///< 0 = threshold / 2
  std::uint64_t seed = 42;
};

class FailureModel {
 public:
  explicit FailureModel(FailureSpec spec = {});

  /// Decide whether a task starting while `concurrent_tasks` (including
  /// itself) are executing should fail. Thread-safe.
  bool should_fail(int concurrent_tasks);

  /// Number of failures injected so far.
  std::uint64_t injected() const;

  const FailureSpec& spec() const { return spec_; }

 private:
  const FailureSpec spec_;
  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::uint64_t injected_ = 0;
  bool overloaded_ = false;
};

}  // namespace entk::sim
