#include "src/sim/cluster.hpp"

namespace entk::sim {
namespace {

ClusterSpec make_supermic() {
  ClusterSpec c;
  c.name = "xsede.supermic";
  c.nodes = 360;
  c.cores_per_node = 20;
  c.gpus_per_node = 0;
  c.entk_host_factor = 1.0;  // EnTK runs on the shared TACC VM
  c.compute_factor = 1.0;
  c.agent_bootstrap_s = 22.0;
  return c;
}

ClusterSpec make_stampede() {
  ClusterSpec c;
  c.name = "xsede.stampede";
  c.nodes = 6400;
  c.cores_per_node = 16;
  c.gpus_per_node = 0;
  c.entk_host_factor = 1.0;
  c.compute_factor = 1.05;
  c.agent_bootstrap_s = 28.0;
  return c;
}

ClusterSpec make_comet() {
  ClusterSpec c;
  c.name = "xsede.comet";
  c.nodes = 1944;
  c.cores_per_node = 24;
  c.gpus_per_node = 0;
  c.entk_host_factor = 1.0;
  c.compute_factor = 0.95;
  c.agent_bootstrap_s = 18.0;
  return c;
}

ClusterSpec make_titan() {
  ClusterSpec c;
  c.name = "ornl.titan";
  c.nodes = 18688;
  c.cores_per_node = 16;
  c.gpus_per_node = 1;
  // EnTK runs on an ORNL login node with faster memory and CPU than the
  // TACC VM (paper §IV-A-2): setup ~0.05s vs ~0.1s, management ~3s vs ~10s.
  c.entk_host_factor = 0.3;
  c.compute_factor = 1.0;
  c.agent_bootstrap_s = 35.0;
  // OLCF Lustre ("atlas"): high bandwidth, metadata-bound small ops.
  c.filesystem.latency_s = 8e-3;
  c.filesystem.bandwidth_bps = 1e9;
  c.filesystem.link_latency_s = 4e-3;
  c.filesystem.contention_free_ops = 8;
  return c;
}

}  // namespace

ClusterSpec cluster_by_name(const std::string& name) {
  for (const ClusterSpec& c : cluster_catalog()) {
    if (c.name == name) return c;
  }
  // Accept short aliases.
  if (name == "supermic") return make_supermic();
  if (name == "stampede") return make_stampede();
  if (name == "comet") return make_comet();
  if (name == "titan") return make_titan();
  if (name == "local" || name == "local.localhost") {
    ClusterSpec c;
    c.name = "local.localhost";
    c.nodes = 4;
    c.cores_per_node = 8;
    c.gpus_per_node = 0;
    c.entk_host_factor = 0.0;  // no synthetic host delay for local runs
    c.agent_bootstrap_s = 0.0;
    c.batch_queue.base_wait_s = 0.0;
    return c;
  }
  throw ValueError("cluster_by_name: unknown CI '" + name + "'");
}

std::vector<ClusterSpec> cluster_catalog() {
  return {make_supermic(), make_stampede(), make_comet(), make_titan()};
}

}  // namespace entk::sim
