// Batch-queue wait model for pilot jobs.
//
// A pilot submitted to a CI waits in the machine's batch queue until its
// resources become available (paper §II-D). The paper's overhead analysis
// explicitly *excludes* queue waiting time, so benches configure zero wait;
// the model exists so examples and fault-tolerance tests can exercise
// realistic pilot lifecycles.
#pragma once

#include <cstdint>
#include <mutex>
#include <random>

#include "src/sim/cluster.hpp"

namespace entk::sim {

class BatchQueue {
 public:
  explicit BatchQueue(BatchQueueSpec spec, std::uint64_t seed = 1234);

  /// Virtual seconds a pilot requesting `nodes` nodes waits in the queue.
  double sample_wait(int nodes);

 private:
  const BatchQueueSpec spec_;
  std::mutex mutex_;
  std::mt19937_64 rng_;
};

}  // namespace entk::sim
