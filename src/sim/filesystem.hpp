// Shared-filesystem staging model (Lustre-like).
//
// The RTS stages task input/output through the CI's shared filesystem
// (paper §II-D: POSIX cp and soft links via SAGA verbs). The model charges
// each operation a fixed metadata latency plus bytes/bandwidth, where the
// effective bandwidth degrades once more than `contention_free_ops`
// operations are in flight — capturing the linear growth of staging time
// with task count observed in the weak-scaling experiment (Fig 8) and the
// I/O-overload regime of the seismic use case (Fig 10).
//
// Durations are *virtual seconds*; callers sleep on their scaled clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "src/sim/cluster.hpp"

namespace entk::sim {

enum class FsOp { Copy, Link, Transfer };

struct FilesystemStats {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  int in_flight = 0;
  int max_in_flight = 0;
  double busy_virtual_s = 0.0;  ///< sum of charged durations
};

class SharedFilesystem {
 public:
  explicit SharedFilesystem(FilesystemSpec spec);

  /// Begin an operation: returns the virtual duration to charge. The
  /// operation stays "in flight" (contending) until end_op() is called.
  double begin_op(FsOp op, std::uint64_t bytes);

  /// Mark an operation complete (releases its contention share).
  void end_op();

  /// One-shot helper: charge and immediately release; returns duration.
  /// Only correct for sequential stagers (the default configuration).
  double charge(FsOp op, std::uint64_t bytes);

  FilesystemStats stats() const;
  const FilesystemSpec& spec() const { return spec_; }

 private:
  double duration_locked(FsOp op, std::uint64_t bytes) const;

  const FilesystemSpec spec_;
  mutable std::mutex mutex_;
  FilesystemStats stats_;
};

}  // namespace entk::sim
