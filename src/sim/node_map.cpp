#include "src/sim/node_map.hpp"

#include <algorithm>
#include <numeric>

namespace entk::sim {

NodeMap::NodeMap(int nodes, int cores_per_node, int gpus_per_node)
    : cores_per_node_(cores_per_node),
      gpus_per_node_(gpus_per_node),
      free_cores_per_node_(static_cast<std::size_t>(nodes), cores_per_node),
      free_gpus_per_node_(static_cast<std::size_t>(nodes), gpus_per_node),
      retired_(static_cast<std::size_t>(nodes), 0) {
  stats_.total_cores = nodes * cores_per_node;
  stats_.total_gpus = nodes * gpus_per_node;
}

bool NodeMap::node_fully_free(std::size_t n) const {
  return free_cores_per_node_[n] == cores_per_node_ &&
         free_gpus_per_node_[n] == gpus_per_node_;
}

int NodeMap::active_nodes_locked() const {
  int active = 0;
  for (const char r : retired_) active += r ? 0 : 1;
  return active;
}

int NodeMap::draining_nodes_locked() const {
  int draining = 0;
  for (std::size_t n = 0; n < retired_.size(); ++n) {
    if (retired_[n] && !node_fully_free(n)) ++draining;
  }
  return draining;
}

bool NodeMap::fits_capacity(const SlotRequest& request) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (request.exclusive_nodes) {
    const int nodes_needed =
        (request.cores + cores_per_node_ - 1) / cores_per_node_;
    return nodes_needed <= active_nodes_locked();
  }
  return request.cores <= stats_.total_cores &&
         request.gpus <= stats_.total_gpus;
}

std::optional<Allocation> NodeMap::try_allocate(const SlotRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Held held;
  Allocation alloc;

  if (request.exclusive_nodes) {
    // Whole-node placement: need ceil(cores / cores_per_node) empty nodes.
    int nodes_needed = (request.cores + cores_per_node_ - 1) / cores_per_node_;
    if (nodes_needed == 0) nodes_needed = 1;
    for (std::size_t n = 0;
         n < free_cores_per_node_.size() && nodes_needed > 0; ++n) {
      if (retired_[n]) continue;
      if (free_cores_per_node_[n] == cores_per_node_ &&
          free_gpus_per_node_[n] == gpus_per_node_) {
        held.cores_per_node.emplace_back(static_cast<int>(n), cores_per_node_);
        held.gpus_per_node.emplace_back(static_cast<int>(n), gpus_per_node_);
        alloc.node_ids.push_back(static_cast<int>(n));
        --nodes_needed;
      }
    }
    if (nodes_needed > 0) {
      ++stats_.rejections;
      return std::nullopt;
    }
    for (const auto& [n, c] : held.cores_per_node) free_cores_per_node_[static_cast<std::size_t>(n)] -= c;
    for (const auto& [n, g] : held.gpus_per_node) free_gpus_per_node_[static_cast<std::size_t>(n)] -= g;
    alloc.cores = static_cast<int>(alloc.node_ids.size()) * cores_per_node_;
    alloc.gpus = static_cast<int>(alloc.node_ids.size()) * gpus_per_node_;
  } else {
    // Core-level placement: first fit, spilling across nodes.
    int cores_left = request.cores;
    int gpus_left = request.gpus;
    for (std::size_t n = 0;
         n < free_cores_per_node_.size() && (cores_left > 0 || gpus_left > 0);
         ++n) {
      if (retired_[n]) continue;
      const int take_c = std::min(cores_left, free_cores_per_node_[n]);
      const int take_g = std::min(gpus_left, free_gpus_per_node_[n]);
      if (take_c > 0 || take_g > 0) {
        if (take_c > 0)
          held.cores_per_node.emplace_back(static_cast<int>(n), take_c);
        if (take_g > 0)
          held.gpus_per_node.emplace_back(static_cast<int>(n), take_g);
        alloc.node_ids.push_back(static_cast<int>(n));
        cores_left -= take_c;
        gpus_left -= take_g;
      }
    }
    if (cores_left > 0 || gpus_left > 0) {
      ++stats_.rejections;
      return std::nullopt;
    }
    for (const auto& [n, c] : held.cores_per_node) free_cores_per_node_[static_cast<std::size_t>(n)] -= c;
    for (const auto& [n, g] : held.gpus_per_node) free_gpus_per_node_[static_cast<std::size_t>(n)] -= g;
    alloc.cores = request.cores;
    alloc.gpus = request.gpus;
  }

  alloc.id = next_id_++;
  stats_.used_cores += alloc.cores;
  stats_.used_gpus += alloc.gpus;
  ++stats_.allocations;
  held_.emplace(alloc.id, std::move(held));
  return alloc;
}

void NodeMap::release(std::uint64_t allocation_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = held_.find(allocation_id);
  if (it == held_.end()) return;
  // Cores on retired (draining) nodes were already removed from the stats
  // when the node retired; returning them only restores the per-node view
  // so the drain can be observed completing.
  for (const auto& [n, c] : it->second.cores_per_node) {
    free_cores_per_node_[static_cast<std::size_t>(n)] += c;
    if (!retired_[static_cast<std::size_t>(n)]) stats_.used_cores -= c;
  }
  for (const auto& [n, g] : it->second.gpus_per_node) {
    free_gpus_per_node_[static_cast<std::size_t>(n)] += g;
    if (!retired_[static_cast<std::size_t>(n)]) stats_.used_gpus -= g;
  }
  held_.erase(it);
}

int NodeMap::add_nodes(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Resurrect retired nodes first: their ids (and any still-draining
  // allocations) return to service, so a shrink followed by a grow is
  // cheap and loses nothing.
  for (std::size_t n = 0; n < retired_.size() && count > 0; ++n) {
    if (!retired_[n]) continue;
    retired_[n] = 0;
    stats_.total_cores += cores_per_node_;
    stats_.total_gpus += gpus_per_node_;
    stats_.used_cores += cores_per_node_ - free_cores_per_node_[n];
    stats_.used_gpus += gpus_per_node_ - free_gpus_per_node_[n];
    --count;
  }
  for (; count > 0; --count) {
    free_cores_per_node_.push_back(cores_per_node_);
    free_gpus_per_node_.push_back(gpus_per_node_);
    retired_.push_back(0);
    stats_.total_cores += cores_per_node_;
    stats_.total_gpus += gpus_per_node_;
  }
  return active_nodes_locked();
}

int NodeMap::retire_nodes(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Retire the freest nodes first so the drain completes soonest; keep at
  // least one node active or the pilot could never run anything again.
  std::vector<std::size_t> candidates;
  for (std::size_t n = 0; n < retired_.size(); ++n) {
    if (!retired_[n]) candidates.push_back(n);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](std::size_t a, std::size_t b) {
                     return free_cores_per_node_[a] > free_cores_per_node_[b];
                   });
  const int max_retirable = static_cast<int>(candidates.size()) - 1;
  const int to_retire = std::min(count, std::max(0, max_retirable));
  for (int i = 0; i < to_retire; ++i) {
    const std::size_t n = candidates[static_cast<std::size_t>(i)];
    retired_[n] = 1;
    stats_.total_cores -= cores_per_node_;
    stats_.total_gpus -= gpus_per_node_;
    stats_.used_cores -= cores_per_node_ - free_cores_per_node_[n];
    stats_.used_gpus -= gpus_per_node_ - free_gpus_per_node_[n];
  }
  return to_retire;
}

int NodeMap::draining_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_nodes_locked();
}

int NodeMap::nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_nodes_locked();
}

NodeMapStats NodeMap::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeMapStats out = stats_;
  out.active_nodes = active_nodes_locked();
  out.draining_nodes = draining_nodes_locked();
  return out;
}

int NodeMap::free_cores() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.total_cores - stats_.used_cores;
}

}  // namespace entk::sim
