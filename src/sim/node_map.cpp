#include "src/sim/node_map.hpp"

namespace entk::sim {

NodeMap::NodeMap(int nodes, int cores_per_node, int gpus_per_node)
    : cores_per_node_(cores_per_node),
      gpus_per_node_(gpus_per_node),
      free_cores_per_node_(static_cast<std::size_t>(nodes), cores_per_node),
      free_gpus_per_node_(static_cast<std::size_t>(nodes), gpus_per_node) {
  stats_.total_cores = nodes * cores_per_node;
  stats_.total_gpus = nodes * gpus_per_node;
}

bool NodeMap::fits_capacity(const SlotRequest& request) const {
  if (request.exclusive_nodes) {
    const int nodes_needed =
        (request.cores + cores_per_node_ - 1) / cores_per_node_;
    return nodes_needed <= nodes();
  }
  return request.cores <= stats_.total_cores &&
         request.gpus <= stats_.total_gpus;
}

std::optional<Allocation> NodeMap::try_allocate(const SlotRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Held held;
  Allocation alloc;

  if (request.exclusive_nodes) {
    // Whole-node placement: need ceil(cores / cores_per_node) empty nodes.
    int nodes_needed = (request.cores + cores_per_node_ - 1) / cores_per_node_;
    if (nodes_needed == 0) nodes_needed = 1;
    for (std::size_t n = 0;
         n < free_cores_per_node_.size() && nodes_needed > 0; ++n) {
      if (free_cores_per_node_[n] == cores_per_node_ &&
          free_gpus_per_node_[n] == gpus_per_node_) {
        held.cores_per_node.emplace_back(static_cast<int>(n), cores_per_node_);
        held.gpus_per_node.emplace_back(static_cast<int>(n), gpus_per_node_);
        alloc.node_ids.push_back(static_cast<int>(n));
        --nodes_needed;
      }
    }
    if (nodes_needed > 0) {
      ++stats_.rejections;
      return std::nullopt;
    }
    for (const auto& [n, c] : held.cores_per_node) free_cores_per_node_[static_cast<std::size_t>(n)] -= c;
    for (const auto& [n, g] : held.gpus_per_node) free_gpus_per_node_[static_cast<std::size_t>(n)] -= g;
    alloc.cores = static_cast<int>(alloc.node_ids.size()) * cores_per_node_;
    alloc.gpus = static_cast<int>(alloc.node_ids.size()) * gpus_per_node_;
  } else {
    // Core-level placement: first fit, spilling across nodes.
    int cores_left = request.cores;
    int gpus_left = request.gpus;
    for (std::size_t n = 0;
         n < free_cores_per_node_.size() && (cores_left > 0 || gpus_left > 0);
         ++n) {
      const int take_c = std::min(cores_left, free_cores_per_node_[n]);
      const int take_g = std::min(gpus_left, free_gpus_per_node_[n]);
      if (take_c > 0 || take_g > 0) {
        if (take_c > 0)
          held.cores_per_node.emplace_back(static_cast<int>(n), take_c);
        if (take_g > 0)
          held.gpus_per_node.emplace_back(static_cast<int>(n), take_g);
        alloc.node_ids.push_back(static_cast<int>(n));
        cores_left -= take_c;
        gpus_left -= take_g;
      }
    }
    if (cores_left > 0 || gpus_left > 0) {
      ++stats_.rejections;
      return std::nullopt;
    }
    for (const auto& [n, c] : held.cores_per_node) free_cores_per_node_[static_cast<std::size_t>(n)] -= c;
    for (const auto& [n, g] : held.gpus_per_node) free_gpus_per_node_[static_cast<std::size_t>(n)] -= g;
    alloc.cores = request.cores;
    alloc.gpus = request.gpus;
  }

  alloc.id = next_id_++;
  stats_.used_cores += alloc.cores;
  stats_.used_gpus += alloc.gpus;
  ++stats_.allocations;
  held_.emplace(alloc.id, std::move(held));
  return alloc;
}

void NodeMap::release(std::uint64_t allocation_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = held_.find(allocation_id);
  if (it == held_.end()) return;
  for (const auto& [n, c] : it->second.cores_per_node) {
    free_cores_per_node_[static_cast<std::size_t>(n)] += c;
    stats_.used_cores -= c;
  }
  for (const auto& [n, g] : it->second.gpus_per_node) {
    free_gpus_per_node_[static_cast<std::size_t>(n)] += g;
    stats_.used_gpus -= g;
  }
  held_.erase(it);
}

NodeMapStats NodeMap::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

int NodeMap::free_cores() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.total_cores - stats_.used_cores;
}

}  // namespace entk::sim
