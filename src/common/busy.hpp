// Busy-time accounting shared by every message-driven component.
//
// The paper's overhead model (§IV) attributes management cost to the wall
// time each component actually spends processing, not to the lifetime of
// its threads; these helpers accumulate exactly that.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/common/clock.hpp"

namespace entk {

/// Wall-clock busy-time accumulator (nanoseconds), used to measure the
/// management overhead each component actually spends processing.
class BusyAccumulator {
 public:
  void add_s(double seconds) {
    ns_.fetch_add(static_cast<std::int64_t>(seconds * 1e9));
  }
  double total_s() const { return static_cast<double>(ns_.load()) * 1e-9; }

 private:
  std::atomic<std::int64_t> ns_{0};
};

/// RAII busy-time scope.
class BusyScope {
 public:
  explicit BusyScope(BusyAccumulator& acc) : acc_(acc), start_(wall_now_us()) {}
  ~BusyScope() {
    acc_.add_s(static_cast<double>(wall_now_us() - start_) * 1e-6);
  }

 private:
  BusyAccumulator& acc_;
  std::int64_t start_;
};

}  // namespace entk
