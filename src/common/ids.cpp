#include "src/common/ids.hpp"

#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace entk {
namespace {

std::mutex g_mutex;
std::unordered_map<std::string, std::uint64_t>& counters() {
  static std::unordered_map<std::string, std::uint64_t> c;
  return c;
}

}  // namespace

std::string generate_uid(const std::string& prefix) {
  std::uint64_t n;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    n = counters()[prefix]++;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".%04llu", static_cast<unsigned long long>(n));
  return prefix + buf;
}

void reset_uid_counters() {
  std::lock_guard<std::mutex> lock(g_mutex);
  counters().clear();
}

std::string uid_prefix(const std::string& uid) {
  const auto pos = uid.rfind('.');
  if (pos == std::string::npos) return uid;
  return uid.substr(0, pos);
}

std::int64_t uid_number(const std::string& uid) {
  const auto pos = uid.rfind('.');
  if (pos == std::string::npos || pos + 1 >= uid.size()) return -1;
  std::int64_t value = 0;
  for (std::size_t i = pos + 1; i < uid.size(); ++i) {
    const char c = uid[i];
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace entk
