#include "src/common/clock.hpp"

#include <thread>

namespace entk {
namespace {

WallClock::time_point process_epoch() {
  static const WallClock::time_point epoch = WallClock::now();
  return epoch;
}

}  // namespace

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             WallClock::now() - process_epoch())
      .count();
}

double wall_now_s() { return static_cast<double>(wall_now_us()) * 1e-6; }

double RealClock::now() const { return wall_now_s(); }

void RealClock::sleep_for(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

ScaledClock::ScaledClock(double wall_per_virtual)
    : wall_per_virtual_(wall_per_virtual), epoch_s_(wall_now_s()) {}

double ScaledClock::now() const {
  return (wall_now_s() - epoch_s_) / wall_per_virtual_;
}

void ScaledClock::sleep_for(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds * wall_per_virtual_));
}

}  // namespace entk
