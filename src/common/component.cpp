#include "src/common/component.hpp"

#include <chrono>

#include "src/common/clock.hpp"
#include "src/common/log.hpp"
#include "src/common/worker.hpp"

namespace entk {

const char* to_string(ComponentState state) {
  switch (state) {
    case ComponentState::New: return "NEW";
    case ComponentState::Starting: return "STARTING";
    case ComponentState::Running: return "RUNNING";
    case ComponentState::Draining: return "DRAINING";
    case ComponentState::Stopped: return "STOPPED";
    case ComponentState::Failed: return "FAILED";
  }
  return "UNKNOWN";
}

bool is_valid_transition(ComponentState from, ComponentState to) {
  switch (from) {
    case ComponentState::New:
      return to == ComponentState::Starting;
    case ComponentState::Starting:
      return to == ComponentState::Running || to == ComponentState::Failed;
    case ComponentState::Running:
      return to == ComponentState::Draining || to == ComponentState::Failed;
    case ComponentState::Draining:
      return to == ComponentState::Stopped || to == ComponentState::Failed;
    case ComponentState::Stopped:
      return to == ComponentState::Starting;
    case ComponentState::Failed:
      return to == ComponentState::Starting;
  }
  return false;
}

Component::Component(std::string name, ProfilerPtr profiler)
    : profiler_(std::move(profiler)), name_(std::move(name)) {}

Component::~Component() {
  // Subclasses must stop() in their own destructor (their overrides are
  // gone by the time this runs); all that is left here is joining any
  // worker threads that somehow outlived that.
  join_workers();
}

ComponentState Component::state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

std::string Component::fault_reason() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return fault_reason_;
}

void Component::start() {
  std::lock_guard<std::mutex> control(control_mutex_);
  ComponentState previous;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    previous = state_;
    if (previous != ComponentState::New && previous != ComponentState::Stopped &&
        previous != ComponentState::Failed) {
      throw StateError("component '" + name_ + "' cannot start from state " +
                       to_string(previous));
    }
    transition_locked(ComponentState::Starting);
  }
  // Workers of the previous generation exited (cleanly or via a fault) by
  // the time we can be in Stopped/Failed, but their threads may not be
  // joined yet.
  join_workers();
  workers_.clear();
  stop_requested_.store(false, std::memory_order_release);
  last_beat_us_.store(-1);
  try {
    if (previous == ComponentState::Failed) on_reattach();
    on_start();
  } catch (...) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    transition_locked(ComponentState::Failed);
    if (fault_reason_.empty()) fault_reason_ = "on_start failed";
    workers_.clear();
    throw;
  }
  for (auto& worker : workers_) worker->launch();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // A worker may already have faulted between launch and here; keep the
    // Failed state it set in that case.
    if (state_ == ComponentState::Starting)
      transition_locked(ComponentState::Running);
  }
  generation_.fetch_add(1);
}

void Component::stop() {
  std::lock_guard<std::mutex> control(control_mutex_);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    switch (state_) {
      case ComponentState::New:
      case ComponentState::Stopped:
        return;  // nothing running, nothing to join — idempotent
      case ComponentState::Failed:
        break;  // join dead workers below, stay Failed
      case ComponentState::Running:
        transition_locked(ComponentState::Draining);
        break;
      case ComponentState::Draining:
        break;  // concurrent stop already draining; fall through to join
      case ComponentState::Starting:
        // Unreachable from outside: start() holds control_mutex_ for the
        // whole Starting window.
        break;
    }
  }
  request_stop();
  join_workers();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (state_ == ComponentState::Draining)
      transition_locked(ComponentState::Stopped);
    if (state_ != ComponentState::Stopped) return;  // faulted while draining
  }
  on_stopped();
}

void Component::fail(const std::string& reason) {
  std::lock_guard<std::mutex> control(control_mutex_);
  std::function<void(Component&, const std::string&)> listener;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (state_ != ComponentState::Running &&
        state_ != ComponentState::Draining) {
      return;
    }
    transition_locked(ComponentState::Failed);
    fault_reason_ = reason;
    listener = fault_listener_;
  }
  if (profiler_) profiler_->record(name_, "component_fault", reason);
  request_stop();
  join_workers();
  if (listener) listener(*this, reason);
}

void Component::inject_fault(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    injected_reason_ = std::move(reason);
  }
  fault_armed_.store(true, std::memory_order_release);
}

void Component::set_metrics(obs::MetricsPtr metrics) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  metrics_ = std::move(metrics);
  if (!metrics_) {
    transitions_metric_ = nullptr;
    faults_metric_ = nullptr;
    return;
  }
  transitions_metric_ = &metrics_->counter("component." + name_ + ".transitions");
  faults_metric_ = &metrics_->counter("component." + name_ + ".faults");
}

void Component::set_fault_listener(
    std::function<void(Component&, const std::string&)> listener) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  fault_listener_ = std::move(listener);
}

double Component::seconds_since_beat() const {
  const std::int64_t beat_us = last_beat_us_.load();
  if (beat_us < 0) return -1.0;
  return static_cast<double>(wall_now_us() - beat_us) / 1e6;
}

std::size_t Component::worker_count() const { return workers_.size(); }

void Component::add_worker(std::string name, std::function<void()> body) {
  workers_.push_back(
      std::make_unique<Worker>(*this, std::move(name), std::move(body)));
}

bool Component::wait_stop_for(double seconds) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [this] { return stop_requested_.load(std::memory_order_acquire); });
  return stop_requested_.load(std::memory_order_acquire);
}

void Component::beat() {
  last_beat_us_.store(wall_now_us());
  if (fault_armed_.exchange(false, std::memory_order_acq_rel)) {
    std::string reason;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      reason = injected_reason_.empty() ? "injected fault" : injected_reason_;
      injected_reason_.clear();
    }
    throw InjectedFault(reason);
  }
}

void Component::worker_failed(const std::string& worker,
                              const std::string& what) {
  // Called from the dying worker thread — must not take control_mutex_
  // (a concurrent stop() holds it while joining this very thread).
  std::function<void(Component&, const std::string&)> listener;
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (state_ == ComponentState::Starting ||
        state_ == ComponentState::Running ||
        state_ == ComponentState::Draining) {
      transition_locked(ComponentState::Failed);
      fault_reason_ = worker + ": " + what;
      listener = fault_listener_;
      first = true;
    }
  }
  ENTK_WARN(name_) << "worker '" << worker << "' faulted: " << what;
  if (profiler_) profiler_->record(name_, "worker_fault", worker + ": " + what);
  if (!first) return;
  // Bring the sibling workers down so the component is fully quiesced when
  // the supervisor restarts it. They are joined by stop()/start() later.
  request_stop();
  if (listener) listener(*this, worker + ": " + what);
}

void Component::transition_locked(ComponentState to) {
  if (!is_valid_transition(state_, to)) {
    throw StateError("component '" + name_ + "': illegal transition " +
                     std::string(to_string(state_)) + " -> " + to_string(to));
  }
  state_ = to;
  if (profiler_) profiler_->record(name_, "component_state", to_string(to));
  if (transitions_metric_ != nullptr) {
    transitions_metric_->add(1);
    if (to == ComponentState::Failed) faults_metric_->add(1);
  }
}

void Component::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
  on_stop_requested();
}

void Component::join_workers() {
  for (auto& worker : workers_) worker->join();
}

}  // namespace entk
