// Supervised worker loop: the single thread-ownership primitive of the
// component runtime (see component.hpp).
//
// A Worker wraps one std::thread around a component-provided body and
// guarantees that no exception ever escapes the thread: anything the body
// throws is caught, recorded, and reported to the owning Component as a
// worker fault — turning what used to be std::terminate into a component
// state transition the supervisor can react to.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace entk {

class Component;

class Worker {
 public:
  /// `owner` must outlive the worker; `body` is the worker's whole life —
  /// it is expected to loop internally on the owner's stop/beat facilities
  /// and return when the component drains or stops.
  Worker(Component& owner, std::string name, std::function<void()> body);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Spawn the thread. Called exactly once, by Component::start().
  void launch();

  /// Join the thread (idempotent).
  void join();

  const std::string& name() const { return name_; }

  /// True when the body exited via an exception.
  bool faulted() const { return faulted_.load(); }

 private:
  void run();

  Component& owner_;
  const std::string name_;
  std::function<void()> body_;
  std::atomic<bool> faulted_{false};
  std::thread thread_;
};

}  // namespace entk
