#include "src/common/worker.hpp"

#include "src/common/component.hpp"
#include "src/common/log.hpp"

namespace entk {

Worker::Worker(Component& owner, std::string name, std::function<void()> body)
    : owner_(owner), name_(std::move(name)), body_(std::move(body)) {}

Worker::~Worker() { join(); }

void Worker::launch() { thread_ = std::thread(&Worker::run, this); }

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  try {
    body_();
  } catch (const std::exception& e) {
    faulted_ = true;
    owner_.worker_failed(name_, e.what());
  } catch (...) {
    faulted_ = true;
    owner_.worker_failed(name_, "unknown exception");
  }
}

}  // namespace entk
