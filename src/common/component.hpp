// Supervised-component runtime (paper §II-B-4).
//
// The paper treats every EnTK component — WFProcessor, ExecManager,
// Synchronizer — as a restartable unit monitored via heartbeats. This base
// class is the common concurrency backbone those components share: an
// explicit lifecycle state machine
//
//     New -> Starting -> Running -> Draining -> Stopped
//                 \          \          \
//                  +----------+----------+--> Failed --> Starting (restart)
//
// owning N supervised Worker loops (worker.hpp). A worker exception no
// longer reaches std::terminate: the Worker catches it, the component
// records it to the profiler and moves to Failed, and the fault listener
// (the AppManager-level Supervisor, src/core/supervisor.hpp) decides
// whether to restart the component. Restart re-runs on_reattach()/
// on_start() against the same broker queues and state store, so no task
// state is lost across a component crash.
//
// Subclass contract:
//   - on_start()          register workers with add_worker(); runs while
//                         Starting, before any worker thread exists
//   - on_stop_requested() wake any component-private condition waits (the
//                         base wakes wait_stop_for() itself)
//   - on_stopped()        after all workers joined on the clean-stop path
//   - on_reattach()       before on_start() when recovering from Failed:
//                         re-attach to queues (e.g. requeue unacked
//                         deliveries orphaned by the dead workers)
//   - worker loops call beat() once per iteration (liveness timestamp +
//     fault-injection point) and exit when stop_requested() turns true,
//     draining whatever their protocol requires first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/profiler.hpp"
#include "src/obs/metrics.hpp"

namespace entk {

class Worker;

enum class ComponentState { New, Starting, Running, Draining, Stopped, Failed };

const char* to_string(ComponentState state);

/// Legal lifecycle transitions; everything not listed in the table is
/// illegal (tested exhaustively in tests/test_component.cpp).
bool is_valid_transition(ComponentState from, ComponentState to);

/// The exception beat() throws when a fault was armed via inject_fault():
/// it escapes the worker body like any real error would and exercises the
/// identical fault-propagation path.
class InjectedFault : public EnTKError {
 public:
  explicit InjectedFault(const std::string& what) : EnTKError(what) {}
};

/// One knob set for every supervision loop in the system: the ExecManager's
/// RTS heartbeat and the AppManager-level component supervisor probe the
/// same interval and draw their restart budgets from here.
struct SupervisionConfig {
  double heartbeat_interval_s = 0.02;  ///< wall seconds between probes
  int rts_restart_limit = 1;           ///< restarts of a failed RTS per run
  int component_restart_limit = 2;     ///< restarts per failed component
};

class Component {
 public:
  Component(std::string name, ProfilerPtr profiler);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  ComponentState state() const;

  /// Reason of the last transition to Failed ("" when never failed).
  std::string fault_reason() const;

  /// New|Stopped|Failed -> Starting -> Running. Joins leftover workers of a
  /// previous generation, calls on_reattach() (restart-from-Failed only)
  /// and on_start(), then launches every registered worker. Throws
  /// StateError when called in any other state; a throwing on_start()
  /// leaves the component Failed.
  void start();

  /// Running -> Draining -> Stopped. Sets the stop flag, wakes waiters via
  /// on_stop_requested(), joins all workers, then calls on_stopped().
  /// Idempotent: stopping a New/Stopped component is a no-op; stopping a
  /// Failed component joins its dead workers and stays Failed.
  void stop();

  /// External hard failure (e.g. a simulated RTS kill): marks the
  /// component Failed with `reason`, stops and joins every worker. Must
  /// not be called from one of the component's own worker threads.
  void fail(const std::string& reason);

  /// Arm a one-shot fault: the next beat() of any worker throws
  /// InjectedFault, driving the real worker-exception path end to end.
  void inject_fault(std::string reason);

  /// Listener invoked (on the failing worker's thread) right after the
  /// component transitions to Failed. One slot; the supervisor owns it.
  void set_fault_listener(
      std::function<void(Component&, const std::string&)> listener);

  /// Attach a metrics registry: lifecycle transition and fault counters
  /// ("component.*"). Attach before start(); nullptr detaches.
  void set_metrics(obs::MetricsPtr metrics);

  /// Number of completed start() calls (1 after first start, +1 per
  /// restart).
  int generation() const { return generation_.load(); }

  /// Wall seconds since any worker last called beat(); -1 before the
  /// first beat of the current generation.
  double seconds_since_beat() const;

  std::size_t worker_count() const;

 protected:
  // --- subclass interface -------------------------------------------------
  virtual void on_start() = 0;
  virtual void on_stop_requested() {}
  virtual void on_stopped() {}
  virtual void on_reattach() {}

  /// Register a worker loop. Only legal from inside on_start().
  void add_worker(std::string name, std::function<void()> body);

  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Interruptible sleep: returns true when stop was requested before the
  /// interval elapsed (replaces every hand-rolled stop_cv wait).
  bool wait_stop_for(double seconds);

  /// Worker-loop heartbeat: records liveness and throws InjectedFault when
  /// a fault is armed. Call once per loop iteration.
  void beat();

  /// Attached registry for subclass-specific metrics (null when off).
  /// Rare paths may resolve through it directly; hot paths should cache
  /// handles when set_metrics runs.
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  ProfilerPtr profiler_;

 private:
  friend class Worker;
  void worker_failed(const std::string& worker, const std::string& what);

  /// Apply a validated transition under state_mutex_ (throws StateError on
  /// an illegal one) and record it to the profiler.
  void transition_locked(ComponentState to);
  void request_stop();  ///< set flag + wake wait_stop_for + on_stop_requested
  void join_workers();

  const std::string name_;

  mutable std::mutex state_mutex_;
  ComponentState state_ = ComponentState::New;
  std::string fault_reason_;
  std::string injected_reason_;
  std::function<void(Component&, const std::string&)> fault_listener_;

  std::mutex control_mutex_;  ///< serializes start/stop/fail

  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> fault_armed_{false};
  std::atomic<int> generation_{0};
  std::atomic<std::int64_t> last_beat_us_{-1};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  // Pre-resolved metric handles; all null when metrics are off.
  obs::MetricsPtr metrics_;
  obs::Counter* transitions_metric_ = nullptr;
  obs::Counter* faults_metric_ = nullptr;
};

}  // namespace entk
