// Clock abstraction separating the toolkit's two notions of time.
//
// Control-plane work (queue management, state synchronization, component
// setup/tear-down) always runs in real wall-clock time: those durations ARE
// the toolkit overheads the paper characterizes. Task execution and data
// staging, in contrast, happen on a simulated computing infrastructure and
// advance a *scaled* clock, so that a 600-second Gromacs task can "run" in
// 0.6 ms of wall time while preserving every ordering and ratio.
//
// Virtual time is expressed in double seconds throughout the simulator.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace entk {

using WallClock = std::chrono::steady_clock;

/// Microseconds of wall time since an arbitrary (process-stable) epoch.
std::int64_t wall_now_us();

/// Seconds of wall time since the process-stable epoch.
double wall_now_s();

/// A clock over *virtual* seconds. Implementations map virtual durations to
/// wall durations with a configurable scale factor.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current virtual time in seconds.
  virtual double now() const = 0;

  /// Block the calling thread for `seconds` of virtual time.
  virtual void sleep_for(double seconds) = 0;

  /// Wall-clock seconds corresponding to one virtual second.
  virtual double scale() const = 0;
};

/// Identity clock: virtual time is wall time (scale 1.0).
class RealClock final : public Clock {
 public:
  double now() const override;
  void sleep_for(double seconds) override;
  double scale() const override { return 1.0; }
};

/// Scaled clock: one virtual second costs `wall_per_virtual` wall seconds.
/// The default (1e-3) executes simulated workloads a thousand times faster
/// than real time. Virtual time flows continuously from construction.
class ScaledClock final : public Clock {
 public:
  explicit ScaledClock(double wall_per_virtual = 1e-3);

  double now() const override;
  void sleep_for(double seconds) override;
  double scale() const override { return wall_per_virtual_; }

 private:
  double wall_per_virtual_;
  double epoch_s_;  // wall seconds at construction
};

using ClockPtr = std::shared_ptr<Clock>;

}  // namespace entk
