#include "src/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/common/clock.hpp"

namespace entk {
namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("ENTK_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::Warn);
  return static_cast<int>(log_level_from_string(env));
}()};

std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel log_level_from_string(const std::string& s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

void log_emit(LogLevel level, const std::string& component,
              const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%10.4f %-5s [%s] %s\n", wall_now_s(),
               level_name(level), component.c_str(), message.c_str());
}

}  // namespace entk
