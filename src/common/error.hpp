// Exception hierarchy for the EnTK toolkit.
//
// Mirrors the error taxonomy of the reference implementation: user-facing
// description errors (ValueError, TypeError, MissingError) raised while
// validating PST descriptions, and runtime errors (EnTKError and subclasses)
// raised by components during execution.
#pragma once

#include <stdexcept>
#include <string>

namespace entk {

/// Base class for all toolkit errors.
class EnTKError : public std::runtime_error {
 public:
  explicit EnTKError(const std::string& what) : std::runtime_error(what) {}
};

/// A description attribute has an invalid value.
class ValueError : public EnTKError {
 public:
  ValueError(const std::string& obj, const std::string& attribute,
             const std::string& expected)
      : EnTKError(obj + ": invalid value for '" + attribute + "', expected " +
                  expected) {}
  explicit ValueError(const std::string& what) : EnTKError(what) {}
};

/// A description attribute has the wrong type.
class TypeError : public EnTKError {
 public:
  explicit TypeError(const std::string& what) : EnTKError(what) {}
};

/// A required description attribute is missing.
class MissingError : public EnTKError {
 public:
  MissingError(const std::string& obj, const std::string& attribute)
      : EnTKError(obj + ": missing required attribute '" + attribute + "'") {}
};

/// An object was asked to perform an invalid state transition.
class StateError : public EnTKError {
 public:
  explicit StateError(const std::string& what) : EnTKError(what) {}
};

/// The runtime system failed or became unresponsive.
class RtsError : public EnTKError {
 public:
  explicit RtsError(const std::string& what) : EnTKError(what) {}
};

/// The messaging substrate failed (closed queue, broker shut down, ...).
class MqError : public EnTKError {
 public:
  explicit MqError(const std::string& what) : EnTKError(what) {}
};

}  // namespace entk
