#include "src/common/profiler.hpp"

#include <cstdio>
#include <map>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"

namespace entk {

void Profiler::record(const std::string& component, const std::string& event,
                      const std::string& uid, double virtual_s) {
  ProfileEvent e;
  e.wall_us = wall_now_us();
  e.virtual_s = virtual_s;
  e.component = component;
  e.event = event;
  e.uid = uid;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
}

std::vector<ProfileEvent> Profiler::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Profiler::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::optional<std::int64_t> Profiler::first_us(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : events_) {
    if (e.event == event) return e.wall_us;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Profiler::last_us(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<std::int64_t> out;
  for (const auto& e : events_) {
    if (e.event == event) out = e.wall_us;
  }
  return out;
}

double Profiler::span_s(const std::string& start_event,
                        const std::string& end_event) const {
  const auto a = first_us(start_event);
  const auto b = last_us(end_event);
  if (!a || !b) return 0.0;
  return static_cast<double>(*b - *a) * 1e-6;
}

double Profiler::paired_sum_s(const std::string& start_event,
                              const std::string& end_event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::int64_t> starts;
  double total = 0.0;
  for (const auto& e : events_) {
    if (e.event == start_event) {
      // Keep the first start per uid.
      starts.emplace(e.uid, e.wall_us);
    } else if (e.event == end_event) {
      const auto it = starts.find(e.uid);
      if (it != starts.end()) {
        total += static_cast<double>(e.wall_us - it->second) * 1e-6;
        starts.erase(it);
      }
    }
  }
  return total;
}

std::size_t Profiler::count(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.event == event) ++n;
  }
  return n;
}

void Profiler::dump_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw EnTKError("Profiler: cannot open " + path);
  std::fprintf(f, "wall_us,virtual_s,component,event,uid\n");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : events_) {
    std::fprintf(f, "%lld,%.6f,%s,%s,%s\n",
                 static_cast<long long>(e.wall_us), e.virtual_s,
                 e.component.c_str(), e.event.c_str(), e.uid.c_str());
  }
  std::fclose(f);
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace entk
