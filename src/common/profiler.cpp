#include "src/common/profiler.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"

namespace entk {

void Profiler::record(const std::string& component, const std::string& event,
                      const std::string& uid, double virtual_s) {
  ProfileEvent e;
  e.wall_us = wall_now_us();
  e.virtual_s = virtual_s;
  e.component = component;
  e.event = event;
  e.uid = uid;
  std::lock_guard<std::mutex> lock(mutex_);
  // Maintain the per-event-name index inline so first/last/count queries
  // never rescan the log.
  EventIndexEntry& entry = index_[event];
  if (entry.count == 0) entry.first_us = e.wall_us;
  entry.last_us = e.wall_us;
  ++entry.count;
  events_.push_back(std::move(e));
}

std::vector<ProfileEvent> Profiler::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Profiler::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::optional<std::int64_t> Profiler::first_us(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(event);
  if (it == index_.end()) return std::nullopt;
  return it->second.first_us;
}

std::optional<std::int64_t> Profiler::last_us(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(event);
  if (it == index_.end()) return std::nullopt;
  return it->second.last_us;
}

double Profiler::span_s(const std::string& start_event,
                        const std::string& end_event) const {
  const auto a = first_us(start_event);
  const auto b = last_us(end_event);
  if (!a || !b) return 0.0;
  return static_cast<double>(*b - *a) * 1e-6;
}

double Profiler::paired_sum_s(const std::string& start_event,
                              const std::string& end_event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::int64_t> starts;
  double total = 0.0;
  for (const auto& e : events_) {
    if (e.event == start_event) {
      // Keep the first start per uid.
      starts.emplace(e.uid, e.wall_us);
    } else if (e.event == end_event) {
      const auto it = starts.find(e.uid);
      if (it != starts.end()) {
        total += static_cast<double>(e.wall_us - it->second) * 1e-6;
        starts.erase(it);
      }
    }
  }
  return total;
}

std::size_t Profiler::count(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(event);
  return it == index_.end() ? 0 : it->second.count;
}

namespace {

/// RFC 4180: quote when the field contains a comma, quote, CR or LF;
/// double embedded quotes.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Profiler::dump_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw EnTKError("Profiler: cannot open " + path);
  std::fprintf(f, "wall_us,virtual_s,component,event,uid\n");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : events_) {
    std::fprintf(f, "%lld,%.6f,%s,%s,%s\n",
                 static_cast<long long>(e.wall_us), e.virtual_s,
                 csv_field(e.component).c_str(), csv_field(e.event).c_str(),
                 csv_field(e.uid).c_str());
  }
  std::fclose(f);
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  index_.clear();
}

namespace {

/// Split one RFC 4180 record starting at `pos` in `text` (which holds the
/// whole file, so quoted newlines are handled); advances `pos` past the
/// record's trailing newline.
std::vector<std::string> csv_record(const std::string& text,
                                    std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (quoted) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          ++pos;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(field));
      return fields;
    } else {
      field += c;
    }
    ++pos;
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

std::vector<ProfileEvent> read_profile_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw EnTKError("read_profile_csv: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<ProfileEvent> out;
  std::size_t pos = 0;
  bool header = true;
  while (pos < text.size()) {
    const std::vector<std::string> fields = csv_record(text, pos);
    if (header) {
      header = false;
      continue;
    }
    if (fields.size() == 1 && fields[0].empty()) continue;  // trailing blank
    if (fields.size() != 5) {
      throw EnTKError("read_profile_csv: malformed row in " + path);
    }
    ProfileEvent e;
    try {
      e.wall_us = std::stoll(fields[0]);
      e.virtual_s = std::stod(fields[1]);
    } catch (const std::exception&) {
      throw EnTKError("read_profile_csv: non-numeric field in " + path);
    }
    e.component = fields[2];
    e.event = fields[3];
    e.uid = fields[4];
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace entk
