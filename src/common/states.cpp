#include "src/common/states.hpp"

#include "src/common/error.hpp"

namespace entk {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::Described: return "DESCRIBED";
    case TaskState::Scheduling: return "SCHEDULING";
    case TaskState::Scheduled: return "SCHEDULED";
    case TaskState::Submitting: return "SUBMITTING";
    case TaskState::Submitted: return "SUBMITTED";
    case TaskState::Executed: return "EXECUTED";
    case TaskState::Done: return "DONE";
    case TaskState::Failed: return "FAILED";
    case TaskState::Canceled: return "CANCELED";
  }
  return "UNKNOWN";
}

const char* to_string(StageState s) {
  switch (s) {
    case StageState::Described: return "DESCRIBED";
    case StageState::Scheduling: return "SCHEDULING";
    case StageState::Scheduled: return "SCHEDULED";
    case StageState::Done: return "DONE";
    case StageState::Failed: return "FAILED";
    case StageState::Canceled: return "CANCELED";
  }
  return "UNKNOWN";
}

const char* to_string(PipelineState s) {
  switch (s) {
    case PipelineState::Described: return "DESCRIBED";
    case PipelineState::Scheduling: return "SCHEDULING";
    case PipelineState::Done: return "DONE";
    case PipelineState::Failed: return "FAILED";
    case PipelineState::Canceled: return "CANCELED";
  }
  return "UNKNOWN";
}

TaskState task_state_from_string(const std::string& s) {
  for (int i = 0; i <= static_cast<int>(TaskState::Canceled); ++i) {
    const auto st = static_cast<TaskState>(i);
    if (s == to_string(st)) return st;
  }
  throw ValueError("TaskState: unknown state name '" + s + "'");
}

StageState stage_state_from_string(const std::string& s) {
  for (int i = 0; i <= static_cast<int>(StageState::Canceled); ++i) {
    const auto st = static_cast<StageState>(i);
    if (s == to_string(st)) return st;
  }
  throw ValueError("StageState: unknown state name '" + s + "'");
}

PipelineState pipeline_state_from_string(const std::string& s) {
  for (int i = 0; i <= static_cast<int>(PipelineState::Canceled); ++i) {
    const auto st = static_cast<PipelineState>(i);
    if (s == to_string(st)) return st;
  }
  throw ValueError("PipelineState: unknown state name '" + s + "'");
}

bool is_final(TaskState s) {
  return s == TaskState::Done || s == TaskState::Failed ||
         s == TaskState::Canceled;
}

bool is_final(StageState s) {
  return s == StageState::Done || s == StageState::Failed ||
         s == StageState::Canceled;
}

bool is_final(PipelineState s) {
  return s == PipelineState::Done || s == PipelineState::Failed ||
         s == PipelineState::Canceled;
}

bool is_valid_transition(TaskState from, TaskState to) {
  if (from == to) return false;
  // Any live state may be canceled.
  if (to == TaskState::Canceled) return !is_final(from);
  // Resubmission of failed tasks: Failed -> Described.
  if (from == TaskState::Failed) return to == TaskState::Described;
  if (is_final(from)) return false;
  // A task may fail at any point after it has been picked up for scheduling.
  if (to == TaskState::Failed) return from != TaskState::Described;
  // Done is reached only from Executed.
  if (to == TaskState::Done) return from == TaskState::Executed;
  // Otherwise the lifecycle is strictly linear.
  return static_cast<int>(to) == static_cast<int>(from) + 1;
}

bool is_valid_transition(StageState from, StageState to) {
  if (from == to) return false;
  if (to == StageState::Canceled) return !is_final(from);
  if (from == StageState::Failed) return to == StageState::Described;
  if (is_final(from)) return false;
  if (to == StageState::Failed) return from != StageState::Described;
  if (to == StageState::Done) return from == StageState::Scheduled;
  return static_cast<int>(to) == static_cast<int>(from) + 1;
}

bool is_valid_transition(PipelineState from, PipelineState to) {
  if (from == to) return false;
  if (to == PipelineState::Canceled) return !is_final(from);
  if (from == PipelineState::Failed) return to == PipelineState::Described;
  if (is_final(from)) return false;
  if (to == PipelineState::Failed) return from != PipelineState::Described;
  if (to == PipelineState::Done) return from == PipelineState::Scheduling;
  return static_cast<int>(to) == static_cast<int>(from) + 1;
}

std::vector<TaskState> next_states(TaskState from) {
  std::vector<TaskState> out;
  for (int i = 0; i <= static_cast<int>(TaskState::Canceled); ++i) {
    const auto to = static_cast<TaskState>(i);
    if (is_valid_transition(from, to)) out.push_back(to);
  }
  return out;
}

}  // namespace entk
