// Minimal thread-safe leveled logger.
//
// Components log with a component tag; the global level gates emission.
// Default level is Warn so tests and benches stay quiet unless asked
// (set ENTK_LOG=debug|info|warn|error or call set_log_level).
#pragma once

#include <sstream>
#include <string>

namespace entk {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"/"off"; unknown strings map to Warn.
LogLevel log_level_from_string(const std::string& s);

/// Emit one line: "<wall_s> <LEVEL> [component] message".
void log_emit(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_emit(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ENTK_LOG(level, component)                      \
  if (static_cast<int>(level) < static_cast<int>(::entk::log_level())) { \
  } else                                                \
    ::entk::detail::LogLine(level, component)

#define ENTK_DEBUG(component) ENTK_LOG(::entk::LogLevel::Debug, component)
#define ENTK_INFO(component) ENTK_LOG(::entk::LogLevel::Info, component)
#define ENTK_WARN(component) ENTK_LOG(::entk::LogLevel::Warn, component)
#define ENTK_ERROR(component) ENTK_LOG(::entk::LogLevel::Error, component)

}  // namespace entk
