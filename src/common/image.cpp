#include "src/common/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/error.hpp"

namespace entk {
namespace {

void check_dims(const std::vector<double>& values, int width, int height) {
  if (width <= 0 || height <= 0 ||
      values.size() != static_cast<std::size_t>(width) * height) {
    throw ValueError("image writer: values size does not match dimensions");
  }
}

}  // namespace

void write_pgm(const std::string& path, const std::vector<double>& values,
               int width, int height) {
  check_dims(values, width, height);
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi > lo ? hi - lo : 1.0;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw EnTKError("write_pgm: cannot open " + path);
  std::fprintf(f, "P5\n%d %d\n255\n", width, height);
  std::vector<unsigned char> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double v = values[static_cast<std::size_t>(y) * width + x];
      row[static_cast<std::size_t>(x)] =
          static_cast<unsigned char>(std::lround((v - lo) / range * 255.0));
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  std::fclose(f);
}

void write_diverging_ppm(const std::string& path,
                         const std::vector<double>& values, int width,
                         int height) {
  check_dims(values, width, height);
  double amax = 0.0;
  for (double v : values) amax = std::max(amax, std::abs(v));
  if (amax == 0.0) amax = 1.0;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw EnTKError("write_diverging_ppm: cannot open " + path);
  std::fprintf(f, "P6\n%d %d\n255\n", width, height);
  std::vector<unsigned char> row(static_cast<std::size_t>(width) * 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double t =
          std::clamp(values[static_cast<std::size_t>(y) * width + x] / amax,
                     -1.0, 1.0);
      unsigned char r, g, b;
      if (t >= 0) {  // white -> red
        r = 255;
        g = b = static_cast<unsigned char>(std::lround(255.0 * (1.0 - t)));
      } else {  // white -> blue
        b = 255;
        r = g = static_cast<unsigned char>(std::lround(255.0 * (1.0 + t)));
      }
      row[static_cast<std::size_t>(x) * 3 + 0] = r;
      row[static_cast<std::size_t>(x) * 3 + 1] = g;
      row[static_cast<std::size_t>(x) * 3 + 2] = b;
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  std::fclose(f);
}

}  // namespace entk
