// State machines for tasks, stages and pipelines (PST model, paper §II-B-3).
//
// The toolkit tracks every PST object through an explicit linear lifecycle
// plus three terminal states. All state changes flow through the
// Synchronizer, which validates them against the transition tables defined
// here before committing them to the AppManager's state store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace entk {

/// Lifecycle of a Task. Mirrors the reference implementation:
/// the WFProcessor moves tasks Described -> Scheduling -> Scheduled when
/// enqueueing; the ExecManager moves them Submitting -> Submitted ->
/// Executed while the RTS runs them; the Dequeue subcomponent resolves them
/// to Done / Failed / Canceled from the RTS return code.
enum class TaskState : std::uint8_t {
  Described = 0,
  Scheduling,
  Scheduled,
  Submitting,
  Submitted,
  Executed,
  Done,
  Failed,
  Canceled,
};

/// Lifecycle of a Stage: a stage is Scheduled when its tasks have been
/// queued for execution and Done/Failed when all its tasks have resolved.
enum class StageState : std::uint8_t {
  Described = 0,
  Scheduling,
  Scheduled,
  Done,
  Failed,
  Canceled,
};

/// Lifecycle of a Pipeline: Scheduling while any of its stages still has
/// work, then a terminal state.
enum class PipelineState : std::uint8_t {
  Described = 0,
  Scheduling,
  Done,
  Failed,
  Canceled,
};

const char* to_string(TaskState s);
const char* to_string(StageState s);
const char* to_string(PipelineState s);

TaskState task_state_from_string(const std::string& s);
StageState stage_state_from_string(const std::string& s);
PipelineState pipeline_state_from_string(const std::string& s);

/// True when `s` is Done, Failed or Canceled.
bool is_final(TaskState s);
bool is_final(StageState s);
bool is_final(PipelineState s);

/// Transition validity. The machines are linear with three terminal states;
/// Failed tasks may additionally be re-described (Failed -> Described) to
/// support resubmission without restarting completed work (paper §II-A),
/// and any non-final state may transition to Canceled.
bool is_valid_transition(TaskState from, TaskState to);
bool is_valid_transition(StageState from, StageState to);
bool is_valid_transition(PipelineState from, PipelineState to);

/// All states reachable from `from` in one hop, in enum order.
std::vector<TaskState> next_states(TaskState from);

}  // namespace entk
