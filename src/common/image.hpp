// Minimal image writers (binary PGM/PPM) used by the examples and benches
// to emit the paper's visual artifacts: velocity models and sensitivity
// kernels (seismic use case), prediction/truth maps (AnEn use case).
#pragma once

#include <string>
#include <vector>

namespace entk {

/// Write `values` (row-major, width x height) as an 8-bit grayscale PGM,
/// linearly mapping [min, max] -> [0, 255]. Throws EnTKError on I/O error.
void write_pgm(const std::string& path, const std::vector<double>& values,
               int width, int height);

/// Write a diverging blue-white-red PPM: negative values blue, zero white,
/// positive red, scaled symmetrically by max |value|. Good for kernels and
/// anomaly fields.
void write_diverging_ppm(const std::string& path,
                         const std::vector<double>& values, int width,
                         int height);

}  // namespace entk
