// Unique-identifier generation for tasks, stages, pipelines, pilots and
// components. Uids follow the reference implementation's convention of
// "<prefix>.<counter>" (e.g. "task.0042", "pipeline.0001") with a
// process-wide atomic counter per prefix.
#pragma once

#include <cstdint>
#include <string>

namespace entk {

/// Generate the next uid for `prefix`, formatted as "<prefix>.NNNN".
/// Thread-safe; counters are monotonic per prefix within the process.
std::string generate_uid(const std::string& prefix);

/// Reset all uid counters to zero. Intended for tests that assert on
/// deterministic uid values; not used by production code paths.
void reset_uid_counters();

/// Split a uid of the form "<prefix>.NNNN" back into its prefix.
/// Returns the whole string when there is no '.' separator.
std::string uid_prefix(const std::string& uid);

/// Numeric suffix of a uid; returns -1 when the uid has no numeric suffix.
std::int64_t uid_number(const std::string& uid);

}  // namespace entk
