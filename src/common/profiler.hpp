// Event profiler used to derive the paper's overhead categories.
//
// Every component records named events with a wall-clock microsecond
// timestamp (and, where meaningful, a virtual-time annotation). The
// OverheadReport in src/core then derives durations such as "EnTK Setup
// Overhead" or "RTS Tear-Down Overhead" as differences between the first and
// last occurrence of well-known event names — the same methodology the
// reference implementation applies to its profiler traces.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace entk {

struct ProfileEvent {
  std::int64_t wall_us = 0;   ///< wall time of the event (process epoch)
  double virtual_s = -1.0;    ///< virtual time, or -1 when not applicable
  std::string component;      ///< emitting component, e.g. "wfprocessor"
  std::string event;          ///< event name, e.g. "enqueue_task"
  std::string uid;            ///< subject uid, may be empty
};

/// Thread-safe append-only event recorder.
class Profiler {
 public:
  void record(const std::string& component, const std::string& event,
              const std::string& uid = "", double virtual_s = -1.0);

  /// Snapshot of all recorded events, in record order.
  std::vector<ProfileEvent> events() const;

  /// Number of recorded events.
  std::size_t size() const;

  /// Wall time of the first/last occurrence of `event`, if any. Served
  /// from a per-event-name index maintained by record(), so callers like
  /// OverheadReport (dozens of queries per report) never rescan the log.
  std::optional<std::int64_t> first_us(const std::string& event) const;
  std::optional<std::int64_t> last_us(const std::string& event) const;

  /// last_us(end_event) - first_us(start_event), in seconds.
  /// Returns 0 when either event is missing.
  double span_s(const std::string& start_event,
                const std::string& end_event) const;

  /// Sum over matching pairs: for each uid, last(end) - first(start).
  /// Used for per-task aggregates such as total staging time.
  double paired_sum_s(const std::string& start_event,
                      const std::string& end_event) const;

  /// Count occurrences of `event` (indexed, O(1)).
  std::size_t count(const std::string& event) const;

  /// Write all events as CSV ("wall_us,virtual_s,component,event,uid").
  /// Fields are quoted per RFC 4180 when they contain a comma, quote or
  /// newline, so arbitrary event/uid strings round-trip.
  void dump_csv(const std::string& path) const;

  void clear();

 private:
  /// first/last timestamp and count per event name, updated by record().
  struct EventIndexEntry {
    std::int64_t first_us = 0;
    std::int64_t last_us = 0;
    std::size_t count = 0;
  };

  mutable std::mutex mutex_;
  std::vector<ProfileEvent> events_;
  std::unordered_map<std::string, EventIndexEntry> index_;
};

using ProfilerPtr = std::shared_ptr<Profiler>;

/// Read back a CSV written by Profiler::dump_csv (RFC 4180 quoting).
/// Throws EnTKError on unreadable file or malformed rows.
std::vector<ProfileEvent> read_profile_csv(const std::string& path);

}  // namespace entk
