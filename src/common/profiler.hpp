// Event profiler used to derive the paper's overhead categories.
//
// Every component records named events with a wall-clock microsecond
// timestamp (and, where meaningful, a virtual-time annotation). The
// OverheadReport in src/core then derives durations such as "EnTK Setup
// Overhead" or "RTS Tear-Down Overhead" as differences between the first and
// last occurrence of well-known event names — the same methodology the
// reference implementation applies to its profiler traces.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace entk {

struct ProfileEvent {
  std::int64_t wall_us = 0;   ///< wall time of the event (process epoch)
  double virtual_s = -1.0;    ///< virtual time, or -1 when not applicable
  std::string component;      ///< emitting component, e.g. "wfprocessor"
  std::string event;          ///< event name, e.g. "enqueue_task"
  std::string uid;            ///< subject uid, may be empty
};

/// Thread-safe append-only event recorder.
class Profiler {
 public:
  void record(const std::string& component, const std::string& event,
              const std::string& uid = "", double virtual_s = -1.0);

  /// Snapshot of all recorded events, in record order.
  std::vector<ProfileEvent> events() const;

  /// Number of recorded events.
  std::size_t size() const;

  /// Wall time of the first/last occurrence of `event`, if any.
  std::optional<std::int64_t> first_us(const std::string& event) const;
  std::optional<std::int64_t> last_us(const std::string& event) const;

  /// last_us(end_event) - first_us(start_event), in seconds.
  /// Returns 0 when either event is missing.
  double span_s(const std::string& start_event,
                const std::string& end_event) const;

  /// Sum over matching pairs: for each uid, last(end) - first(start).
  /// Used for per-task aggregates such as total staging time.
  double paired_sum_s(const std::string& start_event,
                      const std::string& end_event) const;

  /// Count occurrences of `event`.
  std::size_t count(const std::string& event) const;

  /// Write all events as CSV ("wall_us,virtual_s,component,event,uid").
  void dump_csv(const std::string& path) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<ProfileEvent> events_;
};

using ProfilerPtr = std::shared_ptr<Profiler>;

}  // namespace entk
