// Unit tests for the simulated-CI substrate: cluster catalog, node map,
// shared filesystem, failure injection, batch queue, clocks.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/clock.hpp"
#include "src/sim/batch_queue.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/failure.hpp"
#include "src/sim/filesystem.hpp"
#include "src/sim/node_map.hpp"

namespace entk::sim {
namespace {

TEST(Cluster, CatalogHasTheFourPaperCIs) {
  const auto catalog = cluster_catalog();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog[0].name, "xsede.supermic");
  EXPECT_EQ(catalog[1].name, "xsede.stampede");
  EXPECT_EQ(catalog[2].name, "xsede.comet");
  EXPECT_EQ(catalog[3].name, "ornl.titan");
}

TEST(Cluster, TitanShape) {
  const ClusterSpec titan = cluster_by_name("titan");
  EXPECT_EQ(titan.nodes, 18688);
  EXPECT_EQ(titan.cores_per_node, 16);
  EXPECT_EQ(titan.gpus_per_node, 1);
  // EnTK runs on the faster ORNL login node (paper §IV-A-2).
  EXPECT_LT(titan.entk_host_factor, cluster_by_name("supermic").entk_host_factor);
}

TEST(Cluster, AliasesAndErrors) {
  EXPECT_EQ(cluster_by_name("xsede.comet").name, "xsede.comet");
  EXPECT_EQ(cluster_by_name("comet").name, "xsede.comet");
  EXPECT_EQ(cluster_by_name("local").name, "local.localhost");
  EXPECT_THROW(cluster_by_name("nonexistent"), ValueError);
}

TEST(NodeMap, CoreLevelAllocationSpansNodes) {
  NodeMap nm(2, 4, 0);
  auto a = nm.try_allocate({.cores = 6});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->cores, 6);
  EXPECT_EQ(a->node_ids.size(), 2u);  // 4 + 2 across two nodes
  EXPECT_EQ(nm.free_cores(), 2);
  nm.release(a->id);
  EXPECT_EQ(nm.free_cores(), 8);
}

TEST(NodeMap, RejectsWhenFullThenRecovers) {
  NodeMap nm(1, 4, 0);
  auto a = nm.try_allocate({.cores = 4});
  ASSERT_TRUE(a);
  EXPECT_FALSE(nm.try_allocate({.cores = 1}));
  EXPECT_EQ(nm.stats().rejections, 1u);
  nm.release(a->id);
  EXPECT_TRUE(nm.try_allocate({.cores = 1}));
}

TEST(NodeMap, ExclusiveNodesRequireEmptyNodes) {
  NodeMap nm(4, 4, 1);
  // Occupy one core of node 0.
  auto partial = nm.try_allocate({.cores = 1});
  ASSERT_TRUE(partial);
  // Request 2 whole nodes (8 cores): nodes 1 and 2 qualify.
  auto excl = nm.try_allocate(
      {.cores = 8, .gpus = 0, .exclusive_nodes = true});
  ASSERT_TRUE(excl);
  EXPECT_EQ(excl->node_ids.size(), 2u);
  for (int n : excl->node_ids) EXPECT_NE(n, partial->node_ids[0]);
  EXPECT_EQ(excl->gpus, 2);  // whole-node allocations take the GPUs too
}

TEST(NodeMap, GpuAllocation) {
  NodeMap nm(2, 4, 2);
  auto a = nm.try_allocate({.cores = 1, .gpus = 3});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->gpus, 3);
  EXPECT_FALSE(nm.try_allocate({.cores = 1, .gpus = 2}));
  nm.release(a->id);
  EXPECT_TRUE(nm.try_allocate({.cores = 1, .gpus = 2}));
}

TEST(NodeMap, FitsCapacityDistinguishesImpossible) {
  NodeMap nm(2, 4, 0);
  EXPECT_TRUE(nm.fits_capacity({.cores = 8}));
  EXPECT_FALSE(nm.fits_capacity({.cores = 9}));
  EXPECT_FALSE(nm.fits_capacity({.cores = 1, .gpus = 1}));
  EXPECT_TRUE(nm.fits_capacity({.cores = 8, .gpus = 0, .exclusive_nodes = true}));
  EXPECT_FALSE(
      nm.fits_capacity({.cores = 12, .gpus = 0, .exclusive_nodes = true}));
}

TEST(NodeMap, ReleaseUnknownIdIsNoop) {
  NodeMap nm(1, 2, 0);
  nm.release(999);
  EXPECT_EQ(nm.free_cores(), 2);
}

TEST(NodeMap, UtilizationStats) {
  NodeMap nm(2, 4, 0);
  auto a = nm.try_allocate({.cores = 3});
  const NodeMapStats s = nm.stats();
  EXPECT_EQ(s.total_cores, 8);
  EXPECT_EQ(s.used_cores, 3);
  EXPECT_EQ(s.allocations, 1u);
  nm.release(a->id);
  EXPECT_EQ(nm.stats().used_cores, 0);
}

TEST(NodeMap, AddNodesGrowsCapacityForNewPlacements) {
  NodeMap nm(2, 4, 0);
  EXPECT_EQ(nm.nodes(), 2);
  EXPECT_EQ(nm.add_nodes(2), 4);
  EXPECT_EQ(nm.free_cores(), 16);
  // The grown capacity is immediately placeable.
  auto a = nm.try_allocate({.cores = 16});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node_ids.size(), 4u);
}

TEST(NodeMap, RetireFreeNodesLeavesImmediately) {
  NodeMap nm(4, 4, 0);
  EXPECT_EQ(nm.retire_nodes(2), 2);
  EXPECT_EQ(nm.nodes(), 2);
  EXPECT_EQ(nm.draining_nodes(), 0);  // nothing was running on them
  EXPECT_EQ(nm.free_cores(), 8);
  // A whole-machine request now means two nodes, not four.
  EXPECT_FALSE(nm.fits_capacity({.cores = 16}));
  EXPECT_TRUE(nm.fits_capacity({.cores = 8}));
}

TEST(NodeMap, RetireBusyNodesDrainsInsteadOfKilling) {
  NodeMap nm(2, 4, 0);
  // Occupy every core so retirement cannot pick a free node.
  auto a = nm.try_allocate({.cores = 8});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(nm.retire_nodes(1), 1);
  EXPECT_EQ(nm.nodes(), 1);
  EXPECT_EQ(nm.draining_nodes(), 1);
  // Draining node takes no new work: only the active node's cores count.
  EXPECT_FALSE(nm.fits_capacity({.cores = 8}));
  // The in-flight allocation still releases normally, ending the drain.
  nm.release(a->id);
  EXPECT_EQ(nm.draining_nodes(), 0);
  EXPECT_EQ(nm.nodes(), 1);
  EXPECT_EQ(nm.free_cores(), 4);
}

TEST(NodeMap, RetireNeverGoesBelowOneActiveNode) {
  NodeMap nm(3, 4, 0);
  EXPECT_EQ(nm.retire_nodes(99), 2);
  EXPECT_EQ(nm.nodes(), 1);
}

TEST(NodeMap, GrowAfterShrinkResurrectsRetiredNodesFirst) {
  NodeMap nm(4, 4, 0);
  EXPECT_EQ(nm.retire_nodes(2), 2);
  EXPECT_EQ(nm.nodes(), 2);
  // Growing by one brings a retired node back rather than appending;
  // total node count stays at the original four after full regrowth.
  EXPECT_EQ(nm.add_nodes(1), 3);
  EXPECT_EQ(nm.add_nodes(1), 4);
  EXPECT_EQ(nm.free_cores(), 16);
  EXPECT_EQ(nm.stats().total_cores, 16);
}

TEST(Filesystem, LinkIsMetadataOnly) {
  FilesystemSpec spec;
  spec.link_latency_s = 0.004;
  SharedFilesystem fs(spec);
  EXPECT_DOUBLE_EQ(fs.charge(FsOp::Link, 1 << 20), 0.004);
}

TEST(Filesystem, CopyChargesLatencyPlusBandwidth) {
  FilesystemSpec spec;
  spec.latency_s = 0.01;
  spec.bandwidth_bps = 1e6;
  SharedFilesystem fs(spec);
  EXPECT_NEAR(fs.charge(FsOp::Copy, 500000), 0.01 + 0.5, 1e-9);
}

TEST(Filesystem, ContentionSlowsConcurrentOps) {
  FilesystemSpec spec;
  spec.latency_s = 0.0;
  spec.bandwidth_bps = 1e6;
  spec.contention_free_ops = 2;
  SharedFilesystem fs(spec);
  const double alone = fs.begin_op(FsOp::Copy, 1000000);
  const double with_one = fs.begin_op(FsOp::Copy, 1000000);
  const double with_two = fs.begin_op(FsOp::Copy, 1000000);
  EXPECT_DOUBLE_EQ(alone, 1.0);
  EXPECT_DOUBLE_EQ(with_one, 1.0);       // within contention-free budget
  EXPECT_NEAR(with_two, 1.5, 1e-9);      // 3 active / 2 free = 1.5x
  fs.end_op();
  fs.end_op();
  fs.end_op();
  EXPECT_EQ(fs.stats().in_flight, 0);
  EXPECT_EQ(fs.stats().max_in_flight, 3);
  EXPECT_EQ(fs.stats().ops, 3u);
}

TEST(Failure, ZeroProbabilityNeverFails) {
  FailureModel fm;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(fm.should_fail(100));
  EXPECT_EQ(fm.injected(), 0u);
}

TEST(Failure, BaseProbabilityRoughlyHonored) {
  FailureModel fm(FailureSpec{.base_probability = 0.3, .seed = 9});
  int failures = 0;
  for (int i = 0; i < 10000; ++i) {
    if (fm.should_fail(1)) ++failures;
  }
  EXPECT_NEAR(failures / 10000.0, 0.3, 0.03);
}

TEST(Failure, ConcurrencyThresholdSwitchesRegime) {
  FailureSpec spec;
  spec.concurrency_threshold = 32;
  spec.overload_probability = 1.0;
  FailureModel fm(spec);
  EXPECT_FALSE(fm.should_fail(31));
  EXPECT_TRUE(fm.should_fail(32));
  EXPECT_FALSE(fm.should_fail(31));  // non-sticky: recovers immediately
}

TEST(Failure, StickyOverloadPersistsUntilRecovery) {
  FailureSpec spec;
  spec.concurrency_threshold = 32;
  spec.overload_probability = 1.0;
  spec.sticky = true;
  spec.recovery_threshold = 8;
  FailureModel fm(spec);
  EXPECT_TRUE(fm.should_fail(32));
  EXPECT_TRUE(fm.should_fail(20));   // still overloaded
  EXPECT_TRUE(fm.should_fail(8));    // at recovery threshold: not below
  EXPECT_FALSE(fm.should_fail(7));   // recovered
  EXPECT_FALSE(fm.should_fail(20));  // stays healthy below threshold
}

TEST(Failure, DeterministicPerSeed) {
  FailureSpec spec;
  spec.base_probability = 0.5;
  spec.seed = 77;
  FailureModel a(spec), b(spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.should_fail(1), b.should_fail(1));
  }
}

TEST(BatchQueue, ZeroSpecMeansNoWait) {
  BatchQueue q(BatchQueueSpec{});
  EXPECT_DOUBLE_EQ(q.sample_wait(1000), 0.0);
}

TEST(BatchQueue, WaitGrowsWithNodes) {
  BatchQueueSpec spec;
  spec.base_wait_s = 10.0;
  spec.per_node_wait_s = 0.5;
  BatchQueue q(spec);
  EXPECT_DOUBLE_EQ(q.sample_wait(0), 10.0);
  EXPECT_DOUBLE_EQ(q.sample_wait(100), 60.0);
}

TEST(BatchQueue, JitterStaysWithinBounds) {
  BatchQueueSpec spec;
  spec.base_wait_s = 100.0;
  spec.jitter_frac = 0.2;
  BatchQueue q(spec, 5);
  for (int i = 0; i < 100; ++i) {
    const double w = q.sample_wait(1);
    EXPECT_GE(w, 80.0);
    EXPECT_LE(w, 120.0);
  }
}

TEST(Clock, ScaledClockRunsFasterThanWall) {
  ScaledClock clock(1e-3);  // 1 virtual second costs 1 ms
  const double v0 = clock.now();
  const double w0 = wall_now_s();
  clock.sleep_for(20.0);  // 20 virtual seconds = ~20 ms wall
  const double dv = clock.now() - v0;
  const double dw = wall_now_s() - w0;
  EXPECT_GE(dv, 19.0);
  EXPECT_LT(dw, 1.0);
  EXPECT_DOUBLE_EQ(clock.scale(), 1e-3);
}

TEST(Clock, RealClockIsIdentity) {
  RealClock clock;
  const double t0 = clock.now();
  clock.sleep_for(0.01);
  EXPECT_GE(clock.now() - t0, 0.009);
  EXPECT_DOUBLE_EQ(clock.scale(), 1.0);
}

}  // namespace
}  // namespace entk::sim
