// Tests for the Analog Ensemble use case: synthetic archive, AnEn core,
// unstructured-grid interpolation, statistics, the AUA algorithm and its
// PST encoding.
#include <gtest/gtest.h>

#include <cmath>

#include "src/anen/aua.hpp"
#include "src/anen/stats.hpp"
#include "src/core/app_manager.hpp"

namespace entk::anen {
namespace {

DomainSpec small_domain() {
  DomainSpec d;
  d.width = 64;
  d.height = 64;
  d.history_days = 60;
  d.variables = 3;
  return d;
}

TEST(Synthetic, TruthDeterministicAndSmoothInTime) {
  const DomainSpec d = small_domain();
  EXPECT_DOUBLE_EQ(truth_value(d, 10.0, 5, 7), truth_value(d, 10.0, 5, 7));
  // One hour apart: nearly identical; one month apart: different.
  EXPECT_NEAR(truth_value(d, 10.0, 5, 7), truth_value(d, 10.04, 5, 7), 0.5);
  EXPECT_GT(std::abs(truth_value(d, 10.0, 5, 7) - truth_value(d, 40.0, 5, 7)),
            1e-3);
}

TEST(Synthetic, FrontCreatesSharpGradientRegion) {
  const DomainSpec d = small_domain();
  const std::vector<double> field = truth_field(d, 30.0);
  const std::vector<double> grad =
      UnstructuredGrid::gradient_magnitude(field, d.width, d.height);
  // The max gradient must be much larger than the median gradient: the
  // domain has localized sharp structure for AUA to find.
  std::vector<double> g(grad.begin(), grad.end());
  const double max_g = percentile(g, 100);
  const double med_g = percentile(g, 50);
  EXPECT_GT(max_g, 5.0 * med_g);
}

TEST(Synthetic, ForecastTracksTruthWithNoise) {
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  double err = 0.0;
  int n = 0;
  for (int t = 2; t < 50; t += 5) {
    for (int x = 4; x < 60; x += 13) {
      err += std::abs(archive.forecast(0, t, x, 20) -
                      archive.observation(t, x, 20));
      ++n;
    }
  }
  // Forecast error is bounded (bias + noise ~ O(1)), not unbounded.
  EXPECT_LT(err / n, 3.0);
  EXPECT_GT(err / n, 0.0);
}

TEST(Synthetic, VariablesDiffer) {
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  EXPECT_NE(archive.forecast(0, 10, 5, 5), archive.forecast(1, 10, 5, 5));
  EXPECT_NE(archive.forecast(1, 10, 5, 5), archive.forecast(2, 10, 5, 5));
}

TEST(AnEnCore, StddevsPositive) {
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  const std::vector<double> s = forecast_stddevs(archive, 10, 10);
  ASSERT_EQ(s.size(), 3u);
  for (double v : s) EXPECT_GT(v, 0.0);
}

TEST(AnEnCore, SimilarityIsZeroForSameDay) {
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  AnEnConfig cfg;
  const auto stddevs = forecast_stddevs(archive, 10, 10);
  EXPECT_DOUBLE_EQ(similarity(archive, cfg, stddevs, 30, 30, 10, 10), 0.0);
  EXPECT_GT(similarity(archive, cfg, stddevs, 30, 10, 10, 10), 0.0);
}

TEST(AnEnCore, AnalogsAreValidAndSorted) {
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  AnEnConfig cfg;
  cfg.analogs = 7;
  const AnalogPrediction p = compute_analogs(archive, cfg, d.history_days, 8, 8);
  ASSERT_EQ(p.analog_days.size(), 7u);
  const auto stddevs = forecast_stddevs(archive, 8, 8);
  double prev = -1;
  for (int day : p.analog_days) {
    EXPECT_GE(day, cfg.half_window);
    EXPECT_LE(day, d.history_days - 1 - cfg.half_window);
    const double s =
        similarity(archive, cfg, stddevs, d.history_days, day, 8, 8);
    EXPECT_GE(s, prev);  // best-first
    prev = s;
  }
  EXPECT_GE(p.spread, 0.0);
}

TEST(AnEnCore, PredictionBeatsClimatology) {
  // The AnEn ensemble mean should track the truth better than the plain
  // historical mean (climatology) at the same location.
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  AnEnConfig cfg;
  double anen_err = 0, clim_err = 0;
  int n = 0;
  for (int x = 6; x < 60; x += 9) {
    for (int y = 6; y < 60; y += 9) {
      const double truth = archive.observation(d.history_days, x, y);
      const AnalogPrediction p =
          compute_analogs(archive, cfg, d.history_days, x, y);
      double clim = 0;
      for (int t = 0; t < d.history_days; ++t)
        clim += archive.observation(t, x, y);
      clim /= d.history_days;
      anen_err += std::abs(p.value - truth);
      clim_err += std::abs(clim - truth);
      ++n;
    }
  }
  EXPECT_LT(anen_err / n, clim_err / n);
}

TEST(AnEnCore, GuardsAgainstBadInput) {
  const DomainSpec d = small_domain();
  ForecastArchive archive(d);
  AnEnConfig cfg;
  cfg.analogs = 0;
  EXPECT_THROW(compute_analogs(archive, cfg, d.history_days, 1, 1),
               ValueError);
  cfg.analogs = 5;
  EXPECT_THROW(compute_analogs(archive, cfg, /*target_day=*/1, 1, 1),
               ValueError);
}

TEST(Grid, InterpolationExactAtPoints) {
  UnstructuredGrid g(32, 32);
  g.add_point({5, 5, 1.0});
  g.add_point({20, 20, 3.0});
  const std::vector<double> f = g.interpolate(4);
  EXPECT_DOUBLE_EQ(f[5 * 32 + 5], 1.0);
  EXPECT_DOUBLE_EQ(f[20 * 32 + 20], 3.0);
}

TEST(Grid, ConstantFieldInterpolatesConstant) {
  UnstructuredGrid g(24, 24);
  for (int i = 0; i < 10; ++i) g.add_point({i * 2 + 1, (i * 7) % 24, 4.2});
  for (double v : g.interpolate(4)) EXPECT_NEAR(v, 4.2, 1e-12);
}

TEST(Grid, InterpolationBetweenTwoValuesIsBounded) {
  UnstructuredGrid g(16, 16);
  g.add_point({0, 8, 0.0});
  g.add_point({15, 8, 10.0});
  const std::vector<double> f = g.interpolate(2);
  for (double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
  // Closer to the right point -> closer to its value.
  EXPECT_GT(f[8 * 16 + 13], f[8 * 16 + 2]);
}

TEST(Grid, OccupancyAndErrors) {
  UnstructuredGrid g(8, 8);
  EXPECT_THROW(g.interpolate(), ValueError);
  EXPECT_FALSE(g.occupied(3, 3));
  g.add_point({3, 3, 1.0});
  EXPECT_TRUE(g.occupied(3, 3));
  EXPECT_FALSE(g.occupied(-1, 0));
  EXPECT_EQ(g.point_count(), 1u);
  EXPECT_THROW(UnstructuredGrid(0, 5), ValueError);
}

TEST(Grid, GradientOfLinearRampIsConstant) {
  const int w = 16, h = 16;
  std::vector<double> ramp(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) ramp[static_cast<std::size_t>(y) * w + x] = 2.0 * x;
  }
  const std::vector<double> g = UnstructuredGrid::gradient_magnitude(ramp, w, h);
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      EXPECT_NEAR(g[static_cast<std::size_t>(y) * w + x], 2.0, 1e-12);
    }
  }
}

TEST(Grid, ErrorMetrics) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{1, 2, 3, 8};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(rmse(a, b), 2.0);  // sqrt(16/4)
  EXPECT_DOUBLE_EQ(mae(a, b), 1.0);
  EXPECT_THROW(rmse(a, std::vector<double>{1.0}), ValueError);
  EXPECT_THROW(mae(std::vector<double>{}, std::vector<double>{}), ValueError);
}

TEST(Stats, PercentilesAndBox) {
  std::vector<double> v{4, 1, 3, 2, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  const BoxStats s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.n, 5u);
  EXPECT_FALSE(to_string(s).empty());
  EXPECT_THROW(percentile({}, 50), ValueError);
  EXPECT_THROW(box_stats({}), ValueError);
}

TEST(Aua, PartitionBalancedAndComplete) {
  std::vector<GridPoint> pts;
  for (int i = 0; i < 37; ++i) pts.push_back({i % 13, i % 7, 0.0});
  const auto parts = AuaRunner::partition(pts, 5);
  ASSERT_EQ(parts.size(), 5u);
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    EXPECT_LE(p.size(), 9u);  // ceil(37/5)=8, allow slack on the tail
  }
  EXPECT_EQ(total, 37u);
}

TEST(Aua, SelectRandomAvoidsOccupiedAndDuplicates) {
  AuaSpec spec;
  spec.domain = small_domain();
  AuaRunner runner(spec);
  auto first = runner.select_random(40);
  EXPECT_EQ(first.size(), 40u);
  runner.compute_points(first);
  runner.grid().add_points(first);
  auto second = runner.select_random(40);
  for (const GridPoint& p : second) {
    EXPECT_FALSE(runner.grid().occupied(p.x, p.y));
  }
}

TEST(Aua, AdaptiveSamplingConcentratesOnGradients) {
  AuaSpec spec;
  spec.domain = small_domain();
  spec.initial_points = 120;
  AuaRunner runner(spec);
  auto initial = runner.select_random(spec.initial_points);
  runner.compute_points(initial);
  runner.grid().add_points(initial);
  runner.aggregate_and_error();

  // Average truth-gradient at adaptively selected points must exceed the
  // average over uniformly random points.
  const std::vector<double> truth = truth_field(spec.domain, runner.target_day());
  const std::vector<double> grad = UnstructuredGrid::gradient_magnitude(
      truth, spec.domain.width, spec.domain.height);
  auto avg_gradient = [&](const std::vector<GridPoint>& pts) {
    double s = 0;
    for (const GridPoint& p : pts) {
      s += grad[static_cast<std::size_t>(p.y) * spec.domain.width + p.x];
    }
    return s / static_cast<double>(pts.size());
  };
  const auto adaptive = runner.select_adaptive(120);
  const auto random = runner.select_random(120);
  EXPECT_GT(avg_gradient(adaptive), avg_gradient(random));
}

TEST(Aua, RunToBudgetRecordsHistory) {
  AuaSpec spec;
  spec.domain = small_domain();
  spec.initial_points = 60;
  spec.points_per_iteration = 60;
  spec.budget = 240;
  const AuaResult r = run_adaptive(spec);
  EXPECT_EQ(r.points.size(), 240u);
  EXPECT_EQ(r.iterations, 4);  // 60 + 3*60
  EXPECT_EQ(r.rmse_history.size(), 4u);
  EXPECT_GT(r.final_rmse, 0.0);
  EXPECT_GT(r.final_mae, 0.0);
  EXPECT_EQ(r.final_field.size(),
            static_cast<std::size_t>(spec.domain.width) * spec.domain.height);
}

TEST(Aua, ErrorThresholdStopsEarly) {
  AuaSpec spec;
  spec.domain = small_domain();
  spec.initial_points = 60;
  spec.points_per_iteration = 30;
  spec.budget = 2000;
  spec.error_threshold = 1e6;  // any improvement is "too small"
  const AuaResult r = run_adaptive(spec);
  EXPECT_EQ(r.iterations, 2);  // initial + one iteration, then stop
  EXPECT_LT(r.points.size(), 2000u);
}

TEST(Aua, AdaptiveBeatsRandomOnAverage) {
  // Fig 11's claim: with an equal location budget, AUA converges to lower
  // error than random selection. Average over a few seeds.
  AuaSpec base;
  base.domain = small_domain();
  base.initial_points = 80;
  base.points_per_iteration = 80;
  base.budget = 480;
  double adaptive_sum = 0, random_sum = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AuaSpec spec = base;
    spec.seed = seed;
    adaptive_sum += run_adaptive(spec).final_rmse;
    random_sum += run_random(spec).final_rmse;
  }
  EXPECT_LT(adaptive_sum, random_sum);
}

TEST(Aua, MoreBudgetLowersError) {
  AuaSpec small;
  small.domain = small_domain();
  small.initial_points = 60;
  small.points_per_iteration = 60;
  small.budget = 120;
  AuaSpec large = small;
  large.budget = 600;
  EXPECT_LT(run_adaptive(large).final_rmse, run_adaptive(small).final_rmse);
}

TEST(AuaPipeline, RunsUnderEnTKToBudget) {
  AuaSpec spec;
  spec.domain = small_domain();
  spec.initial_points = 60;
  spec.points_per_iteration = 60;
  spec.budget = 240;
  spec.subregions = 4;
  auto runner = std::make_shared<AuaRunner>(spec);

  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.05;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.clock_scale = 1e-4;
  auto controller = ensemble::Controller::create();
  auto pipeline = build_aua_pipeline(runner, /*adaptive=*/true, controller);
  controller->attach(cfg);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(amgr.pipelines()[0]->state(), PipelineState::Done);
  const AuaResult r = runner->result();
  EXPECT_EQ(r.points.size(), 240u);
  EXPECT_EQ(r.iterations, 4);
  // 2 fixed stages + 3 iterations x 2 stages.
  EXPECT_EQ(amgr.pipelines()[0]->stage_count(), 8u);
  EXPECT_GT(r.final_rmse, 0.0);
}

TEST(AuaPipeline, MatchesDirectRunExactly) {
  // The EnTK-driven execution must be a faithful encoding: same seeds,
  // same arithmetic, same final error as the direct in-process loop.
  AuaSpec spec;
  spec.domain = small_domain();
  spec.initial_points = 50;
  spec.points_per_iteration = 50;
  spec.budget = 150;
  spec.subregions = 3;

  const AuaResult direct = run_adaptive(spec);

  auto runner = std::make_shared<AuaRunner>(spec);
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 8;
  cfg.resource.agent.env_setup_s = 0.05;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.clock_scale = 1e-4;
  auto controller = ensemble::Controller::create();
  auto pipeline = build_aua_pipeline(runner, true, controller);
  controller->attach(cfg);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();
  const AuaResult via_entk = runner->result();

  EXPECT_EQ(via_entk.points.size(), direct.points.size());
  EXPECT_EQ(via_entk.iterations, direct.iterations);
  ASSERT_EQ(via_entk.rmse_history.size(), direct.rmse_history.size());
  for (std::size_t i = 0; i < direct.rmse_history.size(); ++i) {
    EXPECT_NEAR(via_entk.rmse_history[i], direct.rmse_history[i], 1e-12);
  }
}

}  // namespace
}  // namespace entk::anen
