// Observability subsystem tests: metrics registry primitives, the causal
// task tracer, the Chrome trace exporter, and an end-to-end integration
// run asserting every completed task carries a full enqueue -> done span
// chain in the exported trace.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/core/app_manager.hpp"
#include "src/json/json.hpp"

namespace entk {
namespace {

std::string fresh_dir() {
  const std::string dir = ::testing::TempDir() + "/entk_obs_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(wall_now_us());
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CounterSumsAcrossThreads) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
  c.add(5);
  EXPECT_EQ(c.value(), 80005u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Gauge g;
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Metrics, HistogramBucketsCountSumMax) {
  obs::Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);     // bucket 0 (<= 10)
  h.observe(50.0);    // bucket 1
  h.observe(500.0);   // bucket 2
  h.observe(5000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 5555.0, 0.01);
  EXPECT_NEAR(h.max(), 5000.0, 0.01);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  for (const std::uint64_t b : buckets) EXPECT_EQ(b, 1u);
}

TEST(Metrics, SnapshotQuantilesInterpolate) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {10.0, 20.0, 30.0, 40.0});
  // 100 samples spread uniformly over (0, 40].
  for (int i = 1; i <= 100; ++i) h.observe(i * 0.4);
  for (const obs::MetricSnapshot& m : reg.snapshot()) {
    ASSERT_EQ(m.name, "lat");
    EXPECT_EQ(m.count, 100u);
    // Uniform mass: each quantile lands near q * 40, within a bucket width.
    EXPECT_NEAR(m.quantile(0.50), 20.0, 10.0);
    EXPECT_NEAR(m.quantile(0.95), 38.0, 10.0);
    EXPECT_NEAR(m.quantile(1.0), 40.0, 10.0);
    // The top quantile never exceeds the recorded max.
    EXPECT_LE(m.quantile(1.0), m.max + 1e-9);
  }
}

TEST(Metrics, QuantileOfOverflowBucketIsMax) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("over", {10.0});
  h.observe(123456.0);  // overflow only
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_NEAR(snap[0].quantile(0.5), 123456.0, 0.01);
  EXPECT_EQ(snap[0].quantile(0.5), snap[0].max);
}

TEST(Metrics, RegistryHandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);  // resolve-once handles stay valid
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  reg.gauge("g").set(7);
  reg.histogram("h").observe(1.0);
  EXPECT_EQ(reg.snapshot().size(), 3u);
}

TEST(Metrics, MaybeSnapshotIsRateLimited) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.set_snapshot_interval(1.0);  // 1 s
  const std::int64_t t0 = 10'000'000;
  reg.maybe_snapshot(t0);
  reg.maybe_snapshot(t0 + 100);       // inside the interval: dropped
  reg.maybe_snapshot(t0 + 500'000);   // still inside: dropped
  reg.maybe_snapshot(t0 + 1'500'000); // past the interval: taken
  EXPECT_EQ(reg.history().size(), 2u);
  EXPECT_EQ(reg.history()[0].label, "periodic");
}

TEST(Metrics, DumpJsonlRoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  reg.counter("mq.published").add(12);
  reg.gauge("mq.ready.q.pending").set(3);
  obs::Histogram& h = reg.histogram("mq.publish_us");
  h.observe(4.2);
  h.observe(170.0);
  reg.take_snapshot(1000, "mid");

  const std::string path = fresh_dir() + "/metrics.jsonl";
  reg.dump_jsonl(path, 2000);

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0, histogram_lines = 0;
  bool saw_counter = false;
  while (std::getline(in, line)) {
    ++lines;
    const json::Value v = json::parse(line);  // throws on malformed JSON
    EXPECT_TRUE(v.contains("wall_us"));
    EXPECT_TRUE(v.contains("name"));
    if (v.at("type").as_string() == "histogram") {
      ++histogram_lines;
      EXPECT_TRUE(v.contains("p50"));
      EXPECT_TRUE(v.contains("p95"));
      EXPECT_EQ(v.at("count").as_int(), 2);
    }
    if (v.at("name").as_string() == "mq.published" &&
        v.at("label").as_string() == "final") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(v.at("value").as_double(), 12.0);
    }
  }
  EXPECT_EQ(lines, 6u);  // 3 metrics x (1 snapshot + final)
  EXPECT_EQ(histogram_lines, 2u);
  EXPECT_TRUE(saw_counter);
}

// -------------------------------------------------------------- tracer --

ProfileEvent ev(std::int64_t wall_us, const std::string& component,
                const std::string& event, const std::string& uid = "",
                double virtual_s = -1.0) {
  ProfileEvent e;
  e.wall_us = wall_us;
  e.virtual_s = virtual_s;
  e.component = component;
  e.event = event;
  e.uid = uid;
  return e;
}

TEST(Tracer, FullChainStitchesInOrder) {
  const std::vector<ProfileEvent> events = {
      ev(100, "wfprocessor", "task_enqueued", "task.1"),
      ev(200, "exec_manager", "task_submitted", "task.1"),
      ev(300, "agent", "unit_exec_start", "task.1", 1.0),
      ev(400, "agent", "unit_exec_stop", "task.1", 2.0),
      ev(500, "wfprocessor", "task_dequeued", "task.1"),
      ev(600, "wfprocessor", "task_done", "task.1"),
  };
  const obs::Trace t = obs::build_trace(events);
  ASSERT_EQ(t.tasks.size(), 1u);
  const obs::TaskTrace& task = t.tasks.at("task.1");
  EXPECT_TRUE(task.resolved_done);
  EXPECT_EQ(task.attempts, 1);
  ASSERT_EQ(task.spans.size(), 5u);
  const auto& names = obs::task_span_names();
  std::int64_t expected_start = 100;
  for (std::size_t i = 0; i < task.spans.size(); ++i) {
    EXPECT_EQ(task.spans[i].name, names[i]);
    EXPECT_EQ(task.spans[i].start_us, expected_start);
    EXPECT_EQ(task.spans[i].end_us, expected_start + 100);
    expected_start += 100;
  }
  EXPECT_NEAR(t.first_exec_v, 1.0, 1e-12);
  EXPECT_NEAR(t.last_exec_v, 2.0, 1e-12);
}

TEST(Tracer, OutOfOrderBoundariesAreClampedMonotone) {
  // The dequeue thread raced ahead of the exec-stop record: the chain must
  // still be monotone (no negative durations).
  const std::vector<ProfileEvent> events = {
      ev(100, "wfprocessor", "task_enqueued", "t"),
      ev(200, "exec_manager", "task_submitted", "t"),
      ev(350, "agent", "unit_exec_start", "t"),
      ev(340, "agent", "unit_exec_stop", "t"),  // behind exec_start
      ev(330, "wfprocessor", "task_dequeued", "t"),
      ev(600, "wfprocessor", "task_done", "t"),
  };
  const obs::Trace t = obs::build_trace(events);
  const obs::TaskTrace& task = t.tasks.at("t");
  ASSERT_EQ(task.spans.size(), 5u);
  std::int64_t prev = task.spans.front().start_us;
  for (const obs::TaskSpan& s : task.spans) {
    EXPECT_EQ(s.start_us, prev);
    EXPECT_GE(s.end_us, s.start_us);
    prev = s.end_us;
  }
  EXPECT_EQ(task.spans.back().end_us, 600);
}

TEST(Tracer, MissingInteriorBoundariesMergeSpans) {
  // No RTS exec events (e.g. a no-op RTS): schedule swallows exec + sync.
  const std::vector<ProfileEvent> events = {
      ev(100, "wfprocessor", "task_enqueued", "t"),
      ev(250, "exec_manager", "task_submitted", "t"),
      ev(500, "wfprocessor", "task_dequeued", "t"),
      ev(600, "wfprocessor", "task_done", "t"),
  };
  const obs::Trace t = obs::build_trace(events);
  const obs::TaskTrace& task = t.tasks.at("t");
  ASSERT_EQ(task.spans.size(), 3u);
  EXPECT_EQ(task.spans[0].name, "enqueue");
  EXPECT_EQ(task.spans[1].name, "schedule");  // covers schedule..sync gap
  EXPECT_EQ(task.spans[1].start_us, 250);
  EXPECT_EQ(task.spans[1].end_us, 500);
  EXPECT_EQ(task.spans[2].name, "done");
}

TEST(Tracer, ResubmissionRestartsChainAndCountsAttempts) {
  const std::vector<ProfileEvent> events = {
      ev(100, "wfprocessor", "task_enqueued", "t"),
      ev(200, "exec_manager", "task_submitted", "t"),
      ev(300, "agent", "unit_exec_start", "t"),
      // Attempt 1 fails; the task re-enters the pending queue.
      ev(1000, "wfprocessor", "task_enqueued", "t"),
      ev(1100, "exec_manager", "task_submitted", "t"),
      ev(1200, "agent", "unit_exec_start", "t"),
      ev(1300, "agent", "unit_exec_stop", "t"),
      ev(1400, "wfprocessor", "task_dequeued", "t"),
      ev(1500, "wfprocessor", "task_done", "t"),
  };
  const obs::Trace t = obs::build_trace(events);
  const obs::TaskTrace& task = t.tasks.at("t");
  EXPECT_EQ(task.attempts, 2);
  EXPECT_TRUE(task.resolved_done);
  ASSERT_EQ(task.spans.size(), 5u);
  // The chain reflects the resolving attempt, not the dead one.
  EXPECT_EQ(task.spans.front().start_us, 1000);
  EXPECT_EQ(task.spans.back().end_us, 1500);
}

TEST(Tracer, LinksAttachTasksToStagesAndPipelines) {
  obs::TraceLinks links;
  links.task_stage["t"] = "stage.1";
  links.stage_pipeline["stage.1"] = "pipe.1";
  const std::vector<ProfileEvent> events = {
      ev(10, "wfprocessor", "stage_schedule_start", "stage.1"),
      ev(100, "wfprocessor", "task_enqueued", "t"),
      ev(600, "wfprocessor", "task_done", "t"),
      ev(700, "wfprocessor", "stage_done", "stage.1"),
      ev(800, "wfprocessor", "pipeline_done", "pipe.1"),
  };
  const obs::Trace t = obs::build_trace(events, links);
  EXPECT_EQ(t.tasks.at("t").stage_uid, "stage.1");
  EXPECT_EQ(t.tasks.at("t").pipeline_uid, "pipe.1");
  ASSERT_TRUE(t.stages.count("stage.1"));
  EXPECT_EQ(t.stages.at("stage.1").parent, "pipe.1");
  EXPECT_EQ(t.stages.at("stage.1").start_us, 10);
  EXPECT_EQ(t.stages.at("stage.1").end_us, 700);
  ASSERT_TRUE(t.pipelines.count("pipe.1"));
  // A pipeline starts when its first stage does.
  EXPECT_EQ(t.pipelines.at("pipe.1").start_us, 10);
  EXPECT_EQ(t.pipelines.at("pipe.1").end_us, 800);
}

TEST(Tracer, ChromeExportIsValidJsonWithMonotoneSpans) {
  obs::TraceLinks links;
  links.task_stage["t\"quoted"] = "stage.1";
  links.stage_pipeline["stage.1"] = "pipe.1";
  const std::vector<ProfileEvent> events = {
      ev(10, "wfprocessor", "stage_schedule_start", "stage.1"),
      ev(100, "wfprocessor", "task_enqueued", "t\"quoted"),
      ev(200, "exec_manager", "task_submitted", "t\"quoted"),
      ev(600, "wfprocessor", "task_done", "t\"quoted"),
      ev(700, "wfprocessor", "stage_done", "stage.1"),
  };
  const obs::Trace t = obs::build_trace(events, links);
  const std::string path = fresh_dir() + "/trace.json";
  obs::write_chrome_trace(t, path);

  const json::Value doc = json::parse(slurp(path));  // throws on bad JSON
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const json::Value& tev = doc.at("traceEvents");
  std::size_t spans = 0;
  for (const json::Value& e : tev.as_array()) {
    const std::string ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "M" || ph == "X");
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("ts").as_int(), 0);
      EXPECT_GE(e.at("dur").as_int(), 0);  // monotone: no negative spans
    }
  }
  EXPECT_GE(spans, 3u);  // stage + >= 2 task spans
}

TEST(Tracer, SpanHistogramsFeedLatencyTable) {
  const std::vector<ProfileEvent> events = {
      ev(100, "wfprocessor", "task_enqueued", "a"),
      ev(200, "exec_manager", "task_submitted", "a"),
      ev(300, "agent", "unit_exec_start", "a"),
      ev(400, "agent", "unit_exec_stop", "a"),
      ev(500, "wfprocessor", "task_dequeued", "a"),
      ev(600, "wfprocessor", "task_done", "a"),
  };
  obs::MetricsRegistry reg;
  obs::fill_span_histograms(obs::build_trace(events), reg);
  EXPECT_EQ(reg.histogram("span.enqueue_us").count(), 1u);
  EXPECT_NEAR(reg.histogram("span.total_us").sum(), 500.0, 0.01);
  const std::string table = obs::span_latency_table(reg);
  EXPECT_NE(table.find("enqueue"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(Tracer, OverheadsFromTraceMatchProfilerCompatPath) {
  // The exact scenario test_core checks through the Profiler overload must
  // produce identical numbers when routed Profiler -> Trace -> overheads.
  Profiler p;
  p.record("rts", "rts_init_start", "", 0.0);
  p.record("rts", "rts_init_stop", "", 30.0);
  p.record("agent", "unit_received", "u1", 31.0);
  p.record("agent", "unit_stage_in_start", "u1", 31.0);
  p.record("agent", "unit_stage_in_stop", "u1", 33.0);
  p.record("agent", "unit_exec_start", "u1", 35.0);
  p.record("agent", "unit_exec_stop", "u1", 135.0);
  p.record("agent", "unit_done", "u1", 136.0);
  p.record("rts", "rts_teardown_start", "", 140.0);
  p.record("rts", "rts_teardown_stop", "", 155.0);

  OverheadInputs in;
  in.tasks_processed = 1;
  in.host.factor = 1.0;

  const OverheadReport via_profiler = compute_overheads(p, in);
  const OverheadReport via_trace = compute_overheads(obs::build_trace(p), in);
  EXPECT_DOUBLE_EQ(via_trace.task_exec_s, via_profiler.task_exec_s);
  EXPECT_DOUBLE_EQ(via_trace.staging_s, via_profiler.staging_s);
  EXPECT_DOUBLE_EQ(via_trace.rts_overhead_s, via_profiler.rts_overhead_s);
  EXPECT_DOUBLE_EQ(via_trace.rts_teardown_s, via_profiler.rts_teardown_s);
  EXPECT_DOUBLE_EQ(via_trace.task_exec_s, 100.0);
}

// --------------------------------------------------------- integration --

AppManagerConfig fast_config() {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;
  return cfg;
}

PipelinePtr make_pipeline(const std::string& name, int stages, int tasks) {
  auto p = std::make_shared<Pipeline>(name);
  for (int s = 0; s < stages; ++s) {
    auto stage = std::make_shared<Stage>("s" + std::to_string(s));
    for (int t = 0; t < tasks; ++t) {
      auto task = std::make_shared<Task>("t");
      task->executable = "sleep";
      task->duration_s = 1.0;
      stage->add_task(task);
    }
    p->add_stage(stage);
  }
  return p;
}

TEST(ObsIntegration, EveryCompletedTaskHasFullChainInExportedTrace) {
  const std::string dir = fresh_dir();
  AppManagerConfig cfg = fast_config();
  cfg.obs.metrics = true;
  cfg.obs.trace_out = dir + "/trace.json";
  cfg.obs.metrics_out = dir + "/metrics.jsonl";

  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline("p0", 2, 3), make_pipeline("p1", 1, 4)});
  amgr.run();
  ASSERT_EQ(amgr.tasks_done(), 10u);

  // In-memory trace: every task resolved DONE with a chain that covers
  // enqueue -> done across all five segments, monotone.
  const obs::Trace& trace = amgr.trace();
  const auto& names = obs::task_span_names();
  std::size_t traced = 0;
  for (const PipelinePtr& p : amgr.pipelines()) {
    for (const StagePtr& s : p->stages()) {
      for (const TaskPtr& task : s->tasks()) {
        ASSERT_TRUE(trace.tasks.count(task->uid())) << task->uid();
        const obs::TaskTrace& t = trace.tasks.at(task->uid());
        ++traced;
        EXPECT_TRUE(t.resolved_done) << task->uid();
        EXPECT_EQ(t.pipeline_uid, p->uid());
        EXPECT_EQ(t.stage_uid, s->uid());
        ASSERT_EQ(t.spans.size(), names.size()) << task->uid();
        std::int64_t prev = t.spans.front().start_us;
        for (std::size_t i = 0; i < t.spans.size(); ++i) {
          EXPECT_EQ(t.spans[i].name, names[i]);
          EXPECT_EQ(t.spans[i].start_us, prev);    // contiguous
          EXPECT_GE(t.spans[i].end_us, t.spans[i].start_us);  // monotone
          prev = t.spans[i].end_us;
        }
      }
    }
  }
  EXPECT_EQ(traced, 10u);

  // Exported Chrome trace: valid JSON, every task chain present with
  // monotone timestamps per task uid.
  const json::Value doc = json::parse(slurp(cfg.obs.trace_out));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const json::Value& tev = doc.at("traceEvents");
  std::map<std::string, std::size_t> spans_per_uid;
  std::map<std::string, std::int64_t> last_end_per_uid;
  for (const json::Value& e : tev.as_array()) {
    if (e.at("ph").as_string() != "X" || !e.contains("args")) continue;
    if (!e.at("args").contains("uid")) continue;
    const std::string uid = e.at("args").at("uid").as_string();
    const std::int64_t ts = e.at("ts").as_int();
    const std::int64_t dur = e.at("dur").as_int();
    EXPECT_GE(dur, 0);
    // Chains are contiguous, so per-uid events (written in chain order)
    // must never move backwards in time.
    if (last_end_per_uid.count(uid)) EXPECT_GE(ts, last_end_per_uid[uid]);
    last_end_per_uid[uid] = ts + dur;
    ++spans_per_uid[uid];
  }
  EXPECT_EQ(spans_per_uid.size(), 10u);
  for (const auto& [uid, n] : spans_per_uid) {
    EXPECT_EQ(n, names.size()) << uid;
  }

  // Live metrics saw the run: broker traffic, wfp counters, span latencies.
  const obs::MetricsPtr reg = amgr.metrics();
  ASSERT_NE(reg, nullptr);
  std::map<std::string, obs::MetricSnapshot> by_name;
  for (obs::MetricSnapshot& m : reg->snapshot()) {
    by_name.emplace(m.name, std::move(m));
  }
  EXPECT_GE(by_name.at("wfp.tasks_enqueued").value, 10.0);
  EXPECT_GE(by_name.at("wfp.tasks_done").value, 10.0);
  EXPECT_GE(by_name.at("mq.published").value, 10.0);
  EXPECT_GE(by_name.at("rts.units_submitted").value, 10.0);
  EXPECT_GE(by_name.at("rts.units_completed").value, 10.0);
  EXPECT_EQ(by_name.at("span.total_us").count, 10u);
  EXPECT_GT(by_name.at("mq.publish_us").count, 0u);

  // Metrics JSONL parses line by line.
  std::ifstream in(cfg.obs.metrics_out);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NO_THROW(json::parse(line));
    ++lines;
  }
  EXPECT_GT(lines, 0u);
}

TEST(ObsIntegration, NonDurableRunAvoidsAllPayloadSerialization) {
  // Zero-copy acceptance check: without a journal (no byte boundary),
  // every structured message delivered by the broker must arrive with its
  // shared payload and without a rendered byte body — i.e. the run
  // performs ZERO dump/parse pairs on broker-delivered payloads. The
  // broker counts exactly those deliveries in mq.serialize_avoided, so
  // avoided == delivered is the machine-checkable form of the claim.
  AppManagerConfig cfg = fast_config();
  cfg.obs.metrics = true;
  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline("p0", 2, 4)});
  amgr.run();
  ASSERT_EQ(amgr.tasks_done(), 8u);

  const obs::MetricsPtr reg = amgr.metrics();
  ASSERT_NE(reg, nullptr);
  const std::uint64_t delivered = reg->counter("mq.delivered").value();
  const std::uint64_t avoided = reg->counter("mq.serialize_avoided").value();
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(avoided, delivered);
}

TEST(ObsIntegration, ObsDisabledLeavesNoRegistryAndWritesNothing) {
  AppManagerConfig cfg = fast_config();
  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline("p", 1, 2)});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 2u);
  EXPECT_EQ(amgr.metrics(), nullptr);
  // The causal trace is still stitched (overheads derive from it).
  EXPECT_EQ(amgr.trace().tasks.size(), 2u);
}

TEST(ObsIntegration, ExportFailureDoesNotFailTheRun) {
  AppManagerConfig cfg = fast_config();
  cfg.obs.trace_out = "/nonexistent_dir_entk/trace.json";
  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline("p", 1, 1)});
  EXPECT_NO_THROW(amgr.run());
  EXPECT_EQ(amgr.tasks_done(), 1u);
}

}  // namespace
}  // namespace entk
