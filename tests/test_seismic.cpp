// Tests for the seismic use case: solver physics sanity, misfit/adjoint
// machinery, gradient correctness (finite-difference check), and the PST
// campaign builders.
#include <gtest/gtest.h>

#include <cmath>

#include "src/seismic/campaign.hpp"

namespace entk::seismic {
namespace {

ModelSpec small_model() {
  ModelSpec ms;
  ms.nx = 80;
  ms.nz = 80;
  return ms;
}

SolverSpec small_solver() {
  SolverSpec ss;
  ss.nt = 400;
  return ss;
}

TEST(Field2DTest, Basics) {
  Field2D f(4, 3, 1.5);
  EXPECT_EQ(f.nx(), 4);
  EXPECT_EQ(f.nz(), 3);
  EXPECT_EQ(f.size(), 12u);
  EXPECT_DOUBLE_EQ(f.at(2, 1), 1.5);
  f.at(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(f.max(), 7.0);
  EXPECT_DOUBLE_EQ(f.min(), 1.5);
  Field2D g(4, 3, 2.0);
  f.axpy(0.5, g);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 2.5);
  EXPECT_GT(f.l2_norm(), 0.0);
}

TEST(Models, BackgroundIncreasesWithDepth) {
  const ModelSpec ms = small_model();
  const Field2D m = background_model(ms);
  EXPECT_DOUBLE_EQ(m.at(0, 0), ms.v_background);
  EXPECT_GT(m.at(0, ms.nz - 1), m.at(0, 0));
  // Laterally homogeneous.
  EXPECT_DOUBLE_EQ(m.at(0, 10), m.at(ms.nx - 1, 10));
}

TEST(Models, TrueModelDeterministicPerturbation) {
  const ModelSpec ms = small_model();
  const Field2D a = true_model(ms, 3, 250.0, 11);
  const Field2D b = true_model(ms, 3, 250.0, 11);
  const Field2D c = true_model(ms, 3, 250.0, 12);
  double diff_ab = 0, diff_ac = 0;
  for (int ix = 0; ix < ms.nx; ++ix) {
    for (int iz = 0; iz < ms.nz; ++iz) {
      diff_ab += std::abs(a.at(ix, iz) - b.at(ix, iz));
      diff_ac += std::abs(a.at(ix, iz) - c.at(ix, iz));
    }
  }
  EXPECT_DOUBLE_EQ(diff_ab, 0.0);
  EXPECT_GT(diff_ac, 1.0);
}

TEST(Solver, CflGuard) {
  const ModelSpec ms = small_model();
  const Field2D m = background_model(ms);
  SolverSpec ok = small_solver();
  EXPECT_TRUE(cfl_stable(m, ms.dx, ok));
  SolverSpec bad = ok;
  bad.dt = 0.1;  // way over the limit
  EXPECT_FALSE(cfl_stable(m, ms.dx, bad));
  EXPECT_THROW(forward(m, ms.dx, bad, SourceSpec{40, 40}, {}), ValueError);
}

TEST(Solver, RickerShape) {
  // Peak at the delay, symmetric, near-zero far away.
  EXPECT_DOUBLE_EQ(ricker(0.15, 8.0, 0.15), 1.0);
  EXPECT_NEAR(ricker(0.15 - 0.01, 8.0, 0.15), ricker(0.15 + 0.01, 8.0, 0.15),
              1e-12);
  EXPECT_NEAR(ricker(1.0, 8.0, 0.15), 0.0, 1e-6);
}

TEST(Solver, WavesReachReceivers) {
  // Odd width so the domain is exactly mirror-symmetric about the source
  // column (edge/sponge effects would otherwise break the symmetry check).
  ModelSpec ms = small_model();
  ms.nx = 81;
  const Field2D m = background_model(ms);
  const SolverSpec ss = small_solver();
  const SourceSpec src{40, 10};
  std::vector<ReceiverSpec> recv{{20, 5}, {60, 5}};
  const SeismogramSet s = forward(m, ms.dx, ss, src, recv);
  ASSERT_EQ(s.traces.size(), 2u);
  EXPECT_EQ(s.nt, ss.nt);
  EXPECT_GT(s.l2_norm(), 1e-12);
  // Symmetric receivers around the source in a laterally homogeneous
  // medium record (nearly) identical traces.
  double diff = 0, norm = 0;
  for (int it = 0; it < ss.nt; ++it) {
    diff += std::abs(s.traces[0][static_cast<std::size_t>(it)] -
                     s.traces[1][static_cast<std::size_t>(it)]);
    norm += std::abs(s.traces[0][static_cast<std::size_t>(it)]);
  }
  EXPECT_LT(diff, 1e-6 * std::max(norm, 1e-30));
}

TEST(Solver, CausalityCloserReceiverArrivesFirst) {
  const ModelSpec ms = small_model();
  const Field2D m = background_model(ms);
  const SolverSpec ss = small_solver();
  const SourceSpec src{20, 20};
  std::vector<ReceiverSpec> recv{{30, 20}, {70, 20}};
  const SeismogramSet s = forward(m, ms.dx, ss, src, recv);
  auto first_arrival = [&](std::size_t r) {
    double peak = 0;
    for (double v : s.traces[r]) peak = std::max(peak, std::abs(v));
    for (int it = 0; it < ss.nt; ++it) {
      if (std::abs(s.traces[r][static_cast<std::size_t>(it)]) > 0.05 * peak)
        return it;
    }
    return ss.nt;
  };
  EXPECT_LT(first_arrival(0), first_arrival(1));
}

TEST(Solver, SpongeAbsorbsEnergy) {
  // After the wave has left the source, total recorded energy late in the
  // trace should be far smaller than around the direct arrival (no strong
  // boundary reflections).
  const ModelSpec ms = small_model();
  const Field2D m = background_model(ms);
  SolverSpec ss = small_solver();
  ss.nt = 800;
  const SourceSpec src{40, 40};
  std::vector<ReceiverSpec> recv{{40, 30}};
  const SeismogramSet s = forward(m, ms.dx, ss, src, recv);
  double early = 0, late = 0;
  for (int it = 0; it < 300; ++it)
    early += std::abs(s.traces[0][static_cast<std::size_t>(it)]);
  for (int it = 500; it < 800; ++it)
    late += std::abs(s.traces[0][static_cast<std::size_t>(it)]);
  EXPECT_LT(late, 0.2 * early);
}

TEST(Misfit, ZeroForIdenticalData) {
  const ModelSpec ms = small_model();
  const Field2D m = background_model(ms);
  const SolverSpec ss = small_solver();
  const SeismogramSet s =
      forward(m, ms.dx, ss, SourceSpec{40, 10}, {{20, 5}});
  EXPECT_DOUBLE_EQ(l2_misfit(s, s), 0.0);
  const SeismogramSet adj = adjoint_source(s, s);
  EXPECT_DOUBLE_EQ(adj.l2_norm(), 0.0);
}

TEST(Misfit, PositiveForDifferentModels) {
  const ModelSpec ms = small_model();
  const SolverSpec ss = small_solver();
  const SourceSpec src{40, 10};
  std::vector<ReceiverSpec> recv{{20, 5}, {60, 5}};
  const SeismogramSet obs =
      forward(true_model(ms), ms.dx, ss, src, recv);
  const SeismogramSet syn =
      forward(background_model(ms), ms.dx, ss, src, recv);
  EXPECT_GT(l2_misfit(syn, obs), 0.0);
}

TEST(Misfit, ConformanceChecked) {
  SeismogramSet a, b;
  a.nt = 10;
  a.traces.resize(1, std::vector<double>(10));
  b.nt = 10;
  b.traces.resize(2, std::vector<double>(10));
  EXPECT_THROW(l2_misfit(a, b), ValueError);
  EXPECT_THROW(adjoint_source(a, b), ValueError);
}

TEST(Misfit, ProcessingDemeansTraces) {
  SeismogramSet s;
  s.nt = 100;
  s.dt = 0.01;
  s.traces.push_back(std::vector<double>(100, 5.0));  // pure DC
  const SeismogramSet p = process(s);
  double sum = 0;
  for (double v : p.traces[0]) sum += std::abs(v);
  EXPECT_LT(sum, 1e-9);  // constant offset removed entirely
}

TEST(Adjoint, GradientMatchesFiniteDifference) {
  // The adjoint kernel integrated against a model perturbation must agree
  // in sign and rough magnitude with the finite-difference directional
  // derivative of the misfit. This validates the whole forward/adjoint
  // pair as a gradient engine.
  ModelSpec ms;
  ms.nx = 60;
  ms.nz = 60;
  SolverSpec ss;
  ss.nt = 300;
  const SourceSpec src{30, 8};
  std::vector<ReceiverSpec> recv{{15, 5}, {30, 5}, {45, 5}};

  const Field2D m_true = true_model(ms, 2, 150.0, 5);
  const Field2D m0 = background_model(ms);
  const SeismogramSet obs = forward(m_true, ms.dx, ss, src, recv);

  ForwardWavefield wf =
      forward_with_wavefield(m0, ms.dx, ss, src, recv, 2);
  const double chi0 = l2_misfit(wf.seismograms, obs);
  const SeismogramSet adj = adjoint_source(wf.seismograms, obs);
  const Field2D kernel = adjoint_kernel(m0, ms.dx, ss, recv, adj, wf);

  // Directional derivative along a smooth bump perturbation placed on the
  // source-receiver wavepath, where the kernel has real sensitivity.
  Field2D direction(ms.nx, ms.nz);
  for (int ix = 0; ix < ms.nx; ++ix) {
    for (int iz = 0; iz < ms.nz; ++iz) {
      const double dx = (ix - 40.0) / 8.0;
      const double dz = (iz - 12.0) / 6.0;
      direction.at(ix, iz) = std::exp(-(dx * dx + dz * dz));
    }
  }
  double predicted = 0.0;
  for (int ix = 0; ix < ms.nx; ++ix) {
    for (int iz = 0; iz < ms.nz; ++iz) {
      predicted += kernel.at(ix, iz) * direction.at(ix, iz);
    }
  }
  const double eps = 1.0;  // 1 m/s perturbation
  Field2D m1 = m0;
  m1.axpy(eps, direction);
  const double chi1 = l2_misfit(forward(m1, ms.dx, ss, src, recv), obs);
  const double fd = (chi1 - chi0) / eps;

  ASSERT_NE(fd, 0.0);
  EXPECT_GT(predicted * fd, 0.0);  // same sign (a descent direction)
  // Right scale: the snapshot-strided cross-correlation kernel is an
  // approximation, so require agreement within a factor of ~3.
  const double ratio = predicted / fd;
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(Campaign, ForwardCampaignShape) {
  ForwardCampaignSpec spec;
  spec.earthquakes = 8;
  const PipelinePtr p = build_forward_campaign(spec);
  ASSERT_EQ(p->stage_count(), 1u);
  const StagePtr stage = p->stage_at(0);
  EXPECT_EQ(stage->task_count(), 8u);
  for (const TaskPtr& t : stage->tasks()) {
    EXPECT_TRUE(t->exclusive_nodes);
    EXPECT_EQ(t->cpu_reqs.total(), 384 * 16);
    EXPECT_EQ(t->input_staging.size(), 1u);
    EXPECT_EQ(t->output_staging.size(), 1u);
    EXPECT_NO_THROW(t->validate());
  }
}

TEST(Campaign, RealKernelTasksExecute) {
  ForwardCampaignSpec spec;
  spec.earthquakes = 1;
  spec.real_kernel = true;
  spec.kernel_nx = 48;
  spec.kernel_nt = 120;
  const PipelinePtr p = build_forward_campaign(spec);
  const TaskPtr task = p->stage_at(0)->tasks()[0];
  ASSERT_TRUE(task->function);
  EXPECT_EQ(task->function(), 0);
}

TEST(Campaign, InversionIterationReducesMisfit) {
  InversionSpec spec;
  spec.earthquakes = 2;
  spec.receivers = 8;
  spec.model.nx = 60;
  spec.model.nz = 60;
  spec.solver.nt = 300;
  spec.iterations = 2;
  auto state = make_inversion_state(spec, 5);
  ASSERT_EQ(state->observed.size(), 2u);

  std::vector<double> misfits;
  for (int iter = 0; iter < spec.iterations; ++iter) {
    // Run the stages synchronously (the EnTK-driven path is exercised by
    // the example; here we validate the numerics).
    for (const PipelinePtr& p : build_inversion_iteration(spec, state)) {
      for (const StagePtr& s : p->stages()) {
        for (const TaskPtr& t : s->tasks()) {
          ASSERT_EQ(t->function(), 0);
        }
      }
    }
    sum_kernels_and_update(spec, *state);
    misfits.push_back(state->misfit_history.back());
  }
  ASSERT_EQ(misfits.size(), 2u);
  EXPECT_LT(misfits[1], misfits[0]);  // the model moved toward the truth
}

}  // namespace
}  // namespace entk::seismic
