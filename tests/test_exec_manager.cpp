// Direct component tests of the ExecManager: Emgr batching and
// translation, RTS-callback forwarding, heartbeat-driven restarts with a
// counting factory — without a WFProcessor in the loop.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/core/exec_manager.hpp"
#include "src/core/state_store.hpp"
#include "src/rts/local_rts.hpp"

namespace entk {
namespace {

class ExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<mq::Broker>("exec_test");
    broker_->declare_queue("q.pending");
    broker_->declare_queue("q.completed");
    broker_->declare_queue("q.states");
    profiler_ = std::make_shared<Profiler>();
    clock_ = std::make_shared<ScaledClock>(1e-4);
    synchronizer_ = std::make_unique<Synchronizer>(
        broker_, "q.states", &registry_, &store_, profiler_);
    synchronizer_->start();
  }

  void TearDown() override {
    if (emgr_) emgr_->stop();
    synchronizer_->stop();
    broker_->close();
  }

  void start_exec(ExecConfig cfg = {}) {
    cfg.supervision.heartbeat_interval_s = 0.005;
    rts::RtsFactory factory = [this]() -> rts::RtsPtr {
      ++rts_instances_;
      return std::make_shared<rts::LocalRts>(rts::LocalRtsConfig{.workers = 2},
                                             clock_, profiler_);
    };
    emgr_ = std::make_unique<ExecManager>(cfg, broker_, &registry_,
                                          "q.pending", "q.completed",
                                          "q.states", factory, profiler_);
    emgr_->acquire_resources();
    emgr_->start();
  }

  /// Register a task, pre-advanced to SCHEDULED (the WFProcessor's job),
  /// without publishing it — callers pick single or bulk delivery.
  TaskPtr make_task(double duration = 0.5, std::function<int()> fn = nullptr) {
    auto pipeline = std::make_shared<Pipeline>("p");
    auto stage = std::make_shared<Stage>("s");
    auto task = std::make_shared<Task>("t");
    task->duration_s = duration;
    task->function = std::move(fn);
    stage->add_task(task);
    pipeline->add_stage(stage);
    registry_.add_pipeline(pipeline);
    task->set_state(TaskState::Scheduled);
    return task;
  }

  /// Register a task and push its uid to the Pending queue.
  TaskPtr submit_task(double duration = 0.5,
                      std::function<int()> fn = nullptr) {
    TaskPtr task = make_task(duration, std::move(fn));
    json::Value msg;
    msg["uid"] = task->uid();
    broker_->publish("q.pending", mq::Message::json_body("q.pending", msg));
    return task;
  }

  /// Wait for n completion messages on the Done queue.
  std::vector<json::Value> collect(std::size_t n, double timeout_s = 5.0) {
    std::vector<json::Value> out;
    const double deadline = wall_now_s() + timeout_s;
    while (out.size() < n && wall_now_s() < deadline) {
      auto d = broker_->get("q.completed", 0.01);
      if (!d) continue;
      broker_->ack("q.completed", d->delivery_tag);
      out.push_back(d->message.body_json());
    }
    return out;
  }

  mq::BrokerPtr broker_;
  ObjectRegistry registry_;
  StateStore store_;
  ProfilerPtr profiler_;
  ClockPtr clock_;
  std::unique_ptr<Synchronizer> synchronizer_;
  std::unique_ptr<ExecManager> emgr_;
  std::atomic<int> rts_instances_{0};
};

TEST_F(ExecFixture, SubmitsAndForwardsCompletions) {
  start_exec();
  TaskPtr task = submit_task(0.5);
  const auto results = collect(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].get_string("uid", ""), task->uid());
  EXPECT_EQ(results[0].get_string("outcome", ""), "DONE");
  // Emgr advanced the task through Submitting to Submitted.
  EXPECT_EQ(task->state(), TaskState::Submitted);
  EXPECT_EQ(rts_instances_.load(), 1);
}

TEST_F(ExecFixture, CallableExitCodeTravelsInCompletion) {
  start_exec();
  submit_task(0.1, [] { return 9; });
  const auto results = collect(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].get_string("outcome", ""), "FAILED");
  EXPECT_EQ(results[0].get_int("exit_code", 0), 9);
}

TEST_F(ExecFixture, HeartbeatRestartsDeadRtsAndResubmits) {
  ExecConfig cfg;
  cfg.supervision.rts_restart_limit = 1;
  start_exec(cfg);
  // Long-running task: 20,000 virtual s = 2 s wall at 1e-4.
  TaskPtr task = submit_task(20000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  emgr_->inject_rts_failure();
  // Restart resubmits the lost unit; LocalRts restarts it from scratch,
  // which would take another 2 s — instead verify the restart happened
  // and the unit is in flight on the new instance.
  // restarts_ increments before the factory runs: wait on the instance
  // count, which is the last step of the restart we care about.
  for (int spin = 0; spin < 1000 && rts_instances_.load() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(emgr_->rts_restarts(), 1);
  EXPECT_EQ(rts_instances_.load(), 2);
  for (int spin = 0; spin < 500 && emgr_->rts_stats().units_in_flight == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(emgr_->rts_stats().units_in_flight, 1u);
  (void)task;
}

TEST_F(ExecFixture, FatalHandlerFiresWhenBudgetExhausted) {
  ExecConfig cfg;
  cfg.supervision.rts_restart_limit = 0;
  start_exec(cfg);
  std::atomic<bool> fatal{false};
  emgr_->set_fatal_handler([&fatal](const std::string&) { fatal = true; });
  submit_task(20000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  emgr_->inject_rts_failure();
  for (int spin = 0; spin < 500 && !fatal.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fatal.load());
  EXPECT_EQ(emgr_->rts_restarts(), 0);
}

TEST_F(ExecFixture, BulkPendingMessageSubmitsAllTasks) {
  start_exec();
  // Deliver four tasks in one {"uids": [...]} message, as the batched
  // WFProcessor does.
  std::vector<TaskPtr> tasks;
  json::Array uids;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(make_task(0.2));
    uids.push_back(tasks.back()->uid());
  }
  json::Value msg;
  msg["uids"] = std::move(uids);
  broker_->publish("q.pending", mq::Message::json_body("q.pending", msg));
  const auto results = collect(4);
  ASSERT_EQ(results.size(), 4u);
  std::set<std::string> seen;
  for (const json::Value& r : results) {
    seen.insert(r.get_string("uid", ""));
    EXPECT_EQ(r.get_string("outcome", ""), "DONE");
  }
  for (const TaskPtr& t : tasks) {
    EXPECT_EQ(seen.count(t->uid()), 1u);
    EXPECT_EQ(t->state(), TaskState::Submitted);
  }
}

TEST_F(ExecFixture, CompletionCoalescingPublishesResultsArrays) {
  ExecConfig cfg;
  cfg.completion_flush_window_s = 0.005;
  cfg.completion_flush_max = 8;
  start_exec(cfg);
  std::vector<TaskPtr> tasks;
  json::Array uids;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(make_task(0.1));
    uids.push_back(tasks.back()->uid());
  }
  json::Value msg;
  msg["uids"] = std::move(uids);
  broker_->publish("q.pending", mq::Message::json_body("q.pending", msg));
  // Drain q.completed raw: with the flush window on, completions arrive
  // coalesced as {"results": [...]} instead of one message per task.
  std::set<std::string> seen;
  bool saw_coalesced = false;
  const double deadline = wall_now_s() + 5.0;
  while (seen.size() < 6 && wall_now_s() < deadline) {
    auto d = broker_->get("q.completed", 0.01);
    if (!d) continue;
    broker_->ack("q.completed", d->delivery_tag);
    const json::Value body = d->message.body_json();
    if (body.contains("results")) {
      const json::Array& batch = body.at("results").as_array();
      if (batch.size() > 1) saw_coalesced = true;
      for (const json::Value& r : batch) {
        seen.insert(r.get_string("uid", ""));
        EXPECT_EQ(r.get_string("outcome", ""), "DONE");
      }
    } else {
      seen.insert(body.get_string("uid", ""));
    }
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(saw_coalesced);
  for (const TaskPtr& t : tasks) EXPECT_EQ(seen.count(t->uid()), 1u);
}

TEST_F(ExecFixture, DoubleStopIsIdempotent) {
  // Regression: the pre-Component ExecManager joined heartbeat_thread_ in
  // both stop() and the destructor, so stop() followed by destruction (or a
  // second stop()) raced on a dead thread. The lifecycle state machine makes
  // stop() a no-op after the first call, and RTS termination happens once.
  start_exec();
  TaskPtr task = submit_task(0.2);
  ASSERT_EQ(collect(1).size(), 1u);
  emgr_->stop();
  EXPECT_EQ(emgr_->state(), ComponentState::Stopped);
  EXPECT_EQ(emgr_->stop(), 0.0);  // second stop: no second RTS termination
  emgr_->stop();
  EXPECT_EQ(emgr_->state(), ComponentState::Stopped);
  emgr_.reset();  // destructor after explicit stop must also be safe
  (void)task;
}

TEST_F(ExecFixture, PendingMessagesForUnknownTasksAreDropped) {
  start_exec();
  json::Value msg;
  msg["uid"] = "task.77777x";
  broker_->publish("q.pending", mq::Message::json_body("q.pending", msg));
  // Nothing arrives on the Done queue; a real task still works after.
  TaskPtr task = submit_task(0.2);
  const auto results = collect(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].get_string("uid", ""), task->uid());
}

}  // namespace
}  // namespace entk
