// Tests for the AMQP-style exchange layer (direct / fanout / topic).
#include <gtest/gtest.h>

#include "src/mq/channel.hpp"

namespace entk::mq {
namespace {

Message text(const std::string& body) {
  Message m;
  m.set_body(body);
  return m;
}

TEST(TopicMatch, ExactAndWildcards) {
  EXPECT_TRUE(topic_matches("a.b.c", "a.b.c"));
  EXPECT_FALSE(topic_matches("a.b.c", "a.b"));
  EXPECT_FALSE(topic_matches("a.b", "a.b.c"));
  // '*' = exactly one word.
  EXPECT_TRUE(topic_matches("a.*.c", "a.b.c"));
  EXPECT_FALSE(topic_matches("a.*.c", "a.b.b.c"));
  EXPECT_TRUE(topic_matches("*", "anything"));
  EXPECT_FALSE(topic_matches("*", "two.words"));
  // '#' = zero or more words.
  EXPECT_TRUE(topic_matches("#", ""));
  EXPECT_TRUE(topic_matches("#", "a.b.c"));
  EXPECT_TRUE(topic_matches("a.#", "a"));
  EXPECT_TRUE(topic_matches("a.#", "a.b.c"));
  EXPECT_FALSE(topic_matches("a.#", "b.a"));
  EXPECT_TRUE(topic_matches("a.#.z", "a.z"));
  EXPECT_TRUE(topic_matches("a.#.z", "a.b.c.z"));
  EXPECT_FALSE(topic_matches("a.#.z", "a.b.c"));
  EXPECT_TRUE(topic_matches("#.task.#", "entk.task.done"));
}

TEST(ExchangeUnit, DirectRoutesOnExactKey) {
  Exchange ex("e", ExchangeType::Direct);
  ex.bind("q1", "red");
  ex.bind("q2", "blue");
  ex.bind("q3", "red");
  EXPECT_EQ(ex.route("red"), (std::vector<std::string>{"q1", "q3"}));
  EXPECT_EQ(ex.route("blue"), (std::vector<std::string>{"q2"}));
  EXPECT_TRUE(ex.route("green").empty());
}

TEST(ExchangeUnit, FanoutRoutesEverywhereOnce) {
  Exchange ex("e", ExchangeType::Fanout);
  ex.bind("q1");
  ex.bind("q2");
  ex.bind("q1");  // duplicate binding ignored
  EXPECT_EQ(ex.binding_count(), 2u);
  EXPECT_EQ(ex.route("whatever"), (std::vector<std::string>{"q1", "q2"}));
}

TEST(ExchangeUnit, UnbindRemoves) {
  Exchange ex("e", ExchangeType::Direct);
  ex.bind("q1", "k");
  ex.unbind("q1", "k");
  EXPECT_TRUE(ex.route("k").empty());
}

TEST(ExchangeBroker, PublishToDirectExchange) {
  Broker b;
  b.declare_queue("sim");
  b.declare_queue("ana");
  b.declare_exchange("work", ExchangeType::Direct);
  b.bind_queue("work", "sim", "simulation");
  b.bind_queue("work", "ana", "analysis");

  EXPECT_EQ(b.publish_to_exchange("work", "simulation", text("s1")), 1u);
  EXPECT_EQ(b.publish_to_exchange("work", "analysis", text("a1")), 1u);
  EXPECT_EQ(b.publish_to_exchange("work", "unknown", text("dropped")), 0u);

  auto d = b.get("sim", 0.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->message.body(), "s1");
  d = b.get("ana", 0.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->message.body(), "a1");
}

TEST(ExchangeBroker, FanoutCopiesToAllQueues) {
  Broker b;
  b.declare_queue("q1");
  b.declare_queue("q2");
  b.declare_queue("q3");
  b.declare_exchange("events", ExchangeType::Fanout);
  for (const char* q : {"q1", "q2", "q3"}) b.bind_queue("events", q);
  EXPECT_EQ(b.publish_to_exchange("events", "", text("broadcast")), 3u);
  for (const char* q : {"q1", "q2", "q3"}) {
    auto d = b.get(q, 0.0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->message.body(), "broadcast");
  }
}

TEST(ExchangeBroker, TopicSelectsBySubscription) {
  Broker b;
  b.declare_queue("all_tasks");
  b.declare_queue("failures");
  b.declare_exchange("states", ExchangeType::Topic);
  b.bind_queue("states", "all_tasks", "task.#");
  b.bind_queue("states", "failures", "*.failed");

  EXPECT_EQ(b.publish_to_exchange("states", "task.done", text("d")), 1u);
  EXPECT_EQ(b.publish_to_exchange("states", "task.failed", text("f")), 2u);
  EXPECT_EQ(b.publish_to_exchange("states", "stage.failed", text("sf")), 1u);

  EXPECT_EQ(b.queue("all_tasks")->ready_count(), 2u);
  EXPECT_EQ(b.queue("failures")->ready_count(), 2u);
}

TEST(ExchangeBroker, DeclarationRules) {
  Broker b;
  b.declare_exchange("e", ExchangeType::Direct);
  EXPECT_NO_THROW(b.declare_exchange("e", ExchangeType::Direct));
  EXPECT_THROW(b.declare_exchange("e", ExchangeType::Fanout), MqError);
  EXPECT_THROW(b.exchange("nope"), MqError);
  EXPECT_THROW(b.bind_queue("e", "missing_queue"), MqError);
  EXPECT_THROW(b.bind_queue("missing_ex", "q"), MqError);
}

TEST(ExchangeChannel, SugarWorksEndToEnd) {
  auto broker = std::make_shared<Broker>();
  Channel ch(broker);
  ch.queue_declare("log");
  ch.exchange_declare("topic_ex", ExchangeType::Topic);
  ch.queue_bind("log", "topic_ex", "app.#");
  json::Value payload;
  payload["msg"] = "hello";
  EXPECT_EQ(ch.exchange_publish("topic_ex", "app.start", payload), 1u);
  auto d = ch.basic_get("log", 0.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->message.body_json().at("msg").as_string(), "hello");
}

TEST(ExchangeTypeNames, Strings) {
  EXPECT_STREQ(to_string(ExchangeType::Direct), "direct");
  EXPECT_STREQ(to_string(ExchangeType::Fanout), "fanout");
  EXPECT_STREQ(to_string(ExchangeType::Topic), "topic");
}

TEST(ExchangeUnit, ConcurrentRoutingAndBindingChurn) {
  // The exchange serves route() under a shared (reader) lock while bind /
  // unbind take the exclusive side: hammer both concurrently and verify
  // readers always observe a consistent table — every route() result is a
  // subset of the queues ever bound, and the stable bindings are always
  // present. TSan CI runs this suite, so a locking mistake shows up as a
  // race report even if the assertions stay green.
  Exchange ex("stress", ExchangeType::Direct);
  constexpr int kStable = 4;
  for (int q = 0; q < kStable; ++q) {
    ex.bind("stable" + std::to_string(q), "key");
  }
  std::atomic<bool> stop{false};
  std::atomic<int> routes{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&ex, &stop, w] {
      for (int i = 0; i < 400 && !stop.load(); ++i) {
        const std::string queue = "churn" + std::to_string(w) + "_" +
                                  std::to_string(i % 8);
        ex.bind(queue, "key");
        ex.unbind(queue, "key");
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&ex, &stop, &routes] {
      while (!stop.load()) {
        const std::vector<std::string> hit = ex.route("key");
        ASSERT_GE(hit.size(), std::size_t{kStable});
        for (int q = 0; q < kStable; ++q) {
          ASSERT_NE(std::find(hit.begin(), hit.end(),
                              "stable" + std::to_string(q)),
                    hit.end());
        }
        ASSERT_TRUE(ex.route("missing").empty());
        ++routes;
      }
    });
  }
  // Let the writers finish, then stop the readers.
  threads[0].join();
  threads[1].join();
  stop.store(true);
  for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();
  EXPECT_GT(routes.load(), 0);
  EXPECT_EQ(ex.binding_count(), std::size_t{kStable});
  EXPECT_EQ(ex.route("key").size(), std::size_t{kStable});
}

}  // namespace
}  // namespace entk::mq
