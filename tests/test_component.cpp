// Unit tests of the supervised-component runtime (src/common/component.hpp)
// and the AppManager-level Supervisor: the legal-transition table, worker
// fault propagation, drain-before-stop, fault injection, restart with
// re-attachment, and restart-budget exhaustion.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/component.hpp"
#include "src/common/error.hpp"
#include "src/core/supervisor.hpp"

namespace entk {
namespace {

/// A minimal supervised component: one "pump" worker that moves ints from
/// an inbox to an outbox. A negative value makes the worker throw (the
/// uncontrolled-crash path); the inbox survives a crash, so a restarted
/// generation resumes exactly where the dead one stopped.
class PumpComponent : public Component {
 public:
  explicit PumpComponent(ProfilerPtr profiler = std::make_shared<Profiler>())
      : Component("pump", std::move(profiler)) {}
  ~PumpComponent() override { stop(); }

  void push(int value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inbox_.push_back(value);
    }
    cv_.notify_all();
  }

  std::vector<int> drained() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return outbox_;
  }

  int reattaches() const { return reattaches_.load(); }
  int clean_stops() const { return clean_stops_.load(); }

  std::atomic<bool> throw_on_start{false};

 protected:
  void on_start() override {
    if (throw_on_start.load()) throw std::runtime_error("broken on_start");
    add_worker("pump", [this] { pump(); });
  }
  void on_stop_requested() override { cv_.notify_all(); }
  void on_stopped() override { clean_stops_.fetch_add(1); }
  void on_reattach() override { reattaches_.fetch_add(1); }

 private:
  void pump() {
    while (true) {
      beat();
      int value;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock,
                 [this] { return stop_requested() || !inbox_.empty(); });
        if (inbox_.empty()) return;  // stop requested and fully drained
        value = inbox_.front();
        inbox_.pop_front();
      }
      if (value < 0) throw std::runtime_error("poison value");
      std::lock_guard<std::mutex> lock(mutex_);
      outbox_.push_back(value);
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<int> inbox_;
  std::vector<int> outbox_;
  std::atomic<int> reattaches_{0};
  std::atomic<int> clean_stops_{0};
};

bool wait_until(const std::function<bool()>& pred, double timeout_s = 2.0) {
  const double deadline = wall_now_s() + timeout_s;
  while (wall_now_s() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(ComponentState, TransitionTableIsExactlyTheDocumentedOne) {
  using S = ComponentState;
  const std::vector<S> all = {S::New,      S::Starting, S::Running,
                              S::Draining, S::Stopped,  S::Failed};
  const std::vector<std::pair<S, S>> legal = {
      {S::New, S::Starting},      {S::Starting, S::Running},
      {S::Starting, S::Failed},   {S::Running, S::Draining},
      {S::Running, S::Failed},    {S::Draining, S::Stopped},
      {S::Draining, S::Failed},   {S::Stopped, S::Starting},
      {S::Failed, S::Starting}};
  for (S from : all) {
    for (S to : all) {
      const bool expected =
          std::find(legal.begin(), legal.end(), std::make_pair(from, to)) !=
          legal.end();
      EXPECT_EQ(is_valid_transition(from, to), expected)
          << to_string(from) << " -> " << to_string(to);
    }
  }
}

TEST(Component, StartStopLifecycle) {
  PumpComponent c;
  EXPECT_EQ(c.state(), ComponentState::New);
  EXPECT_EQ(c.generation(), 0);
  EXPECT_LT(c.seconds_since_beat(), 0.0);

  c.start();
  EXPECT_EQ(c.state(), ComponentState::Running);
  EXPECT_EQ(c.generation(), 1);
  EXPECT_EQ(c.worker_count(), 1u);
  c.push(7);
  ASSERT_TRUE(wait_until([&] { return c.drained().size() == 1; }));
  EXPECT_GE(c.seconds_since_beat(), 0.0);

  c.stop();
  EXPECT_EQ(c.state(), ComponentState::Stopped);
  EXPECT_EQ(c.clean_stops(), 1);
}

TEST(Component, StopIsIdempotentAndStopBeforeStartIsNoop) {
  PumpComponent c;
  c.stop();  // New -> no-op
  EXPECT_EQ(c.state(), ComponentState::New);
  c.start();
  c.stop();
  c.stop();
  c.stop();
  EXPECT_EQ(c.state(), ComponentState::Stopped);
  EXPECT_EQ(c.clean_stops(), 1);  // on_stopped fires once per actual stop
}

TEST(Component, StartWhileRunningThrowsStateError) {
  PumpComponent c;
  c.start();
  EXPECT_THROW(c.start(), StateError);
  EXPECT_EQ(c.state(), ComponentState::Running);
  c.stop();
}

TEST(Component, DrainBeforeStopDeliversEverything) {
  PumpComponent c;
  c.start();
  for (int i = 0; i < 200; ++i) c.push(i);
  c.stop();  // worker must drain the inbox before honoring stop
  const std::vector<int> out = c.drained();
  ASSERT_EQ(out.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out[i], i);
}

TEST(Component, RestartAfterCleanStopStartsNewGeneration) {
  PumpComponent c;
  c.start();
  c.push(1);
  c.stop();
  c.start();  // Stopped -> Starting is legal
  EXPECT_EQ(c.generation(), 2);
  c.push(2);
  ASSERT_TRUE(wait_until([&] { return c.drained().size() == 2; }));
  c.stop();
  EXPECT_EQ(c.reattaches(), 0);  // clean restarts do not re-attach
}

TEST(Component, WorkerExceptionMarksComponentFailed) {
  PumpComponent c;
  c.start();
  c.push(-1);
  ASSERT_TRUE(wait_until([&] { return c.state() == ComponentState::Failed; }));
  EXPECT_NE(c.fault_reason().find("poison value"), std::string::npos);
  EXPECT_NE(c.fault_reason().find("pump"), std::string::npos);
  c.stop();  // joining a Failed component keeps it Failed
  EXPECT_EQ(c.state(), ComponentState::Failed);
  EXPECT_EQ(c.clean_stops(), 0);
}

TEST(Component, FaultListenerFiresOnWorkerDeath) {
  PumpComponent c;
  std::atomic<bool> heard{false};
  std::string reason;
  std::mutex reason_mutex;
  c.set_fault_listener([&](Component& failed, const std::string& why) {
    std::lock_guard<std::mutex> lock(reason_mutex);
    reason = failed.name() + "|" + why;
    heard = true;
  });
  c.start();
  c.push(-1);
  ASSERT_TRUE(wait_until([&] { return heard.load(); }));
  std::lock_guard<std::mutex> lock(reason_mutex);
  EXPECT_NE(reason.find("pump|"), std::string::npos);
  EXPECT_NE(reason.find("poison value"), std::string::npos);
}

TEST(Component, InjectFaultTriggersOnNextBeat) {
  PumpComponent c;
  c.start();
  c.inject_fault("chaos monkey");
  c.push(1);  // wake the worker so its loop beats again
  ASSERT_TRUE(wait_until([&] { return c.state() == ComponentState::Failed; }));
  EXPECT_NE(c.fault_reason().find("chaos monkey"), std::string::npos);
}

TEST(Component, RestartFromFailedReattaches) {
  PumpComponent c;
  c.start();
  c.push(1);
  ASSERT_TRUE(wait_until([&] { return c.drained().size() == 1; }));
  c.push(-1);
  ASSERT_TRUE(wait_until([&] { return c.state() == ComponentState::Failed; }));
  c.push(2);   // arrives while the component is down
  c.start();   // Failed -> Starting: recovery path
  EXPECT_EQ(c.reattaches(), 1);
  EXPECT_EQ(c.generation(), 2);
  // The queued value survived the crash and the new generation drains it.
  ASSERT_TRUE(wait_until([&] { return c.drained().size() == 2; }));
  EXPECT_EQ(c.drained()[1], 2);
  c.stop();
  EXPECT_EQ(c.state(), ComponentState::Stopped);
}

TEST(Component, ExternalFailStopsWorkersAndRecordsReason) {
  PumpComponent c;
  c.start();
  c.fail("killed by test");
  EXPECT_EQ(c.state(), ComponentState::Failed);
  EXPECT_EQ(c.fault_reason(), "killed by test");
  c.fail("second kill is a no-op");
  EXPECT_EQ(c.fault_reason(), "killed by test");
}

TEST(Component, ThrowingOnStartLeavesComponentFailed) {
  PumpComponent c;
  c.throw_on_start = true;
  EXPECT_THROW(c.start(), std::runtime_error);
  EXPECT_EQ(c.state(), ComponentState::Failed);
  EXPECT_EQ(c.generation(), 0);
  c.throw_on_start = false;
  c.start();  // recoverable: Failed -> Starting
  EXPECT_EQ(c.state(), ComponentState::Running);
  c.stop();
}

TEST(Supervisor, RestartsFailedComponentAndWorkResumes) {
  SupervisionConfig cfg;
  cfg.heartbeat_interval_s = 0.005;
  cfg.component_restart_limit = 2;
  auto profiler = std::make_shared<Profiler>();
  PumpComponent c(profiler);
  Supervisor sup(cfg, profiler);
  sup.supervise(&c);
  c.start();
  sup.start();

  c.push(1);
  c.push(-1);  // crash the worker mid-stream
  ASSERT_TRUE(wait_until([&] {
    return c.state() == ComponentState::Running && c.generation() == 2;
  }));
  EXPECT_EQ(sup.total_restarts(), 1);
  EXPECT_EQ(sup.restarts_of("pump"), 1);
  EXPECT_EQ(c.reattaches(), 1);

  c.push(2);  // the restarted generation keeps working
  ASSERT_TRUE(wait_until([&] { return c.drained().size() == 2; }));

  sup.stop();
  c.stop();
  EXPECT_EQ(c.state(), ComponentState::Stopped);
}

TEST(Supervisor, BudgetExhaustionInvokesFatalHandler) {
  SupervisionConfig cfg;
  cfg.heartbeat_interval_s = 0.005;
  cfg.component_restart_limit = 1;
  auto profiler = std::make_shared<Profiler>();
  PumpComponent c(profiler);
  Supervisor sup(cfg, profiler);
  sup.supervise(&c);
  std::atomic<bool> fatal{false};
  std::string fatal_name;
  std::mutex fatal_mutex;
  sup.set_fatal_handler([&](const std::string& name, const std::string&) {
    std::lock_guard<std::mutex> lock(fatal_mutex);
    fatal_name = name;
    fatal = true;
  });
  c.start();
  sup.start();

  c.push(-1);  // first crash: restarted (budget 1)
  ASSERT_TRUE(wait_until([&] { return c.generation() == 2; }));
  c.push(-1);  // second crash: budget exhausted
  ASSERT_TRUE(wait_until([&] { return fatal.load(); }));
  {
    std::lock_guard<std::mutex> lock(fatal_mutex);
    EXPECT_EQ(fatal_name, "pump");
  }
  EXPECT_EQ(sup.total_restarts(), 1);
  EXPECT_EQ(c.state(), ComponentState::Failed);  // left down for post-mortem

  sup.stop();
}

TEST(Supervisor, StopIsIdempotent) {
  SupervisionConfig cfg;
  cfg.heartbeat_interval_s = 0.005;
  auto profiler = std::make_shared<Profiler>();
  Supervisor sup(cfg, profiler);
  sup.start();
  sup.stop();
  sup.stop();
  EXPECT_EQ(sup.state(), ComponentState::Stopped);
}

}  // namespace
}  // namespace entk
