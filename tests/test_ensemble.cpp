// Tests for the adaptive-ensemble subsystem: event parsing, ResultView
// aggregation, the JSON rule loader, and end-to-end Controller runs
// (generator loop, group cancellation, mid-run elastic shrink, decision
// journal, post_exec fault capture).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "src/core/app_manager.hpp"
#include "src/ensemble/controller.hpp"
#include "src/ensemble/rules_json.hpp"
#include "src/rts/pilot_rts.hpp"

namespace entk::ensemble {
namespace {

std::string fresh_path(const std::string& stem) {
  return ::testing::TempDir() + "/entk_ens_" + stem + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(wall_now_us());
}

AppManagerConfig fast_config() {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;
  return cfg;
}

json::Value task_event(const std::string& uid, const std::string& group,
                       const std::string& outcome, double value = 0.0,
                       const std::string& key = "") {
  json::Value ev;
  ev["event"] = "task";
  ev["uid"] = uid;
  ev["name"] = uid;
  ev["outcome"] = outcome;
  ev["exit_code"] = 0;
  ev["stage"] = "stage.0000";
  ev["pipeline"] = "pipeline.0000";
  ev["metadata"]["ensemble"]["group"] = group;
  if (!key.empty()) ev["metadata"]["ensemble"]["values"][key] = value;
  return ev;
}

// ------------------------------------------------------------- events ---

TEST(EventParse, TaskEventCarriesGroupAndValues) {
  const auto ev = Event::parse(task_event("task.7", "opt", "DONE", 0.25, "x"));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, Event::Kind::Task);
  EXPECT_EQ(ev->uid, "task.7");
  EXPECT_TRUE(ev->done());
  EXPECT_EQ(ev->group(), "opt");
  EXPECT_DOUBLE_EQ(ev->values().get_double("x", -1.0), 0.25);
}

TEST(EventParse, MalformedPayloadsAreRejectedNotFatal) {
  EXPECT_FALSE(Event::parse(json::Value()).has_value());
  EXPECT_FALSE(Event::parse(json::Value(42)).has_value());
  json::Value unknown;
  unknown["event"] = "quorum";
  EXPECT_FALSE(Event::parse(unknown).has_value());
  json::Value no_uid;
  no_uid["event"] = "task";
  no_uid["outcome"] = "DONE";
  EXPECT_FALSE(Event::parse(no_uid).has_value());
}

// --------------------------------------------------------- result view ---

TEST(ResultViewStats, CountsAndStreamingStatsPerGroup) {
  ResultView view;
  for (int i = 1; i <= 5; ++i) {
    view.ingest(*Event::parse(task_event("t" + std::to_string(i), "g",
                                         "DONE", i, "v")));
  }
  view.ingest(*Event::parse(task_event("t6", "g", "FAILED")));
  view.ingest(*Event::parse(task_event("t7", "g", "CANCELED")));
  view.ingest(*Event::parse(task_event("t8", "other", "DONE", 9.0, "v")));

  EXPECT_EQ(view.done_count("g"), 5u);
  EXPECT_EQ(view.failed_count("g"), 1u);
  EXPECT_EQ(view.canceled_count("g"), 1u);
  EXPECT_EQ(view.total_done(), 6u);
  EXPECT_EQ(view.total_failed(), 1u);

  EXPECT_EQ(view.sample_count("g", "v"), 5u);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Count), 5.0);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Min), 1.0);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Max), 5.0);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Mean), 3.0);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Median), 3.0);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Mad), 1.0);
  EXPECT_DOUBLE_EQ(view.stat("g", "v", Stat::Sum), 15.0);
  // Fallback when the series is empty.
  EXPECT_DOUBLE_EQ(view.stat("g", "absent", Stat::Mean, -7.0), -7.0);

  EXPECT_EQ(view.completed("g").size(), 5u);
  const auto last = view.last_with_value("g", "v");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->uid, "t5");
}

// --------------------------------------------------------- JSON rules ---

TEST(RulesJson, ParsesEveryTriggerAndActionShape) {
  const std::string doc_text = R"({"rules": [
    {"name": "shed", "trigger": {"type": "task_failed", "match": "sim-"},
     "action": {"type": "cancel_group", "group": "low"}, "max_fires": 1},
    {"trigger": {"type": "timer", "interval_s": 5.0},
     "action": {"type": "resize_pilot", "delta_nodes": -1,
                "reason": "pressure"}},
    {"trigger": {"type": "stat_below", "group": "opt", "key": "misfit",
                 "stat": "min", "threshold": 0.01, "min_count": 8},
     "action": {"type": "finish"}},
    {"trigger": {"type": "group_done", "group": "g", "count": 3},
     "action": {"type": "set_param", "key": "k", "value": 1.5}},
    {"trigger": {"type": "after", "delay_s": 9.0},
     "action": {"type": "finish", "pipeline": "pipe.1"}}
  ]})";
  const std::vector<Rule> rules = rules_from_json(json::parse(doc_text));
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].name, "shed");
  EXPECT_EQ(rules[0].max_fires, 1);
  EXPECT_FALSE(rules[1].name.empty());  // auto-named
  for (const Rule& r : rules) {
    EXPECT_TRUE(static_cast<bool>(r.when));
    EXPECT_TRUE(static_cast<bool>(r.then));
  }
}

TEST(RulesJson, MalformedDocumentsThrowValueError) {
  EXPECT_THROW(rules_from_json(json::parse("{}")), ValueError);
  EXPECT_THROW(rules_from_json(json::parse(R"({"rules": 3})")), ValueError);
  EXPECT_THROW(rules_from_json(json::parse(
                   R"({"rules": [{"action": {"type": "finish"}}]})")),
               ValueError);
  EXPECT_THROW(rules_from_json(json::parse(
                   R"({"rules": [{"trigger": {"type": "warp"},
                                  "action": {"type": "finish"}}]})")),
               ValueError);
  EXPECT_THROW(rules_from_json(json::parse(
                   R"({"rules": [{"trigger": {"type": "timer",
                                              "interval_s": 1.0},
                                  "action": {"type": "resize_pilot",
                                             "delta_nodes": 0}}]})")),
               ValueError);
}

// --------------------------------------------------- controller (e2e) ---

TEST(ControllerE2E, GeneratorLoopConvergesAndFinishes) {
  // Three batches of 4, then the generator returns empty: the controller
  // must finish the held-open pipeline, and every task must be DONE
  // exactly once.
  constexpr int kRounds = 3;
  constexpr int kBatch = 4;
  auto round = std::make_shared<int>(0);
  auto executions = std::make_shared<std::atomic<int>>(0);

  auto generator = make_generator(
      [round, executions](ResultView& results, Ops&) -> std::vector<TaskPtr> {
        EXPECT_EQ(results.done_count("gen"),
                  static_cast<std::size_t>(*round * kBatch));
        if (*round >= kRounds) return {};
        std::vector<TaskPtr> batch;
        for (int i = 0; i < kBatch; ++i) {
          batch.push_back(make_task(
              "gen-r" + std::to_string(*round) + "-" + std::to_string(i),
              "gen",
              [executions](json::Value& values) {
                executions->fetch_add(1);
                values["v"] = 1.0;
                return 0;
              },
              /*duration_s=*/1.0));
        }
        ++*round;
        return batch;
      });

  auto controller = Controller::create();
  auto pipeline = std::make_shared<Pipeline>("gen-loop");
  controller->run_generator(pipeline, generator, "gen");

  AppManagerConfig cfg = fast_config();
  controller->attach(cfg);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  EXPECT_FALSE(pipeline->held_open());
  EXPECT_EQ(pipeline->stage_count(), static_cast<std::size_t>(kRounds));
  EXPECT_EQ(executions->load(), kRounds * kBatch);

  // Exactly-once at the event level: one DONE event per distinct uid.
  const std::vector<Event> events = controller->results().completed("gen");
  std::set<std::string> uids;
  for (const Event& ev : events) uids.insert(ev.uid);
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kRounds * kBatch));
  EXPECT_EQ(uids.size(), events.size());
  EXPECT_GE(controller->decision_count(), static_cast<std::size_t>(kRounds));
}

TEST(ControllerE2E, CancelGroupResolvesEveryTaskExactlyOnce) {
  // 4 quick "keep" tasks and 12 slow "shed" tasks on 4 cores: when the
  // keep group completes, a rule sheds the rest. Every task must resolve
  // exactly once (DONE or CANCELED), and the pipeline completes without
  // waiting for the canceled work.
  auto pipeline = std::make_shared<Pipeline>("shed-run");
  auto stage = std::make_shared<Stage>("work");
  for (int i = 0; i < 4; ++i) {
    stage->add_task(make_task(
        "keep-" + std::to_string(i), "keep",
        [](json::Value&) { return 0; }, /*duration_s=*/1.0));
  }
  for (int i = 0; i < 12; ++i) {
    stage->add_task(make_task(
        "shed-" + std::to_string(i), "shed",
        [](json::Value&) { return 0; }, /*duration_s=*/200.0));
  }
  pipeline->add_stage(stage);

  auto controller = Controller::create();
  controller->add_rule({
      .name = "shed-when-keep-done",
      .when = trigger::group_done_at_least("keep", 4),
      .then = action::cancel_group("shed"),
      .max_fires = 1,
  });

  AppManagerConfig cfg = fast_config();
  cfg.resource.cpus = 4;
  controller->attach(cfg);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  ResultView& results = controller->results();
  EXPECT_EQ(results.done_count("keep"), 4u);
  EXPECT_EQ(results.done_count("shed") + results.canceled_count("shed"),
            12u);
  EXPECT_GT(results.canceled_count("shed"), 0u);
  // Exactly once: every task object reached a final state.
  for (const StagePtr& s : pipeline->stages()) {
    for (const TaskPtr& t : s->tasks()) {
      EXPECT_TRUE(t->state() == TaskState::Done ||
                  t->state() == TaskState::Canceled)
          << t->name << " in state " << static_cast<int>(t->state());
    }
  }
}

TEST(ControllerE2E, MidRunShrinkDrainsInFlightWork) {
  // Acceptance criterion: shrink the pilot two nodes while work is in
  // flight. The drain must let every task complete (DONE exactly once) and
  // the pilot must end up at the reduced size.
  AppManagerConfig cfg = fast_config();
  cfg.resource.cpus = 0;
  cfg.resource.nodes = 4;  // 4 x 8 cores on local.localhost

  auto clock = std::make_shared<ScaledClock>(cfg.clock_scale);
  auto profiler = std::make_shared<Profiler>();
  auto rts_holder = std::make_shared<std::shared_ptr<rts::PilotRts>>();
  cfg.rts_factory = [clock, profiler, rts_holder, cfg]() -> rts::RtsPtr {
    rts::PilotRtsConfig pc;
    pc.pilot.resource = cfg.resource.resource;
    pc.pilot.nodes = cfg.resource.nodes;
    pc.agent = cfg.resource.agent;
    pc.teardown_base_s = cfg.resource.rts_teardown_base_s;
    pc.teardown_per_unit_s = cfg.resource.rts_teardown_per_unit_s;
    *rts_holder = std::make_shared<rts::PilotRts>(pc, clock, profiler);
    return *rts_holder;
  };

  auto pipeline = std::make_shared<Pipeline>("shrink-run");
  auto stage = std::make_shared<Stage>("work");
  constexpr int kTasks = 48;  // 32 run in wave one, 16 queue behind
  for (int i = 0; i < kTasks; ++i) {
    stage->add_task(make_task(
        "work-" + std::to_string(i), "work",
        [](json::Value&) { return 0; }, /*duration_s=*/10.0));
  }
  pipeline->add_stage(stage);

  auto resized = std::make_shared<std::atomic<bool>>(false);
  auto controller = Controller::create();
  controller->add_rule({
      .name = "shrink-mid-run",
      .when = trigger::after(2.0),
      .then =
          [resized](Ops& ops) {
            (*resized) = ops.resize_pilot(-2, "test shrink");
          },
      .max_fires = 1,
  });

  controller->attach(cfg);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  EXPECT_TRUE(resized->load());
  ASSERT_TRUE(*rts_holder);
  EXPECT_EQ((*rts_holder)->pilot()->nodes(), 2);

  // Drain semantics: nothing was killed — every task is DONE, exactly one
  // completion event each.
  ResultView& results = controller->results();
  EXPECT_EQ(results.done_count("work"), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(results.total_failed(), 0u);
  const std::vector<Event> events = results.completed("work");
  std::set<std::string> uids;
  for (const Event& ev : events) uids.insert(ev.uid);
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(uids.size(), events.size());
  for (const TaskPtr& t : stage->tasks()) {
    EXPECT_EQ(t->state(), TaskState::Done) << t->name;
    // attempts() counts retries; a drained (not killed) task never retries.
    EXPECT_EQ(t->attempts(), 0) << t->name;
  }

  // The decision was journaled with the resize action.
  bool saw_resize = false;
  for (const Decision& d : controller->decisions()) {
    for (const std::string& a : d.actions) {
      if (a.find("resize_pilot:-2") != std::string::npos) saw_resize = true;
    }
  }
  EXPECT_TRUE(saw_resize);
}

TEST(ControllerE2E, DecisionJournalIsReplayableJsonl) {
  const std::string journal = fresh_path("journal") + ".jsonl";
  auto pipeline = std::make_shared<Pipeline>("journaled");
  auto stage = std::make_shared<Stage>("work");
  stage->add_task(make_task(
      "only", "g", [](json::Value& v) { v["x"] = 1.0; return 0; }, 1.0));
  pipeline->add_stage(stage);
  pipeline->hold_open();

  auto controller = Controller::create({.journal_path = journal});
  controller->add_rule({
      .name = "release",
      .when = trigger::stage_done("work"),
      .then = action::sequence({action::set_param("note", "done"),
                                action::finish(pipeline->uid())}),
      .max_fires = 1,
  });

  AppManagerConfig cfg = fast_config();
  controller->attach(cfg);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  EXPECT_EQ(controller->params().get_string("note", ""), "done");

  std::ifstream in(journal);
  ASSERT_TRUE(in.good());
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(json::parse(line));
  }
  ASSERT_EQ(lines.size(), controller->decision_count());
  ASSERT_GE(lines.size(), 1u);
  const json::Value& d = lines.front();
  EXPECT_EQ(d.get_string("rule", ""), "release");
  EXPECT_NE(d.get_string("trigger", ""), "");
  EXPECT_GE(d.at("actions").as_array().size(), 2u);
  std::filesystem::remove(journal);
}

// ------------------------------------------- post_exec fault contract ---

TEST(PostExecFault, ThrowingHookIsCapturedAndWorkflowCompletes) {
  // A throwing post_exec must become a captured component fault (the
  // supervisor restarts the WFProcessor) — not std::terminate — and the
  // hook must not re-run after the restart (at-most-once).
  auto hook_runs = std::make_shared<std::atomic<int>>(0);

  auto pipeline = std::make_shared<Pipeline>("faulty-hook");
  auto first = std::make_shared<Stage>("first");
  auto t1 = std::make_shared<Task>("t1");
  t1->duration_s = 1.0;
  first->add_task(t1);
  first->post_exec = [hook_runs]() {
    hook_runs->fetch_add(1);
    throw std::runtime_error("user hook exploded");
  };
  pipeline->add_stage(first);
  auto second = std::make_shared<Stage>("second");
  auto t2 = std::make_shared<Task>("t2");
  t2->duration_s = 1.0;
  second->add_task(t2);
  pipeline->add_stage(second);

  AppManagerConfig cfg = fast_config();
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  EXPECT_EQ(amgr.tasks_done(), 2u);
  EXPECT_EQ(hook_runs->load(), 1);          // consumed before it ran
  EXPECT_GE(amgr.component_restarts(), 1);  // fault was captured
}

}  // namespace
}  // namespace entk::ensemble
