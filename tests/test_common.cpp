// Unit + property tests for the common layer: uids, state machines,
// profiler, logging.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/error.hpp"
#include "src/common/ids.hpp"
#include "src/common/image.hpp"
#include "src/common/log.hpp"
#include "src/common/profiler.hpp"
#include "src/common/states.hpp"

namespace entk {
namespace {

TEST(Uids, FormatAndMonotonicity) {
  const std::string a = generate_uid("thing");
  const std::string b = generate_uid("thing");
  EXPECT_EQ(uid_prefix(a), "thing");
  EXPECT_EQ(uid_number(b), uid_number(a) + 1);
}

TEST(Uids, IndependentCountersPerPrefix) {
  const auto t = uid_number(generate_uid("uid_test_a"));
  generate_uid("uid_test_b");
  EXPECT_EQ(uid_number(generate_uid("uid_test_a")), t + 1);
}

TEST(Uids, ParseHelpers) {
  EXPECT_EQ(uid_prefix("pipe.line.0042"), "pipe.line");
  EXPECT_EQ(uid_number("task.0042"), 42);
  EXPECT_EQ(uid_number("noseparator"), -1);
  EXPECT_EQ(uid_number("task.12x"), -1);
  EXPECT_EQ(uid_prefix("noseparator"), "noseparator");
}

TEST(Uids, ThreadSafeUniqueness) {
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::set<std::string> seen;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        const std::string uid = generate_uid("concurrent");
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_TRUE(seen.insert(uid).second) << "duplicate " << uid;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TaskStates, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(TaskState::Canceled); ++i) {
    const auto s = static_cast<TaskState>(i);
    EXPECT_EQ(task_state_from_string(to_string(s)), s);
  }
  EXPECT_THROW(task_state_from_string("BOGUS"), ValueError);
}

TEST(TaskStates, LinearLifecycleIsValid) {
  EXPECT_TRUE(is_valid_transition(TaskState::Described, TaskState::Scheduling));
  EXPECT_TRUE(is_valid_transition(TaskState::Scheduling, TaskState::Scheduled));
  EXPECT_TRUE(is_valid_transition(TaskState::Scheduled, TaskState::Submitting));
  EXPECT_TRUE(is_valid_transition(TaskState::Submitting, TaskState::Submitted));
  EXPECT_TRUE(is_valid_transition(TaskState::Submitted, TaskState::Executed));
  EXPECT_TRUE(is_valid_transition(TaskState::Executed, TaskState::Done));
}

TEST(TaskStates, SkipsAreInvalid) {
  EXPECT_FALSE(is_valid_transition(TaskState::Described, TaskState::Scheduled));
  EXPECT_FALSE(is_valid_transition(TaskState::Scheduling, TaskState::Submitted));
  EXPECT_FALSE(is_valid_transition(TaskState::Submitted, TaskState::Done));
}

TEST(TaskStates, FailureAndResubmission) {
  // A task can fail anywhere after Described...
  EXPECT_TRUE(is_valid_transition(TaskState::Executed, TaskState::Failed));
  EXPECT_TRUE(is_valid_transition(TaskState::Submitted, TaskState::Failed));
  EXPECT_FALSE(is_valid_transition(TaskState::Described, TaskState::Failed));
  // ...and a failed task can be re-described (resubmission), only that.
  EXPECT_TRUE(is_valid_transition(TaskState::Failed, TaskState::Described));
  EXPECT_FALSE(is_valid_transition(TaskState::Failed, TaskState::Scheduled));
  EXPECT_FALSE(is_valid_transition(TaskState::Failed, TaskState::Done));
}

TEST(TaskStates, CancellationFromLiveStatesOnly) {
  EXPECT_TRUE(is_valid_transition(TaskState::Described, TaskState::Canceled));
  EXPECT_TRUE(is_valid_transition(TaskState::Executed, TaskState::Canceled));
  EXPECT_FALSE(is_valid_transition(TaskState::Done, TaskState::Canceled));
  EXPECT_FALSE(is_valid_transition(TaskState::Canceled, TaskState::Canceled));
}

TEST(TaskStates, FinalStatesAreTerminalExceptFailed) {
  EXPECT_TRUE(is_final(TaskState::Done));
  EXPECT_TRUE(is_final(TaskState::Failed));
  EXPECT_TRUE(is_final(TaskState::Canceled));
  EXPECT_TRUE(next_states(TaskState::Done).empty());
  EXPECT_TRUE(next_states(TaskState::Canceled).empty());
  EXPECT_EQ(next_states(TaskState::Failed),
            std::vector<TaskState>{TaskState::Described});
}

// Property sweep: no self-transitions; everything out of a final state
// except Failed->Described is invalid.
class TaskStateProperty : public ::testing::TestWithParam<int> {};

TEST_P(TaskStateProperty, Invariants) {
  const auto from = static_cast<TaskState>(GetParam());
  EXPECT_FALSE(is_valid_transition(from, from));
  for (int j = 0; j <= static_cast<int>(TaskState::Canceled); ++j) {
    const auto to = static_cast<TaskState>(j);
    if (is_valid_transition(from, to)) {
      EXPECT_TRUE(!is_final(from) ||
                  (from == TaskState::Failed && to == TaskState::Described));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, TaskStateProperty,
    ::testing::Range(0, static_cast<int>(TaskState::Canceled) + 1));

TEST(StageStates, Lifecycle) {
  EXPECT_TRUE(is_valid_transition(StageState::Described, StageState::Scheduling));
  EXPECT_TRUE(is_valid_transition(StageState::Scheduling, StageState::Scheduled));
  EXPECT_TRUE(is_valid_transition(StageState::Scheduled, StageState::Done));
  EXPECT_FALSE(is_valid_transition(StageState::Scheduling, StageState::Done));
  EXPECT_TRUE(is_valid_transition(StageState::Scheduled, StageState::Failed));
  EXPECT_EQ(stage_state_from_string("SCHEDULED"), StageState::Scheduled);
}

TEST(PipelineStates, Lifecycle) {
  EXPECT_TRUE(
      is_valid_transition(PipelineState::Described, PipelineState::Scheduling));
  EXPECT_TRUE(is_valid_transition(PipelineState::Scheduling, PipelineState::Done));
  EXPECT_FALSE(is_valid_transition(PipelineState::Described, PipelineState::Done));
  EXPECT_TRUE(
      is_valid_transition(PipelineState::Scheduling, PipelineState::Failed));
  EXPECT_EQ(pipeline_state_from_string("SCHEDULING"), PipelineState::Scheduling);
}

TEST(ProfilerTest, RecordsInOrder) {
  Profiler p;
  p.record("comp", "start", "u1");
  p.record("comp", "stop", "u1", 42.0);
  ASSERT_EQ(p.size(), 2u);
  const auto events = p.events();
  EXPECT_EQ(events[0].event, "start");
  EXPECT_LE(events[0].wall_us, events[1].wall_us);
  EXPECT_DOUBLE_EQ(events[0].virtual_s, -1.0);
  EXPECT_DOUBLE_EQ(events[1].virtual_s, 42.0);
}

TEST(ProfilerTest, FirstLastAndSpan) {
  Profiler p;
  p.record("c", "a");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  p.record("c", "a");
  p.record("c", "b");
  EXPECT_LT(*p.first_us("a"), *p.last_us("a"));
  EXPECT_GT(p.span_s("a", "b"), 0.004);
  EXPECT_EQ(p.span_s("missing", "b"), 0.0);
  EXPECT_FALSE(p.first_us("missing").has_value());
  EXPECT_EQ(p.count("a"), 2u);
}

TEST(ProfilerTest, PairedSumMatchesPerUidSpans) {
  Profiler p;
  p.record("c", "begin", "x");
  p.record("c", "begin", "y");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  p.record("c", "end", "x");
  p.record("c", "end", "y");
  p.record("c", "end", "z");  // unmatched: ignored
  EXPECT_GT(p.paired_sum_s("begin", "end"), 0.008);
}

TEST(ProfilerTest, CsvDump) {
  Profiler p;
  p.record("c", "e", "u", 1.25);
  const std::string path = ::testing::TempDir() + "/prof.csv";
  p.dump_csv(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);  // header
  EXPECT_STREQ(buf, "wall_us,virtual_s,component,event,uid\n");
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_NE(std::string(buf).find(",c,e,u"), std::string::npos);
  std::fclose(f);
  p.clear();
  EXPECT_EQ(p.size(), 0u);
}

TEST(ProfilerTest, CsvRoundTripsRfc4180SpecialCharacters) {
  Profiler p;
  // Commas, quotes, and an embedded newline must all survive the CSV.
  p.record("comp,with,commas", "event \"quoted\"", "uid\nnewline", 2.5);
  p.record("plain", "e", "u");
  const std::string path = ::testing::TempDir() + "/prof_rfc4180_" +
                           std::to_string(::getpid()) + ".csv";
  p.dump_csv(path);
  const std::vector<ProfileEvent> back = read_profile_csv(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].component, "comp,with,commas");
  EXPECT_EQ(back[0].event, "event \"quoted\"");
  EXPECT_EQ(back[0].uid, "uid\nnewline");
  EXPECT_DOUBLE_EQ(back[0].virtual_s, 2.5);
  EXPECT_EQ(back[0].wall_us, p.events()[0].wall_us);
  EXPECT_EQ(back[1].component, "plain");
  EXPECT_DOUBLE_EQ(back[1].virtual_s, -1.0);
}

TEST(ProfilerTest, ReadProfileCsvRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/prof_bad_" +
                           std::to_string(::getpid()) + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("wall_us,virtual_s,component,event,uid\nnot_a_number,1,c,e,u\n",
             f);
  std::fclose(f);
  EXPECT_THROW(read_profile_csv(path), EnTKError);
  EXPECT_THROW(read_profile_csv("/no/such/file.csv"), EnTKError);
}

TEST(ProfilerTest, IndexSurvivesClearAndHeavyLoad) {
  Profiler p;
  // The first/last/count index must agree with a full scan of the log.
  for (int i = 0; i < 1000; ++i) {
    p.record("c", i % 2 == 0 ? "even" : "odd", "u" + std::to_string(i));
  }
  EXPECT_EQ(p.count("even"), 500u);
  EXPECT_EQ(p.count("odd"), 500u);
  const auto events = p.events();
  std::int64_t first_even = 0, last_even = 0;
  bool seen = false;
  for (const ProfileEvent& e : events) {
    if (e.event != "even") continue;
    if (!seen) first_even = e.wall_us;
    last_even = e.wall_us;
    seen = true;
  }
  EXPECT_EQ(*p.first_us("even"), first_even);
  EXPECT_EQ(*p.last_us("even"), last_even);
  p.clear();
  EXPECT_EQ(p.count("even"), 0u);
  EXPECT_FALSE(p.first_us("even").has_value());
}

TEST(Logging, LevelParsingAndGate) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_string("off"), LogLevel::Off);
  EXPECT_EQ(log_level_from_string("???"), LogLevel::Warn);
  const LogLevel old = log_level();
  set_log_level(LogLevel::Off);
  ENTK_ERROR("test") << "suppressed";
  set_log_level(old);
}

TEST(Errors, MessagesCarryContext) {
  try {
    throw ValueError("task.0001", "cpu_reqs", "positive");
  } catch (const EnTKError& e) {
    EXPECT_NE(std::string(e.what()).find("task.0001"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cpu_reqs"), std::string::npos);
  }
  try {
    throw MissingError("stage.0", "tasks");
  } catch (const EnTKError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

}  // namespace
}  // namespace entk

namespace entk {
namespace {

TEST(ImageWriters, PgmRoundTripHeaderAndSize) {
  const std::string path = ::testing::TempDir() + "/test.pgm";
  std::vector<double> values = {0.0, 0.5, 1.0, 0.25, 0.75, 0.1};
  write_pgm(path, values, 3, 2);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {0};
  int w = 0, h = 0, maxval = 0;
  ASSERT_EQ(std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxval), 4);
  EXPECT_STREQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  std::fgetc(f);  // single whitespace after header
  unsigned char pixels[6];
  ASSERT_EQ(std::fread(pixels, 1, 6, f), 6u);
  std::fclose(f);
  EXPECT_EQ(pixels[0], 0);    // min -> 0
  EXPECT_EQ(pixels[2], 255);  // max -> 255
}

TEST(ImageWriters, DivergingPpmMapsSignsToColors) {
  const std::string path = ::testing::TempDir() + "/test.ppm";
  std::vector<double> values = {-1.0, 0.0, 1.0};
  write_diverging_ppm(path, values, 3, 1);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {0};
  int w, h, maxval;
  ASSERT_EQ(std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxval), 4);
  EXPECT_STREQ(magic, "P6");
  std::fgetc(f);
  unsigned char px[9];
  ASSERT_EQ(std::fread(px, 1, 9, f), 9u);
  std::fclose(f);
  // -1 -> pure blue, 0 -> white, +1 -> pure red.
  EXPECT_EQ(px[0], 0);   EXPECT_EQ(px[1], 0);   EXPECT_EQ(px[2], 255);
  EXPECT_EQ(px[3], 255); EXPECT_EQ(px[4], 255); EXPECT_EQ(px[5], 255);
  EXPECT_EQ(px[6], 255); EXPECT_EQ(px[7], 0);   EXPECT_EQ(px[8], 0);
}

TEST(ImageWriters, DimensionMismatchThrows) {
  EXPECT_THROW(write_pgm("/tmp/x.pgm", {1.0, 2.0}, 3, 2), ValueError);
  EXPECT_THROW(write_diverging_ppm("/tmp/x.ppm", {}, 1, 1), ValueError);
  EXPECT_THROW(write_pgm("/nonexistent_dir_xyz/x.pgm", {1.0}, 1, 1),
               EnTKError);
}

}  // namespace
}  // namespace entk
