// Networked broker transport tests: frame codec properties, loopback
// BrokerServer <-> RemoteBroker operation semantics (at-least-once
// redelivery, long-poll gets, disconnect requeue, daemon kill/restart),
// and AppManager end-to-end parity between the in-process and networked
// backends.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <random>
#include <thread>

#include "src/common/clock.hpp"
#include "src/core/app_manager.hpp"
#include "src/net/broker_server.hpp"
#include "src/net/frame.hpp"
#include "src/net/remote_broker.hpp"

namespace entk {
namespace {

// ---------------------------------------------------------- frame codec

net::Frame random_frame(std::mt19937& rng) {
  std::uniform_int_distribution<int> op_pick(0, 17);
  static const net::Op kOps[] = {
      net::Op::kDeclare,   net::Op::kHasQueue,     net::Op::kPublish,
      net::Op::kPublishBatch, net::Op::kGet,       net::Op::kGetBatch,
      net::Op::kAck,       net::Op::kAckBatch,     net::Op::kNack,
      net::Op::kRequeue,   net::Op::kDepth,        net::Op::kHeartbeat,
      net::Op::kClose,     net::Op::kOk,           net::Op::kError,
      net::Op::kDelivery,  net::Op::kDeliveryBatch, net::Op::kDepthReport};
  std::uniform_int_distribution<std::uint64_t> u64;
  std::uniform_int_distribution<std::uint32_t> u32;
  std::uniform_int_distribution<std::size_t> queue_len(0, 64);
  std::uniform_int_distribution<std::size_t> body_len(0, 4096);
  std::uniform_int_distribution<int> byte(0, 255);

  net::Frame f;
  f.op = kOps[op_pick(rng)];
  f.corr = u64(rng);
  f.arg = u64(rng);
  f.flags = u32(rng);
  f.queue.resize(queue_len(rng));
  for (char& c : f.queue) c = static_cast<char>(byte(rng));
  f.body.resize(body_len(rng));
  for (char& c : f.body) c = static_cast<char>(byte(rng));
  return f;
}

TEST(FrameCodec, RandomFramesRoundTrip) {
  std::mt19937 rng(20260806);  // seeded: failures must reproduce
  for (int i = 0; i < 200; ++i) {
    const net::Frame frame = random_frame(rng);
    const std::string wire = net::encode_frame(frame);
    std::size_t offset = 0;
    const auto decoded = net::decode_frame(wire, offset);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
    EXPECT_EQ(offset, wire.size());
  }
}

TEST(FrameCodec, PartialBufferDecodesToNulloptAtEverySplitPoint) {
  net::Frame frame;
  frame.op = net::Op::kPublish;
  frame.corr = 7;
  frame.arg = 42;
  frame.flags = net::kFlagDurable;
  frame.queue = "q.pending";
  frame.body = "payload-bytes";
  const std::string wire = net::encode_frame(frame);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::size_t offset = 0;
    const auto decoded =
        net::decode_frame(std::string_view(wire.data(), cut), offset);
    EXPECT_FALSE(decoded.has_value()) << "cut at " << cut;
    EXPECT_EQ(offset, 0u) << "cut at " << cut;
  }
}

TEST(FrameCodec, ConsecutiveFramesDecodeInOrder) {
  std::mt19937 rng(7);
  std::string wire;
  std::vector<net::Frame> frames;
  for (int i = 0; i < 16; ++i) {
    frames.push_back(random_frame(rng));
    net::append_frame(wire, frames.back());
  }
  std::size_t offset = 0;
  for (const net::Frame& expected : frames) {
    const auto decoded = net::decode_frame(wire, offset);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, expected);
  }
  EXPECT_EQ(offset, wire.size());
  EXPECT_FALSE(net::decode_frame(wire, offset).has_value());
}

TEST(FrameCodec, OversizedLengthPrefixThrowsInsteadOfAllocating) {
  // A corrupt length prefix must kill the connection, not reserve 4 GiB.
  std::string wire;
  net::put_u32(wire, 0xffffffffu);
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_frame(wire, offset), net::NetError);
}

TEST(FrameCodec, QueueLengthOverrunningFrameThrows) {
  // Frame length admits the header but the queue_len field promises more
  // bytes than the frame carries: a framing violation, not a partial read.
  std::string payload;
  payload.push_back(static_cast<char>(net::Op::kGet));
  net::put_u64(payload, 1);   // corr
  net::put_u64(payload, 0);   // arg
  net::put_u32(payload, 0);   // flags
  net::put_u16(payload, 200); // queue_len, but no queue bytes follow
  std::string wire;
  net::put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  wire += payload;
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_frame(wire, offset), net::NetError);
}

TEST(MessageCodec, StructuredMessageRoundTripsThroughBytes) {
  json::Value payload;
  payload["uid"] = "task.42";
  payload["outcome"] = "DONE";
  json::Value headers;
  headers["reply_to"] = "q.ack.emgr";
  mq::Message msg = mq::Message::json_body("q.completed", payload, headers);
  msg.seq = 99;

  std::string wire;
  net::append_message(wire, msg);
  std::size_t offset = 0;
  const mq::Message decoded = net::decode_message(wire, offset);
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(decoded.seq, 99u);
  EXPECT_EQ(decoded.headers.get_string("reply_to", ""), "q.ack.emgr");
  EXPECT_EQ(decoded.payload()->get_string("uid", ""), "task.42");
  EXPECT_EQ(decoded.payload()->get_string("outcome", ""), "DONE");
}

TEST(MessageCodec, NullHeadersAndEmptyBodySurvive) {
  mq::Message msg;
  msg.routing_key = "q.x";
  msg.seq = 1;
  std::string wire;
  net::append_message(wire, msg);
  std::size_t offset = 0;
  const mq::Message decoded = net::decode_message(wire, offset);
  EXPECT_TRUE(decoded.headers.is_null());
  EXPECT_EQ(decoded.seq, 1u);
  EXPECT_EQ(decoded.body(), "");
}

// ------------------------------------------------------- loopback fixture

mq::Message text_message(const std::string& queue, const std::string& text) {
  json::Value payload;
  payload["text"] = text;
  return mq::Message::json_body(queue, std::move(payload));
}

std::string text_of(const mq::Delivery& d) {
  return d.message.payload()->get_string("text", "");
}

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<mq::Broker>("loopback");
    server_ = std::make_unique<net::BrokerServer>(
        broker_, net::BrokerServerConfig{}, std::make_shared<Profiler>());
    server_->start();
    net::RemoteBrokerConfig cfg;
    cfg.endpoint = server_->endpoint();
    cfg.retry_deadline_s = 10.0;
    client_ = std::make_unique<net::RemoteBroker>(cfg);
    client_->declare_queue("q.t", {});
  }

  void TearDown() override {
    if (client_) client_->close();
    if (server_) server_->stop();
    if (broker_) broker_->close();
  }

  mq::BrokerPtr broker_;
  std::unique_ptr<net::BrokerServer> server_;
  std::unique_ptr<net::RemoteBroker> client_;
};

TEST_F(LoopbackTest, PublishGetAckRoundTrip) {
  const std::uint64_t seq = client_->publish("q.t", text_message("q.t", "m1"));
  EXPECT_GT(seq, 0u);
  auto delivery = client_->get("q.t", 1.0);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(text_of(*delivery), "m1");
  EXPECT_TRUE(client_->ack("q.t", delivery->delivery_tag));
  // Acked: nothing left to deliver.
  EXPECT_FALSE(client_->get("q.t", 0.0).has_value());
}

TEST_F(LoopbackTest, BatchOpsMoveWholeChunks) {
  std::vector<mq::Message> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(text_message("q.t", "m" + std::to_string(i)));
  }
  const std::uint64_t last_seq = client_->publish_batch("q.t", std::move(batch));
  EXPECT_GT(last_seq, 0u);

  const std::vector<mq::Delivery> got = client_->get_batch("q.t", 10, 1.0);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(text_of(got[static_cast<std::size_t>(i)]),
              "m" + std::to_string(i));
  }
  std::vector<std::uint64_t> tags;
  for (const mq::Delivery& d : got) tags.push_back(d.delivery_tag);
  EXPECT_EQ(client_->ack_batch("q.t", tags), 10u);
  EXPECT_TRUE(client_->get_batch("q.t", 10, 0.0).empty());
}

TEST_F(LoopbackTest, NegotiatesBinaryCodecByDefault) {
  // The constructor's hello exchange completes before any op is answered,
  // so by the time a call returns the codec is settled.
  client_->has_queue("q.t");
  EXPECT_EQ(client_->negotiated_codec(), net::kCodecBinary);
}

TEST_F(LoopbackTest, BinaryPathNeverRendersJsonText) {
  const std::uint64_t renders_before = mq::body_render_count();
  std::vector<mq::Message> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(text_message("q.t", "zc" + std::to_string(i)));
  }
  client_->publish_batch("q.t", std::move(batch));
  const std::vector<mq::Delivery> got = client_->get_batch("q.t", 8, 1.0);
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(text_of(got[static_cast<std::size_t>(i)]),
              "zc" + std::to_string(i));
  }
  // Client encode, server relay, client decode: structured the whole way.
  EXPECT_EQ(mq::body_render_count(), renders_before);
}

TEST_F(LoopbackTest, TextClientInteropsWithBinaryServer) {
  // A client pinned to the PR5 text codec (an old peer) against the new
  // server: negotiation settles on text and everything still flows.
  net::RemoteBrokerConfig cfg;
  cfg.endpoint = server_->endpoint();
  cfg.retry_deadline_s = 10.0;
  cfg.binary_codec = false;
  net::RemoteBroker old_peer(cfg);
  old_peer.has_queue("q.t");
  EXPECT_EQ(old_peer.negotiated_codec(), net::kCodecText);
  old_peer.publish("q.t", text_message("q.t", "from-old"));
  auto d = old_peer.get("q.t", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(*d), "from-old");
  EXPECT_TRUE(old_peer.ack("q.t", d->delivery_tag));
  old_peer.close();
}

TEST_F(LoopbackTest, MixedCodecClientsShareAQueue) {
  net::RemoteBrokerConfig cfg;
  cfg.endpoint = server_->endpoint();
  cfg.retry_deadline_s = 10.0;
  cfg.binary_codec = false;
  net::RemoteBroker text_peer(cfg);

  // binary -> text: the server renders the structured payload to JSON
  // text at the old peer's boundary.
  client_->publish("q.t", text_message("q.t", "b2t"));
  auto d1 = text_peer.get("q.t", 1.0);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(text_of(*d1), "b2t");
  EXPECT_TRUE(text_peer.ack("q.t", d1->delivery_tag));

  // text -> binary: bytes in, typed bytes out.
  text_peer.publish("q.t", text_message("q.t", "t2b"));
  auto d2 = client_->get("q.t", 1.0);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(text_of(*d2), "t2b");
  EXPECT_TRUE(client_->ack("q.t", d2->delivery_tag));
  text_peer.close();
}

TEST_F(LoopbackTest, HasQueueReflectsDeclares) {
  EXPECT_TRUE(client_->has_queue("q.t"));
  EXPECT_FALSE(client_->has_queue("q.never_declared"));
  client_->declare_queue("q.second", {});
  EXPECT_TRUE(client_->has_queue("q.second"));
  EXPECT_TRUE(broker_->has_queue("q.second"));  // declared in the daemon
}

TEST_F(LoopbackTest, PublishToUnknownQueueRaisesMqError) {
  // Semantic broker errors cross the wire as kError and rethrow —
  // immediately, not after the retry deadline.
  EXPECT_THROW(client_->publish("q.missing", text_message("q.missing", "x")),
               MqError);
}

TEST_F(LoopbackTest, EmptyGetHonorsTimeout) {
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client_->get("q.t", 0.05).has_value());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.04);
  EXPECT_LT(waited, 2.0);
}

TEST_F(LoopbackTest, LongPollGetWakesOnConcurrentPublish) {
  std::thread publisher([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    client_->publish("q.t", text_message("q.t", "late"));
  });
  // The server parks this get and answers it when the publish arrives —
  // well before the 5 s deadline.
  const auto t0 = std::chrono::steady_clock::now();
  auto delivery = client_->get("q.t", 5.0);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  publisher.join();
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(text_of(*delivery), "late");
  EXPECT_LT(waited, 4.0);
  client_->ack("q.t", delivery->delivery_tag);
}

TEST_F(LoopbackTest, NackWithRequeueRedelivers) {
  client_->publish("q.t", text_message("q.t", "bounce"));
  auto first = client_->get("q.t", 1.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(client_->nack("q.t", first->delivery_tag, true));
  auto second = client_->get("q.t", 1.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(text_of(*second), "bounce");
  client_->ack("q.t", second->delivery_tag);
}

TEST_F(LoopbackTest, RequeueUnackedRestoresBacklog) {
  client_->publish("q.t", text_message("q.t", "a"));
  client_->publish("q.t", text_message("q.t", "b"));
  ASSERT_TRUE(client_->get("q.t", 1.0).has_value());
  ASSERT_TRUE(client_->get("q.t", 1.0).has_value());
  EXPECT_EQ(client_->requeue_unacked("q.t"), 2u);
  EXPECT_EQ(client_->get_batch("q.t", 4, 1.0).size(), 2u);
}

TEST_F(LoopbackTest, DepthSnapshotCountsReadyAndUnacked) {
  client_->publish("q.t", text_message("q.t", "a"));
  client_->publish("q.t", text_message("q.t", "b"));
  ASSERT_TRUE(client_->get("q.t", 1.0).has_value());  // 1 unacked, 1 ready
  const std::vector<mq::QueueDepth> depths = client_->depth_snapshot();
  bool found = false;
  for (const mq::QueueDepth& d : depths) {
    if (d.queue != "q.t") continue;
    found = true;
    EXPECT_EQ(d.ready, 1u);
    EXPECT_EQ(d.unacked, 1u);
  }
  EXPECT_TRUE(found);
}

TEST_F(LoopbackTest, DisconnectRequeuesClientsUnackedDeliveries) {
  client_->publish("q.t", text_message("q.t", "orphan"));

  net::RemoteBrokerConfig cfg;
  cfg.endpoint = server_->endpoint();
  auto consumer = std::make_unique<net::RemoteBroker>(cfg);
  auto delivery = consumer->get("q.t", 1.0);
  ASSERT_TRUE(delivery.has_value());
  // The consumer dies holding the delivery unacked: the server must
  // requeue it so another client sees it again (at-least-once).
  consumer->close();

  auto redelivered = client_->get("q.t", 2.0);
  ASSERT_TRUE(redelivered.has_value());
  EXPECT_EQ(text_of(*redelivered), "orphan");
  client_->ack("q.t", redelivered->delivery_tag);
}

TEST_F(LoopbackTest, ServerRestartOnSamePortIsTransparentToClient) {
  client_->publish("q.t", text_message("q.t", "pre-restart"));
  const std::uint16_t port = server_->port();

  server_->stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->start();  // rebinds the same port
  EXPECT_EQ(server_->port(), port);

  // Publish retries across the reconnect; the pre-restart message is still
  // in the broker (the server fronts it, killing the server loses nothing).
  client_->publish("q.t", text_message("q.t", "post-restart"));
  const std::vector<mq::Delivery> got = client_->get_batch("q.t", 4, 2.0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(text_of(got[0]), "pre-restart");
  EXPECT_EQ(text_of(got[1]), "post-restart");
  EXPECT_GE(client_->reconnects(), 1u);
}

TEST(RemoteBrokerTest, UnreachableEndpointFailsFast) {
  net::RemoteBrokerConfig cfg;
  cfg.endpoint = "127.0.0.1:1";  // nothing listens on port 1
  cfg.connect_timeout_s = 0.5;
  EXPECT_THROW(net::RemoteBroker{cfg}, net::NetError);
  cfg.endpoint = "no-port-here";
  EXPECT_THROW(net::RemoteBroker{cfg}, net::NetError);
}

// --------------------------------------------------- AppManager end-to-end

AppManagerConfig fast_config() {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;
  return cfg;
}

PipelinePtr make_pipeline(int stages, int tasks_per_stage) {
  auto p = std::make_shared<Pipeline>("p");
  for (int s = 0; s < stages; ++s) {
    auto stage = std::make_shared<Stage>("s" + std::to_string(s));
    for (int t = 0; t < tasks_per_stage; ++t) {
      auto task = std::make_shared<Task>("t" + std::to_string(t));
      task->executable = "sleep";
      task->duration_s = 5.0;
      stage->add_task(task);
    }
    p->add_stage(stage);
  }
  return p;
}

TEST(NetE2E, WorkflowOverLoopbackDaemonMatchesInProcess) {
  // In-process reference run.
  AppManager reference(fast_config());
  reference.add_pipelines({make_pipeline(2, 4)});
  reference.run();
  ASSERT_EQ(reference.tasks_done(), 8u);
  ASSERT_EQ(reference.tasks_failed(), 0u);

  // Same workflow against a loopback daemon: identical results.
  auto daemon_broker = std::make_shared<mq::Broker>("daemon");
  net::BrokerServer daemon(daemon_broker, {}, std::make_shared<Profiler>());
  daemon.start();

  AppManagerConfig cfg = fast_config();
  cfg.broker_endpoint = daemon.endpoint();
  AppManager amgr(cfg);
  auto pipeline = make_pipeline(2, 4);
  amgr.add_pipelines({pipeline});
  amgr.run();

  EXPECT_EQ(amgr.tasks_done(), reference.tasks_done());
  EXPECT_EQ(amgr.tasks_failed(), reference.tasks_failed());
  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  for (const StagePtr& stage : pipeline->stages()) {
    for (const TaskPtr& task : stage->tasks()) {
      EXPECT_EQ(task->state(), TaskState::Done);
    }
  }
  EXPECT_TRUE(amgr.overheads().failed_component.empty());

  daemon.stop();
  daemon_broker->close();
}

TEST(NetE2E, RunSurvivesBrokerKillAndRestartMidRun) {
  auto daemon_broker = std::make_shared<mq::Broker>("daemon");
  net::BrokerServer daemon(daemon_broker, {}, std::make_shared<Profiler>());
  daemon.start();

  // Stage 1 holds execution at a gate so the kill lands mid-run with the
  // task verifiably in flight; stage 2 only schedules after the restart,
  // proving the full sync/publish/get path works over the reconnected
  // transport.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto pipeline = std::make_shared<Pipeline>("p");
  auto s1 = std::make_shared<Stage>("s1");
  auto gate = std::make_shared<Task>("gate");
  gate->duration_s = 1.0;
  gate->function = [&started, &release] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return 0;
  };
  s1->add_task(gate);
  pipeline->add_stage(s1);
  auto s2 = std::make_shared<Stage>("s2");
  auto after = std::make_shared<Task>("after");
  after->executable = "sleep";
  after->duration_s = 2.0;
  s2->add_task(after);
  pipeline->add_stage(s2);

  AppManagerConfig cfg = fast_config();
  cfg.broker_endpoint = daemon.endpoint();
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  std::thread runner([&amgr] { amgr.run(); });

  // Wait for the gate task to be executing, then kill the daemon under it.
  for (int spins = 0; spins < 2000 && !started.load(); ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(started.load());
  daemon.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  daemon.start();  // same port: clients reconnect on their own
  release.store(true);
  runner.join();

  EXPECT_EQ(amgr.tasks_done(), 2u);
  EXPECT_EQ(amgr.tasks_failed(), 0u);
  EXPECT_EQ(pipeline->state(), PipelineState::Done);
  EXPECT_TRUE(amgr.overheads().failed_component.empty());

  daemon.stop();
  daemon_broker->close();
}

TEST(NetE2E, DaemonBackendRejectsLocalBrokerRecovery) {
  // recover_broker_journal replays into the *in-process* broker; a daemon
  // recovers its own journal via --recover. Mixing the two is a config
  // error, caught before anything dials out.
  AppManagerConfig cfg = fast_config();
  cfg.broker_endpoint = "127.0.0.1:1";
  cfg.recover_broker_journal = "/tmp/nonexistent.journal";
  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline(1, 1)});
  EXPECT_THROW(amgr.run(), ValueError);
}

TEST(NetE2E, InProcessBackendKeepsZeroCopyGuarantee) {
  // No broker_endpoint: the seam must hand back the in-process broker and
  // its zero-copy fast path — every delivered message avoids render/parse.
  AppManagerConfig cfg = fast_config();
  cfg.obs.metrics = true;
  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline(2, 4)});
  amgr.run();
  ASSERT_EQ(amgr.tasks_done(), 8u);
  const obs::MetricsPtr reg = amgr.metrics();
  ASSERT_NE(reg, nullptr);
  const std::uint64_t delivered = reg->counter("mq.delivered").value();
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(reg->counter("mq.serialize_avoided").value(), delivered);
}

}  // namespace
}  // namespace entk
