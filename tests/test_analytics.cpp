// Tests for the post-mortem run analysis (timelines, concurrency,
// utilization), both on synthetic traces and on a real AppManager run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "src/analytics/analysis.hpp"
#include "src/analytics/streaming.hpp"
#include "src/core/app_manager.hpp"

namespace entk::analytics {
namespace {

void fill_synthetic_trace(Profiler& p) {
  // Two tasks, partially overlapping, with staging on the first.
  p.record("agent", "unit_received", "t1", 0.0);
  p.record("agent", "unit_stage_in_start", "t1", 0.0);
  p.record("agent", "unit_stage_in_stop", "t1", 2.0);
  p.record("agent", "unit_exec_start", "t1", 5.0);
  p.record("agent", "unit_exec_stop", "t1", 15.0);
  p.record("agent", "unit_done", "t1", 15.5);
  p.record("agent", "unit_received", "t2", 1.0);
  p.record("agent", "unit_exec_start", "t2", 10.0);
  p.record("agent", "unit_exec_stop", "t2", 30.0);
  p.record("agent", "unit_done", "t2", 30.0);
  // Wall-only events (no virtual time) must be ignored.
  p.record("amgr", "amgr_setup_start");
}

RunAnalysis synthetic_analysis() {
  Profiler p;
  fill_synthetic_trace(p);
  return RunAnalysis::from_profiler(p);
}

TEST(RunAnalysisTest, TimelinesParsed) {
  const RunAnalysis a = synthetic_analysis();
  ASSERT_EQ(a.task_count(), 2u);
  const TaskTimeline& t1 = a.tasks()[0];
  EXPECT_EQ(t1.uid, "t1");
  EXPECT_DOUBLE_EQ(t1.received, 0.0);
  EXPECT_DOUBLE_EQ(t1.exec_duration(), 10.0);
  // Queue wait of t1: 5.0 total minus 2.0 staging = 3.0.
  EXPECT_DOUBLE_EQ(t1.queue_wait(), 3.0);
  const TaskTimeline& t2 = a.tasks()[1];
  EXPECT_DOUBLE_EQ(t2.queue_wait(), 9.0);
}

TEST(RunAnalysisTest, MakespanAndConcurrency) {
  const RunAnalysis a = synthetic_analysis();
  EXPECT_DOUBLE_EQ(a.makespan(), 25.0);  // 5 .. 30
  EXPECT_EQ(a.peak_concurrency(), 2);
  const auto curve = a.concurrency_curve();
  // 5: +t1 -> 1; 10: +t2 -> 2; 15: -t1 -> 1; 30: -t2 -> 0.
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].t, 5.0);
  EXPECT_EQ(curve[0].executing, 1);
  EXPECT_EQ(curve[1].executing, 2);
  EXPECT_EQ(curve[2].executing, 1);
  EXPECT_EQ(curve[3].executing, 0);
}

TEST(RunAnalysisTest, UtilizationAccountsForCores) {
  const RunAnalysis a = synthetic_analysis();
  // Busy core-time with 1 core each: 10 + 20 = 30; 2 cores x 25 s span.
  EXPECT_NEAR(a.core_utilization(2), 30.0 / 50.0, 1e-12);
  // t1 uses 4 cores: busy = 40 + 20 = 60 over 4 x 25.
  EXPECT_NEAR(a.core_utilization(4, {{"t1", 4}}), 60.0 / 100.0, 1e-12);
}

TEST(RunAnalysisTest, StagingTotals) {
  const RunAnalysis a = synthetic_analysis();
  EXPECT_DOUBLE_EQ(a.total_staging(), 2.0);
}

TEST(RunAnalysisTest, EmptyTraceIsSafe) {
  Profiler p;
  const RunAnalysis a = RunAnalysis::from_profiler(p);
  EXPECT_EQ(a.task_count(), 0u);
  EXPECT_DOUBLE_EQ(a.makespan(), 0.0);
  EXPECT_EQ(a.peak_concurrency(), 0);
  EXPECT_DOUBLE_EQ(a.core_utilization(16), 0.0);
  EXPECT_DOUBLE_EQ(a.mean_queue_wait(), 0.0);
  EXPECT_FALSE(a.summary(16).empty());
}

TEST(RunAnalysisTest, RealRunProducesConsistentNumbers) {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 8;
  cfg.resource.agent.env_setup_s = 0.5;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.clock_scale = 1e-4;
  AppManager amgr(cfg);
  auto pipeline = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  for (int i = 0; i < 8; ++i) {
    auto t = std::make_shared<Task>("t");
    t->duration_s = 10.0;
    stage->add_task(t);
  }
  pipeline->add_stage(stage);
  amgr.add_pipelines({pipeline});
  amgr.run();

  const RunAnalysis a = RunAnalysis::from_profiler(*amgr.profiler());
  EXPECT_EQ(a.task_count(), 8u);
  // 8 single-core tasks on 8 cores, fully concurrent.
  EXPECT_EQ(a.peak_concurrency(), 8);
  EXPECT_GE(a.makespan(), 10.0);
  // Utilization is high: every core busy for most of the span. A second
  // execution wave would cap it at 0.5, so 0.6 still proves one concurrent
  // wave; not tighter because the span is virtual time (scale 1e-4) and a
  // fraction of a wall millisecond of scheduler noise shifts it visibly.
  EXPECT_GT(a.core_utilization(8), 0.6);
  // Consistent with the overhead report's exec span.
  EXPECT_NEAR(a.makespan(), amgr.overheads().task_exec_s, 1e-9);
}

// --- StreamingStats property tests -----------------------------------------
// The ensemble Controller folds results in completion order, which is
// arbitrary; the contract (streaming.hpp) is that incremental estimates are
// *exact* — identical to batch recomputation over the same multiset, for any
// ingestion order. Checked here property-style with seeded generators.

double batch_median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double batch_mad(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double med = batch_median(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::fabs(x - med));
  return batch_median(dev);
}

TEST(StreamingStatsTest, EmptyIsAllZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_EQ(s.mad(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(StreamingStatsTest, IncrementalMatchesBatchForAnyIngestionOrder) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> value(-100.0, 100.0);
  std::uniform_int_distribution<int> size(1, 97);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> data(static_cast<std::size_t>(size(rng)));
    for (double& x : data) x = value(rng);
    // Duplicates are realistic (quantized metrics) — inject some.
    if (data.size() > 3) data[1] = data[0], data[2] = data[0];

    // Ingest in shuffled (out-of-order) sequence.
    std::vector<double> shuffled = data;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    StreamingStats s;
    for (const double x : shuffled) s.observe(x);

    ASSERT_EQ(s.count(), data.size());
    EXPECT_DOUBLE_EQ(s.min(), *std::min_element(data.begin(), data.end()));
    EXPECT_DOUBLE_EQ(s.max(), *std::max_element(data.begin(), data.end()));
    // Sum/mean: same addend multiset in a different order; allow one ulp-ish
    // tolerance since FP addition is not associative.
    double sum = 0.0;
    for (const double x : data) sum += x;
    EXPECT_NEAR(s.sum(), sum, 1e-9 * data.size());
    EXPECT_NEAR(s.mean(), sum / static_cast<double>(data.size()),
                1e-9);
    // Order statistics are exact: the internal sample set is sorted, so the
    // result is bit-identical to batch recomputation.
    EXPECT_DOUBLE_EQ(s.median(), batch_median(data));
    EXPECT_DOUBLE_EQ(s.mad(), batch_mad(data));
  }
}

TEST(StreamingStatsTest, PrefixEstimatesMatchBatchAtEveryStep) {
  std::mt19937 rng(7);
  std::normal_distribution<double> value(5.0, 2.5);
  std::vector<double> data(64);
  for (double& x : data) x = value(rng);

  StreamingStats s;
  std::vector<double> prefix;
  for (const double x : data) {
    s.observe(x);
    prefix.push_back(x);
    EXPECT_DOUBLE_EQ(s.median(), batch_median(prefix));
    EXPECT_DOUBLE_EQ(s.mad(), batch_mad(prefix));
    EXPECT_EQ(s.count(), prefix.size());
  }
}

}  // namespace
}  // namespace entk::analytics
